"""Platform assembly: the base-station and mobile-node roles.

Wiring diagram (one hall, one robot)::

    BaseStation                              MobileNode
    ───────────                              ──────────
    LookupService ◄── announce/register ───  DiscoveryClient
    ExtensionBase ─── midas.offer ────────►  AdaptationService ──► ProseVM
          ▲       ─── midas.keepalive ──►        │ lease table
          │                                      ▼
    MovementStore ◄── store.append ───────  HwMonitoring advice
    MirrorHub     ◄── mirror.feed ────────  ReplicationExtension advice

Everything runs on one shared :class:`~repro.sim.kernel.Simulator`; call
:meth:`ProactivePlatform.run_for` to advance the world.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping

from repro.aop.aspect import Aspect
from repro.aop.sandbox import Capability, SandboxPolicy
from repro.aop.vm import ProseVM
from repro.discovery.client import DiscoveryClient
from repro.discovery.registrar import LookupService
from repro.discovery.service import ServiceItem
from repro.extensions.replication import MirrorHub
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.leasing.table import DEFAULT_DURATION
from repro.midas.base import ExtensionBase
from repro.midas.catalog import ExtensionCatalog
from repro.midas.pipeline import PipelineConfig
from repro.midas.receiver import AdaptationService
from repro.midas.remote import RemoteCaller, ServiceRef
from repro.midas.scheduler import SchedulerService
from repro.midas.trust import Signer, TrustStore
from repro.net.geometry import ORIGIN, Position, Region
from repro.net.mobility import WaypointMobility
from repro.net.network import Network, NetworkConfig
from repro.net.node import DEFAULT_RADIO_RANGE, NetworkNode
from repro.net.transport import Transport
from repro.resilience.policy import RetryPolicy
from repro.sim.kernel import Simulator
from repro.store.database import MovementStore
from repro.supervision import SupervisionPolicy
from repro.store.service import APPEND, STORE_INTERFACE, StoreService
from repro.telemetry import MetricsRegistry
from repro.telemetry import runtime as _telemetry
from repro.telemetry.recorder import FlightRecorderHub

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.profiler import JoinPointProfiler


class BaseStation:
    """One proactive environment: registrar, extension base, hall database."""

    def __init__(
        self,
        platform: "ProactivePlatform",
        node: NetworkNode,
        signer: Signer,
        lease_duration: float,
    ):
        self.platform = platform
        self.node = node
        self.signer = signer
        self.transport = Transport(node, platform.simulator)
        self.lookup = LookupService(
            self.transport,
            platform.simulator,
            sweep_interval=platform.lease_sweep_interval,
        )
        self.catalog = ExtensionCatalog(signer)
        self.extension_base = ExtensionBase(
            self.transport,
            platform.simulator,
            self.catalog,
            lease_duration,
            retry_policy=platform.retry_policy,
            pipeline=platform.pipeline,
            renew_batch_interval=platform.renew_batch_interval,
            roam_sync_interval=platform.roam_sync_interval,
        )
        self.extension_base.watch_lookup(self.lookup)
        self.db = MovementStore(name=f"{node.node_id}.db")
        self.store_service = StoreService(self.db, self.transport)
        self.mirror_hub = MirrorHub(self.transport)
        # The hall's own services are visible to clients of its registrar.
        self.lookup.register_local(
            ServiceItem(
                STORE_INTERFACE, node.node_id, {"store": self.db.name}
            )
        )
        self.lookup.start()

    @property
    def node_id(self) -> str:
        """This station's network address."""
        return self.node.node_id

    @property
    def store_ref(self) -> ServiceRef:
        """Where monitoring extensions should post movement records."""
        return ServiceRef(self.node_id, APPEND)

    def add_extension(self, name: str, factory: Callable[[], Aspect]) -> None:
        """Add an extension to this hall's policy (future arrivals get it)."""
        self.catalog.add(name, factory)

    def replace_extension(self, name: str, factory: Callable[[], Aspect]) -> None:
        """Change the hall policy: swap the extension on every adapted node."""
        self.extension_base.replace_extension(name, factory)

    # -- crash / restart ---------------------------------------------------------

    def reset_volatile(self) -> None:
        """Crash model: lose everything in memory.

        Leased registrations, listener subscriptions, the adapted-node
        map, in-flight requests — gone.  The hall database, the signing
        key, the catalog and the locally registered items are durable and
        survive into the restart.
        """
        self.transport.reset_volatile()
        self.lookup.reset_volatile()
        self.extension_base.reset_volatile()

    def recover(self) -> None:
        """Restart: announce immediately so nodes in range re-register
        (and the reconciler then re-adapts them) without waiting out a
        full announce interval."""
        self.lookup.announce()

    def __repr__(self) -> str:
        return f"<BaseStation {self.node_id} catalog={self.catalog.names()}>"


class MobileNode:
    """A PROSE-enabled device carrying the MIDAS adaptation service."""

    def __init__(
        self,
        platform: "ProactivePlatform",
        node: NetworkNode,
        trust_store: TrustStore,
        policy: SandboxPolicy,
        attributes: Mapping[str, object] | None = None,
        supervision: SupervisionPolicy | None = None,
    ):
        self.platform = platform
        self.node = node
        self.vm = ProseVM(name=node.node_id)
        self.transport = Transport(node, platform.simulator)
        self.discovery = DiscoveryClient(
            self.transport, platform.simulator, retry_policy=platform.retry_policy
        )
        self.trust_store = trust_store
        self.mobility = WaypointMobility(platform.simulator, node)
        services = {
            Capability.NETWORK: RemoteCaller(self.transport),
            Capability.CLOCK: platform.simulator.clock,
            Capability.SCHEDULER: SchedulerService(platform.simulator),
        }
        self.adaptation = AdaptationService(
            self.vm,
            self.transport,
            platform.simulator,
            trust_store,
            policy=policy,
            services=services,
            discovery=self.discovery,
            attributes=attributes,
            supervision=supervision,
        )
        self.discovery.start()
        self.adaptation.start()

    @property
    def supervisor(self):
        """This node's extension supervisor (None when unsupervised)."""
        return self.adaptation.supervisor

    @property
    def node_id(self) -> str:
        """This node's network address."""
        return self.node.node_id

    def load_class(self, cls: type) -> type:
        """Instrument an application class on this node's VM."""
        return self.vm.load_class(cls)

    def provide_service(self, capability: str, service: object) -> None:
        """Expose a node resource (e.g. hardware) to extensions."""
        self.adaptation.provide_service(capability, service)

    def walk_to(self, target: Position | Region) -> None:
        """Queue a physical movement (connectivity follows position)."""
        self.mobility.go_to(target)

    def extensions(self) -> list[str]:
        """Names of the extensions currently live on this node."""
        return [installed.name for installed in self.adaptation.installed()]

    # -- crash / restart ---------------------------------------------------------

    def reset_volatile(self) -> None:
        """Crash model: lose everything in memory.

        Installed extensions, known registrars, held leases and pending
        requests vanish; the trust store and sandbox policy (the node's
        provisioning) survive into the restart.
        """
        self.transport.reset_volatile()
        self.adaptation.reset_volatile()
        self.discovery.reset_volatile()

    def recover(self) -> None:
        """Restart: re-advertise the adaptation service and probe for
        registrars, so bases re-adapt this node within one reconcile."""
        self.adaptation.start()
        self.discovery.probe()

    def __repr__(self) -> str:
        return f"<MobileNode {self.node_id} extensions={self.extensions()}>"


class ProactivePlatform:
    """The simulated world: one kernel, one radio network, many nodes."""

    def __init__(
        self,
        seed: int = 0,
        network_config: NetworkConfig | None = None,
        lease_duration: float = DEFAULT_DURATION,
        retry_policy: RetryPolicy | None = None,
        supervision: SupervisionPolicy | None = None,
        pipeline: PipelineConfig | None = None,
        lease_sweep_interval: float | None = None,
        renew_batch_interval: float | None = None,
        roam_sync_interval: float | None = None,
    ):
        self.simulator = Simulator()
        self.network = Network(self.simulator, config=network_config, seed=seed)
        self.lease_duration = lease_duration
        #: Fleet-scale batching knobs (see :mod:`repro.fleet`): lease
        #: tables sweep in batches instead of one timer per lease, and
        #: base keepalives ride one sweep timer per station.  ``None``
        #: keeps the classic exact per-lease timers.
        self.lease_sweep_interval = lease_sweep_interval
        self.renew_batch_interval = renew_batch_interval
        #: When set, linked base stations run anti-entropy roam
        #: reconciliation at this period (see ExtensionBase); None keeps
        #: the classic announce-only roaming algorithm.
        self.roam_sync_interval = roam_sync_interval
        #: Pipeline shape handed to every base station built here; None
        #: keeps the classic inline (single-worker, zero-service) mode.
        self.pipeline = pipeline
        #: Resilience policy handed to every base and mobile node built
        #: here (retrying offers/registrations, keepalive backoff); None
        #: keeps the classic reconcile-only behavior.
        self.retry_policy = retry_policy
        #: Supervision policy handed to every mobile node built here;
        #: None keeps the classic unsupervised (zero-overhead) dispatch.
        self.supervision = supervision
        self.base_stations: dict[str, BaseStation] = {}
        self.mobile_nodes: dict[str, MobileNode] = {}
        #: The injector run by :meth:`install_faults`, if any.
        self.fault_injector: FaultInjector | None = None
        #: The telemetry registry, once :meth:`enable_telemetry` runs.
        self.telemetry: MetricsRegistry | None = None
        #: The join-point profiler, once :meth:`enable_profiler` runs.
        self.profiler: "JoinPointProfiler | None" = None
        self._previous_recorder: _telemetry.Recorder | None = None

    # -- construction -----------------------------------------------------------

    def create_base_station(
        self,
        node_id: str,
        position: Position = ORIGIN,
        radio_range: float = DEFAULT_RADIO_RANGE,
        signer: Signer | None = None,
    ) -> BaseStation:
        """Stand up a base station (registrar + extension base + DB)."""
        node = self.network.attach(NetworkNode(node_id, position, radio_range))
        station = BaseStation(
            self,
            node,
            signer or Signer.generate(node_id),
            self.lease_duration,
        )
        self.base_stations[node_id] = station
        # Base stations share a wired backbone and learn about each other
        # for the roaming algorithm.
        for other in self.base_stations.values():
            if other is not station:
                self.network.wire(node_id, other.node_id)
                other.extension_base.link_peer_base(node_id)
                station.extension_base.link_peer_base(other.node_id)
        return station

    def create_mobile_node(
        self,
        node_id: str,
        position: Position = ORIGIN,
        radio_range: float = DEFAULT_RADIO_RANGE,
        trusted: Iterable[Signer] = (),
        policy: SandboxPolicy | None = None,
        attributes: Mapping[str, object] | None = None,
        supervision: SupervisionPolicy | None = None,
    ) -> MobileNode:
        """Stand up an adaptable mobile node.

        ``trusted`` provisions the node's trust store; by default every
        *currently existing* base station's signer is trusted (override
        with an explicit list for security experiments).  ``attributes``
        go on the advertised adaptation service (e.g. ``{"class":
        "robot"}`` scopes base-side quarantine marks to a device class);
        ``supervision`` overrides the platform-wide policy for this node.
        """
        node = self.network.attach(NetworkNode(node_id, position, radio_range))
        trust_store = TrustStore()
        signers = list(trusted) or [
            station.signer for station in self.base_stations.values()
        ]
        for signer in signers:
            trust_store.trust_signer(signer)
        mobile = MobileNode(
            self,
            node,
            trust_store,
            policy or SandboxPolicy.permissive(),
            attributes=attributes,
            supervision=supervision or self.supervision,
        )
        if self.profiler is not None:
            mobile.vm.profiler = self.profiler
        self.mobile_nodes[node_id] = mobile
        return mobile

    # -- time ----------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.simulator.now

    def run_for(self, seconds: float) -> int:
        """Advance the world by ``seconds`` of virtual time."""
        return self.simulator.run_for(seconds)

    def run_until_idle(self, max_steps: int = 100_000) -> int:
        """Drain the event queue (bounded; periodic timers never drain)."""
        return self.simulator.run(max_steps=max_steps)

    # -- fault injection ---------------------------------------------------------------

    def install_faults(self, plan: FaultPlan) -> FaultInjector:
        """Run ``plan`` against this world, with full crash semantics.

        Message rules hook the network; scheduled crashes detach the node
        *and* wipe its volatile state (leases, registrations, installed
        extensions, in-flight requests — durable stores and keys
        survive); restarts reattach it and kick recovery (announce /
        probe + re-advertise).  Clock skews replace the skewed nodes'
        CLOCK service.  Deterministic: the plan draws on the network's
        seeded RNG and the simulation clock only.
        """
        if self.fault_injector is not None:
            self.fault_injector.uninstall()
        injector = FaultInjector(self.network, self.simulator, plan)
        injector.on_crash.connect(self._node_crashed)
        injector.on_restart.connect(self._node_restarted)
        injector.install()
        for skew in plan.clock_skews:
            mobile = self.mobile_nodes.get(skew.node_id)
            if mobile is not None:
                mobile.provide_service(
                    Capability.CLOCK, injector.clock_for(skew.node_id)
                )
        self.fault_injector = injector
        return injector

    def _node_crashed(self, node_id: str) -> None:
        station = self.base_stations.get(node_id)
        if station is not None:
            station.reset_volatile()
        mobile = self.mobile_nodes.get(node_id)
        if mobile is not None:
            mobile.reset_volatile()

    def _node_restarted(self, node_id: str) -> None:
        station = self.base_stations.get(node_id)
        if station is not None:
            station.recover()
        mobile = self.mobile_nodes.get(node_id)
        if mobile is not None:
            mobile.recover()

    # -- observability ----------------------------------------------------------------

    def enable_telemetry(
        self,
        registry: MetricsRegistry | None = None,
        flight: bool = True,
        dump_dir: str | None = None,
    ) -> MetricsRegistry:
        """Install a metrics registry on the simulator's clock.

        Every instrumented point in the stack (advice dispatch, transport,
        MIDAS lifecycle, leases, tuple spaces) starts reporting here; the
        registry's timestamps are virtual time, so exports are
        deterministic.  Returns the registry (pass your own to share one
        across platforms).  Call :meth:`disable_telemetry` to restore the
        previous recorder.

        Unless ``flight=False``, a :class:`FlightRecorderHub` is attached
        (if the registry doesn't already carry one) so lifecycle events
        also land on per-node flight rings; ``dump_dir`` makes crashes
        and quarantines auto-dump the affected node's ring there.
        """
        if self.telemetry is not None:
            return self.telemetry
        registry = registry or MetricsRegistry(clock=self.simulator.clock)
        if flight and registry.flight is None:
            registry.flight = FlightRecorderHub(
                clock=self.simulator.clock, dump_dir=dump_dir
            )
        self._previous_recorder = _telemetry.install(registry)
        self.telemetry = registry
        return registry

    def enable_profiler(self, profiler: "JoinPointProfiler | None" = None):
        """Attach a join-point profiler to every mobile node's VM.

        Nodes created *after* this call are profiled too.  Attach before
        the scenario runs: advice woven earlier is not re-wrapped.
        Returns the profiler.
        """
        from repro.telemetry.profiler import JoinPointProfiler

        if self.profiler is None:
            self.profiler = profiler or JoinPointProfiler()
            for mobile in self.mobile_nodes.values():
                mobile.vm.profiler = self.profiler
        return self.profiler

    def disable_telemetry(self) -> MetricsRegistry | None:
        """Uninstall this platform's registry; returns it for inspection."""
        registry = self.telemetry
        if registry is None:
            return None
        _telemetry.install(self._previous_recorder)
        self._previous_recorder = None
        self.telemetry = None
        return registry

    def summary(self) -> dict:
        """A snapshot of the world's counters, for dashboards and tests.

        Covers the radio (traffic/drops), every base station (catalog,
        adapted nodes, database size) and every mobile node (live
        extensions, weaving statistics, interception counts).
        """
        return {
            "time": self.now,
            "network": {
                "transmitted": self.network.messages_transmitted,
                "delivered": self.network.messages_delivered,
                "dropped": self.network.messages_dropped,
            },
            "base_stations": {
                node_id: {
                    "catalog": station.catalog.names(),
                    "adapted_nodes": station.extension_base.adapted_nodes(),
                    "db_records": len(station.db),
                    "registrations": station.lookup.registration_count(),
                }
                for node_id, station in self.base_stations.items()
            },
            "mobile_nodes": {
                node_id: {
                    "position": tuple(node.node.position),
                    "extensions": node.extensions(),
                    "classes_loaded": node.vm.stats.classes_loaded,
                    "interceptions": node.vm.interception_count(),
                    "quarantined": (
                        []
                        if node.supervisor is None
                        else [
                            health.aspect_name
                            for health in node.supervisor.quarantined()
                        ]
                    ),
                }
                for node_id, node in self.mobile_nodes.items()
            },
        }

    def __repr__(self) -> str:
        return (
            f"<ProactivePlatform t={self.now:.2f} "
            f"bases={sorted(self.base_stations)} nodes={sorted(self.mobile_nodes)}>"
        )


def capability_services(
    platform: ProactivePlatform, transport: Transport, extra: Mapping[str, object] = ()
) -> dict[str, object]:
    """The standard gateway service set for a node (helper for custom wiring)."""
    services: dict[str, object] = {
        Capability.NETWORK: RemoteCaller(transport),
        Capability.CLOCK: platform.simulator.clock,
        Capability.SCHEDULER: SchedulerService(platform.simulator),
    }
    services.update(dict(extra) if extra else {})
    return services
