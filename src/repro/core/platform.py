"""Platform assembly: the base-station and mobile-node roles.

Wiring diagram (one hall, one robot)::

    BaseStation                              MobileNode
    ───────────                              ──────────
    LookupService ◄── announce/register ───  DiscoveryClient
    ExtensionBase ─── midas.offer ────────►  AdaptationService ──► ProseVM
          ▲       ─── midas.keepalive ──►        │ lease table
          │                                      ▼
    MovementStore ◄── store.append ───────  HwMonitoring advice
    MirrorHub     ◄── mirror.feed ────────  ReplicationExtension advice

Everything runs on one shared :class:`~repro.sim.kernel.Simulator`; call
:meth:`ProactivePlatform.run_for` to advance the world.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping

from repro.aop.aspect import Aspect
from repro.aop.sandbox import Capability, SandboxPolicy
from repro.aop.vm import ProseVM
from repro.discovery.client import DiscoveryClient
from repro.discovery.registrar import LookupService
from repro.discovery.service import ServiceItem
from repro.extensions.replication import MirrorHub
from repro.leasing.table import DEFAULT_DURATION
from repro.midas.base import ExtensionBase
from repro.midas.catalog import ExtensionCatalog
from repro.midas.receiver import AdaptationService
from repro.midas.remote import RemoteCaller, ServiceRef
from repro.midas.scheduler import SchedulerService
from repro.midas.trust import Signer, TrustStore
from repro.net.geometry import ORIGIN, Position, Region
from repro.net.mobility import WaypointMobility
from repro.net.network import Network, NetworkConfig
from repro.net.node import DEFAULT_RADIO_RANGE, NetworkNode
from repro.net.transport import Transport
from repro.sim.kernel import Simulator
from repro.store.database import MovementStore
from repro.store.service import APPEND, STORE_INTERFACE, StoreService
from repro.telemetry import MetricsRegistry
from repro.telemetry import runtime as _telemetry


class BaseStation:
    """One proactive environment: registrar, extension base, hall database."""

    def __init__(
        self,
        platform: "ProactivePlatform",
        node: NetworkNode,
        signer: Signer,
        lease_duration: float,
    ):
        self.platform = platform
        self.node = node
        self.signer = signer
        self.transport = Transport(node, platform.simulator)
        self.lookup = LookupService(self.transport, platform.simulator)
        self.catalog = ExtensionCatalog(signer)
        self.extension_base = ExtensionBase(
            self.transport, platform.simulator, self.catalog, lease_duration
        )
        self.extension_base.watch_lookup(self.lookup)
        self.db = MovementStore(name=f"{node.node_id}.db")
        self.store_service = StoreService(self.db, self.transport)
        self.mirror_hub = MirrorHub(self.transport)
        # The hall's own services are visible to clients of its registrar.
        self.lookup.register_local(
            ServiceItem(
                STORE_INTERFACE, node.node_id, {"store": self.db.name}
            )
        )
        self.lookup.start()

    @property
    def node_id(self) -> str:
        """This station's network address."""
        return self.node.node_id

    @property
    def store_ref(self) -> ServiceRef:
        """Where monitoring extensions should post movement records."""
        return ServiceRef(self.node_id, APPEND)

    def add_extension(self, name: str, factory: Callable[[], Aspect]) -> None:
        """Add an extension to this hall's policy (future arrivals get it)."""
        self.catalog.add(name, factory)

    def replace_extension(self, name: str, factory: Callable[[], Aspect]) -> None:
        """Change the hall policy: swap the extension on every adapted node."""
        self.extension_base.replace_extension(name, factory)

    def __repr__(self) -> str:
        return f"<BaseStation {self.node_id} catalog={self.catalog.names()}>"


class MobileNode:
    """A PROSE-enabled device carrying the MIDAS adaptation service."""

    def __init__(
        self,
        platform: "ProactivePlatform",
        node: NetworkNode,
        trust_store: TrustStore,
        policy: SandboxPolicy,
    ):
        self.platform = platform
        self.node = node
        self.vm = ProseVM(name=node.node_id)
        self.transport = Transport(node, platform.simulator)
        self.discovery = DiscoveryClient(self.transport, platform.simulator)
        self.trust_store = trust_store
        self.mobility = WaypointMobility(platform.simulator, node)
        services = {
            Capability.NETWORK: RemoteCaller(self.transport),
            Capability.CLOCK: platform.simulator.clock,
            Capability.SCHEDULER: SchedulerService(platform.simulator),
        }
        self.adaptation = AdaptationService(
            self.vm,
            self.transport,
            platform.simulator,
            trust_store,
            policy=policy,
            services=services,
            discovery=self.discovery,
        )
        self.discovery.start()
        self.adaptation.start()

    @property
    def node_id(self) -> str:
        """This node's network address."""
        return self.node.node_id

    def load_class(self, cls: type) -> type:
        """Instrument an application class on this node's VM."""
        return self.vm.load_class(cls)

    def provide_service(self, capability: str, service: object) -> None:
        """Expose a node resource (e.g. hardware) to extensions."""
        self.adaptation.provide_service(capability, service)

    def walk_to(self, target: Position | Region) -> None:
        """Queue a physical movement (connectivity follows position)."""
        self.mobility.go_to(target)

    def extensions(self) -> list[str]:
        """Names of the extensions currently live on this node."""
        return [installed.name for installed in self.adaptation.installed()]

    def __repr__(self) -> str:
        return f"<MobileNode {self.node_id} extensions={self.extensions()}>"


class ProactivePlatform:
    """The simulated world: one kernel, one radio network, many nodes."""

    def __init__(
        self,
        seed: int = 0,
        network_config: NetworkConfig | None = None,
        lease_duration: float = DEFAULT_DURATION,
    ):
        self.simulator = Simulator()
        self.network = Network(self.simulator, config=network_config, seed=seed)
        self.lease_duration = lease_duration
        self.base_stations: dict[str, BaseStation] = {}
        self.mobile_nodes: dict[str, MobileNode] = {}
        #: The telemetry registry, once :meth:`enable_telemetry` runs.
        self.telemetry: MetricsRegistry | None = None
        self._previous_recorder: _telemetry.Recorder | None = None

    # -- construction -----------------------------------------------------------

    def create_base_station(
        self,
        node_id: str,
        position: Position = ORIGIN,
        radio_range: float = DEFAULT_RADIO_RANGE,
        signer: Signer | None = None,
    ) -> BaseStation:
        """Stand up a base station (registrar + extension base + DB)."""
        node = self.network.attach(NetworkNode(node_id, position, radio_range))
        station = BaseStation(
            self,
            node,
            signer or Signer.generate(node_id),
            self.lease_duration,
        )
        self.base_stations[node_id] = station
        # Base stations share a wired backbone and learn about each other
        # for the roaming algorithm.
        for other in self.base_stations.values():
            if other is not station:
                self.network.wire(node_id, other.node_id)
                other.extension_base.link_peer_base(node_id)
                station.extension_base.link_peer_base(other.node_id)
        return station

    def create_mobile_node(
        self,
        node_id: str,
        position: Position = ORIGIN,
        radio_range: float = DEFAULT_RADIO_RANGE,
        trusted: Iterable[Signer] = (),
        policy: SandboxPolicy | None = None,
    ) -> MobileNode:
        """Stand up an adaptable mobile node.

        ``trusted`` provisions the node's trust store; by default every
        *currently existing* base station's signer is trusted (override
        with an explicit list for security experiments).
        """
        node = self.network.attach(NetworkNode(node_id, position, radio_range))
        trust_store = TrustStore()
        signers = list(trusted) or [
            station.signer for station in self.base_stations.values()
        ]
        for signer in signers:
            trust_store.trust_signer(signer)
        mobile = MobileNode(
            self,
            node,
            trust_store,
            policy or SandboxPolicy.permissive(),
        )
        self.mobile_nodes[node_id] = mobile
        return mobile

    # -- time ----------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.simulator.now

    def run_for(self, seconds: float) -> int:
        """Advance the world by ``seconds`` of virtual time."""
        return self.simulator.run_for(seconds)

    def run_until_idle(self, max_steps: int = 100_000) -> int:
        """Drain the event queue (bounded; periodic timers never drain)."""
        return self.simulator.run(max_steps=max_steps)

    # -- observability ----------------------------------------------------------------

    def enable_telemetry(
        self, registry: MetricsRegistry | None = None
    ) -> MetricsRegistry:
        """Install a metrics registry on the simulator's clock.

        Every instrumented point in the stack (advice dispatch, transport,
        MIDAS lifecycle, leases, tuple spaces) starts reporting here; the
        registry's timestamps are virtual time, so exports are
        deterministic.  Returns the registry (pass your own to share one
        across platforms).  Call :meth:`disable_telemetry` to restore the
        previous recorder.
        """
        if self.telemetry is not None:
            return self.telemetry
        registry = registry or MetricsRegistry(clock=self.simulator.clock)
        self._previous_recorder = _telemetry.install(registry)
        self.telemetry = registry
        return registry

    def disable_telemetry(self) -> MetricsRegistry | None:
        """Uninstall this platform's registry; returns it for inspection."""
        registry = self.telemetry
        if registry is None:
            return None
        _telemetry.install(self._previous_recorder)
        self._previous_recorder = None
        self.telemetry = None
        return registry

    def summary(self) -> dict:
        """A snapshot of the world's counters, for dashboards and tests.

        Covers the radio (traffic/drops), every base station (catalog,
        adapted nodes, database size) and every mobile node (live
        extensions, weaving statistics, interception counts).
        """
        return {
            "time": self.now,
            "network": {
                "transmitted": self.network.messages_transmitted,
                "delivered": self.network.messages_delivered,
                "dropped": self.network.messages_dropped,
            },
            "base_stations": {
                node_id: {
                    "catalog": station.catalog.names(),
                    "adapted_nodes": station.extension_base.adapted_nodes(),
                    "db_records": len(station.db),
                    "registrations": station.lookup.registration_count(),
                }
                for node_id, station in self.base_stations.items()
            },
            "mobile_nodes": {
                node_id: {
                    "position": tuple(node.node.position),
                    "extensions": node.extensions(),
                    "classes_loaded": node.vm.stats.classes_loaded,
                    "interceptions": node.vm.interception_count(),
                }
                for node_id, node in self.mobile_nodes.items()
            },
        }

    def __repr__(self) -> str:
        return (
            f"<ProactivePlatform t={self.now:.2f} "
            f"bases={sorted(self.base_stations)} nodes={sorted(self.mobile_nodes)}>"
        )


def capability_services(
    platform: ProactivePlatform, transport: Transport, extra: Mapping[str, object] = ()
) -> dict[str, object]:
    """The standard gateway service set for a node (helper for custom wiring)."""
    services: dict[str, object] = {
        Capability.NETWORK: RemoteCaller(transport),
        Capability.CLOCK: platform.simulator.clock,
        Capability.SCHEDULER: SchedulerService(platform.simulator),
    }
    services.update(dict(extra) if extra else {})
    return services
