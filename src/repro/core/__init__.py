"""The proactive middleware platform — top-level public API.

This package assembles the substrates into the system of the paper: a
:class:`~repro.core.platform.ProactivePlatform` owns the simulated world
(kernel + radio network) and builds the two node roles:

- :class:`~repro.core.platform.BaseStation` — registrar + extension base
  + hall database (+ mirror hub), i.e. one *proactive environment*;
- :class:`~repro.core.platform.MobileNode` — a PROSE-enabled VM with a
  MIDAS adaptation service, discovery client, resource gateway services,
  and a mobility model.

:class:`~repro.core.environment.ProductionHall` and
:class:`~repro.core.environment.ProactiveEnvironment` add the physical
geometry: halls are regions with a base station at their center; walking
a node between halls is all it takes for its functionality to change.
"""

from repro.core.environment import ProactiveEnvironment, ProductionHall
from repro.core.platform import BaseStation, MobileNode, ProactivePlatform

__all__ = [
    "BaseStation",
    "MobileNode",
    "ProactiveEnvironment",
    "ProactivePlatform",
    "ProductionHall",
]
