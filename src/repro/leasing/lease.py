"""The lease record and its state machine."""

from __future__ import annotations

import enum
from typing import Any

from repro.errors import LeaseExpiredError


class LeaseState(enum.Enum):
    """Lifecycle of a lease: active until renewed-forever, expired, or cancelled."""

    ACTIVE = "active"
    EXPIRED = "expired"
    CANCELLED = "cancelled"


class Lease:
    """One leased grant.

    ``holder`` identifies the party the grant was issued to (a node id),
    ``resource`` is an opaque description of what was granted (a service
    registration, an extension id).  The lease does not know about clocks;
    the owning :class:`~repro.leasing.table.LeaseTable` drives it.
    """

    __slots__ = ("lease_id", "holder", "resource", "duration", "granted_at",
                 "expires_at", "state", "renewals")

    def __init__(
        self,
        lease_id: str,
        holder: str,
        resource: Any,
        duration: float,
        granted_at: float,
    ):
        self.lease_id = lease_id
        self.holder = holder
        self.resource = resource
        self.duration = duration
        self.granted_at = granted_at
        self.expires_at = granted_at + duration
        self.state = LeaseState.ACTIVE
        self.renewals = 0

    @property
    def active(self) -> bool:
        """True while the lease has neither expired nor been cancelled."""
        return self.state is LeaseState.ACTIVE

    def remaining(self, now: float) -> float:
        """Seconds of validity left at time ``now`` (0 if not active)."""
        if not self.active:
            return 0.0
        return max(0.0, self.expires_at - now)

    def _renew(self, now: float, duration: float | None = None) -> None:
        """Extend the term from ``now`` (table-internal)."""
        if not self.active:
            raise LeaseExpiredError(
                f"lease {self.lease_id} is {self.state.value}, cannot renew"
            )
        if duration is not None:
            self.duration = duration
        self.expires_at = now + self.duration
        self.renewals += 1

    def __repr__(self) -> str:
        return (
            f"<Lease {self.lease_id} holder={self.holder} "
            f"{self.state.value} until={self.expires_at:.3f}>"
        )
