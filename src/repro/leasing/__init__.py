"""Jini-style leases.

Leases are the paper's mechanism for *locality of adaptations* (§3.2):
every distributed grant — a service registration at a lookup service, an
extension installed on a mobile node — is valid only for a bounded term
and dies unless actively renewed.  When a device leaves a space, renewals
stop arriving and everything it acquired there is discarded autonomously.

- :class:`~repro.leasing.lease.Lease` — one grant with an expiry time;
- :class:`~repro.leasing.table.LeaseTable` — tracks leases locally and
  fires ``on_expired`` exactly when a term lapses (simulator-driven);
- :class:`~repro.leasing.renewer.RenewalAgent` — the active party that
  periodically renews a set of leases through a caller-supplied function.
"""

from repro.leasing.lease import Lease, LeaseState
from repro.leasing.renewer import RenewalAgent
from repro.leasing.table import LeaseTable

__all__ = ["Lease", "LeaseState", "LeaseTable", "RenewalAgent"]
