"""Local lease tracking with exact expiry.

A :class:`LeaseTable` is the passive side of the lease protocol: it issues
leases, extends them on renewal, and fires ``on_expired`` at the precise
simulated instant a term lapses.  Both the lookup service (for service
registrations) and the MIDAS extension receiver (for installed
extensions — "if a MIDAS base fails to keep a given extension alive, the
extension is immediately withdrawn") are built on it.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.errors import LeaseDeniedError, LeaseExpiredError
from repro.leasing.lease import Lease, LeaseState
from repro.sim.kernel import Event, Simulator
from repro.telemetry import runtime as _telemetry
from repro.util.ids import fresh_id
from repro.util.signal import Signal

#: Default lease term, seconds.  Deliberately short: the paper's leases
#: bound how long a node that silently left keeps its extensions.
DEFAULT_DURATION = 10.0


class LeaseTable:
    """Issues and tracks leases, firing ``on_expired``/``on_cancelled``."""

    def __init__(
        self,
        simulator: Simulator,
        max_duration: float | None = None,
        name: str = "leases",
        sweep_interval: float | None = None,
    ):
        self.simulator = simulator
        self.max_duration = max_duration
        self.name = name
        #: Batched-expiry mode: instead of one kernel event per lease,
        #: one periodic sweep per *table* scans for lapsed terms.  Expiry
        #: then fires at the first sweep tick at/after ``expires_at`` —
        #: up to ``sweep_interval`` late, which a fleet-scale registrar
        #: trades for O(1) kernel events per renewal.  ``None`` keeps the
        #: classic exact-instant expiry (one timer per lease).
        self.sweep_interval = sweep_interval
        #: Fires with (lease,) when a term lapses without renewal.
        self.on_expired = Signal(f"{name}.on_expired")
        #: Fires with (lease,) when a lease is cancelled by its holder.
        self.on_cancelled = Signal(f"{name}.on_cancelled")
        self._leases: dict[str, Lease] = {}
        self._expiry_events: dict[str, Event] = {}
        self._sweep_event: Event | None = None
        #: Number of sweep passes run (batched mode only).
        self.sweeps = 0

    # -- issuing ------------------------------------------------------------------

    def grant(
        self,
        holder: str,
        resource: Any,
        duration: float = DEFAULT_DURATION,
    ) -> Lease:
        """Issue a new lease (clamped to ``max_duration`` if configured)."""
        if duration <= 0:
            raise LeaseDeniedError(f"lease duration must be positive, got {duration}")
        granted = self._clamp(duration)
        lease = Lease(fresh_id("lease"), holder, resource, granted, self.simulator.now)
        self._leases[lease.lease_id] = lease
        self._schedule_expiry(lease)
        recorder = _telemetry.get_recorder()
        recorder.count("lease.granted", table=self.name)
        if recorder.enabled:
            recorder.event(
                "lease.granted",
                table=self.name,
                holder=holder,
                resource=str(resource),
                duration=granted,
            )
        return lease

    def renew(self, lease_id: str, duration: float | None = None) -> Lease:
        """Extend a lease's term from now; raises if expired/unknown."""
        lease = self.get(lease_id)
        granted = self._clamp(duration) if duration is not None else None
        lease._renew(self.simulator.now, granted)
        self._schedule_expiry(lease)
        recorder = _telemetry.get_recorder()
        recorder.count("lease.renewed", table=self.name)
        if recorder.enabled:
            recorder.event(
                "lease.renewed",
                table=self.name,
                holder=lease.holder,
                resource=str(lease.resource),
                expires_at=lease.expires_at,
            )
        return lease

    def cancel(self, lease_id: str) -> Lease:
        """Terminate a lease early, at the holder's request."""
        lease = self.get(lease_id)
        lease.state = LeaseState.CANCELLED
        self._drop(lease)
        _telemetry.get_recorder().count("lease.cancelled", table=self.name)
        self.on_cancelled.fire(lease)
        return lease

    # -- queries ---------------------------------------------------------------------

    def get(self, lease_id: str) -> Lease:
        """Look up an *active* lease by id."""
        lease = self._leases.get(lease_id)
        if lease is None:
            raise LeaseExpiredError(f"unknown or inactive lease {lease_id!r}")
        return lease

    def active(self) -> list[Lease]:
        """All currently active leases."""
        return list(self._leases.values())

    def held_by(self, holder: str) -> Iterator[Lease]:
        """Active leases issued to ``holder``."""
        return (lease for lease in self._leases.values() if lease.holder == holder)

    def __len__(self) -> int:
        return len(self._leases)

    def __contains__(self, lease_id: str) -> bool:
        return lease_id in self._leases

    # -- crash support -----------------------------------------------------------------

    def reset_volatile(self) -> None:
        """Forget every lease silently (crash model: memory wipe).

        No ``on_expired``/``on_cancelled`` fires — a crashed process
        cannot run cleanup; holders discover the loss when their next
        renewal is refused.
        """
        for event in self._expiry_events.values():
            event.cancel()
        self._expiry_events.clear()
        self._leases.clear()
        if self._sweep_event is not None:
            self._sweep_event.cancel()
            self._sweep_event = None

    # -- plumbing ----------------------------------------------------------------------

    def _clamp(self, duration: float) -> float:
        if self.max_duration is not None:
            return min(duration, self.max_duration)
        return duration

    def _schedule_expiry(self, lease: Lease) -> None:
        if self.sweep_interval is not None:
            # Batched mode: no per-lease event at all — a renewal costs
            # zero kernel events on the table side.  Just make sure the
            # per-table sweep is armed.
            self._arm_sweep()
            return
        old = self._expiry_events.pop(lease.lease_id, None)
        if old is not None:
            old.cancel()
        self._expiry_events[lease.lease_id] = self.simulator.schedule_at(
            lease.expires_at, self._expire, lease.lease_id, lease.expires_at
        )

    def _arm_sweep(self) -> None:
        if self._sweep_event is None:
            self._sweep_event = self.simulator.schedule(
                self.sweep_interval, self._sweep
            )

    def _sweep(self) -> None:
        """One batched expiry pass: lapse every overdue lease.

        Leases expire in grant order within a pass (dict insertion
        order), keeping the whole table deterministic.  The sweep
        disarms itself when the table empties and is re-armed by the
        next grant.
        """
        self._sweep_event = None
        self.sweeps += 1
        now = self.simulator.now
        overdue = [
            lease for lease in self._leases.values() if lease.expires_at <= now
        ]
        recorder = _telemetry.get_recorder()
        if overdue:
            recorder.count("lease.sweep.expired", len(overdue), table=self.name)
        for lease in overdue:
            lease.state = LeaseState.EXPIRED
            self._drop(lease)
            recorder.count("lease.expired", table=self.name)
            recorder.event(
                "lease.expired",
                table=self.name,
                holder=lease.holder,
                resource=str(lease.resource),
            )
            self.on_expired.fire(lease)
        if self._leases:
            self._arm_sweep()

    def _expire(self, lease_id: str, expected_expiry: float) -> None:
        lease = self._leases.get(lease_id)
        if lease is None or lease.expires_at > expected_expiry:
            return  # renewed or cancelled since this event was scheduled
        lease.state = LeaseState.EXPIRED
        self._drop(lease)
        recorder = _telemetry.get_recorder()
        recorder.count("lease.expired", table=self.name)
        recorder.event(
            "lease.expired",
            table=self.name,
            holder=lease.holder,
            resource=str(lease.resource),
        )
        self.on_expired.fire(lease)

    def _drop(self, lease: Lease) -> None:
        self._leases.pop(lease.lease_id, None)
        event = self._expiry_events.pop(lease.lease_id, None)
        if event is not None:
            event.cancel()

    def __repr__(self) -> str:
        return f"<LeaseTable {self.name} active={len(self._leases)}>"
