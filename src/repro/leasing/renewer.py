"""The active (renewing) side of the lease protocol.

A :class:`RenewalAgent` periodically invokes a caller-supplied renewal
function for every lease it tracks.  The extension base uses one to keep
alive the extensions it has distributed ("it is the responsibility of each
extension base to keep alive the functionality it has distributed among
nodes", §3.2); the discovery client uses one to keep its service
registrations alive at the lookup service.

Each lease is renewed on its *own* schedule — every
``RENEW_FRACTION × duration`` seconds — so a 2-second registration and a
30-second extension lease coexist under one agent.  Renewal failures are
counted per lease; after ``max_failures`` consecutive failures the lease
is abandoned locally and ``on_abandoned`` fires — the remote side's own
expiry will (or already did) clean up there.
"""

from __future__ import annotations

import logging
from typing import Any, Callable

from repro.sim.kernel import Event, Simulator
from repro.util.signal import Signal

logger = logging.getLogger(__name__)

#: Renew when this fraction of the lease term has elapsed.  Well under
#: 1/max_failures of slack remains even after a lost renewal or two.
RENEW_FRACTION = 0.3
#: Consecutive failures after which a lease is abandoned.  A renewal
#: "fails" when either direction of the round trip is lost, but the
#: remote side renews on *request arrival* — so a lost reply must not
#: count for much.  Six consecutive failures (~2 lease terms of silence)
#: means the peer is really gone, not just a lossy spell.
DEFAULT_MAX_FAILURES = 6

# The renew function receives (tracked lease record) and two callbacks:
# success() and failure(exc).  It is expected to be asynchronous (a
# transport request); the agent never blocks.
RenewFunction = Callable[
    ["TrackedLease", Callable[[], None], Callable[[Exception], None]], None
]


class TrackedLease:
    """A lease the agent is responsible for renewing."""

    __slots__ = ("lease_id", "peer", "resource", "duration", "failures", "context")

    def __init__(
        self,
        lease_id: str,
        peer: str,
        duration: float,
        resource: Any = None,
        context: Any = None,
    ):
        self.lease_id = lease_id
        self.peer = peer
        self.resource = resource
        self.duration = duration
        self.failures = 0
        #: Arbitrary caller data carried along (e.g. the extension id).
        self.context = context

    def __repr__(self) -> str:
        return (
            f"<TrackedLease {self.lease_id} peer={self.peer} "
            f"failures={self.failures}>"
        )


class RenewalAgent:
    """Renews each tracked lease on its own per-duration schedule."""

    def __init__(
        self,
        simulator: Simulator,
        renew_function: RenewFunction,
        interval: float | None = None,
        max_failures: int = DEFAULT_MAX_FAILURES,
        name: str = "renewer",
    ):
        self.simulator = simulator
        self.renew_function = renew_function
        #: Optional fixed renewal period overriding the per-lease fraction.
        self.interval = interval
        self.max_failures = max_failures
        self.name = name
        #: Fires with (tracked_lease,) when renewals have failed too often.
        self.on_abandoned = Signal(f"{name}.on_abandoned")
        #: Fires with (tracked_lease,) on every successful renewal.
        self.on_renewed = Signal(f"{name}.on_renewed")
        self._tracked: dict[str, TrackedLease] = {}
        self._timers: dict[str, Event] = {}
        self._stopped = False

    # -- tracking ----------------------------------------------------------------

    def track(
        self,
        lease_id: str,
        peer: str,
        duration: float,
        resource: Any = None,
        context: Any = None,
    ) -> TrackedLease:
        """Start renewing ``lease_id`` held with ``peer``."""
        tracked = TrackedLease(lease_id, peer, duration, resource, context)
        self._tracked[lease_id] = tracked
        self._stopped = False
        self._schedule(tracked)
        return tracked

    def forget(self, lease_id: str) -> TrackedLease | None:
        """Stop renewing ``lease_id`` (returns the record, if tracked)."""
        tracked = self._tracked.pop(lease_id, None)
        timer = self._timers.pop(lease_id, None)
        if timer is not None:
            timer.cancel()
        return tracked

    def tracked(self) -> list[TrackedLease]:
        """All leases currently being renewed."""
        return list(self._tracked.values())

    def tracking(self, lease_id: str) -> bool:
        """True if ``lease_id`` is being renewed."""
        return lease_id in self._tracked

    def stop(self) -> None:
        """Stop all renewal activity (tracked set preserved)."""
        self._stopped = True
        for timer in self._timers.values():
            timer.cancel()
        self._timers.clear()

    def __len__(self) -> int:
        return len(self._tracked)

    # -- per-lease scheduling -----------------------------------------------------

    def _period_of(self, tracked: TrackedLease) -> float:
        if self.interval is not None:
            return self.interval
        return max(tracked.duration * RENEW_FRACTION, 0.001)

    def _schedule(self, tracked: TrackedLease) -> None:
        if self._stopped:
            return
        self._timers[tracked.lease_id] = self.simulator.schedule(
            self._period_of(tracked), self._renew_now, tracked.lease_id
        )

    def _renew_now(self, lease_id: str) -> None:
        self._timers.pop(lease_id, None)
        tracked = self._tracked.get(lease_id)
        if tracked is None:
            return
        self.renew_function(
            tracked,
            self._success_callback(tracked),
            self._failure_callback(tracked),
        )
        # Schedule the next round immediately; outcome callbacks only
        # adjust failure counters.  A renewal in flight does not delay
        # the schedule (the period is short relative to the term).
        self._schedule(tracked)

    def _success_callback(self, tracked: TrackedLease) -> Callable[[], None]:
        def on_success() -> None:
            if tracked.lease_id in self._tracked:
                tracked.failures = 0
                self.on_renewed.fire(tracked)

        return on_success

    def _failure_callback(self, tracked: TrackedLease) -> Callable[[Exception], None]:
        def on_failure(error: Exception) -> None:
            if tracked.lease_id not in self._tracked:
                return
            tracked.failures += 1
            logger.debug(
                "%s: renewal of %s failed (%d/%d): %s",
                self.name,
                tracked.lease_id,
                tracked.failures,
                self.max_failures,
                error,
            )
            if tracked.failures >= self.max_failures:
                self.forget(tracked.lease_id)
                self.on_abandoned.fire(tracked)

        return on_failure

    def __repr__(self) -> str:
        return f"<RenewalAgent {self.name} tracked={len(self._tracked)}>"
