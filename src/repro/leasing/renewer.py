"""The active (renewing) side of the lease protocol.

A :class:`RenewalAgent` periodically invokes a caller-supplied renewal
function for every lease it tracks.  The extension base uses one to keep
alive the extensions it has distributed ("it is the responsibility of each
extension base to keep alive the functionality it has distributed among
nodes", §3.2); the discovery client uses one to keep its service
registrations alive at the lookup service.

Each lease is renewed on its *own* schedule — every
``RENEW_FRACTION × duration`` seconds — so a 2-second registration and a
30-second extension lease coexist under one agent.  At most one renewal
per lease is in flight at a time: a round that comes due while the
previous one is still outstanding is *coalesced* (skipped, with the
schedule kept), never stacked.

At fleet scale one kernel event per lease per round is the bottleneck,
so ``batch_interval`` switches the agent to a single periodic sweep
(one timer per *agent*): each tick renews every lease whose round is
due, preserving cadence/coalescing/failure semantics at tick
resolution.  See :mod:`repro.fleet` for the subsystem built on this.

Failure handling comes in two flavors:

- **legacy counting** (no ``backoff``): failures are counted per lease
  and after ``max_failures`` consecutive failures the lease is abandoned
  locally — ``on_abandoned`` fires and the remote side's own expiry
  cleans up there;
- **backoff** (a :class:`~repro.resilience.policy.RetryPolicy`): a
  failed renewal is retried after an exponentially growing, seeded-
  jittered delay (capped at the renewal period) instead of waiting a
  full period, and the lease is abandoned only once the peer has been
  *silent* for the same overall budget the counting mode allows
  (``max_failures × period``).  Denser attempts under loss, identical
  patience — convergence improves without abandoning earlier.

Either way, :meth:`abandon` lets a caller give up immediately — e.g. on
a reply proving the peer no longer knows the lease (it crashed and lost
its table), where waiting out more failures is pointless.
"""

from __future__ import annotations

import logging
import random
import zlib
from typing import TYPE_CHECKING, Any, Callable

from repro.sim.kernel import Event, Simulator
from repro.telemetry import runtime as _telemetry
from repro.util.signal import Signal

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.resilience.policy import RetryPolicy

logger = logging.getLogger(__name__)

#: Renew when this fraction of the lease term has elapsed.  Well under
#: 1/max_failures of slack remains even after a lost renewal or two.
RENEW_FRACTION = 0.3
#: Consecutive failures after which a lease is abandoned.  A renewal
#: "fails" when either direction of the round trip is lost, but the
#: remote side renews on *request arrival* — so a lost reply must not
#: count for much.  Six consecutive failures (~2 lease terms of silence)
#: means the peer is really gone, not just a lossy spell.
DEFAULT_MAX_FAILURES = 6

# The renew function receives (tracked lease record) and two callbacks:
# success() and failure(exc).  It is expected to be asynchronous (a
# transport request); the agent never blocks.
RenewFunction = Callable[
    ["TrackedLease", Callable[[], None], Callable[[Exception], None]], None
]


class TrackedLease:
    """A lease the agent is responsible for renewing."""

    __slots__ = (
        "lease_id", "peer", "resource", "duration", "failures", "context",
        "last_success", "next_due",
    )

    def __init__(
        self,
        lease_id: str,
        peer: str,
        duration: float,
        resource: Any = None,
        context: Any = None,
    ):
        self.lease_id = lease_id
        self.peer = peer
        self.resource = resource
        self.duration = duration
        self.failures = 0
        #: Arbitrary caller data carried along (e.g. the extension id).
        self.context = context
        #: Simulated time of the last successful renewal (or of tracking
        #: start) — the silence deadline in backoff mode measures from here.
        self.last_success = 0.0
        #: When the next renewal round is due (batched mode only; the
        #: per-lease mode keeps its own timer per lease instead).
        self.next_due = 0.0

    def __repr__(self) -> str:
        return (
            f"<TrackedLease {self.lease_id} peer={self.peer} "
            f"failures={self.failures}>"
        )


class RenewalAgent:
    """Renews each tracked lease on its own per-duration schedule."""

    def __init__(
        self,
        simulator: Simulator,
        renew_function: RenewFunction,
        interval: float | None = None,
        max_failures: int = DEFAULT_MAX_FAILURES,
        name: str = "renewer",
        backoff: "RetryPolicy | None" = None,
        rng: random.Random | None = None,
        batch_interval: float | None = None,
    ):
        self.simulator = simulator
        self.renew_function = renew_function
        #: Optional fixed renewal period overriding the per-lease fraction.
        self.interval = interval
        self.max_failures = max_failures
        self.name = name
        #: Batched mode: one periodic sweep timer for the *whole agent*
        #: instead of one kernel event per tracked lease.  Each tick
        #: renews every lease whose round is due; per-lease cadence,
        #: coalescing, failure counting and backoff semantics are
        #: unchanged, but due-times are only observed at tick resolution
        #: (renewals fire up to ``batch_interval`` late — keep it well
        #: under the shortest ``RENEW_FRACTION × duration``).  ``None``
        #: keeps the classic per-lease timers.
        self.batch_interval = batch_interval
        #: Retry policy for failed renewals; None keeps legacy counting.
        self.backoff = backoff
        # Seeded per agent name: deterministic, decorrelated between nodes.
        self._rng = rng or random.Random(zlib.crc32(name.encode()))
        #: Fires with (tracked_lease,) when renewals have failed too often.
        self.on_abandoned = Signal(f"{name}.on_abandoned")
        #: Fires with (tracked_lease,) on every successful renewal.
        self.on_renewed = Signal(f"{name}.on_renewed")
        self._tracked: dict[str, TrackedLease] = {}
        self._timers: dict[str, Event] = {}
        self._in_flight: set[str] = set()
        self._batch_event: Event | None = None
        #: Number of batch sweep ticks run (batched mode only).
        self.batch_ticks = 0
        self.coalesced = 0
        self._stopped = False

    # -- tracking ----------------------------------------------------------------

    def track(
        self,
        lease_id: str,
        peer: str,
        duration: float,
        resource: Any = None,
        context: Any = None,
    ) -> TrackedLease:
        """Start renewing ``lease_id`` held with ``peer``."""
        tracked = TrackedLease(lease_id, peer, duration, resource, context)
        tracked.last_success = self.simulator.now
        self._tracked[lease_id] = tracked
        self._stopped = False
        if self.batch_interval is not None:
            tracked.next_due = self.simulator.now + self._period_of(tracked)
            self._arm_batch()
        else:
            self._schedule(tracked)
        return tracked

    def forget(self, lease_id: str) -> TrackedLease | None:
        """Stop renewing ``lease_id`` (returns the record, if tracked)."""
        tracked = self._tracked.pop(lease_id, None)
        timer = self._timers.pop(lease_id, None)
        if timer is not None:
            timer.cancel()
        self._in_flight.discard(lease_id)
        return tracked

    def abandon(self, lease_id: str) -> TrackedLease | None:
        """Give up on a lease immediately and fire ``on_abandoned``.

        For callers that *know* the lease is dead (e.g. the peer answered
        "never heard of it" after a crash) — skipping the remaining
        failure budget so recovery can start now.
        """
        tracked = self.forget(lease_id)
        if tracked is not None:
            _telemetry.get_recorder().count(
                "lease.renewals.abandoned", agent=self.name, outcome="fast"
            )
            self.on_abandoned.fire(tracked)
        return tracked

    def tracked(self) -> list[TrackedLease]:
        """All leases currently being renewed."""
        return list(self._tracked.values())

    def tracking(self, lease_id: str) -> bool:
        """True if ``lease_id`` is being renewed."""
        return lease_id in self._tracked

    def stop(self) -> None:
        """Stop all renewal activity (tracked set preserved)."""
        self._stopped = True
        for timer in self._timers.values():
            timer.cancel()
        self._timers.clear()
        self._in_flight.clear()
        if self._batch_event is not None:
            self._batch_event.cancel()
            self._batch_event = None

    def __len__(self) -> int:
        return len(self._tracked)

    # -- per-lease scheduling -----------------------------------------------------

    def _period_of(self, tracked: TrackedLease) -> float:
        if self.interval is not None:
            return self.interval
        return max(tracked.duration * RENEW_FRACTION, 0.001)

    def _silence_budget(self, tracked: TrackedLease) -> float:
        """How long a peer may stay silent before the lease is abandoned
        (backoff mode).  Matches the legacy counting budget exactly:
        ``max_failures`` consecutive period-spaced failures."""
        return self.max_failures * self._period_of(tracked)

    def _schedule(self, tracked: TrackedLease, delay: float | None = None) -> None:
        if self._stopped:
            return
        old = self._timers.pop(tracked.lease_id, None)
        if old is not None:
            old.cancel()
        self._timers[tracked.lease_id] = self.simulator.schedule(
            self._period_of(tracked) if delay is None else delay,
            self._renew_now,
            tracked.lease_id,
        )

    # -- batched scheduling -------------------------------------------------------

    def _arm_batch(self) -> None:
        if self._stopped or self._batch_event is not None:
            return
        self._batch_event = self.simulator.schedule(
            self.batch_interval, self._batch_tick
        )

    def _batch_tick(self) -> None:
        """One sweep over every tracked lease: renew all rounds now due.

        This is the fleet-scale discipline — one kernel event per agent
        per interval, however many leases it carries.  Iteration is in
        tracking order (dict insertion), so renewal order is
        deterministic.
        """
        self._batch_event = None
        self.batch_ticks += 1
        now = self.simulator.now
        recorder = _telemetry.get_recorder()
        for tracked in list(self._tracked.values()):
            if tracked.next_due > now:
                continue
            # Advance the cadence first, exactly like the per-lease mode
            # schedules the next round before invoking the renewal.
            tracked.next_due = now + self._period_of(tracked)
            if tracked.lease_id in self._in_flight:
                self.coalesced += 1
                recorder.count("lease.renewals.coalesced", agent=self.name)
                continue
            self._in_flight.add(tracked.lease_id)
            self.renew_function(
                tracked,
                self._success_callback(tracked),
                self._failure_callback(tracked),
            )
        if self._tracked:
            self._arm_batch()

    def _renew_now(self, lease_id: str) -> None:
        self._timers.pop(lease_id, None)
        tracked = self._tracked.get(lease_id)
        if tracked is None:
            return
        if lease_id in self._in_flight:
            # A round came due while the previous renewal is still on the
            # wire: coalesce — keep the cadence, never stack requests.
            self.coalesced += 1
            _telemetry.get_recorder().count(
                "lease.renewals.coalesced", agent=self.name
            )
            self._schedule(tracked)
            return
        self._in_flight.add(lease_id)
        # Schedule the next round *before* invoking the renew function: a
        # renewal in flight does not delay the cadence, and an outcome
        # callback that fires synchronously (tests, local peers) must be
        # able to override this timer with a backoff retry.
        self._schedule(tracked)
        self.renew_function(
            tracked,
            self._success_callback(tracked),
            self._failure_callback(tracked),
        )

    def _success_callback(self, tracked: TrackedLease) -> Callable[[], None]:
        def on_success() -> None:
            self._in_flight.discard(tracked.lease_id)
            if tracked.lease_id in self._tracked:
                tracked.failures = 0
                tracked.last_success = self.simulator.now
                self.on_renewed.fire(tracked)

        return on_success

    def _failure_callback(self, tracked: TrackedLease) -> Callable[[Exception], None]:
        def on_failure(error: Exception) -> None:
            self._in_flight.discard(tracked.lease_id)
            if tracked.lease_id not in self._tracked:
                return
            tracked.failures += 1
            logger.debug(
                "%s: renewal of %s failed (%d): %s",
                self.name,
                tracked.lease_id,
                tracked.failures,
                error,
            )
            if self.backoff is None:
                if tracked.failures >= self.max_failures:
                    self.forget(tracked.lease_id)
                    self.on_abandoned.fire(tracked)
                return
            silence = self.simulator.now - tracked.last_success
            if silence >= self._silence_budget(tracked):
                self.forget(tracked.lease_id)
                _telemetry.get_recorder().count(
                    "lease.renewals.abandoned", agent=self.name, outcome="silence"
                )
                self.on_abandoned.fire(tracked)
                return
            # Retry sooner than the next period, backing off per failure.
            delay = min(
                self.backoff.backoff(tracked.failures, self._rng),
                self._period_of(tracked),
            )
            _telemetry.get_recorder().count(
                "lease.renewals.retried", agent=self.name
            )
            if self.batch_interval is not None:
                # Batched mode: no extra kernel event — the retry lands
                # on the first sweep tick at/after the backoff delay.
                tracked.next_due = self.simulator.now + delay
            else:
                self._schedule(tracked, delay=delay)

        return on_failure

    def __repr__(self) -> str:
        return f"<RenewalAgent {self.name} tracked={len(self._tracked)}>"
