"""A Linda-style tuple space with leases and notifications.

Tuples here are *records*: a ``kind`` string plus a dictionary of fields
(closer to TSpaces than to classic positional Linda, and a better fit
for tagging extension envelopes with scope attributes).  Templates match
by kind and field-subset equality, with ``ANY`` as a field wildcard.

Operations (all non-blocking — the callback style of this codebase):

- ``out(tuple, lease_duration)`` — publish; the tuple lives until its
  lease lapses or it is taken;
- ``rd(template)`` — copy of one/all matching tuples, non-destructive;
- ``take(template)`` — remove and return one matching tuple (Linda *in*);
- ``notify(template, listener)`` — called for every currently matching
  tuple and every future ``out`` that matches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.leasing.table import LeaseTable
from repro.sim.kernel import Simulator
from repro.telemetry import runtime as _telemetry
from repro.util.ids import fresh_id
from repro.util.signal import Signal


class _Any:
    """Field wildcard for templates."""

    _instance: "_Any | None" = None

    def __new__(cls) -> "_Any":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "ANY"


ANY = _Any()


@dataclass(frozen=True)
class Tuple:
    """One record in the space."""

    kind: str
    fields: Mapping[str, Any] = field(default_factory=dict)
    tuple_id: str = field(default_factory=lambda: fresh_id("tuple"))

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in sorted(self.fields.items()))
        return f"<Tuple {self.kind}({inner})>"


@dataclass(frozen=True)
class TupleTemplate:
    """A query over tuples: kind equality + field subset (ANY matches all)."""

    kind: str
    fields: Mapping[str, Any] = field(default_factory=dict)

    def matches(self, candidate: Tuple) -> bool:
        """True if ``candidate`` satisfies this template."""
        if candidate.kind != self.kind:
            return False
        for key, expected in self.fields.items():
            if key not in candidate.fields:
                return False
            if expected is ANY:
                continue
            if candidate.fields[key] != expected:
                return False
        return True

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in sorted(self.fields.items()))
        return f"<TupleTemplate {self.kind}({inner})>"


Listener = Callable[[Tuple], None]

#: Default tuple lifetime, seconds.  Like extension leases, published
#: policy dies unless refreshed — a stale hall policy cannot outlive its
#: publisher forever.
DEFAULT_TUPLE_LEASE = 60.0


class TupleSpace:
    """An in-memory tuple space with leased tuples and notifications."""

    def __init__(self, simulator: Simulator, name: str = "space"):
        self.simulator = simulator
        self.name = name
        #: Fires with (tuple,) whenever a tuple is written.
        self.on_out = Signal(f"{name}.on_out")
        #: Fires with (tuple, reason) when a tuple leaves ("taken"/"expired"/"cancelled").
        self.on_removed = Signal(f"{name}.on_removed")
        self._tuples: dict[str, Tuple] = {}
        self._leases = LeaseTable(simulator, name=f"{name}.leases")
        self._lease_of: dict[str, str] = {}  # tuple id -> lease id
        self._leases.on_expired.connect(self._lease_gone("expired"))
        self._leases.on_cancelled.connect(self._lease_gone("cancelled"))
        self._listeners: list[tuple[TupleTemplate, Listener]] = []

    # -- core operations ---------------------------------------------------------

    def out(
        self,
        record: Tuple,
        lease_duration: float = DEFAULT_TUPLE_LEASE,
        publisher: str = "local",
    ) -> str:
        """Publish ``record``; returns the lease id controlling its life."""
        self._tuples[record.tuple_id] = record
        lease = self._leases.grant(publisher, record.tuple_id, lease_duration)
        self._lease_of[record.tuple_id] = lease.lease_id
        recorder = _telemetry.get_recorder()
        recorder.count("tuplespace.out", space=self.name, kind=record.kind)
        recorder.gauge("tuplespace.size", len(self._tuples), space=self.name)
        self.on_out.fire(record)
        for template, listener in list(self._listeners):
            if template.matches(record):
                listener(record)
        return lease.lease_id

    def rd(self, template: TupleTemplate) -> Tuple | None:
        """One matching tuple (oldest first), non-destructively; or None."""
        _telemetry.get_recorder().count(
            "tuplespace.rd", space=self.name, kind=template.kind
        )
        for record in self._tuples.values():
            if template.matches(record):
                return record
        return None

    def rd_all(self, template: TupleTemplate) -> list[Tuple]:
        """All matching tuples, oldest first."""
        return [record for record in self._tuples.values() if template.matches(record)]

    def take(self, template: TupleTemplate) -> Tuple | None:
        """Remove and return one matching tuple (Linda ``in``); or None."""
        record = self.rd(template)
        if record is None:
            return None
        self._remove(record.tuple_id, cancel_lease=True)
        recorder = _telemetry.get_recorder()
        recorder.count("tuplespace.take", space=self.name, kind=template.kind)
        recorder.gauge("tuplespace.size", len(self._tuples), space=self.name)
        self.on_removed.fire(record, "taken")
        return record

    def renew(self, lease_id: str, duration: float | None = None) -> None:
        """Extend a published tuple's life."""
        self._leases.renew(lease_id, duration)

    def retract(self, lease_id: str) -> None:
        """Withdraw a published tuple before its lease lapses."""
        self._leases.cancel(lease_id)

    # -- notifications ----------------------------------------------------------------

    def notify(self, template: TupleTemplate, listener: Listener) -> Callable[[], None]:
        """Deliver matching tuples, current and future; returns a cancel fn."""
        entry = (template, listener)
        self._listeners.append(entry)
        for record in self.rd_all(template):
            listener(record)

        def cancel() -> None:
            if entry in self._listeners:
                self._listeners.remove(entry)

        return cancel

    # -- bookkeeping --------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._tuples)

    def tuples(self) -> list[Tuple]:
        """All live tuples, oldest first."""
        return list(self._tuples.values())

    def _lease_gone(self, reason: str):
        def handler(lease) -> None:
            tuple_id = lease.resource
            record = self._tuples.get(tuple_id)
            if record is not None:
                self._remove(tuple_id, cancel_lease=False)
                _telemetry.get_recorder().gauge(
                    "tuplespace.size", len(self._tuples), space=self.name
                )
                self.on_removed.fire(record, reason)

        return handler

    def _remove(self, tuple_id: str, cancel_lease: bool) -> None:
        self._tuples.pop(tuple_id, None)
        lease_id = self._lease_of.pop(tuple_id, None)
        if cancel_lease and lease_id is not None and lease_id in self._leases:
            self._leases.cancel(lease_id)

    def __repr__(self) -> str:
        return f"<TupleSpace {self.name} tuples={len(self._tuples)}>"
