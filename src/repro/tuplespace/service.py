"""The tuple space as a network service.

One node (typically a base station, but any peer) hosts the space; other
nodes operate on it over the transport layer:

==================  =========================================================
``space.out``        publish a tuple under a lease
``space.rd``         read matching tuples (non-destructive)
``space.take``       remove and return one matching tuple
``space.renew``      extend a published tuple's lease
``space.retract``    withdraw a published tuple
``space.listen``     leased remote notification for a template
==================  =========================================================
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Any, Callable

from repro.discovery.client import DiscoveryClient
from repro.discovery.service import ServiceItem
from repro.leasing.table import LeaseTable
from repro.net.transport import Transport
from repro.sim.kernel import Simulator
from repro.tuplespace.space import Tuple, TupleSpace, TupleTemplate

logger = logging.getLogger(__name__)

OUT = "space.out"
RD = "space.rd"
TAKE = "space.take"
RENEW = "space.renew"
RETRACT = "space.retract"
LISTEN = "space.listen"

#: The interface the space advertises under.
SPACE_INTERFACE = "tuplespace.TupleSpace"

#: Longest remote-listener lease granted.
MAX_LISTENER_LEASE = 60.0


@dataclass
class _RemoteListener:
    template: TupleTemplate
    node_id: str
    operation: str
    cancel: Callable[[], None] | None = None


class TupleSpaceService:
    """Exposes a :class:`TupleSpace` over the transport layer."""

    def __init__(self, space: TupleSpace, transport: Transport, simulator: Simulator):
        self.space = space
        self.transport = transport
        self.simulator = simulator
        self._listener_leases = LeaseTable(
            simulator,
            max_duration=MAX_LISTENER_LEASE,
            name=f"{transport.node.node_id}.space-listeners",
        )
        self._listener_leases.on_expired.connect(self._listener_gone)
        self._listener_leases.on_cancelled.connect(self._listener_gone)
        transport.register(OUT, self._serve_out)
        transport.register(RD, self._serve_rd)
        transport.register(TAKE, self._serve_take)
        transport.register(RENEW, self._serve_renew)
        transport.register(RETRACT, self._serve_retract)
        transport.register(LISTEN, self._serve_listen)

    def advertise(self, discovery: DiscoveryClient) -> None:
        """Register the space with the discovery layer."""
        discovery.register(
            ServiceItem(
                SPACE_INTERFACE,
                self.transport.node.node_id,
                {"space": self.space.name},
            )
        )

    # -- handlers ------------------------------------------------------------------

    def _serve_out(self, sender: str, body: dict[str, Any]) -> dict[str, Any]:
        lease_id = self.space.out(
            body["tuple"], body.get("lease_duration", 60.0), publisher=sender
        )
        return {"lease_id": lease_id}

    def _serve_rd(self, sender: str, body: dict[str, Any]) -> dict[str, Any]:
        return {"tuples": self.space.rd_all(body["template"])}

    def _serve_take(self, sender: str, body: dict[str, Any]) -> dict[str, Any]:
        return {"tuple": self.space.take(body["template"])}

    def _serve_renew(self, sender: str, body: dict[str, Any]) -> dict[str, Any]:
        lease_id = body["lease_id"]
        if lease_id in self._listener_leases:
            self._listener_leases.renew(lease_id, body.get("duration"))
        else:
            self.space.renew(lease_id, body.get("duration"))
        return {}

    def _serve_retract(self, sender: str, body: dict[str, Any]) -> dict[str, Any]:
        self.space.retract(body["lease_id"])
        return {}

    def _serve_listen(self, sender: str, body: dict[str, Any]) -> dict[str, Any]:
        listener = _RemoteListener(body["template"], sender, body["operation"])

        def deliver(record: Tuple) -> None:
            self.transport.notify(listener.node_id, listener.operation, record)

        listener.cancel = self.space.notify(listener.template, deliver)
        lease = self._listener_leases.grant(
            sender, listener, body.get("duration", MAX_LISTENER_LEASE)
        )
        return {"lease_id": lease.lease_id, "duration": lease.duration}

    def _listener_gone(self, lease) -> None:
        listener: _RemoteListener = lease.resource
        if listener.cancel is not None:
            listener.cancel()

    def __repr__(self) -> str:
        return f"<TupleSpaceService {self.space.name} on {self.transport.node.node_id}>"


class TupleSpaceClient:
    """Callback-style remote access to a hosted tuple space."""

    def __init__(self, transport: Transport, space_node: str):
        self.transport = transport
        self.space_node = space_node
        self._listen_counter = 0

    def out(
        self,
        record: Tuple,
        lease_duration: float = 60.0,
        on_done: Callable[[str], None] | None = None,
        on_error: Callable[[Exception], None] | None = None,
    ) -> None:
        """Publish ``record``; ``on_done`` receives the tuple lease id."""
        self.transport.request(
            self.space_node,
            OUT,
            {"tuple": record, "lease_duration": lease_duration},
            on_reply=(lambda body: on_done(body["lease_id"])) if on_done else None,
            on_error=on_error,
        )

    def rd(
        self,
        template: TupleTemplate,
        on_result: Callable[[list[Tuple]], None],
        on_error: Callable[[Exception], None] | None = None,
    ) -> None:
        """Read all matching tuples."""
        self.transport.request(
            self.space_node,
            RD,
            {"template": template},
            on_reply=lambda body: on_result(body["tuples"]),
            on_error=on_error,
        )

    def take(
        self,
        template: TupleTemplate,
        on_result: Callable[[Tuple | None], None],
        on_error: Callable[[Exception], None] | None = None,
    ) -> None:
        """Remove and return one matching tuple (None if none)."""
        self.transport.request(
            self.space_node,
            TAKE,
            {"template": template},
            on_reply=lambda body: on_result(body["tuple"]),
            on_error=on_error,
        )

    def renew(
        self,
        lease_id: str,
        on_error: Callable[[Exception], None] | None = None,
    ) -> None:
        """Keep a published tuple (or listener registration) alive."""
        self.transport.request(
            self.space_node,
            RENEW,
            {"lease_id": lease_id},
            on_error=on_error
            or (
                lambda exc: logger.debug(
                    "renew of %s failed (lease will lapse): %s", lease_id, exc
                )
            ),
        )

    def retract(
        self,
        lease_id: str,
        on_error: Callable[[Exception], None] | None = None,
    ) -> None:
        """Withdraw a published tuple."""
        self.transport.request(
            self.space_node,
            RETRACT,
            {"lease_id": lease_id},
            on_error=on_error
            or (
                lambda exc: logger.debug(
                    "retract of %s failed (lease will lapse): %s",
                    lease_id,
                    exc,
                )
            ),
        )

    def listen(
        self,
        template: TupleTemplate,
        listener: Callable[[Tuple], None],
        duration: float = MAX_LISTENER_LEASE,
        on_registered: Callable[[str], None] | None = None,
        on_error: Callable[[Exception], None] | None = None,
    ) -> None:
        """Subscribe to matching tuples, current and future.

        ``on_registered`` receives the listener lease id (renew it with
        :meth:`renew` to outlive ``duration``).  When the subscription
        request is lost the local handler is unregistered again so the
        dead operation name does not linger.
        """
        self._listen_counter += 1
        operation = f"space.deliver.{self.transport.node.node_id}.{self._listen_counter}"
        self.transport.register(operation, lambda sender, body: listener(body))

        def failed(exc: Exception) -> None:
            self.transport.unregister(operation)
            if on_error is not None:
                on_error(exc)
            else:
                logger.debug("listen on %s failed: %s", self.space_node, exc)

        self.transport.request(
            self.space_node,
            LISTEN,
            {"template": template, "operation": operation, "duration": duration},
            on_reply=(lambda body: on_registered(body["lease_id"]))
            if on_registered
            else None,
            on_error=failed,
        )

    def __repr__(self) -> str:
        return f"<TupleSpaceClient -> {self.space_node}>"
