"""Tuple-space extension distribution (the paper's future work, §4.6).

"Further we are looking at tuple spaces [Gel85, LCX+01] to get a more
flexible and expressive platform for distributing extensions."

This package implements that direction:

- :class:`~repro.tuplespace.space.TupleSpace` — a Linda-style generative
  communication space (``out`` / ``rd`` / ``in`` with template matching),
  with leased tuples and registered-template notifications (TSpaces
  style);
- :class:`~repro.tuplespace.service.TupleSpaceService` /
  :class:`~repro.tuplespace.service.TupleSpaceClient` — the space as a
  network service;
- :class:`~repro.tuplespace.distribution.TupleSpaceDistributor` and
  :class:`~repro.tuplespace.distribution.TupleSpaceAcquirer` — extension
  distribution over the space: bases *out* signed envelopes tagged with
  scope attributes; nodes *rd* the tuples matching their situation and
  install the envelopes through the ordinary MIDAS receiver path
  (signature verification, capabilities, leases all unchanged).

Compared to the push model of :class:`~repro.midas.base.ExtensionBase`,
the space decouples providers from receivers in time and identity: an
environment can publish its policy before any node arrives, several
environments can share one space, and nodes pull only what matches the
attributes they ask for — the flexibility the paper was after.
"""

from repro.tuplespace.distribution import TupleSpaceAcquirer, TupleSpaceDistributor
from repro.tuplespace.service import TupleSpaceClient, TupleSpaceService
from repro.tuplespace.space import ANY, Tuple, TupleSpace, TupleTemplate

__all__ = [
    "ANY",
    "Tuple",
    "TupleSpace",
    "TupleSpaceAcquirer",
    "TupleSpaceClient",
    "TupleSpaceDistributor",
    "TupleSpaceService",
    "TupleTemplate",
]
