"""Extension distribution over a tuple space.

The push model (:class:`~repro.midas.base.ExtensionBase`) couples a base
station to the nodes it discovers.  The tuple-space model decouples them:

- a :class:`TupleSpaceDistributor` publishes each catalog extension as a
  leased ``midas.extension`` tuple, tagged with scope attributes (e.g.
  ``{"hall": "A", "role": "robot"}``), and keeps the tuples alive while
  the policy stands;
- a :class:`TupleSpaceAcquirer` subscribes to the tuples matching its
  node's situation, installs their envelopes through the ordinary MIDAS
  receiver pipeline (signature verification, capability checks, implicit
  extensions, sandbox — all unchanged), and keeps each installation's
  local lease alive only while the corresponding tuple is still in the
  space.  Retracting the tuple (or letting it lapse) therefore withdraws
  the extension from every holder within one lease term — the same
  locality guarantee as the push model, without the base tracking nodes.
"""

from __future__ import annotations

import logging
from typing import Any, Mapping

from repro.midas.catalog import ExtensionCatalog
from repro.midas.envelope import ExtensionEnvelope
from repro.midas.receiver import AdaptationService
from repro.sim.kernel import Simulator
from repro.sim.timers import PeriodicTimer
from repro.tuplespace.service import TupleSpaceClient
from repro.tuplespace.space import Tuple, TupleTemplate
from repro.util.signal import Signal

logger = logging.getLogger(__name__)

#: The tuple kind carrying extension envelopes.
EXTENSION_KIND = "midas.extension"


class TupleSpaceDistributor:
    """Publishes a catalog's extensions into a tuple space."""

    def __init__(
        self,
        catalog: ExtensionCatalog,
        client: TupleSpaceClient,
        simulator: Simulator,
        scope: Mapping[str, Any] | None = None,
        tuple_lease: float = 30.0,
    ):
        self.catalog = catalog
        self.client = client
        self.scope = dict(scope or {})
        self.tuple_lease = tuple_lease
        # extension name -> tuple lease id at the space
        self._published: dict[str, str] = {}
        self._refresher = PeriodicTimer(
            simulator,
            tuple_lease * 0.4,
            self._refresh,
            name="space-distributor",
        )

    # -- publishing -----------------------------------------------------------------

    def publish(self) -> None:
        """Publish (or refresh) every catalog extension as a tuple."""
        for name in self.catalog.names():
            self.publish_one(name)
        self._refresher.start()

    def publish_one(self, name: str) -> None:
        """Publish one extension; replaces any previously published tuple."""
        envelope = self.catalog.seal(name)
        previous = self._published.pop(name, None)
        if previous is not None:
            self.client.retract(previous)
        record = Tuple(
            EXTENSION_KIND,
            {
                "name": name,
                "version": envelope.version,
                "signer": envelope.signer,
                "envelope": envelope,
                **self.scope,
            },
        )

        def on_done(lease_id: str) -> None:
            self._published[name] = lease_id

        self.client.out(record, self.tuple_lease, on_done=on_done)

    def retract_all(self) -> None:
        """Withdraw the policy: every published tuple is retracted."""
        self._refresher.stop()
        for lease_id in self._published.values():
            self.client.retract(lease_id)
        self._published.clear()

    def retract(self, name: str) -> None:
        """Withdraw one extension's tuple."""
        lease_id = self._published.pop(name, None)
        if lease_id is not None:
            self.client.retract(lease_id)

    def replace_extension(self, name: str, factory) -> None:
        """Policy change: bump the catalog entry and republish."""
        self.catalog.add(name, factory)
        self.publish_one(name)

    def _refresh(self) -> None:
        for lease_id in self._published.values():
            self.client.renew(lease_id)

    def __repr__(self) -> str:
        return f"<TupleSpaceDistributor published={sorted(self._published)}>"


class TupleSpaceAcquirer:
    """Pulls matching extension tuples and installs their envelopes."""

    def __init__(
        self,
        adaptation: AdaptationService,
        client: TupleSpaceClient,
        simulator: Simulator,
        scope: Mapping[str, Any] | None = None,
        refresh_interval: float = 2.0,
        installation_lease: float = 10.0,
    ):
        self.adaptation = adaptation
        self.client = client
        self.scope = dict(scope or {})
        self.installation_lease = installation_lease
        #: Fires with (envelope,) when an acquisition is installed.
        self.on_acquired = Signal("acquirer.on_acquired")
        # envelope_id -> local lease id
        self._installed: dict[str, str] = {}
        self._refresher = PeriodicTimer(
            simulator, refresh_interval, self._refresh, name="space-acquirer"
        )

    @property
    def template(self) -> TupleTemplate:
        """The template this node pulls: extension tuples in its scope."""
        return TupleTemplate(EXTENSION_KIND, self.scope)

    def start(self) -> "TupleSpaceAcquirer":
        """Subscribe to matching tuples and begin the renewal loop."""
        self.client.listen(self.template, self._tuple_seen)
        self._refresher.start()
        return self

    def stop(self) -> None:
        """Stop acquiring; current installations lapse naturally."""
        self._refresher.stop()

    # -- acquisition ------------------------------------------------------------------

    def _tuple_seen(self, record: Tuple) -> None:
        envelope: ExtensionEnvelope = record.fields.get("envelope")
        if not isinstance(envelope, ExtensionEnvelope):
            logger.warning("ignoring malformed extension tuple %r", record)
            return
        if envelope.envelope_id in self._installed:
            return
        try:
            lease_id = self.adaptation.install_envelope(
                envelope, provider=f"space:{record.fields.get('signer', '?')}",
                duration=self.installation_lease,
            )
        except Exception as exc:  # noqa: BLE001 - a bad tuple must not kill the loop
            logger.info("could not install %s from space: %s", envelope.name, exc)
            return
        self._installed[envelope.envelope_id] = lease_id
        self.on_acquired.fire(envelope)

    # -- keep-alive: only while the tuple is still in the space -------------------------

    def _refresh(self) -> None:
        def on_result(records: list[Tuple]) -> None:
            live_ids = set()
            for record in records:
                envelope = record.fields.get("envelope")
                if isinstance(envelope, ExtensionEnvelope):
                    live_ids.add(envelope.envelope_id)
                    if envelope.envelope_id not in self._installed:
                        self._tuple_seen(record)  # e.g. published while offline
            for envelope_id, lease_id in list(self._installed.items()):
                if envelope_id in live_ids:
                    renewed = self.adaptation.renew_installation(
                        lease_id, self.installation_lease
                    )
                    if not renewed:
                        # Installation lapsed out-of-band; forget it so
                        # the next sighting reinstalls.
                        del self._installed[envelope_id]
                else:
                    # Tuple gone: stop renewing; the lease lapses and the
                    # extension is withdrawn with a clean shutdown.
                    del self._installed[envelope_id]

        self.client.rd(self.template, on_result)

    def __repr__(self) -> str:
        return f"<TupleSpaceAcquirer installed={len(self._installed)}>"
