"""Tuple-space extension distribution — the paper's future work (§4.6).

A site runs one shared tuple space.  Hall operators publish their
policies into it as leased, signed tuples tagged with scope attributes —
*before* any robot shows up, and without ever learning which robots
exist.  Robots pull the tuples matching their own scope and install the
envelopes through the ordinary MIDAS security pipeline.  Retracting a
tuple withdraws the extension from every holder within one lease term.

Run:  python examples/tuplespace_policy.py
"""

from repro import Capability, Position, SandboxPolicy
from repro.aop import ProseVM
from repro.extensions import CallLogging
from repro.midas import (
    AdaptationService,
    ExtensionCatalog,
    RemoteCaller,
    Signer,
    TrustStore,
)
from repro.midas.scheduler import SchedulerService
from repro.net import Network, NetworkNode, Transport
from repro.sim import Simulator
from repro.tuplespace import (
    TupleSpace,
    TupleSpaceAcquirer,
    TupleSpaceClient,
    TupleSpaceDistributor,
    TupleSpaceService,
)


class Gauge:
    """The application on every robot."""

    def read_pressure(self) -> float:
        return 4.2


def make_robot(sim, network, name, hall, signers):
    node = network.attach(NetworkNode(name, Position(5, 0), radio_range=100))
    transport = Transport(node, sim)
    vm = ProseVM(name=name)
    vm.load_class(type("Gauge", (), dict(vars(Gauge))))  # per-robot class copy
    trust = TrustStore()
    for signer in signers:
        trust.trust_signer(signer)
    adaptation = AdaptationService(
        vm,
        transport,
        sim,
        trust,
        policy=SandboxPolicy.permissive(),
        services={
            Capability.NETWORK: RemoteCaller(transport),
            Capability.CLOCK: sim.clock,
            Capability.SCHEDULER: SchedulerService(sim),
        },
    )
    acquirer = TupleSpaceAcquirer(
        adaptation,
        TupleSpaceClient(transport, "space-host"),
        sim,
        scope={"hall": hall},
        refresh_interval=1.0,
    ).start()
    return adaptation, acquirer


def main() -> None:
    sim = Simulator()
    network = Network(sim, seed=17)

    # The shared site infrastructure: one tuple space.
    host = network.attach(NetworkNode("space-host", Position(0, 0), radio_range=100))
    space = TupleSpace(sim, name="site-space")
    TupleSpaceService(space, Transport(host, sim), sim)

    # Hall A's operator publishes its policy — nobody is around yet.
    operator_a = Signer.generate("operator-A")
    catalog_a = ExtensionCatalog(operator_a)
    catalog_a.add("call-log", lambda: CallLogging(type_pattern="Gauge"))
    publisher_node = network.attach(
        NetworkNode("operator-A", Position(2, 0), radio_range=100)
    )
    distributor = TupleSpaceDistributor(
        catalog_a,
        TupleSpaceClient(Transport(publisher_node, sim), "space-host"),
        sim,
        scope={"hall": "A"},
    )
    distributor.publish()
    sim.run_for(3.0)
    print(f"policy published; space holds {len(space)} tuple(s), no robots yet")

    # Robots arrive later, in different halls.
    in_a, _ = make_robot(sim, network, "robot-in-A", "A", [operator_a])
    in_b, _ = make_robot(sim, network, "robot-in-B", "B", [operator_a])
    sim.run_for(5.0)
    print(f"robot in hall A carries: {[i.name for i in in_a.installed()]}")
    print(f"robot in hall B carries: {[i.name for i in in_b.installed()]}")
    assert in_a.is_installed("call-log")
    assert not in_b.is_installed("call-log")

    # The operator withdraws the policy; holders lose it within a lease.
    distributor.retract_all()
    sim.run_for(15.0)
    print(f"after retraction: robot in hall A carries {[i.name for i in in_a.installed()]}")
    assert not in_a.is_installed("call-log")

    print("\ntuplespace_policy OK")


if __name__ == "__main__":
    main()
