"""The Fig. 6 manipulations: remote replication, simulation (replay), control.

A human-driven plotter is monitored; its movements stream live to an
identical robot (remote replication, here at 1.5x scale).  Afterwards the
recorded session is replayed from the hall database onto a third robot —
including a two-robot replay "at the right relative time" reproducing an
interaction between robots.

Run:  python examples/replication_and_replay.py
"""

from repro import Position, ProactivePlatform
from repro.extensions import HwMonitoring, ReplicationExtension
from repro.robot import Device, Motor, Plotter, build_plotter
from repro.robot.plotter import DrawingService
from repro.store import MovementSequence, ReplaySession

ROBOT_ID = "robot:1:1"
SECOND_ID = "robot:2:2"


def main() -> None:
    platform = ProactivePlatform()
    hall = platform.create_base_station("hall", Position(0, 0))

    # Live mirror target.
    mirror = build_plotter("mirror")
    mirror_host = platform.create_mobile_node("mirror-host", Position(0, 10))
    DrawingService(mirror, mirror_host.transport)
    hall.mirror_hub.add_mirror("mirror-host", scale=1.5)

    # Hall policy: monitor + replicate.
    hall.add_extension(
        "hw-monitoring",
        lambda: HwMonitoring(ROBOT_ID, hall.store_ref, flush_interval=0.25,
                             device_pattern=f"{ROBOT_ID}.*"),
    )
    hall.add_extension(
        "replication",
        lambda: ReplicationExtension(hall.mirror_hub.feed_ref, robot_id=ROBOT_ID),
    )

    robot = platform.create_mobile_node(ROBOT_ID, Position(10, 0))
    for cls in (Device, Motor, Plotter):
        robot.load_class(cls)
    plotter = build_plotter(ROBOT_ID)

    # A second robot in the hall (monitored under its own id), so the
    # multi-robot replay has an interaction to reproduce.
    second = platform.create_mobile_node(SECOND_ID, Position(12, 0))
    second_plotter = build_plotter(SECOND_ID)
    hall.add_extension(
        "hw-monitoring-2",
        lambda: HwMonitoring(SECOND_ID, hall.store_ref, flush_interval=0.25,
                             device_pattern=f"{SECOND_ID}.*"),
    )

    platform.run_for(5.0)
    print(f"{ROBOT_ID} extensions: {robot.extensions()}")

    # -- live replication ---------------------------------------------------
    plotter.draw_polyline([(0, 0), (10, 0), (10, 10), (0, 10), (0, 0)])
    platform.run_for(3.0)
    second_plotter.draw_polyline([(20, 20), (30, 20)])
    platform.run_for(3.0)
    print(f"\noriginal drew {plotter.canvas.total_ink():.1f} mm; "
          f"live mirror drew {mirror.canvas.total_ink():.1f} mm (1.5x)")
    assert mirror.canvas.matches(plotter.canvas.scaled(1.5))

    # -- replay from the database -------------------------------------------
    records_one = hall.db.actions_of(ROBOT_ID)
    records_two = hall.db.actions_of(SECOND_ID)
    print(f"\nhall database: {len(records_one)} + {len(records_two)} actions recorded")

    replay_one = build_plotter("replay-1")
    replay_two = build_plotter("replay-2")
    session = ReplaySession(platform.simulator)
    session.add(MovementSequence(records_one), replay_one.rcx)
    session.add(MovementSequence(records_two), replay_two.rcx)
    session.start()
    platform.run_for(30.0)
    print(f"replayed {session.macros_replayed} macros onto two fresh robots")
    assert replay_one.canvas.matches(plotter.canvas)
    assert replay_two.canvas.matches(second_plotter.canvas)
    print("both canvases reproduced exactly, at the right relative times")

    # -- scaled replay ("replication of the work at a different scale") ------
    giant = build_plotter("giant")
    scaled_session = ReplaySession(platform.simulator, time_scale=0.5)
    scaled_session.add(MovementSequence(records_one).scaled(3.0), giant.rcx)
    scaled_session.start()
    platform.run_for(30.0)
    assert giant.canvas.matches(plotter.canvas.scaled(3.0))
    print(f"scaled replay drew {giant.canvas.total_ink():.1f} mm (3x, double speed)")

    for cls in (Device, Motor, Plotter):
        robot.vm.unload_class(cls)
    print("\nreplication_and_replay OK")


if __name__ == "__main__":
    main()
