"""Runnable demo scenarios (see ``python -m repro`` for a catalog)."""
