"""The introduction's motivating scenario: one robot, three hall policies.

Hall "audit"  — logs every movement to its database.
Hall "safety" — forbids movements into a keep-out region.
Hall "mirror" — mirrors every movement to a second robot at 2x scale.

The robot is carried from hall to hall.  Its program never changes; each
hall's base station proactively adapts it on arrival and the extensions
are discarded on departure.

Run:  python examples/production_halls.py
"""

from repro import Position, ProactivePlatform, Region
from repro.core import ProactiveEnvironment
from repro.errors import MovementDeniedError
from repro.extensions import (
    ForbiddenRegion,
    HwMonitoring,
    MovementControl,
    ReplicationExtension,
)
from repro.robot import Device, Motor, Plotter, build_plotter
from repro.robot.plotter import DrawingService

ROBOT_ID = "robot:1:1"


def main() -> None:
    platform = ProactivePlatform()
    env = ProactiveEnvironment(platform)

    audit = env.add_hall(Region(0, 0, 40, 40, name="audit"))
    safety = env.add_hall(Region(200, 0, 240, 40, name="safety"))
    mirror = env.add_hall(Region(400, 0, 440, 40, name="mirror"))

    audit.set_policy(
        {"hw-monitoring": lambda: HwMonitoring(ROBOT_ID, audit.station.store_ref)}
    )
    safety.set_policy(
        {
            "movement-control": lambda: MovementControl(
                [ForbiddenRegion(25, 25, 1000, 1000, label="press-area")]
            )
        }
    )

    # The mirror hall hosts a twin robot fed through the hall's mirror hub.
    twin = build_plotter("robot:twin")
    twin_node = platform.create_mobile_node("twin-host", Position(420, 30))
    DrawingService(twin, twin_node.transport)
    mirror.station.mirror_hub.add_mirror("twin-host", scale=2.0)
    mirror.set_policy(
        {
            "replication": lambda: ReplicationExtension(
                mirror.station.mirror_hub.feed_ref, robot_id=ROBOT_ID
            )
        }
    )

    robot = platform.create_mobile_node(ROBOT_ID, Position(20, 20), radio_range=60)
    for cls in (Device, Motor, Plotter):
        robot.load_class(cls)
    plotter = build_plotter(ROBOT_ID)

    def status(label):
        hall = env.hall_of(robot)
        print(f"[{platform.now:7.1f}s] {label:30s} hall={hall.name if hall else '-':8s}"
              f" extensions={robot.extensions()}")

    platform.run_for(5.0)
    status("arrived in audit hall")
    plotter.draw_polyline([(0, 0), (10, 0), (10, 10)])
    platform.run_for(2.0)
    print(f"    audit DB now holds {audit.station.db.count(ROBOT_ID)} actions")

    robot.walk_to(safety.region)
    platform.run_for(300.0)
    status("arrived in safety hall")
    plotter.move_to(10, 10)
    try:
        plotter.move_to(30, 30)
        raise AssertionError("keep-out violated!")
    except MovementDeniedError as denied:
        print(f"    movement denied: {denied}")

    robot.walk_to(mirror.region)
    platform.run_for(400.0)
    status("arrived in mirror hall")
    plotter.draw_polyline([(0, 0), (12, 0)])
    platform.run_for(2.0)
    print(f"    twin drew {twin.canvas.total_ink():.1f} mm "
          f"(original {plotter.canvas.strokes[-1]!r} at 2x)")

    robot.walk_to(Position(600, 20))
    platform.run_for(300.0)
    status("left all halls")
    assert robot.extensions() == []

    for cls in (Device, Motor, Plotter):
        robot.vm.unload_class(cls)
    print("\nproduction_halls OK")


if __name__ == "__main__":
    main()
