"""Ad-hoc (peer-to-peer) mode: devices adapt each other, no base station.

"If a mobile device is capable of receiving extensions, it should also be
able to provide extensions to other nodes" (§2.1).  Here three PDAs meet:
each runs both MIDAS roles on one radio, shares one extension, and
acquires the others' — an information-system infrastructure assembled
entirely ad hoc.  When a peer walks away, everything it contributed is
withdrawn everywhere.

Run:  python examples/adhoc_peers.py
"""

from repro import Aspect, Capability, MethodCut, Position, before
from repro.aop import ProseVM, SandboxPolicy
from repro.discovery import DiscoveryClient, LookupService
from repro.midas import (
    AdaptationService,
    ExtensionBase,
    ExtensionCatalog,
    RemoteCaller,
    Signer,
    TrustStore,
)
from repro.midas.scheduler import SchedulerService
from repro.net import Network, NetworkNode, Transport
from repro.sim import Simulator


class Notepad:
    """The application every PDA runs."""

    def write_note(self, text: str) -> str:
        return text


def make_notepad_class() -> type:
    """A per-device clone of Notepad.

    All peers live in one Python process here, but each device must weave
    its own VM — so each gets its own copy of the application class (the
    analogue of each device loading the class into its own JVM).
    """
    return type("Notepad", (), dict(vars(Notepad)))


class Stamp(Aspect):
    """Each peer's contributed extension: stamps notes with its origin."""

    def __init__(self, origin: str):
        super().__init__()
        self.origin = origin

    @before(MethodCut(type="Notepad", method="write_note"))
    def stamp(self, ctx):
        ctx.args = (f"[{self.origin}] {ctx.args[0]}",)


class Peer:
    """One PDA: provider + receiver on a single transport."""

    def __init__(self, sim, network, name, position):
        self.name = name
        self.signer = Signer.generate(name)
        self.node = network.attach(NetworkNode(name, position, radio_range=50))
        self.transport = Transport(self.node, sim)
        self.vm = ProseVM(name=name)
        self.notepad_class = make_notepad_class()
        self.vm.load_class(self.notepad_class)

        self.lookup = LookupService(self.transport, sim).start()
        catalog = ExtensionCatalog(self.signer)
        catalog.add(f"{name}-stamp", lambda: Stamp(origin=name))
        self.base = ExtensionBase(self.transport, sim, catalog)
        self.base.watch_lookup(self.lookup)

        self.trust = TrustStore()
        self.discovery = DiscoveryClient(self.transport, sim).start()
        self.adaptation = AdaptationService(
            self.vm,
            self.transport,
            sim,
            self.trust,
            policy=SandboxPolicy.permissive(),
            services={
                Capability.NETWORK: RemoteCaller(self.transport),
                Capability.CLOCK: sim.clock,
                Capability.SCHEDULER: SchedulerService(sim),
            },
            discovery=self.discovery,
        ).start()

    def extensions(self):
        return sorted(inst.name for inst in self.adaptation.installed())


def main() -> None:
    sim = Simulator()
    network = Network(sim, seed=7)

    peers = [
        Peer(sim, network, name, Position(x, 0))
        for name, x in (("anna", 0.0), ("ben", 10.0), ("cleo", 20.0))
    ]
    # An ad-hoc community: everyone trusts everyone they met at setup.
    for provider in peers:
        for receiver in peers:
            if provider is not receiver:
                receiver.trust.trust_signer(provider.signer)

    sim.run_for(15.0)
    for peer in peers:
        print(f"{peer.name:5s} carries extensions: {peer.extensions()}")

    print()
    for peer in peers:
        note = peer.notepad_class().write_note("meet at dock 4")
        print(f"a note written on {peer.name}'s pad: {note!r}")

    # Ben leaves; his stamp disappears from everyone, and he loses theirs.
    from repro.net.mobility import WaypointMobility

    WaypointMobility(sim, peers[1].node, speed=100.0).go_to(Position(5000, 0))
    sim.run_for(120.0)
    print("\nafter ben left:")
    for peer in peers:
        print(f"{peer.name:5s} carries extensions: {peer.extensions()}")

    print("\nadhoc_peers OK")


if __name__ == "__main__":
    main()
