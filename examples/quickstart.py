"""Quickstart: dynamic AOP locally, then proactive adaptation over the air.

Part 1 uses PROSE directly: load a class, insert an aspect at run time,
watch calls being intercepted, withdraw it again.

Part 2 runs the full platform: a base station discovers a mobile node
entering its radio cell and pushes it a call-logging extension — the node
never asked for anything.

Run:  python examples/quickstart.py
"""

from repro import Aspect, MethodCut, Position, ProactivePlatform, ProseVM, before
from repro.extensions import CallLogging
from repro.telemetry import text_summary


class Thermostat:
    """A plain application class; it knows nothing about extensions."""

    def __init__(self):
        self.target = 21.0

    def set_target(self, degrees: float) -> float:
        self.target = degrees
        return self.target

    def read(self) -> float:
        return self.target


class AuditAspect(Aspect):
    """Paper-style aspect: before every set_target, audit the change."""

    def __init__(self):
        super().__init__()
        self.audit_log = []

    @before(MethodCut(type="Thermostat", method="set_target"))
    def audit(self, ctx):
        self.audit_log.append(f"set_target{ctx.args} on {ctx.target!r}")


def part_one_local_weaving() -> None:
    print("== Part 1: PROSE — run-time weaving, locally ==")
    vm = ProseVM()
    vm.load_class(Thermostat)

    thermostat = Thermostat()
    thermostat.set_target(19.0)  # not yet intercepted

    audit = AuditAspect()
    vm.insert(audit)
    thermostat.set_target(23.5)  # intercepted
    print(f"  audit log after insertion : {audit.audit_log}")

    vm.withdraw(audit)
    thermostat.set_target(20.0)  # no longer intercepted
    print(f"  audit log after withdrawal: {audit.audit_log}")
    vm.unload_class(Thermostat)


def part_two_proactive_adaptation() -> None:
    print("\n== Part 2: MIDAS — the environment adapts the node ==")
    platform = ProactivePlatform()
    platform.enable_telemetry()

    # The environment: a base station whose policy logs every call.
    hall = platform.create_base_station("hall-A", Position(0, 0))
    hall.add_extension("call-log", lambda: CallLogging(type_pattern="Thermostat"))

    # A mobile device inside the hall's radio cell.
    device = platform.create_mobile_node("pda-7", Position(10, 0))
    device.load_class(Thermostat)

    print(f"  extensions before discovery: {device.extensions()}")
    platform.run_for(5.0)  # discovery + signed distribution + weaving
    print(f"  extensions after  discovery: {device.extensions()}")

    thermostat = Thermostat()
    thermostat.set_target(25.0)
    thermostat.read()

    logger = device.adaptation.find("call-log").aspect
    print(f"  calls observed by the hall's extension:")
    for entry in logger.entries():
        print(f"    {entry.cls}.{entry.method}{entry.args}")

    # The device leaves; the lease lapses; the extension is discarded.
    device.walk_to(Position(2000, 0))
    platform.run_for(300.0)
    print(f"  extensions after leaving   : {device.extensions()}")
    device.vm.unload_class(Thermostat)

    # What the run looked like, as recorded by the telemetry subsystem.
    registry = platform.disable_telemetry()
    print()
    print(text_summary(registry, title="quickstart — telemetry"))


def main() -> None:
    part_one_local_weaving()
    part_two_proactive_adaptation()
    print("\nquickstart OK")


if __name__ == "__main__":
    main()
