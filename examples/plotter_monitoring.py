"""The Section 4 prototype: a plotter robot with hardware monitoring.

A plotter (three motors moving a marking pen, §4.3) enters a production
hall.  The hall adapts it with the HwMonitoring extension of Fig. 5: every
motor command is logged locally and shipped asynchronously to the hall's
database (Fig. 3b).  We then play the Fig. 6 client: list the robot's
recorded actions and summarize them.

Run:  python examples/plotter_monitoring.py
"""

from repro import Position, ProactivePlatform
from repro.extensions import HwMonitoring
from repro.robot import Device, Motor, Plotter, build_plotter
from repro.store import MovementSequence
from repro.telemetry import text_summary

ROBOT_ID = "robot:1:1"


def main() -> None:
    platform = ProactivePlatform()
    platform.enable_telemetry()

    # The production hall: base station + movement database.
    hall = platform.create_base_station("hall-A", Position(0, 0))
    hall.add_extension(
        "hw-monitoring",
        lambda: HwMonitoring(ROBOT_ID, hall.store_ref, flush_interval=0.25),
    )

    # The robot: a PROSE-enabled node carrying the plotter stack.
    robot = platform.create_mobile_node(ROBOT_ID, Position(8, 0))
    for cls in (Device, Motor, Plotter):
        robot.load_class(cls)
    plotter = build_plotter(ROBOT_ID)

    platform.run_for(5.0)
    print(f"extensions on {ROBOT_ID}: {robot.extensions()}")

    # The drawing program draws a house; it contains no monitoring code.
    plotter.draw_polyline([(0, 0), (20, 0), (20, 15), (0, 15), (0, 0)])
    plotter.draw_polyline([(0, 15), (10, 25), (20, 15)])
    platform.run_for(2.0)

    print(f"\ncanvas: {plotter.canvas.stroke_count()} strokes, "
          f"{plotter.canvas.total_ink():.1f} mm of ink")
    print(plotter.canvas.render(width=44, height=14))

    # The Fig. 6 client: query the hall database.
    records = hall.db.actions_of(ROBOT_ID)
    print(f"\nhall database: {len(records)} actions of {ROBOT_ID}")
    for record in records[:8]:
        print(f"  {record.describe()}")
    if len(records) > 8:
        print(f"  ... and {len(records) - 8} more")

    sequence = MovementSequence(records)
    print(f"\nsequence duration: {sequence.duration():.2f}s")
    for motor in ("x", "y", "pen"):
        device = f"{ROBOT_ID}.motor.{motor}"
        print(f"  net rotation of {device}: {sequence.rotation_span(device):.0f} deg")

    # Robot leaves the hall: the extension shuts down (final flush) and
    # is withdrawn; further drawing is not monitored.
    robot.walk_to(Position(2000, 0))
    platform.run_for(300.0)
    print(f"\nafter leaving: extensions = {robot.extensions()}")
    before = hall.db.count(ROBOT_ID)
    plotter.draw_polyline([(0, 0), (5, 0)])
    platform.run_for(2.0)
    assert hall.db.count(ROBOT_ID) == before
    print("movements outside the hall are not logged — locality holds")

    for cls in (Device, Motor, Plotter):
        robot.vm.unload_class(cls)

    # What the run looked like, as recorded by the telemetry subsystem.
    registry = platform.disable_telemetry()
    print()
    print(text_summary(registry, title="plotter_monitoring — telemetry"))
    print("\nplotter_monitoring OK")


if __name__ == "__main__":
    main()
