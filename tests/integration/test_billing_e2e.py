"""Billing end to end: "accounting modules being added to mobile devices
... to bill them for the use of services in a given location" (§1).

The hall distributes a billing extension configured with a settlement
ServiceRef.  Calls are charged per the tariff while the device is in the
hall; when the device leaves (lease lapses), the extension's shutdown
posts the final invoice to the hall's billing desk.
"""

import pytest

from repro.core.platform import ProactivePlatform
from repro.extensions.billing import Billing
from repro.midas.remote import ServiceRef
from repro.net.geometry import Position

from tests.support import Engine, fresh_class


@pytest.fixture
def scenario():
    platform = ProactivePlatform(seed=101)
    hall = platform.create_base_station("hall", Position(0, 0))
    invoices = []
    hall.transport.register(
        "billing.settle", lambda sender, body: invoices.append((sender, body))
    )
    hall.add_extension(
        "billing",
        lambda: Billing(
            {"throttle": 0.25, "send*": 1.0},
            type_pattern="Engine",
            settlement=ServiceRef("hall", "billing.settle"),
        ),
    )
    laptop = platform.create_mobile_node("laptop", Position(5, 0))
    cls = fresh_class()
    laptop.load_class(cls)
    operator = platform.create_mobile_node("operator", Position(0, 5))
    platform.run_for(5.0)
    yield platform, hall, laptop, operator, cls, invoices
    laptop.vm.unload_class(cls)


class TestBillingLifecycle:
    def test_remote_usage_charged_per_caller(self, scenario):
        platform, hall, laptop, operator, cls, _ = scenario
        engine = cls()
        laptop.transport.register(
            "engine.throttle", lambda sender, body: engine.throttle(body)
        )
        for _ in range(4):
            operator.transport.request("laptop", "engine.throttle", 10)
        platform.run_for(2.0)
        billing = laptop.adaptation.find("billing").aspect
        assert billing.balance("operator") == pytest.approx(1.0)

    def test_usage_settled_before_departure(self, scenario):
        """Interim settlements reach the desk while in range, so walking
        away loses at most one settlement interval of charges."""
        platform, hall, laptop, operator, cls, invoices = scenario
        engine = cls()
        engine.throttle(10)
        engine.send_telemetry(b"data")
        platform.run_for(10.0)  # at least one settlement round in range
        assert invoices
        laptop.walk_to(Position(2000, 0))
        platform.run_for(300.0)
        assert laptop.extensions() == []
        sender, body = invoices[-1]
        assert sender == "laptop"
        assert body["invoice"]["local"] == pytest.approx(1.25)

    def test_unchanged_totals_not_reposted(self, scenario):
        platform, hall, laptop, operator, cls, invoices = scenario
        engine = cls()
        engine.throttle(10)
        platform.run_for(30.0)  # many settlement intervals, one charge
        assert len(invoices) == 1

    def test_untariffed_methods_free(self, scenario):
        platform, hall, laptop, operator, cls, _ = scenario
        engine = cls()
        engine.start()
        billing = laptop.adaptation.find("billing").aspect
        assert billing.invoice() == {}

    def test_session_management_auto_installed(self, scenario):
        platform, hall, laptop, *_ = scenario
        from repro.extensions.session import SessionManagement

        kinds = {type(a) for a in laptop.vm.aspects}
        assert SessionManagement in kinds