"""Symmetric (peer-to-peer) extension exchange.

"At one extreme, each node can contain an extension base.  When it joins
a new community, it distributes its extensions and receives others from
the existing nodes.  This type of organization is appropriate for
creating an information system infrastructure in an entirely ad-hoc
manner." (§3.2)

Each peer here runs the full stack on one transport: lookup service +
extension base (provider role) and discovery client + adaptation service
(receiver role).  Two peers meeting in radio range adapt each other.
"""

import pytest

from repro.aop.sandbox import Capability, SandboxPolicy
from repro.aop.vm import ProseVM
from repro.discovery.client import DiscoveryClient
from repro.discovery.registrar import LookupService
from repro.midas.base import ExtensionBase
from repro.midas.catalog import ExtensionCatalog
from repro.midas.receiver import AdaptationService
from repro.midas.remote import RemoteCaller
from repro.midas.scheduler import SchedulerService
from repro.midas.trust import Signer, TrustStore
from repro.net.geometry import Position
from repro.net.mobility import WaypointMobility
from repro.net.node import NetworkNode
from repro.net.transport import Transport

from tests.support import Engine, TraceAspect, fresh_class


class Peer:
    """A node playing both MIDAS roles simultaneously."""

    def __init__(self, sim, network, name, position, extension_name):
        self.name = name
        self.signer = Signer.generate(name)
        self.node = network.attach(NetworkNode(name, position, radio_range=60))
        self.transport = Transport(self.node, sim)
        self.vm = ProseVM(name=name)

        # Provider role.
        self.lookup = LookupService(self.transport, sim).start()
        self.catalog = ExtensionCatalog(self.signer)
        self.catalog.add(extension_name, lambda: TraceAspect(type_pattern="Engine"))
        self.base = ExtensionBase(self.transport, sim, self.catalog)
        self.base.watch_lookup(self.lookup)

        # Receiver role.
        self.trust = TrustStore()
        self.discovery = DiscoveryClient(self.transport, sim).start()
        self.adaptation = AdaptationService(
            self.vm,
            self.transport,
            sim,
            self.trust,
            policy=SandboxPolicy.permissive(),
            services={
                Capability.NETWORK: RemoteCaller(self.transport),
                Capability.CLOCK: sim.clock,
                Capability.SCHEDULER: SchedulerService(sim),
            },
            discovery=self.discovery,
        ).start()

    def extensions(self):
        return sorted(inst.name for inst in self.adaptation.installed())


@pytest.fixture
def peers(sim, network):
    alice = Peer(sim, network, "alice", Position(0, 0), "alice-knowledge")
    bob = Peer(sim, network, "bob", Position(10, 0), "bob-knowledge")
    alice.trust.trust_signer(bob.signer)
    bob.trust.trust_signer(alice.signer)
    return alice, bob


class TestPeerToPeer:
    def test_mutual_adaptation(self, sim, peers):
        alice, bob = peers
        sim.run_for(10.0)
        assert alice.extensions() == ["bob-knowledge"]
        assert bob.extensions() == ["alice-knowledge"]

    def test_peer_never_adapts_itself(self, sim, peers):
        alice, bob = peers
        sim.run_for(10.0)
        assert "alice" not in alice.base.adapted_nodes()
        assert alice.base.adapted_nodes() == ["bob"]

    def test_departure_withdraws_both_sides(self, sim, network, peers):
        alice, bob = peers
        sim.run_for(10.0)
        mobility = WaypointMobility(sim, bob.node, speed=100.0)
        mobility.go_to(Position(2000, 0))
        sim.run_for(120.0)
        assert alice.extensions() == []
        assert bob.extensions() == []
        assert alice.base.adapted_nodes() == []

    def test_third_peer_joins_community(self, sim, network, peers):
        alice, bob = peers
        sim.run_for(10.0)
        carol = Peer(sim, network, "carol", Position(5, 5), "carol-knowledge")
        carol.trust.trust_signer(alice.signer)
        carol.trust.trust_signer(bob.signer)
        alice.trust.trust_signer(carol.signer)
        bob.trust.trust_signer(carol.signer)
        sim.run_for(15.0)
        assert carol.extensions() == ["alice-knowledge", "bob-knowledge"]
        assert "carol-knowledge" in alice.extensions()
        assert "carol-knowledge" in bob.extensions()

    def test_untrusting_peer_rejects(self, sim, network):
        alice = Peer(sim, network, "alice", Position(0, 0), "alice-knowledge")
        bob = Peer(sim, network, "bob", Position(10, 0), "bob-knowledge")
        # Only alice trusts bob; bob trusts nobody.
        alice.trust.trust_signer(bob.signer)
        sim.run_for(10.0)
        assert alice.extensions() == ["bob-knowledge"]
        assert bob.extensions() == []
