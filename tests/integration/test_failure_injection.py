"""Failure injection: the platform under a hostile radio.

The paper's protocols must survive exactly these conditions — that is
what leases, announcements and renewals are *for*.  We inject packet
loss, partitions at awkward moments, and base-station restarts, and
check the system converges back to the intended state.
"""

import pytest

from repro.core.platform import ProactivePlatform
from repro.net.geometry import Position
from repro.net.network import NetworkConfig

from tests.support import Engine, TraceAspect, fresh_class


class TestLossyRadio:
    @pytest.mark.parametrize("loss", [0.1, 0.3])
    def test_adaptation_converges_despite_loss(self, loss):
        platform = ProactivePlatform(
            seed=61, network_config=NetworkConfig(loss_probability=loss)
        )
        hall = platform.create_base_station("hall", Position(0, 0))
        hall.add_extension("trace", TraceAspect)
        node = platform.create_mobile_node("node", Position(5, 0))
        platform.run_for(60.0)
        assert node.extensions() == ["trace"]

    def test_extension_stays_alive_despite_loss(self):
        """Under heavy (30%) loss the extension may occasionally flap —
        keep-alives abandoned, then reconciliation reinstalls — but the
        system converges back and flaps stay rare."""
        platform = ProactivePlatform(
            seed=62, network_config=NetworkConfig(loss_probability=0.3)
        )
        hall = platform.create_base_station("hall", Position(0, 0))
        hall.add_extension("trace", TraceAspect)
        node = platform.create_mobile_node("node", Position(5, 0))
        platform.run_for(20.0)
        assert node.extensions() == ["trace"]
        withdrawals = []
        node.adaptation.on_withdrawn.connect(
            lambda inst, reason: withdrawals.append(reason)
        )
        platform.run_for(300.0)  # many lease terms under loss
        assert node.extensions() == ["trace"]
        assert len(withdrawals) <= 5

    def test_no_flaps_at_moderate_loss(self):
        """At 5% loss the keep-alive redundancy absorbs everything."""
        platform = ProactivePlatform(
            seed=67, network_config=NetworkConfig(loss_probability=0.05)
        )
        hall = platform.create_base_station("hall", Position(0, 0))
        hall.add_extension("trace", TraceAspect)
        node = platform.create_mobile_node("node", Position(5, 0))
        platform.run_for(10.0)
        withdrawals = []
        node.adaptation.on_withdrawn.connect(
            lambda inst, reason: withdrawals.append(reason)
        )
        platform.run_for(200.0)
        assert node.extensions() == ["trace"]
        assert withdrawals == []


class TestPartitions:
    def test_partition_mid_replacement_heals(self):
        platform = ProactivePlatform(seed=63)
        hall = platform.create_base_station("hall", Position(0, 0))
        hall.add_extension("trace", lambda: TraceAspect(type_pattern="Engine"))
        node = platform.create_mobile_node("node", Position(5, 0))
        platform.run_for(5.0)

        platform.network.partition("hall", "node")
        # Policy changes while the node is unreachable.
        hall.replace_extension("trace", lambda: TraceAspect(type_pattern="Turbine"))
        platform.run_for(60.0)
        # Old extension lapsed during the partition.
        assert node.extensions() == []

        platform.network.heal("hall", "node")
        platform.run_for(60.0)
        # The node rejoined and received the *new* version.
        installed = node.adaptation.find("trace")
        assert installed is not None
        assert installed.envelope.version == 2

    def test_short_partition_is_invisible(self):
        """A blip shorter than the lease term loses nothing."""
        platform = ProactivePlatform(seed=64, lease_duration=10.0)
        hall = platform.create_base_station("hall", Position(0, 0))
        hall.add_extension("trace", TraceAspect)
        node = platform.create_mobile_node("node", Position(5, 0))
        platform.run_for(5.0)
        withdrawals = []
        node.adaptation.on_withdrawn.connect(
            lambda inst, reason: withdrawals.append(reason)
        )
        platform.network.partition("hall", "node")
        platform.run_for(3.0)  # well under the 10s lease
        platform.network.heal("hall", "node")
        platform.run_for(30.0)
        assert withdrawals == []
        assert node.extensions() == ["trace"]


class TestBaseRestart:
    def test_node_readapted_after_base_replacement(self):
        """A hall's base station dies and is replaced (same signer —
        the hall operator re-provisions its key).  Nodes lose their
        extensions when the leases lapse, then are re-adapted by the
        replacement."""
        from repro.midas.trust import Signer

        platform = ProactivePlatform(seed=65)
        signer = Signer.generate("hall-operator")
        hall = platform.create_base_station("hall", Position(0, 0), signer=signer)
        hall.add_extension("trace", TraceAspect)
        node = platform.create_mobile_node("node", Position(5, 0), trusted=[signer])
        platform.run_for(5.0)
        assert node.extensions() == ["trace"]

        # The base station dies.
        platform.network.detach(hall.node)
        platform.run_for(120.0)
        assert node.extensions() == []

        # A replacement comes up under the same operator key.
        replacement = platform.create_base_station(
            "hall-2", Position(0, 1), signer=signer
        )
        replacement.add_extension("trace", TraceAspect)
        platform.run_for(120.0)
        assert node.extensions() == ["trace"]
        assert node.adaptation.find("trace").base_id == "hall-2"


class TestExtensionFaults:
    def test_faulty_advice_does_not_break_protocols(self):
        """An extension whose advice raises hurts the intercepted call,
        never the middleware: leases keep renewing, revocation works."""
        from tests.support import Engine

        platform = ProactivePlatform(seed=66)
        hall = platform.create_base_station("hall", Position(0, 0))
        from tests.support import NetworkUsingAspect

        # NetworkUsingAspect acquires the network capability; deny it so
        # every interception raises SandboxViolation.
        from repro.aop.sandbox import Capability, SandboxPolicy

        hall.add_extension("faulty", NetworkUsingAspect)
        node = platform.create_mobile_node(
            "node",
            Position(5, 0),
            policy=SandboxPolicy({Capability.NETWORK}),
        )
        cls = fresh_class()
        node.load_class(cls)
        platform.run_for(5.0)
        assert node.extensions() == ["faulty"]

        engine = cls()
        # The faulty aspect was *granted* network, so calls succeed; make
        # it fail by revoking the gateway service underneath it.
        node.adaptation.find("faulty").aspect.gateway._services.clear()
        from repro.errors import SandboxViolation

        with pytest.raises(SandboxViolation):
            engine.start()
        # The middleware is unimpressed: the lease survives, and the
        # base can still revoke cleanly.
        platform.run_for(30.0)
        assert node.extensions() == ["faulty"]
        hall.extension_base.revoke("node", "faulty")
        platform.run_for(2.0)
        assert node.extensions() == []
