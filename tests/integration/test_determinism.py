"""Whole-platform determinism: same seed, same world evolution.

Everything in the stack — kernel ordering, radio jitter/loss, protocol
timers — draws from seeded state, so a full scenario replays exactly.
This is what makes every experiment in EXPERIMENTS.md reproducible.
"""

from repro.core.platform import ProactivePlatform
from repro.net.geometry import Position
from repro.net.network import NetworkConfig

from tests.support import Engine, TraceAspect, fresh_class


def run_scenario(seed: int) -> tuple:
    platform = ProactivePlatform(
        seed=seed, network_config=NetworkConfig(loss_probability=0.1)
    )
    hall = platform.create_base_station("hall", Position(0, 0))
    hall.add_extension("trace", lambda: TraceAspect(type_pattern="Engine"))
    node = platform.create_mobile_node("node", Position(5, 0))
    cls = fresh_class()
    node.load_class(cls)
    try:
        platform.run_for(10.0)
        engine = cls()
        engine.start()
        engine.throttle(3)
        node.walk_to(Position(300, 0))
        platform.run_for(120.0)
        node.walk_to(Position(5, 0))
        platform.run_for(300.0)
        summary = platform.summary()
        return (
            summary["time"],
            summary["network"]["transmitted"],
            summary["network"]["delivered"],
            summary["network"]["dropped"],
            tuple(summary["mobile_nodes"]["node"]["extensions"]),
            summary["mobile_nodes"]["node"]["position"],
            tuple(
                (record.time, record.action, record.extension)
                for record in hall.extension_base.activity_log
            ),
        )
    finally:
        node.vm.unload_class(cls)


class TestDeterminism:
    def test_same_seed_identical_evolution(self):
        assert run_scenario(42) == run_scenario(42)

    def test_different_seed_differs_in_radio_detail(self):
        # Protocol outcomes converge either way, but the lossy radio's
        # exact traffic pattern is seed-dependent.
        first = run_scenario(1)
        second = run_scenario(2)
        assert first[4] == second[4]  # same final extensions
        assert first[1:4] != second[1:4]  # different radio history
