"""Fig. 6 end to end: record movements via monitoring, then manipulate.

A plotter adapted with HwMonitoring draws a figure; every motor action
lands in the hall database.  The recorded sequence is then (a) replayed
onto a second identical plotter — reproducing the drawing exactly — and
(b) replayed at a different scale — reproducing it amplified.
"""

import pytest

from repro.core.platform import ProactivePlatform
from repro.extensions.monitoring import HwMonitoring
from repro.net.geometry import Position
from repro.robot.hardware import Device, Motor
from repro.robot.plotter import Plotter, build_plotter
from repro.store.manipulation import MovementSequence, ReplaySession


@pytest.fixture
def scenario():
    platform = ProactivePlatform(seed=41)
    hall = platform.create_base_station("hall", Position(0, 0))
    hall.add_extension(
        "hw-monitoring",
        lambda: HwMonitoring("robot:1:1", hall.store_ref, flush_interval=0.2),
    )
    robot = platform.create_mobile_node("robot:1:1", Position(5, 0))
    plotter = build_plotter("robot:1:1")
    for cls in (Device, Motor, Plotter):
        robot.load_class(cls)
    platform.run_for(5.0)
    yield platform, hall, robot, plotter
    for cls in (Device, Motor, Plotter):
        robot.vm.unload_class(cls)


def draw_house(plotter):
    plotter.draw_polyline([(0, 0), (20, 0), (20, 15), (0, 15), (0, 0)])
    plotter.draw_polyline([(0, 15), (10, 25), (20, 15)])


class TestRecordAndReplay:
    def test_all_motor_actions_recorded(self, scenario):
        platform, hall, robot, plotter = scenario
        draw_house(plotter)
        platform.run_for(2.0)
        records = hall.db.actions_of("robot:1:1")
        assert len(records) > 10
        devices = {r.device_id for r in records}
        assert devices == {
            "robot:1:1.motor.x",
            "robot:1:1.motor.y",
            "robot:1:1.motor.pen",
        }

    def test_replay_reproduces_drawing(self, scenario):
        platform, hall, robot, plotter = scenario
        draw_house(plotter)
        platform.run_for(2.0)

        replica = build_plotter("replica")
        sequence = MovementSequence.from_store(hall.db, "robot:1:1")
        session = ReplaySession(platform.simulator)
        session.add(sequence, replica.rcx)
        session.start()
        platform.run_for(10.0)
        assert replica.canvas.matches(plotter.canvas)

    def test_scaled_replay_reproduces_amplified(self, scenario):
        platform, hall, robot, plotter = scenario
        draw_house(plotter)
        platform.run_for(2.0)

        replica = build_plotter("replica")
        sequence = MovementSequence.from_store(hall.db, "robot:1:1").scaled(2.0)
        session = ReplaySession(platform.simulator)
        session.add(sequence, replica.rcx)
        session.start()
        platform.run_for(10.0)
        assert replica.canvas.matches(plotter.canvas.scaled(2.0))

    def test_departure_flushes_tail_of_log(self, scenario):
        """shutdown() ships buffered records before the extension dies,
        so the last movements before leaving are not lost."""
        platform, hall, robot, plotter = scenario
        plotter.move_to(3, 0)
        # Immediately revoke (before the periodic flush fires).
        hall.extension_base.revoke_node("robot:1:1")
        platform.run_for(2.0)
        commands = [r.command for r in hall.db.actions_of("robot:1:1")]
        assert "rotate" in commands
