"""A whole site under churn: many robots roaming many halls.

Stress-level integration: 3 halls with distinct policies, 6 robots
walking pseudo-random tours between them for a long simulated span.  At
every checkpoint each robot carries exactly its current hall's policy
(or nothing, in the corridors) — locality holds globally, not just in
two-node scenarios.
"""

import random

import pytest

from repro.core.environment import ProactiveEnvironment
from repro.core.platform import ProactivePlatform
from repro.net.geometry import Position, Region

from tests.support import TraceAspect


HALL_SPECS = [
    ("north", Region(0, 200, 60, 260, name="north")),
    ("east", Region(200, 0, 260, 60, name="east")),
    ("south", Region(0, -260, 60, -200, name="south")),
]


@pytest.fixture
def site():
    platform = ProactivePlatform(seed=91)
    env = ProactiveEnvironment(platform)
    halls = {}
    for name, region in HALL_SPECS:
        hall = env.add_hall(region)
        hall.set_policy({f"{name}-policy": TraceAspect})
        halls[name] = hall
    robots = [
        platform.create_mobile_node(
            f"robot-{index}", Position(30, 230), radio_range=60
        )
        for index in range(6)
    ]
    return platform, env, halls, robots


class TestSiteChurn:
    def test_every_robot_carries_its_halls_policy(self, site):
        platform, env, halls, robots = site
        rng = random.Random(7)
        names = list(halls)

        for round_number in range(4):
            # Everyone picks a hall and walks there (teleport-fast walk
            # is fine; locality is what we check).
            destinations = {}
            for robot in robots:
                choice = rng.choice(names)
                destinations[robot.node_id] = choice
                robot.mobility.stop()
                robot.mobility.speed = 20.0
                robot.walk_to(halls[choice].region)
            platform.run_for(600.0)  # travel + adaptation + churn settle

            for robot in robots:
                hall_name = destinations[robot.node_id]
                expected = {f"{hall_name}-policy"}
                assert set(robot.extensions()) == expected, (
                    f"round {round_number}: {robot.node_id} in {hall_name} "
                    f"carries {robot.extensions()}"
                )

    def test_corridor_means_no_policy(self, site):
        platform, env, halls, robots = site
        platform.run_for(30.0)
        robot = robots[0]
        robot.mobility.speed = 20.0
        robot.walk_to(Position(130, 130))  # between all halls
        platform.run_for(600.0)
        assert env.hall_of(robot) is None
        assert robot.extensions() == []

    def test_summary_is_consistent(self, site):
        platform, env, halls, robots = site
        platform.run_for(120.0)
        summary = platform.summary()
        adapted_by_bases = {
            node
            for view in summary["base_stations"].values()
            for node in view["adapted_nodes"]
        }
        holding_nodes = {
            node_id
            for node_id, view in summary["mobile_nodes"].items()
            if view["extensions"]
        }
        # Every node holding extensions is tracked by some base.
        assert holding_nodes <= adapted_by_bases
