"""The §1 PDA example: "PDAs entering a building being adapted with an
encryption layer, a persistence module, and a filter that prevents using
certain resources."

One building policy, three extensions, one PDA walking in and out.
"""

import pytest

from repro.core.platform import ProactivePlatform
from repro.errors import AccessDeniedError
from repro.extensions.access_control import AccessControl
from repro.extensions.encryption import EncryptionExtension
from repro.extensions.persistence import OrthogonalPersistence
from repro.net.geometry import Position

from tests.support import Engine, fresh_class

BUILDING_KEY = b"building-7-wifi-key"


@pytest.fixture
def scenario():
    platform = ProactivePlatform(seed=81)
    building = platform.create_base_station("building-7", Position(0, 0))
    building.add_extension(
        "encryption", lambda: EncryptionExtension(BUILDING_KEY, type_pattern="Engine")
    )
    building.add_extension(
        "persistence",
        lambda: OrthogonalPersistence(type_pattern="Engine", identity_attr="engine_id"),
    )
    building.add_extension(
        "resource-filter",
        lambda: AccessControl(
            allowed=set(),          # nobody remote
            allow_local=False,      # and not even local callers
            type_pattern="Engine",
            method_pattern="fail",  # the forbidden resource
        ),
    )
    pda = platform.create_mobile_node("pda-7", Position(5, 0))
    cls = fresh_class()
    pda.load_class(cls)
    platform.run_for(5.0)
    yield platform, building, pda, cls
    pda.vm.unload_class(cls)


class TestPdaInBuilding:
    def test_all_three_adaptations_installed(self, scenario):
        platform, building, pda, cls = scenario
        assert sorted(pda.extensions()) == [
            "encryption",
            "persistence",
            "resource-filter",
        ]

    def test_traffic_encrypted_inside(self, scenario):
        platform, building, pda, cls = scenario
        app = cls("e7")
        wire = app.send_telemetry(b"meeting notes")
        assert wire != b"meeting notes"
        # and transparently decrypted on the receive path
        assert app.receive_command(wire) == b"meeting notes"

    def test_state_persisted_inside(self, scenario):
        platform, building, pda, cls = scenario
        app = cls("e7")
        app.start()
        persistence = pda.adaptation.find("persistence").aspect
        assert persistence.snapshot(app)["rpm"] == 800

    def test_forbidden_resource_blocked(self, scenario):
        platform, building, pda, cls = scenario
        app = cls("e7")
        with pytest.raises(AccessDeniedError):
            app.fail()  # blocked before the resource is even touched
        app.start()  # other methods unaffected

    def test_leaving_building_strips_all_policies(self, scenario):
        platform, building, pda, cls = scenario
        pda.walk_to(Position(2000, 0))
        platform.run_for(300.0)
        assert pda.extensions() == []
        app = cls("e7")
        assert app.send_telemetry(b"clear text") == b"clear text"
        with pytest.raises(RuntimeError):
            app.fail()  # the *original* failure, not an access denial
