"""A driving robot in a proactive hall: the full §1 story on wheels.

The rover's radio follows its chassis, so *driving* out of the hall —
not a disembodied mobility model — is what ends its extensions.  While
inside, the hall's monitoring extension records every wheel command.
"""

import pytest

from repro.core.platform import ProactivePlatform
from repro.extensions.monitoring import HwMonitoring
from repro.net.geometry import Position, Region
from repro.robot.hardware import Device, Motor
from repro.robot.rover import ObstacleWorld, Rover
from repro.robot.tasks import RobotApplication, SequenceTask


@pytest.fixture
def scenario():
    platform = ProactivePlatform(seed=71)
    hall = platform.create_base_station("hall", Position(0, 0), radio_range=30)
    hall.add_extension(
        "hw-monitoring",
        lambda: HwMonitoring("rover-1", hall.store_ref, flush_interval=0.2),
    )
    node = platform.create_mobile_node("rover-1", Position(2, 0), radio_range=30)
    for cls in (Device, Motor):
        node.load_class(cls)

    rover = Rover("rover-1", position=Position(2.0, 0.0))
    rover.attach_node(node.node)
    app = RobotApplication(platform.simulator, rover.rcx)
    platform.run_for(5.0)
    yield platform, hall, node, rover, app
    for cls in (Device, Motor):
        node.vm.unload_class(cls)


class TestRoverInHall:
    def test_wheel_commands_logged_while_inside(self, scenario):
        platform, hall, node, rover, app = scenario
        assert node.extensions() == ["hw-monitoring"]
        run = app.run_task(SequenceTask("patrol", rover.forward_macros(1.0)))
        platform.run_for(30.0)
        assert run.finished
        records = hall.db.actions_of("rover-1")
        assert records
        assert all(r.command == "rotate" for r in records)
        devices = {r.device_id for r in records}
        assert devices == {"rover-1.motor.left", "rover-1.motor.right"}

    def test_driving_out_withdraws_extensions(self, scenario):
        platform, hall, node, rover, app = scenario
        # Drive 50 m east: well outside the 30 m cell.
        run = app.run_task(
            SequenceTask("leave", rover.forward_macros(50.0, step_m=1.0))
        )
        platform.run_for(600.0)
        assert run.finished
        assert rover.position.x > 40.0
        assert node.node.position.x > 40.0  # radio followed the chassis
        platform.run_for(60.0)
        assert node.extensions() == []

    def test_driving_back_readapts(self, scenario):
        platform, hall, node, rover, app = scenario
        app.run_task(SequenceTask("leave", rover.forward_macros(50.0, step_m=1.0)))
        platform.run_for(600.0)
        assert node.extensions() == []
        # Turn around, drive home.
        back = rover.turn_macros(180.0) + rover.forward_macros(50.0, step_m=1.0)
        app.run_task(SequenceTask("return", back))
        platform.run_for(600.0)
        assert rover.position.x < 5.0
        platform.run_for(30.0)
        assert node.extensions() == ["hw-monitoring"]
