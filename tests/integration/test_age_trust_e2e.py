"""Age-based trust end to end (§4.6): distributed through MIDAS.

"A proactive context can add an extension that records the 'birth date'
of a device.  The very same extension may intercept all service
invocations ... and decide how to proceed depending on the device's age."
"""

import pytest

from repro.core.platform import ProactivePlatform
from repro.errors import AccessDeniedError
from repro.extensions.age_trust import AgeTrust
from repro.net.geometry import Position
from repro.robot.hardware import Device, Motor


@pytest.fixture
def scenario():
    platform = ProactivePlatform(seed=111)
    hall = platform.create_base_station("hall", Position(0, 0))
    hall.add_extension(
        "age-trust",
        lambda: AgeTrust(min_age=30.0, type_pattern="Device", method_pattern="rotate"),
    )
    node = platform.create_mobile_node("node", Position(5, 0))
    for cls in (Device, Motor):
        node.load_class(cls)
    platform.run_for(5.0)
    yield platform, hall, node
    for cls in (Device, Motor):
        node.vm.unload_class(cls)


class TestAgeTrustE2E:
    def test_newborn_device_denied_then_trusted(self, scenario):
        platform, hall, node = scenario
        assert node.extensions() == ["age-trust"]
        motor = Motor("m.new")
        with pytest.raises(AccessDeniedError):
            motor.rotate(1.0)  # birth stamped at sim time ~5

        platform.run_for(31.0)  # the device ages on the simulated clock
        motor.rotate(1.0)
        assert motor.angle == 1.0

    def test_ages_tracked_on_platform_clock(self, scenario):
        platform, hall, node = scenario
        motor = Motor("m.x")
        with pytest.raises(AccessDeniedError):
            motor.rotate(1.0)
        aspect = node.adaptation.find("age-trust").aspect
        birth = aspect.birth_date(motor)
        assert birth == pytest.approx(platform.now)
        platform.run_for(12.0)
        assert aspect.age_of(motor) == pytest.approx(12.0)

    def test_replacement_resets_birth_records(self, scenario):
        """Replacing the extension ships a fresh instance: previously
        earned trust is forgotten — the hall's explicit policy choice
        when bumping the extension version."""
        platform, hall, node = scenario
        motor = Motor("m.x")
        with pytest.raises(AccessDeniedError):
            motor.rotate(1.0)
        platform.run_for(31.0)
        motor.rotate(1.0)  # trusted now

        hall.replace_extension(
            "age-trust",
            lambda: AgeTrust(min_age=30.0, type_pattern="Device",
                             method_pattern="rotate"),
        )
        platform.run_for(5.0)
        with pytest.raises(AccessDeniedError):
            motor.rotate(1.0)  # newborn again under the new instance
