"""Chaos: a hostile extension under full platform supervision.

One hall distributes two extensions to one robot: a well-behaved tracer
and a saboteur that raises on every 3rd interception.  The supervisor
must contain every misbehaviour (the application never sees an advice
exception), strike the saboteur out within the window, withdraw it, and
report back to the hall — which stops re-offering that version to the
robot's node class.  The whole sequence hangs off one connected trace
and replays identically on a fixed seed.
"""

from __future__ import annotations

import pytest

from repro.core.platform import ProactivePlatform
from repro.faults import FaultyExtension
from repro.net.geometry import Position
from repro.supervision import STRIKE_ERROR, SupervisionPolicy
from repro.telemetry import Timeline

from tests.support import Engine, TraceAspect, export_artifacts, fresh_class

SEEDS = [7, 21, 99]

WORKLOAD_CALLS = 40  # strikes land at interceptions 3, 6 and 9


def build_world(seed: int):
    platform = ProactivePlatform(
        seed=seed,
        supervision=SupervisionPolicy(max_strikes=3, strike_window=30.0),
    )
    registry = platform.enable_telemetry()
    hall = platform.create_base_station("hall", Position(0, 0))
    hall.add_extension(
        "saboteur", lambda: FaultyExtension(every=3, method_pattern="throttle")
    )
    hall.add_extension("tracer", TraceAspect)
    robot = platform.create_mobile_node(
        "robot", Position(5, 0), attributes={"class": "robot"}
    )
    return platform, registry, hall, robot


def run_chaos(seed: int) -> dict:
    """Run the scenario and return a determinism fingerprint."""
    platform, registry, hall, robot = build_world(seed)
    try:
        quarantines = []
        robot.supervisor.on_quarantine.connect(
            # The supervisor knows the aspect, not the catalog name (the
            # receiver maps one to the other, and its auto-generated
            # aspect name is not stable across runs in one process).
            lambda aspect, health: quarantines.append(
                (platform.now, tuple(strike.kind for strike in health.strikes))
            )
        )
        withdrawn = []
        robot.adaptation.on_withdrawn.connect(
            lambda installed, reason: withdrawn.append((installed.name, reason))
        )

        platform.run_for(10.0)
        assert set(robot.extensions()) == {"saboteur", "tracer"}

        engine = robot.load_class(fresh_class(Engine))()
        # Zero uncaught advice exceptions: every misbehaviour is
        # contained, so the workload itself must run to completion.
        for _ in range(WORKLOAD_CALLS):
            engine.throttle(1)
        assert engine.rpm == WORKLOAD_CALLS

        # Struck out within the window: three error strikes, quarantined,
        # withdrawn — while the innocent tracer keeps running.
        assert quarantines == [(platform.now, (STRIKE_ERROR,) * 3)]
        assert ("saboteur", "quarantined") in withdrawn
        assert "saboteur" not in robot.extensions()
        assert "tracer" in robot.extensions()
        assert registry.counter_total("supervision.contained") == 3

        # The health report reaches the hall, which holds the bad
        # version back from this node class on every later reconcile.
        platform.run_for(60.0)
        assert "saboteur" not in robot.extensions()
        assert "tracer" in robot.extensions()
        assert not hall.extension_base.catalog.is_healthy("saboteur", "robot")
        assert registry.counter_total("midas.quarantines") == 1
        assert registry.counter_total("midas.offers_suppressed") > 0

        # One connected trace covers the whole arc: the offer that
        # delivered the saboteur, its install, and its quarantine.
        for spans in registry.traces().values():
            names = {span.name for span in spans}
            if "midas.quarantine" in names:
                assert "midas.install" in names
                assert "midas.offer" in names
                break
        else:
            pytest.fail("no trace connects offer, install and quarantine")

        # The same arc, as a causal invariant on the merged timeline:
        # three contained strikes on the robot, then the quarantine, then
        # the withdrawal it forces, then the health report on the hall.
        timeline = Timeline.from_hub(registry.flight)
        strikes = timeline.events("supervision.contained").on("robot")
        quarantine = timeline.events("supervision.quarantined").on("robot")
        withdrawal = (
            timeline.events("midas.withdrawn").on("robot").where(reason="quarantined")
        )
        report = timeline.events("midas.quarantine_reported").on("hall")
        assert strikes.count() == 3
        assert quarantine.count() == 1
        assert strikes.precedes(quarantine)
        assert quarantine.precedes(withdrawal)
        assert withdrawal.precedes(report)
        # The report rides the install's trace: the hall can walk from
        # the misbehaviour straight back to the offer that shipped it.
        install = (
            timeline.events("midas.installed").on("robot").where(extension="saboteur")
        )
        assert install.exists
        assert report.trace_ids() <= install.trace_ids()

        return {
            "quarantines": quarantines,
            "withdrawn": withdrawn,
            "extensions": sorted(robot.extensions()),
            "contained": registry.counter_total("supervision.contained"),
            "suppressed": registry.counter_total("midas.offers_suppressed"),
            "delivered": platform.network.messages_delivered,
            "rpm": engine.rpm,
            # Node/kind/time of every flight event must replay (trace
            # ids are process-global and excluded on purpose).
            "flight": [(e.node, e.kind, e.time) for e in timeline],
        }
    finally:
        export_artifacts(f"chaos-supervision-{seed}", registry)
        platform.disable_telemetry()


class TestChaosSupervision:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_saboteur_quarantined_workload_unharmed(self, seed):
        fingerprint = run_chaos(seed)
        assert fingerprint["extensions"] == ["tracer"]
        assert fingerprint["contained"] == 3

    @pytest.mark.parametrize("seed", SEEDS)
    def test_chaos_supervision_is_deterministic(self, seed):
        assert run_chaos(seed) == run_chaos(seed)
