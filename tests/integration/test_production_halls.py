"""The introduction's motivating scenario: a robot in production halls.

Three halls with different policies: one logs every movement, one forbids
certain movements, one mirrors movements to a second robot.  The robot is
carried from hall to hall; its behaviour follows the local policy, and
"as soon as the robot fulfills its task and leaves a given production
hall, the behavior extensions ... added by that hall are discarded."
"""

import pytest

from repro.core.environment import ProactiveEnvironment
from repro.core.platform import ProactivePlatform
from repro.errors import MovementDeniedError
from repro.extensions.control import ForbiddenRegion, MovementControl
from repro.extensions.monitoring import HwMonitoring
from repro.net.geometry import Position, Region
from repro.robot.hardware import Device, Motor
from repro.robot.plotter import Plotter, build_plotter


@pytest.fixture
def scenario():
    platform = ProactivePlatform(seed=31)
    env = ProactiveEnvironment(platform)
    logging_hall = env.add_hall(Region(0, 0, 40, 40, name="logging"))
    control_hall = env.add_hall(Region(200, 0, 240, 40, name="control"))

    logging_hall.set_policy(
        {
            "hw-monitoring": lambda: HwMonitoring(
                "robot:1:1", logging_hall.station.store_ref
            )
        }
    )
    control_hall.set_policy(
        {
            "movement-control": lambda: MovementControl(
                [ForbiddenRegion(30, 30, 100, 100, label="no-go")]
            )
        }
    )

    robot = platform.create_mobile_node("robot:1:1", Position(20, 20))
    plotter = build_plotter("robot:1:1")
    for cls in (Device, Motor, Plotter):
        robot.load_class(cls)
    yield platform, env, logging_hall, control_hall, robot, plotter
    for cls in (Device, Motor, Plotter):
        robot.vm.unload_class(cls)


class TestHallPolicies:
    def test_logging_hall_logs_movements(self, scenario):
        platform, env, logging_hall, _, robot, plotter = scenario
        platform.run_for(5.0)
        assert robot.extensions() == ["hw-monitoring"]
        plotter.draw_polyline([(0, 0), (10, 0)])
        platform.run_for(2.0)
        assert logging_hall.station.db.count("robot:1:1") > 0

    def test_control_hall_forbids_movements(self, scenario):
        platform, env, _, control_hall, robot, plotter = scenario
        robot.walk_to(control_hall.region)
        platform.run_for(300.0)
        assert robot.extensions() == ["movement-control"]
        plotter.move_to(10, 10)  # fine
        with pytest.raises(MovementDeniedError):
            plotter.move_to(50, 50)

    def test_extensions_swap_as_robot_moves(self, scenario):
        platform, env, logging_hall, control_hall, robot, plotter = scenario
        platform.run_for(5.0)
        assert robot.extensions() == ["hw-monitoring"]

        robot.walk_to(control_hall.region)
        platform.run_for(300.0)
        assert robot.extensions() == ["movement-control"]

        # Leaving the logging hall discarded its extension: movements are
        # no longer shipped there.
        before = logging_hall.station.db.count("robot:1:1")
        plotter.move_to(5, 5)
        platform.run_for(5.0)
        assert logging_hall.station.db.count("robot:1:1") == before

    def test_between_halls_no_extensions(self, scenario):
        platform, env, logging_hall, control_hall, robot, plotter = scenario
        platform.run_for(5.0)
        robot.walk_to(Position(120, 20))  # corridor between halls
        platform.run_for(300.0)
        assert env.hall_of(robot) is None
        assert robot.extensions() == []
        plotter.move_to(50, 50)  # no control extension: allowed

    def test_policy_change_reaches_present_robots(self, scenario):
        """'Robots already in the hall will be adapted by removing the old
        extensions and replacing them with the new ones.'"""
        platform, env, logging_hall, _, robot, plotter = scenario
        platform.run_for(5.0)
        other_store = []
        logging_hall.station.transport.register(
            "alt.append", lambda sender, body: other_store.append(body)
        )
        from repro.midas.remote import ServiceRef

        logging_hall.station.replace_extension(
            "hw-monitoring",
            lambda: HwMonitoring(
                "robot:1:1", ServiceRef(logging_hall.station.node_id, "alt.append")
            ),
        )
        platform.run_for(5.0)
        plotter.move_to(3, 3)
        platform.run_for(2.0)
        assert other_store  # records now go to the new destination
