"""End-to-end reproduction of Fig. 2: the adaptation of a service m_R.

The robot exports a service.  The hall's policy holds three adaptations:
session management (implicit), access control, and a quality-control
extension propagating state changes to the hall database.  A remote call
then passes through exactly the interception sequence of Fig. 2(c):
session info → access control → body → state-change propagation → reply.
"""

import pytest

from repro.core.platform import ProactivePlatform
from repro.extensions.access_control import AccessControl
from repro.extensions.session import SessionManagement
from repro.net.geometry import Position
from repro.net.transport import RemoteError

from tests.support import Engine, QualityControl, fresh_class


@pytest.fixture
def scenario():
    platform = ProactivePlatform(seed=21)
    hall = platform.create_base_station("hall", Position(0, 0))

    state_log = []
    hall.transport.register(
        "qc.append", lambda sender, body: state_log.append((sender, body))
    )
    from repro.midas.remote import ServiceRef

    hall.add_extension(
        "access-control",
        lambda: AccessControl(allowed={"operator"}, type_pattern="Engine"),
    )
    hall.add_extension(
        "quality-control",
        lambda: QualityControl(
            ServiceRef("hall", "qc.append"), type_pattern="Engine", field_pattern="rpm"
        ),
    )

    robot = platform.create_mobile_node("robot", Position(5, 0))
    engine_cls = fresh_class()
    robot.load_class(engine_cls)
    engine = engine_cls("e1")
    # The exported service m_R.
    robot.transport.register(
        "engine.throttle", lambda sender, body: engine.throttle(body["amount"])
    )

    operator = platform.create_mobile_node("operator", Position(0, 5))
    intruder = platform.create_mobile_node("intruder", Position(5, 5))
    platform.run_for(5.0)  # discovery + adaptation
    return platform, robot, engine, operator, intruder, state_log


class TestFigureTwo:
    def test_all_adaptations_installed(self, scenario):
        platform, robot, *_ = scenario
        names = set(robot.extensions())
        assert names == {"access-control", "quality-control"}
        kinds = {type(a) for a in robot.vm.aspects}
        assert SessionManagement in kinds  # implicit extension

    def test_authorized_call_full_pipeline(self, scenario):
        platform, robot, engine, operator, _, state_log = scenario
        replies = []
        operator.transport.request(
            "robot", "engine.throttle", {"amount": 50}, on_reply=replies.append
        )
        platform.run_for(2.0)
        assert replies == [50]  # step 5: result returned to the caller
        assert engine.rpm == 50
        # Step 4: the state change reached the hall database.
        assert any(body["field"] == "rpm" and body["value"] == 50
                   for _, body in state_log)

    def test_unauthorized_call_blocked_before_body(self, scenario):
        platform, robot, engine, _, intruder, state_log = scenario
        errors = []
        intruder.transport.request(
            "robot", "engine.throttle", {"amount": 50}, on_error=errors.append
        )
        platform.run_for(2.0)
        assert isinstance(errors[0], RemoteError)
        assert engine.rpm == 0  # body never executed
        assert state_log == []  # nothing propagated

    def test_robot_carries_no_adaptation_code_after_leaving(self, scenario):
        """'R needs to carry neither the interception points nor the
        extensions' — and after leaving, they are gone."""
        platform, robot, engine, operator, _, state_log = scenario
        robot.walk_to(Position(2000, 0))
        platform.run_for(300.0)
        assert robot.extensions() == []
        assert robot.vm.aspects == ()
        # The service still works, unadapted (no access control).
        engine.throttle(10)
        assert engine.rpm == 10
