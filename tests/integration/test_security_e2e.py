"""Security end to end: trust and sandboxing across the full platform.

Two layers per §2.1/§3.2: "making sure that the extension comes from a
trusted party and making sure that the extension does not access system
resources if it is not supposed to do so."
"""

import pytest

from repro.aop.sandbox import Capability, SandboxPolicy
from repro.core.platform import ProactivePlatform
from repro.errors import SandboxViolation
from repro.midas.trust import Signer
from repro.net.geometry import Position

from tests.support import Engine, NetworkUsingAspect, TraceAspect, fresh_class


class TestTrustLayer:
    def test_rogue_base_station_cannot_adapt(self):
        platform = ProactivePlatform(seed=51)
        legit = platform.create_base_station("legit", Position(0, 0))
        legit.add_extension("trace", TraceAspect)
        rogue = platform.create_base_station(
            "rogue", Position(30, 0), signer=Signer.generate("rogue")
        )
        rogue.add_extension("backdoor", TraceAspect)

        # The robot trusts only the legitimate hall operator.
        robot = platform.create_mobile_node(
            "robot", Position(15, 0), trusted=[legit.signer]
        )
        platform.run_for(10.0)
        assert robot.extensions() == ["trace"]
        assert "backdoor" not in robot.extensions()
        rejected = [
            record
            for record in rogue.extension_base.activity_for("robot")
            if record.action == "rejected"
        ]
        assert rejected

    def test_forged_signature_rejected(self):
        """A base whose signer key differs from the trusted key for the
        same entity name cannot pass verification."""
        platform = ProactivePlatform(seed=52)
        impostor_signer = Signer("hall", b"not-the-real-key")
        impostor = platform.create_base_station(
            "hall", Position(0, 0), signer=impostor_signer
        )
        impostor.add_extension("trace", TraceAspect)
        robot = platform.create_mobile_node(
            "robot", Position(5, 0), trusted=[Signer.generate("hall")]
        )
        platform.run_for(10.0)
        assert robot.extensions() == []


class TestSandboxLayer:
    def test_capability_policy_enforced_at_offer_time(self):
        platform = ProactivePlatform(seed=53)
        hall = platform.create_base_station("hall", Position(0, 0))
        hall.add_extension("needs-net", NetworkUsingAspect)
        hall.add_extension("harmless", lambda: TraceAspect(type_pattern="Engine"))
        robot = platform.create_mobile_node(
            "robot",
            Position(5, 0),
            policy=SandboxPolicy({Capability.CLOCK}),  # no network
        )
        platform.run_for(10.0)
        # Only the harmless extension made it in.
        assert robot.extensions() == ["harmless"]

    def test_sandbox_restricted_to_declared_capabilities(self):
        """Even on a permissive node, an extension's sandbox is narrowed
        to what its envelope declared — undeclared capabilities are
        denied at run time."""
        platform = ProactivePlatform(seed=54)
        hall = platform.create_base_station("hall", Position(0, 0))
        hall.add_extension("trace", lambda: TraceAspect(type_pattern="Engine"))
        robot = platform.create_mobile_node("robot", Position(5, 0))
        cls = fresh_class()
        robot.load_class(cls)
        platform.run_for(5.0)

        installed = robot.adaptation.find("trace")
        # TraceAspect declared no capabilities; its sandbox allows none.
        assert not installed.sandbox.policy.allows(Capability.NETWORK)
        with pytest.raises(SandboxViolation):
            installed.sandbox.require(Capability.NETWORK)
