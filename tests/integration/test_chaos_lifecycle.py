"""Chaos: the full extension lifecycle under planned faults.

One base station distributes one extension to one robot while a
:class:`FaultPlan` eats 20% of all traffic and crashes the base mid-run
(volatile state lost, durable state kept).  The platform must converge
to exactly one installed copy, clean up completely on revocation, and —
because every fault draws from the same seeded RNG — do all of it
identically on every run of the same seed.
"""

import pytest

from repro.core.platform import ProactivePlatform
from repro.faults import FaultPlan
from repro.net.geometry import Position
from repro.resilience import RetryPolicy
from repro.telemetry import Timeline

from tests.support import TraceAspect, export_artifacts

SEEDS = [7, 21, 99]

#: Chaos window: loss for the first 40 s, one base crash at 12 s that
#: heals at 18 s.  After t=40 the radio is clean and the protocols can
#: finish converging.
def chaos_plan() -> FaultPlan:
    return (
        FaultPlan()
        .drop(probability=0.2, between=(0.0, 40.0))
        .crash("hall", at=12.0, down_for=6.0)
    )


def build_world(seed: int):
    platform = ProactivePlatform(
        seed=seed,
        lease_duration=8.0,
        retry_policy=RetryPolicy(max_attempts=4, initial_backoff=0.25),
    )
    registry = platform.enable_telemetry()
    hall = platform.create_base_station("hall", Position(0, 0))
    hall.add_extension("trace", TraceAspect)
    robot = platform.create_mobile_node("robot", Position(5, 0))
    return platform, registry, hall, robot


def run_lifecycle(seed: int):
    """Run the chaos scenario and return a summary of what happened."""
    platform, registry, hall, robot = build_world(seed)
    try:
        installs = []
        live = set()

        def on_installed(installed):
            # At-most-once: a second live copy of the same extension
            # would double advice on every intercepted call.
            assert installed.name not in live, "duplicate concurrent install"
            live.add(installed.name)
            installs.append((platform.now, installed.name))

        robot.adaptation.on_installed.connect(on_installed)
        robot.adaptation.on_withdrawn.connect(
            lambda installed, reason: live.discard(installed.name)
        )

        injector = platform.install_faults(chaos_plan())
        platform.run_for(60.0)

        # Converged: exactly the one extension, installed exactly once
        # at a time, despite loss and the crash.
        assert robot.extensions() == ["trace"]
        assert hall.extension_base.adapted_nodes() == ["robot"]

        # The faults really happened, and the causal timeline orders
        # them: the hall crashed, then restarted, and the copy that
        # survived to the end was installed on the robot's ring.
        assert injector.faults_injected > 0
        assert registry.counter_total("faults.injected") > 0
        timeline = Timeline.from_hub(registry.flight)
        crash = timeline.events("fault.crash").on("hall")
        restart = timeline.events("fault.restart").on("hall")
        assert crash.count() == 1 and restart.count() == 1
        assert crash.precedes(restart)
        installs_seen = timeline.events("midas.installed").on("robot")
        assert installs_seen.exists

        # Clean retirement on a clean radio: the hall drops the policy
        # (else the reconciler would re-offer it) and revokes; both
        # sides forget the lease and nothing resurrects it.
        injector.uninstall()
        hall.extension_base.catalog.remove("trace")
        hall.extension_base.revoke_node("robot")
        platform.run_for(30.0)
        assert robot.extensions() == []
        assert hall.extension_base.adapted_nodes() == []
        assert robot.adaptation._leases.active() == []

        # Retirement is causally ordered too: every install strictly
        # precedes the revocation withdrawal on the robot's own ring.
        final = Timeline.from_hub(registry.flight)
        revoked = final.events("midas.withdrawn").on("robot").where(reason="revoked")
        assert revoked.exists
        assert final.events("midas.installed").on("robot").precedes(revoked)

        return {
            "installs": installs,
            "faults": injector.faults_injected,
            "delivered": platform.network.messages_delivered,
            "dropped": platform.network.messages_dropped,
            # The flight timeline itself must replay identically — node,
            # kind and virtual time only (trace ids are process-global).
            "flight": [(e.node, e.kind, e.time) for e in final],
        }
    finally:
        export_artifacts(f"chaos-lifecycle-{seed}", registry)
        platform.disable_telemetry()


class TestChaosLifecycle:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_lifecycle_converges_under_chaos(self, seed):
        summary = run_lifecycle(seed)
        # The extension went in at least once; reinstalls after the
        # crash are fine, duplicates were asserted against inline.
        assert summary["installs"]
        assert summary["faults"] > 0
        assert summary["dropped"] > 0

    def test_chaos_run_is_deterministic(self):
        first = run_lifecycle(SEEDS[0])
        second = run_lifecycle(SEEDS[0])
        assert first == second

    def test_crash_loses_volatile_state_only(self):
        """At the moment of the crash the base forgets who it adapted
        (volatile), but its catalog survives (durable) — so after the
        restart it re-offers and the robot converges again."""
        platform, registry, hall, robot = build_world(seed=5)
        try:
            platform.run_for(5.0)
            assert robot.extensions() == ["trace"]

            platform.install_faults(FaultPlan().crash("hall", at=6.0, down_for=4.0))
            platform.run_for(2.0)  # t = 7, hall is down
            assert hall.extension_base.adapted_nodes() == []
            assert "trace" in hall.extension_base.catalog

            platform.run_for(53.0)
            assert robot.extensions() == ["trace"]
            assert hall.extension_base.adapted_nodes() == ["robot"]
        finally:
            platform.disable_telemetry()
