"""Tuple space core tests."""

import pytest

from repro.tuplespace.space import ANY, Tuple, TupleSpace, TupleTemplate


@pytest.fixture
def space(sim):
    return TupleSpace(sim)


def extension_tuple(name="monitoring", hall="A"):
    return Tuple("midas.extension", {"name": name, "hall": hall})


class TestMatching:
    def test_kind_must_match(self):
        template = TupleTemplate("midas.extension")
        assert template.matches(extension_tuple())
        assert not template.matches(Tuple("other.kind"))

    def test_field_subset(self):
        template = TupleTemplate("midas.extension", {"hall": "A"})
        assert template.matches(extension_tuple(hall="A"))
        assert not template.matches(extension_tuple(hall="B"))

    def test_any_wildcard(self):
        template = TupleTemplate("midas.extension", {"hall": ANY})
        assert template.matches(extension_tuple(hall="A"))
        assert template.matches(extension_tuple(hall="B"))
        assert not template.matches(Tuple("midas.extension", {"name": "x"}))

    def test_empty_template_matches_kind(self):
        assert TupleTemplate("midas.extension").matches(extension_tuple())


class TestOperations:
    def test_out_then_rd(self, space):
        record = extension_tuple()
        space.out(record)
        assert space.rd(TupleTemplate("midas.extension")) == record
        assert len(space) == 1

    def test_rd_is_nondestructive(self, space):
        space.out(extension_tuple())
        space.rd(TupleTemplate("midas.extension"))
        assert len(space) == 1

    def test_rd_all_oldest_first(self, space):
        first, second = extension_tuple("a"), extension_tuple("b")
        space.out(first)
        space.out(second)
        assert space.rd_all(TupleTemplate("midas.extension")) == [first, second]

    def test_take_removes(self, space):
        record = extension_tuple()
        space.out(record)
        taken = space.take(TupleTemplate("midas.extension"))
        assert taken == record
        assert len(space) == 0

    def test_take_on_empty_returns_none(self, space):
        assert space.take(TupleTemplate("midas.extension")) is None

    def test_rd_no_match_returns_none(self, space):
        space.out(extension_tuple(hall="A"))
        assert space.rd(TupleTemplate("midas.extension", {"hall": "Z"})) is None


class TestLeases:
    def test_tuple_expires(self, sim, space):
        space.out(extension_tuple(), lease_duration=5.0)
        sim.run_for(6.0)
        assert len(space) == 0

    def test_renew_keeps_alive(self, sim, space):
        lease_id = space.out(extension_tuple(), lease_duration=5.0)
        for _ in range(4):
            sim.run_for(3.0)
            space.renew(lease_id)
        assert len(space) == 1

    def test_retract(self, sim, space):
        lease_id = space.out(extension_tuple(), lease_duration=60.0)
        space.retract(lease_id)
        assert len(space) == 0

    def test_removed_signal_reasons(self, sim, space):
        reasons = []
        space.on_removed.connect(lambda record, reason: reasons.append(reason))
        space.out(extension_tuple("a"), lease_duration=1.0)
        space.out(extension_tuple("b"), lease_duration=60.0)
        sim.run_for(2.0)  # a expires
        space.take(TupleTemplate("midas.extension", {"name": "b"}))
        assert "expired" in reasons and "taken" in reasons


class TestNotify:
    def test_existing_tuples_delivered_immediately(self, space):
        space.out(extension_tuple())
        seen = []
        space.notify(TupleTemplate("midas.extension"), seen.append)
        assert len(seen) == 1

    def test_future_tuples_delivered(self, space):
        seen = []
        space.notify(TupleTemplate("midas.extension"), seen.append)
        space.out(extension_tuple())
        assert len(seen) == 1

    def test_non_matching_not_delivered(self, space):
        seen = []
        space.notify(TupleTemplate("midas.extension", {"hall": "Z"}), seen.append)
        space.out(extension_tuple(hall="A"))
        assert seen == []

    def test_cancel_stops_delivery(self, space):
        seen = []
        cancel = space.notify(TupleTemplate("midas.extension"), seen.append)
        cancel()
        space.out(extension_tuple())
        assert seen == []
