"""Tuple space network service tests."""

import pytest

from repro.net.geometry import Position
from repro.net.node import NetworkNode
from repro.net.transport import Transport
from repro.tuplespace.service import TupleSpaceClient, TupleSpaceService
from repro.tuplespace.space import Tuple, TupleSpace, TupleTemplate


@pytest.fixture
def rig(sim, network):
    host = network.attach(NetworkNode("host", Position(0, 0)))
    user = network.attach(NetworkNode("user", Position(5, 0)))
    space = TupleSpace(sim)
    service = TupleSpaceService(space, Transport(host, sim), sim)
    client = TupleSpaceClient(Transport(user, sim), "host")
    return space, service, client


def record(name="x"):
    return Tuple("midas.extension", {"name": name})


class TestRemoteOperations:
    def test_remote_out_and_rd(self, sim, rig):
        space, _, client = rig
        client.out(record("a"))
        sim.run_for(1.0)
        assert len(space) == 1
        results = []
        client.rd(TupleTemplate("midas.extension"), results.append)
        sim.run_for(1.0)
        assert len(results[0]) == 1
        assert results[0][0].fields["name"] == "a"

    def test_remote_take(self, sim, rig):
        space, _, client = rig
        client.out(record("a"))
        sim.run_for(1.0)
        taken = []
        client.take(TupleTemplate("midas.extension"), taken.append)
        sim.run_for(1.0)
        assert taken[0].fields["name"] == "a"
        assert len(space) == 0

    def test_remote_renew_and_retract(self, sim, rig):
        space, _, client = rig
        lease_ids = []
        client.out(record("a"), lease_duration=3.0, on_done=lease_ids.append)
        sim.run_for(1.0)
        for _ in range(3):
            client.renew(lease_ids[0])
            sim.run_for(2.0)
        assert len(space) == 1
        client.retract(lease_ids[0])
        sim.run_for(1.0)
        assert len(space) == 0

    def test_tuples_deep_copied_across_radio(self, sim, rig):
        space, _, client = rig
        original = Tuple("midas.extension", {"name": "a", "tags": ["x"]})
        client.out(original)
        sim.run_for(1.0)
        original.fields["tags"].append("mutated")
        stored = space.rd(TupleTemplate("midas.extension"))
        assert stored.fields["tags"] == ["x"]


class TestRemoteListen:
    def test_listener_gets_existing_and_future(self, sim, rig):
        space, _, client = rig
        client.out(record("early"))
        sim.run_for(1.0)
        seen = []
        client.listen(TupleTemplate("midas.extension"),
                      lambda t: seen.append(t.fields["name"]))
        sim.run_for(1.0)
        client.out(record("late"))
        sim.run_for(1.0)
        assert seen == ["early", "late"]

    def test_listener_lease_expires(self, sim, rig):
        space, _, client = rig
        seen = []
        client.listen(
            TupleTemplate("midas.extension"),
            lambda t: seen.append(t),
            duration=3.0,
        )
        sim.run_for(5.0)  # listener lease lapses
        client.out(record("after"))
        sim.run_for(1.0)
        assert seen == []

    def test_listener_renewable(self, sim, rig):
        space, _, client = rig
        seen = []
        lease_ids = []
        client.listen(
            TupleTemplate("midas.extension"),
            lambda t: seen.append(t),
            duration=3.0,
            on_registered=lease_ids.append,
        )
        sim.run_for(1.0)
        for _ in range(3):
            client.renew(lease_ids[0])
            sim.run_for(2.0)
        client.out(record("still-listening"))
        sim.run_for(1.0)
        assert len(seen) == 1
