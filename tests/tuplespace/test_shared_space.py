"""Several environments sharing one tuple space."""

import pytest

from repro.aop.sandbox import Capability, SandboxPolicy
from repro.aop.vm import ProseVM
from repro.midas.catalog import ExtensionCatalog
from repro.midas.receiver import AdaptationService
from repro.midas.remote import RemoteCaller
from repro.midas.scheduler import SchedulerService
from repro.midas.trust import Signer, TrustStore
from repro.net.geometry import Position
from repro.net.node import NetworkNode
from repro.net.transport import Transport
from repro.tuplespace.distribution import TupleSpaceAcquirer, TupleSpaceDistributor
from repro.tuplespace.service import TupleSpaceClient, TupleSpaceService
from repro.tuplespace.space import TupleSpace

from tests.support import TraceAspect


def make_publisher(sim, network, name, scope, signers_registry):
    signer = Signer.generate(name)
    signers_registry.append(signer)
    node = network.attach(NetworkNode(name, Position(1, len(name)), 80))
    catalog = ExtensionCatalog(signer)
    catalog.add(f"{name}-policy", TraceAspect)
    return TupleSpaceDistributor(
        catalog,
        TupleSpaceClient(Transport(node, sim), "space-host"),
        sim,
        scope=scope,
        tuple_lease=10.0,
    )


def make_subscriber(sim, network, name, scope, signers):
    node = network.attach(NetworkNode(name, Position(5, len(name)), 80))
    transport = Transport(node, sim)
    trust = TrustStore()
    for signer in signers:
        trust.trust_signer(signer)
    adaptation = AdaptationService(
        ProseVM(name=name),
        transport,
        sim,
        trust,
        policy=SandboxPolicy.permissive(),
        services={
            Capability.NETWORK: RemoteCaller(transport),
            Capability.CLOCK: sim.clock,
            Capability.SCHEDULER: SchedulerService(sim),
        },
    )
    TupleSpaceAcquirer(
        adaptation,
        TupleSpaceClient(transport, "space-host"),
        sim,
        scope=scope,
        refresh_interval=1.0,
        installation_lease=5.0,
    ).start()
    return adaptation


@pytest.fixture
def shared(sim, network):
    host = network.attach(NetworkNode("space-host", Position(0, 0), 80))
    space = TupleSpace(sim, name="site")
    TupleSpaceService(space, Transport(host, sim), sim)
    signers: list[Signer] = []
    hall_a = make_publisher(sim, network, "hall-A", {"hall": "A"}, signers)
    hall_b = make_publisher(sim, network, "hall-B", {"hall": "B"}, signers)
    hall_a.publish()
    hall_b.publish()
    robot_a = make_subscriber(sim, network, "robot-a", {"hall": "A"}, signers)
    robot_b = make_subscriber(sim, network, "robot-b", {"hall": "B"}, signers)
    sim.run_for(5.0)
    return space, hall_a, hall_b, robot_a, robot_b


class TestSharedSpace:
    def test_scoped_pull(self, shared):
        space, hall_a, hall_b, robot_a, robot_b = shared
        assert [i.name for i in robot_a.installed()] == ["hall-A-policy"]
        assert [i.name for i in robot_b.installed()] == ["hall-B-policy"]
        assert len(space) == 2

    def test_retraction_scoped_to_publisher(self, sim, shared):
        space, hall_a, hall_b, robot_a, robot_b = shared
        hall_a.retract_all()
        sim.run_for(15.0)
        assert robot_a.installed() == []
        assert [i.name for i in robot_b.installed()] == ["hall-B-policy"]

    def test_one_publisher_crash_leaves_other_intact(self, sim, shared):
        space, hall_a, hall_b, robot_a, robot_b = shared
        hall_a._refresher.stop()  # hall A's operator dies
        sim.run_for(40.0)
        assert robot_a.installed() == []
        assert [i.name for i in robot_b.installed()] == ["hall-B-policy"]
        assert len(space) == 1
