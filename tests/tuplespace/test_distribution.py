"""Tuple-space extension distribution tests (the §4.6 future work)."""

import pytest

from repro.aop.sandbox import Capability, SandboxPolicy
from repro.aop.vm import ProseVM
from repro.midas.catalog import ExtensionCatalog
from repro.midas.receiver import AdaptationService
from repro.midas.remote import RemoteCaller
from repro.midas.scheduler import SchedulerService
from repro.midas.trust import Signer, TrustStore
from repro.net.geometry import Position
from repro.net.node import NetworkNode
from repro.net.transport import Transport
from repro.tuplespace.distribution import TupleSpaceAcquirer, TupleSpaceDistributor
from repro.tuplespace.service import TupleSpaceClient, TupleSpaceService
from repro.tuplespace.space import TupleSpace

from tests.support import Engine, TraceAspect, fresh_class


class SpaceWorld:
    """Space host + publishing base + pulling node."""

    def __init__(self, sim, network, node_scope=None, trusted=True):
        self.sim = sim
        self.signer = Signer.generate("hall-A")

        host = network.attach(NetworkNode("space-host", Position(0, 0)))
        self.space = TupleSpace(sim)
        TupleSpaceService(self.space, Transport(host, sim), sim)

        base_node = network.attach(NetworkNode("base", Position(3, 0)))
        self.catalog = ExtensionCatalog(self.signer)
        self.catalog.add("trace", lambda: TraceAspect(type_pattern="Engine"))
        self.distributor = TupleSpaceDistributor(
            self.catalog,
            TupleSpaceClient(Transport(base_node, sim), "space-host"),
            sim,
            scope={"hall": "A"},
            tuple_lease=10.0,
        )

        device = network.attach(NetworkNode("device", Position(5, 0)))
        self.vm = ProseVM()
        trust = TrustStore()
        if trusted:
            trust.trust_signer(self.signer)
        device_transport = Transport(device, sim)
        self.adaptation = AdaptationService(
            self.vm,
            device_transport,
            sim,
            trust,
            policy=SandboxPolicy.permissive(),
            services={
                Capability.NETWORK: RemoteCaller(device_transport),
                Capability.CLOCK: sim.clock,
                Capability.SCHEDULER: SchedulerService(sim),
            },
        )
        self.acquirer = TupleSpaceAcquirer(
            self.adaptation,
            TupleSpaceClient(device_transport, "space-host"),
            sim,
            scope=node_scope if node_scope is not None else {"hall": "A"},
            refresh_interval=1.0,
            installation_lease=5.0,
        )


@pytest.fixture
def world(sim, network):
    return SpaceWorld(sim, network)


class TestAcquisition:
    def test_node_pulls_matching_extension(self, sim, world):
        world.distributor.publish()
        world.acquirer.start()
        sim.run_for(3.0)
        assert world.adaptation.is_installed("trace")

    def test_publish_before_node_exists_still_works(self, sim, world):
        """The space decouples provider and receiver in time."""
        world.distributor.publish()
        sim.run_for(5.0)  # policy sits in the space, nobody around
        world.acquirer.start()
        sim.run_for(3.0)
        assert world.adaptation.is_installed("trace")

    def test_scope_mismatch_not_pulled(self, sim, network):
        world = SpaceWorld(sim, network, node_scope={"hall": "B"})
        world.distributor.publish()
        world.acquirer.start()
        sim.run_for(5.0)
        assert not world.adaptation.is_installed("trace")

    def test_untrusted_publisher_rejected(self, sim, network):
        world = SpaceWorld(sim, network, trusted=False)
        world.distributor.publish()
        world.acquirer.start()
        sim.run_for(5.0)
        assert not world.adaptation.is_installed("trace")

    def test_installed_extension_intercepts(self, sim, world):
        cls = fresh_class()
        world.vm.load_class(cls)
        world.distributor.publish()
        world.acquirer.start()
        sim.run_for(3.0)
        cls().start()
        aspect = world.adaptation.find("trace").aspect
        assert ("start", ()) in aspect.trace


class TestLocality:
    def test_retracting_tuple_withdraws_extension(self, sim, world):
        world.distributor.publish()
        world.acquirer.start()
        sim.run_for(3.0)
        assert world.adaptation.is_installed("trace")
        withdrawn = []
        world.adaptation.on_withdrawn.connect(
            lambda inst, reason: withdrawn.append(reason)
        )
        world.distributor.retract("trace")
        sim.run_for(10.0)  # installation lease lapses without renewal
        assert not world.adaptation.is_installed("trace")
        assert "lease-expired" in withdrawn

    def test_publisher_death_withdraws_everywhere(self, sim, world):
        """If the distributor stops refreshing, tuples lapse and so do
        the extensions they carried — no orphaned policy."""
        world.distributor.publish()
        world.acquirer.start()
        sim.run_for(3.0)
        world.distributor._refresher.stop()  # simulate publisher crash
        sim.run_for(30.0)
        assert len(world.space) == 0
        assert not world.adaptation.is_installed("trace")

    def test_acquirer_keeps_renewing_while_tuple_lives(self, sim, world):
        world.distributor.publish()
        world.acquirer.start()
        sim.run_for(30.0)  # several installation lease terms
        assert world.adaptation.is_installed("trace")


class TestPartitions:
    def test_partition_from_space_withdraws_then_heals(self, sim, network, world):
        world.distributor.publish()
        world.acquirer.start()
        sim.run_for(3.0)
        assert world.adaptation.is_installed("trace")

        network.partition("space-host", "device")
        sim.run_for(30.0)  # renewals can't reach the space; lease lapses
        assert not world.adaptation.is_installed("trace")

        network.heal("space-host", "device")
        sim.run_for(10.0)  # next refresh re-reads the space and reinstalls
        assert world.adaptation.is_installed("trace")

    def test_publisher_partition_tolerated_within_tuple_lease(self, sim, network, world):
        world.distributor.publish()
        world.acquirer.start()
        sim.run_for(3.0)
        network.partition("space-host", "base")
        sim.run_for(4.0)  # tuple lease is 10s; refreshes missed but alive
        assert world.adaptation.is_installed("trace")
        network.heal("space-host", "base")
        sim.run_for(30.0)
        assert world.adaptation.is_installed("trace")


class TestReplacement:
    def test_replace_extension_reaches_holders(self, sim, world):
        world.distributor.publish()
        world.acquirer.start()
        sim.run_for(3.0)
        old = world.adaptation.find("trace").aspect
        world.distributor.replace_extension(
            "trace", lambda: TraceAspect(type_pattern="Turbine")
        )
        sim.run_for(5.0)
        new = world.adaptation.find("trace")
        assert new.aspect is not old
        assert new.envelope.version == 2
