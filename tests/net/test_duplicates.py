"""Duplicate and stray message handling at the transport (regressions).

A reply for a request that is no longer pending — a wire duplicate or a
reply landing after its timeout — must be dropped exactly once, counted,
and must never re-fire ``on_reply``.  A duplicated *request* must not
re-run the handler (at-most-once execution).
"""

import pytest

from repro.errors import RequestTimeout
from repro.net.geometry import Position
from repro.net.network import FaultVerdict
from repro.net.node import NetworkNode
from repro.net.transport import DEDUP_WINDOW, Transport
from repro.telemetry import MetricsRegistry
from repro.telemetry import runtime as _telemetry


@pytest.fixture
def pair(sim, network):
    a = network.attach(NetworkNode("a", Position(0, 0)))
    b = network.attach(NetworkNode("b", Position(5, 0)))
    return Transport(a, sim), Transport(b, sim)


def duplicate_kind(network, kind, copies=2):
    """Fault-hook every message of ``kind`` into ``copies`` deliveries."""
    network.fault_hook = lambda message, source, destination: (
        FaultVerdict(copies=copies) if message.kind == kind else None
    )


class TestStrayReplies:
    def test_duplicated_reply_fires_on_reply_exactly_once(self, sim, network, pair):
        client, server = pair
        server.register("ping", lambda sender, body: "pong")
        duplicate_kind(network, "transport.reply")
        replies = []
        client.request("b", "ping", on_reply=replies.append)
        sim.run()
        assert replies == ["pong"]
        assert client.stray_replies == 1

    def test_late_reply_after_timeout_is_counted_not_delivered(self, sim, network, pair):
        client, server = pair
        server.register("slow", lambda sender, body: "late")
        # Delay the reply beyond the request timeout.
        network.fault_hook = lambda message, source, destination: (
            FaultVerdict(extra_delay=2.0)
            if message.kind == "transport.reply"
            else None
        )
        replies, errors = [], []
        client.request(
            "b", "slow", on_reply=replies.append, on_error=errors.append, timeout=1.0
        )
        sim.run()
        assert isinstance(errors[0], RequestTimeout)
        assert replies == []
        assert client.stray_replies == 1

    def test_stray_replies_visible_in_telemetry(self, sim, network, pair):
        client, server = pair
        server.register("ping", lambda sender, body: "pong")
        duplicate_kind(network, "transport.reply")
        registry = MetricsRegistry(clock=sim.clock)
        previous = _telemetry.install(registry)
        try:
            client.request("b", "ping")
            sim.run()
        finally:
            _telemetry.install(previous)
        assert registry.counter_total("net.transport.stray_replies") == 1
        events = [e for e in registry.events if e.name == "transport.stray_reply"]
        assert len(events) == 1
        assert events[0].fields["operation"] == "ping"

    def test_triple_duplication_drops_each_extra_once(self, sim, network, pair):
        client, server = pair
        server.register("ping", lambda sender, body: "pong")
        duplicate_kind(network, "transport.reply", copies=3)
        replies = []
        client.request("b", "ping", on_reply=replies.append)
        sim.run()
        assert replies == ["pong"]
        assert client.stray_replies == 2


class TestDuplicateRequests:
    def test_handler_runs_once_for_duplicated_request(self, sim, network, pair):
        client, server = pair
        executions = []
        server.register("incr", lambda sender, body: executions.append(1) or "done")
        duplicate_kind(network, "transport.request")
        replies = []
        client.request("b", "incr", on_reply=replies.append)
        sim.run()
        assert len(executions) == 1
        assert server.duplicate_requests == 1
        assert replies == ["done"]  # second reply dropped as a stray
        assert client.stray_replies == 1

    def test_cached_error_reply_not_reexecuted(self, sim, network, pair):
        client, server = pair
        attempts = []

        def broken(sender, body):
            attempts.append(1)
            raise ValueError("boom")

        server.register("boom", broken)
        duplicate_kind(network, "transport.request")
        errors = []
        client.request("b", "boom", on_error=errors.append)
        sim.run()
        assert len(attempts) == 1
        assert server.duplicate_requests == 1

    def test_distinct_requests_are_not_deduplicated(self, sim, pair):
        client, server = pair
        executions = []
        server.register("op", lambda sender, body: executions.append(body))
        client.request("b", "op", 1)
        client.request("b", "op", 2)
        sim.run()
        assert executions == [1, 2]
        assert server.duplicate_requests == 0

    def test_dedup_window_is_bounded(self, sim, pair):
        client, server = pair
        server.register("op", lambda sender, body: body)
        for i in range(DEDUP_WINDOW + 10):
            client.request("b", "op", i)
        sim.run()
        assert len(server._served) == DEDUP_WINDOW

    def test_reset_volatile_clears_pending_and_served(self, sim, pair):
        client, server = pair
        server.register("ping", lambda sender, body: "pong")
        outcomes = []
        client.request(
            "b", "ping",
            on_reply=lambda _: outcomes.append("reply"),
            on_error=lambda _: outcomes.append("error"),
        )
        client.reset_volatile()
        sim.run()
        # The pending callback was wiped: neither fires, and the reply
        # that still arrives is a counted stray.
        assert outcomes == []
        assert client.stray_replies == 1
