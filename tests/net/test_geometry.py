"""Geometry tests."""

import pytest

from repro.net.geometry import ORIGIN, Position, Region


class TestPosition:
    def test_distance(self):
        assert Position(0, 0).distance_to(Position(3, 4)) == 5.0

    def test_distance_symmetric(self):
        a, b = Position(1, 2), Position(-3, 7)
        assert a.distance_to(b) == b.distance_to(a)

    def test_distance_to_self_is_zero(self):
        p = Position(2.5, -1.0)
        assert p.distance_to(p) == 0.0

    def test_moved_towards_partial(self):
        moved = Position(0, 0).moved_towards(Position(10, 0), 4.0)
        assert moved == Position(4.0, 0.0)

    def test_moved_towards_never_overshoots(self):
        moved = Position(0, 0).moved_towards(Position(1, 0), 100.0)
        assert moved == Position(1, 0)

    def test_moved_towards_self_stays(self):
        p = Position(3, 3)
        assert p.moved_towards(p, 5.0) == p

    def test_moved_towards_diagonal_preserves_direction(self):
        moved = Position(0, 0).moved_towards(Position(10, 10), 2.0)
        assert moved.x == pytest.approx(moved.y)
        assert Position(0, 0).distance_to(moved) == pytest.approx(2.0)

    def test_is_tuple_like(self):
        x, y = Position(1, 2)
        assert (x, y) == (1, 2)

    def test_origin(self):
        assert ORIGIN == Position(0.0, 0.0)


class TestRegion:
    def test_contains_interior_point(self):
        region = Region(0, 0, 10, 10)
        assert region.contains(Position(5, 5))

    def test_contains_edge_point(self):
        region = Region(0, 0, 10, 10)
        assert region.contains(Position(0, 10))

    def test_excludes_outside_point(self):
        region = Region(0, 0, 10, 10)
        assert not region.contains(Position(10.01, 5))

    def test_center(self):
        assert Region(0, 0, 10, 20).center == Position(5, 10)

    def test_width_height(self):
        region = Region(1, 2, 4, 10)
        assert region.width == 3
        assert region.height == 8

    def test_corners(self):
        corners = list(Region(0, 0, 2, 3).corners())
        assert len(corners) == 4
        assert Position(0, 0) in corners
        assert Position(2, 3) in corners

    def test_degenerate_region_rejected(self):
        with pytest.raises(ValueError):
            Region(5, 0, 4, 10)

    def test_zero_area_region_allowed(self):
        region = Region(5, 5, 5, 5)
        assert region.contains(Position(5, 5))
