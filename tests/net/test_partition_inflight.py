"""Partition/heal with messages in flight: accounting stays consistent.

Every unicast transmission must end in exactly one delivery or one
counted drop, whatever happens to the link while the message is on it.
"""

import pytest

from repro.net.geometry import Position
from repro.net.network import Network, NetworkConfig
from repro.net.node import NetworkNode
from repro.net.transport import Transport


@pytest.fixture
def pair(sim, network):
    a = network.attach(NetworkNode("a", Position(0, 0)))
    b = network.attach(NetworkNode("b", Position(5, 0)))
    return a, b


class TestInFlightSemantics:
    def test_message_in_flight_survives_partition(self, sim, network, pair):
        a, b = pair
        received = []
        b.set_handler("k", lambda message: received.append(message.payload))
        a.send("b", "k", "sent-before-wall")
        # The wall goes up while the message is on the air.
        network.partition("a", "b")
        sim.run()
        assert received == ["sent-before-wall"]
        assert network.messages_delivered == 1
        assert network.messages_dropped == 0

    def test_message_sent_after_partition_is_dropped(self, sim, network, pair):
        a, b = pair
        received = []
        b.set_handler("k", lambda message: received.append(message.payload))
        network.partition("a", "b")
        a.send("b", "k", "into-the-wall")
        sim.run()
        assert received == []
        assert network.messages_dropped == 1

    def test_heal_mid_flight_does_not_double_deliver(self, sim, network, pair):
        a, b = pair
        received = []
        b.set_handler("k", lambda message: received.append(message.payload))
        a.send("b", "k", "m1")
        network.partition("a", "b")
        network.heal("a", "b")
        sim.run()
        assert received == ["m1"]
        assert network.messages_transmitted == 1
        assert network.messages_delivered == 1

    def test_detach_mid_flight_drops_with_reason(self, sim, network, pair):
        a, b = pair
        drops = []
        network.on_drop.connect(lambda message, reason: drops.append(reason))
        a.send("b", "k", "doomed")
        network.detach(b)
        sim.run()
        assert drops == ["destination detached in flight"]
        assert network.messages_dropped == 1
        assert network.messages_delivered == 0


class TestAccounting:
    def test_every_unicast_ends_in_delivery_or_drop(self, sim):
        network = Network(sim, seed=99, config=NetworkConfig(loss_probability=0.2))
        a = network.attach(NetworkNode("a", Position(0, 0)))
        b = network.attach(NetworkNode("b", Position(5, 0)))
        b.set_handler("k", lambda message: None)
        for i in range(60):
            sim.schedule_at(i * 0.1, a.send, "b", "k", i)
        # A partition window opens and closes while traffic flows.
        sim.schedule_at(2.0, network.partition, "a", "b")
        sim.schedule_at(4.0, network.heal, "a", "b")
        sim.run()
        assert network.messages_transmitted == 60
        assert (
            network.messages_delivered + network.messages_dropped
            == network.messages_transmitted
        )
        assert network.messages_delivered > 0
        assert network.messages_dropped > 0

    def test_request_reply_accounting_through_partition_cycle(self, sim, network, pair):
        a, b = pair
        client, server = Transport(a, sim), Transport(b, sim)
        server.register("ping", lambda sender, body: "pong")
        outcomes = []
        for i in range(10):
            sim.schedule_at(
                i * 1.0,
                lambda: client.request(
                    "b", "ping",
                    on_reply=lambda _: outcomes.append("ok"),
                    on_error=lambda _: outcomes.append("fail"),
                    timeout=0.5,
                ),
            )
        sim.schedule_at(2.5, network.partition, "a", "b")
        sim.schedule_at(6.5, network.heal, "a", "b")
        sim.run()
        assert len(outcomes) == 10  # exactly one outcome per request
        assert outcomes.count("fail") == 4  # t = 3, 4, 5, 6
        # Requests during the outage were dropped and counted.
        assert (
            network.messages_delivered + network.messages_dropped
            == network.messages_transmitted
        )
