"""Network node tests."""

import pytest

from repro.errors import NetworkError
from repro.net.geometry import Position
from repro.net.message import Message
from repro.net.node import NetworkNode


class TestHandlers:
    def test_handler_dispatch_by_kind(self, sim, network):
        node = network.attach(NetworkNode("n"))
        got = []
        node.set_handler("ping", got.append)
        node.deliver(Message("x", "n", "ping", 1))
        node.deliver(Message("x", "n", "pong", 2))
        assert len(got) == 1

    def test_unhandled_signal(self, network):
        node = network.attach(NetworkNode("n"))
        unhandled = []
        node.on_unhandled.connect(unhandled.append)
        node.deliver(Message("x", "n", "mystery"))
        assert len(unhandled) == 1

    def test_handler_error_contained(self, network):
        node = network.attach(NetworkNode("n"))

        def broken(message):
            raise ValueError("handler bug")

        node.set_handler("ping", broken)
        node.deliver(Message("x", "n", "ping"))  # no raise

    def test_remove_handler(self, network):
        node = network.attach(NetworkNode("n"))
        got = []
        node.set_handler("ping", got.append)
        node.remove_handler("ping")
        node.deliver(Message("x", "n", "ping"))
        assert got == []
        node.remove_handler("never-there")  # no error

    def test_message_counters(self, sim, network):
        a = network.attach(NetworkNode("a", Position(0, 0)))
        b = network.attach(NetworkNode("b", Position(1, 0)))
        b.set_handler("x", lambda message: None)
        a.send("b", "x")
        sim.run()
        assert a.messages_sent == 1
        assert b.messages_received == 1


class TestDetachedBehaviour:
    def test_detached_send_is_dropped_silently(self, network):
        node = NetworkNode("loner")
        message = node.send("anyone", "ping")
        assert message.kind == "ping"
        assert node.messages_sent == 0

    def test_detached_broadcast_is_dropped_silently(self):
        NetworkNode("loner").broadcast("ping")


class TestGeometryAndIdentity:
    def test_invalid_radio_range(self):
        with pytest.raises(NetworkError):
            NetworkNode("n", radio_range=0.0)

    def test_move_to_fires_signal(self, network):
        node = network.attach(NetworkNode("n", Position(0, 0)))
        moves = []
        node.on_moved.connect(moves.append)
        node.move_to(Position(3, 4))
        assert moves == [Position(3, 4)]
        assert node.position == Position(3, 4)

    def test_distance_between_nodes(self, network):
        a = network.attach(NetworkNode("a", Position(0, 0)))
        b = network.attach(NetworkNode("b", Position(3, 4)))
        assert a.distance_to(b) == 5.0
