"""Mobility model tests."""

import pytest

from repro.net.geometry import Position, Region
from repro.net.mobility import WaypointMobility, follow_path
from repro.net.node import NetworkNode


@pytest.fixture
def node(network):
    return network.attach(NetworkNode("walker", Position(0, 0)))


class TestWaypointMobility:
    def test_reaches_waypoint(self, sim, node):
        mobility = WaypointMobility(sim, node, speed=2.0)
        mobility.go_to(Position(10, 0))
        sim.run_for(10.0)
        assert node.position == Position(10, 0)
        assert not mobility.moving

    def test_moves_gradually(self, sim, node):
        mobility = WaypointMobility(sim, node, speed=1.0, step=0.5)
        mobility.go_to(Position(100, 0))
        sim.run_for(10.0)
        assert 0 < node.position.x < 100

    def test_speed_determines_arrival_time(self, sim, node):
        mobility = WaypointMobility(sim, node, speed=5.0)
        mobility.go_to(Position(10, 0))
        arrivals = []
        mobility.on_arrival.connect(lambda wp: arrivals.append(sim.now))
        sim.run_for(60.0)
        assert arrivals
        assert arrivals[0] == pytest.approx(2.0, abs=0.5)

    def test_multiple_waypoints_in_order(self, sim, node):
        mobility = WaypointMobility(sim, node, speed=10.0)
        visited = []
        mobility.on_arrival.connect(visited.append)
        mobility.go_to(Position(10, 0))
        mobility.go_to(Position(10, 10))
        sim.run_for(60.0)
        assert visited == [Position(10, 0), Position(10, 10)]

    def test_region_target_means_center(self, sim, node):
        mobility = WaypointMobility(sim, node, speed=10.0)
        mobility.go_to(Region(0, 0, 20, 20))
        sim.run_for(60.0)
        assert node.position == Position(10, 10)

    def test_stop_halts_in_place(self, sim, node):
        mobility = WaypointMobility(sim, node, speed=1.0)
        mobility.go_to(Position(100, 0))
        sim.run_for(5.0)
        mobility.stop()
        here = node.position
        sim.run_for(20.0)
        assert node.position == here
        assert not mobility.moving

    def test_on_idle_fires_when_done(self, sim, node):
        mobility = WaypointMobility(sim, node, speed=10.0)
        idles = []
        mobility.on_idle.connect(lambda: idles.append(sim.now))
        mobility.go_to(Position(5, 0))
        sim.run_for(30.0)
        assert idles

    def test_eta_estimates_remaining_travel(self, sim, node):
        mobility = WaypointMobility(sim, node, speed=2.0)
        mobility.go_to(Position(10, 0))
        mobility.go_to(Position(10, 10))
        assert mobility.eta() == pytest.approx(10.0)

    def test_node_moved_signal_fires(self, sim, node):
        moves = []
        node.on_moved.connect(moves.append)
        mobility = WaypointMobility(sim, node, speed=1.0)
        mobility.go_to(Position(3, 0))
        sim.run_for(10.0)
        assert moves

    def test_invalid_speed_rejected(self, sim, node):
        with pytest.raises(ValueError):
            WaypointMobility(sim, node, speed=0.0)

    def test_go_to_while_moving_appends(self, sim, node):
        mobility = WaypointMobility(sim, node, speed=10.0)
        mobility.go_to(Position(10, 0))
        sim.run_for(0.4)
        mobility.go_to(Position(20, 0))
        sim.run_for(60.0)
        assert node.position == Position(20, 0)


class TestFollowPath:
    def test_walks_full_path_then_calls_done(self, sim, node):
        done = []
        follow_path(
            sim,
            node,
            [Position(5, 0), Position(5, 5)],
            speed=10.0,
            on_done=lambda: done.append(sim.now),
        )
        sim.run_for(60.0)
        assert node.position == Position(5, 5)
        assert done
