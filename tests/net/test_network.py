"""Radio network tests."""

import pytest

from repro.errors import UnknownNodeError
from repro.net.geometry import Position
from repro.net.message import Message
from repro.net.network import Network, NetworkConfig
from repro.net.node import NetworkNode


def make_pair(network, distance=10.0, radio_range=50.0):
    a = network.attach(NetworkNode("a", Position(0, 0), radio_range))
    b = network.attach(NetworkNode("b", Position(distance, 0), radio_range))
    return a, b


class TestMembership:
    def test_attach_and_lookup(self, network):
        node = network.attach(NetworkNode("n1"))
        assert network.node("n1") is node
        assert "n1" in network

    def test_duplicate_id_rejected(self, network):
        network.attach(NetworkNode("n1"))
        with pytest.raises(UnknownNodeError):
            network.attach(NetworkNode("n1"))

    def test_unknown_node_lookup_fails(self, network):
        with pytest.raises(UnknownNodeError):
            network.node("ghost")

    def test_detach(self, network):
        node = network.attach(NetworkNode("n1"))
        network.detach(node)
        assert "n1" not in network
        assert node.network is None


class TestConnectivity:
    def test_in_range_nodes_reachable(self, network):
        a, b = make_pair(network, distance=10.0)
        assert network.reachable(a, b)

    def test_out_of_range_nodes_unreachable(self, network):
        a, b = make_pair(network, distance=200.0)
        assert not network.reachable(a, b)

    def test_range_is_limited_by_both_radios(self, network):
        a = network.attach(NetworkNode("a", Position(0, 0), radio_range=100))
        b = network.attach(NetworkNode("b", Position(50, 0), radio_range=10))
        assert not network.reachable(a, b)

    def test_partition_severs_link(self, network):
        a, b = make_pair(network)
        network.partition("a", "b")
        assert not network.reachable(a, b)
        assert not network.reachable(b, a)

    def test_heal_restores_link(self, network):
        a, b = make_pair(network)
        network.partition("a", "b")
        network.heal("a", "b")
        assert network.reachable(a, b)

    def test_neighbors(self, network):
        a, b = make_pair(network, distance=10.0)
        far = network.attach(NetworkNode("far", Position(500, 0)))
        assert network.neighbors(a) == [b]
        assert network.neighbors(far) == []


class TestDelivery:
    def test_unicast_delivery(self, sim, network):
        a, b = make_pair(network)
        got = []
        b.set_handler("ping", got.append)
        a.send("b", "ping", {"n": 1})
        sim.run()
        assert len(got) == 1
        assert got[0].payload == {"n": 1}

    def test_delivery_has_latency(self, sim, network):
        a, b = make_pair(network)
        arrival = []
        b.set_handler("ping", lambda msg: arrival.append(sim.now))
        a.send("b", "ping")
        sim.run()
        assert arrival[0] > 0.0

    def test_latency_grows_with_distance(self):
        def one_way(distance):
            from repro.sim.kernel import Simulator
            simulator = Simulator()
            net = Network(simulator, NetworkConfig(jitter=0.0), seed=1)
            a = net.attach(NetworkNode("a", Position(0, 0), radio_range=10_000))
            b = net.attach(NetworkNode("b", Position(distance, 0), radio_range=10_000))
            arrival = []
            b.set_handler("x", lambda msg: arrival.append(simulator.now))
            a.send("b", "x")
            simulator.run()
            return arrival[0]

        assert one_way(1000.0) > one_way(1.0)

    def test_payloads_deep_copied(self, sim, network):
        a, b = make_pair(network)
        received = []
        b.set_handler("data", lambda msg: received.append(msg.payload))
        payload = {"items": [1, 2]}
        a.send("b", "data", payload)
        sim.run()
        payload["items"].append(3)
        assert received[0] == {"items": [1, 2]}

    def test_out_of_range_message_dropped(self, sim, network):
        a, b = make_pair(network, distance=500.0)
        got = []
        b.set_handler("ping", got.append)
        drops = []
        network.on_drop.connect(lambda msg, reason: drops.append(reason))
        a.send("b", "ping")
        sim.run()
        assert got == []
        assert drops == ["out of range"]

    def test_message_to_unknown_node_dropped(self, sim, network):
        a, _ = make_pair(network)
        a.send("ghost", "ping")
        sim.run()
        assert network.messages_dropped == 1

    def test_detach_in_flight_drops(self, sim, network):
        a, b = make_pair(network)
        a.send("b", "ping")
        network.detach(b)
        sim.run()
        assert network.messages_dropped == 1

    def test_broadcast_reaches_all_neighbors(self, sim, network):
        a = network.attach(NetworkNode("a", Position(0, 0)))
        b = network.attach(NetworkNode("b", Position(5, 0)))
        c = network.attach(NetworkNode("c", Position(0, 5)))
        network.attach(NetworkNode("far", Position(500, 0)))
        got = []
        for node in (b, c):
            node.set_handler("hello", lambda msg, nid=node.node_id: got.append(nid))
        a.broadcast("hello")
        sim.run()
        assert sorted(got) == ["b", "c"]

    def test_broadcast_does_not_loop_back(self, sim, network):
        a, _ = make_pair(network)
        got = []
        a.set_handler("hello", got.append)
        a.broadcast("hello")
        sim.run()
        assert got == []


class TestLoss:
    def test_lossy_network_drops_some(self, sim):
        net = Network(sim, NetworkConfig(loss_probability=0.5), seed=99)
        a = net.attach(NetworkNode("a", Position(0, 0)))
        b = net.attach(NetworkNode("b", Position(1, 0)))
        got = []
        b.set_handler("x", got.append)
        for _ in range(100):
            a.send("b", "x")
        sim.run()
        assert 0 < len(got) < 100

    def test_loss_is_deterministic_per_seed(self):
        def run(seed):
            from repro.sim.kernel import Simulator
            simulator = Simulator()
            net = Network(simulator, NetworkConfig(loss_probability=0.3), seed=seed)
            a = net.attach(NetworkNode("a", Position(0, 0)))
            b = net.attach(NetworkNode("b", Position(1, 0)))
            got = []
            b.set_handler("x", lambda msg: got.append(msg.message_id))
            for _ in range(50):
                a.send("b", "x")
            simulator.run()
            return len(got)

        assert run(7) == run(7)


class TestOrdering:
    def test_fifo_links_deliver_in_send_order(self, sim):
        net = Network(sim, NetworkConfig(jitter=0.005), seed=3)
        a = net.attach(NetworkNode("a", Position(0, 0)))
        b = net.attach(NetworkNode("b", Position(1, 0)))
        got = []
        b.set_handler("seq", lambda msg: got.append(msg.payload))
        for index in range(50):
            a.send("b", "seq", index)
        sim.run()
        assert got == list(range(50))

    def test_without_fifo_jitter_can_reorder(self):
        """Documents why FIFO links are the default: raw jitter reorders
        a flow, which breaks sequential protocols like the mirror feed."""
        from repro.sim.kernel import Simulator

        reordered = False
        for seed in range(20):
            simulator = Simulator()
            net = Network(
                simulator,
                NetworkConfig(jitter=0.01, fifo_links=False),
                seed=seed,
            )
            a = net.attach(NetworkNode("a", Position(0, 0)))
            b = net.attach(NetworkNode("b", Position(1, 0)))
            got = []
            b.set_handler("seq", lambda msg: got.append(msg.payload))
            for index in range(50):
                a.send("b", "seq", index)
            simulator.run()
            if got != sorted(got):
                reordered = True
                break
        assert reordered

    def test_wired_link_ignores_distance(self, sim, network):
        a = network.attach(NetworkNode("a", Position(0, 0), radio_range=10))
        b = network.attach(NetworkNode("b", Position(5000, 0), radio_range=10))
        assert not network.reachable(a, b)
        network.wire("a", "b")
        assert network.reachable(a, b)
        network.unwire("a", "b")
        assert not network.reachable(a, b)

    def test_partition_severs_wired_link_too(self, sim, network):
        a = network.attach(NetworkNode("a", Position(0, 0)))
        b = network.attach(NetworkNode("b", Position(5000, 0)))
        network.wire("a", "b")
        network.partition("a", "b")
        assert not network.reachable(a, b)


class TestMessageObject:
    def test_broadcast_flag(self):
        assert Message("a", "*", "k").is_broadcast
        assert not Message("a", "b", "k").is_broadcast

    def test_unique_ids(self):
        assert Message("a", "b", "k").message_id != Message("a", "b", "k").message_id
