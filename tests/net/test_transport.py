"""Request/reply transport tests."""

import pytest

from repro.errors import RequestTimeout
from repro.net.geometry import Position
from repro.net.node import NetworkNode
from repro.net.transport import RemoteError, Transport, current_caller


@pytest.fixture
def pair(sim, network):
    a = network.attach(NetworkNode("a", Position(0, 0)))
    b = network.attach(NetworkNode("b", Position(5, 0)))
    return Transport(a, sim), Transport(b, sim)


class TestRequestReply:
    def test_round_trip(self, sim, pair):
        client, server = pair
        server.register("add", lambda sender, body: body["x"] + body["y"])
        replies = []
        client.request("b", "add", {"x": 2, "y": 3}, on_reply=replies.append)
        sim.run()
        assert replies == [5]

    def test_handler_sees_sender(self, sim, pair):
        client, server = pair
        senders = []
        server.register("who", lambda sender, body: senders.append(sender))
        client.request("b", "who")
        sim.run()
        assert senders == ["a"]

    def test_current_caller_inside_handler(self, sim, pair):
        client, server = pair
        callers = []
        server.register("op", lambda sender, body: callers.append(current_caller()))
        client.request("b", "op")
        sim.run()
        assert callers == ["a"]

    def test_current_caller_reset_after_handler(self, sim, pair):
        client, server = pair
        server.register("op", lambda sender, body: None)
        client.request("b", "op")
        sim.run()
        assert current_caller() is None

    def test_handler_exception_becomes_remote_error(self, sim, pair):
        client, server = pair

        def broken(sender, body):
            raise ValueError("server exploded")

        server.register("boom", broken)
        errors = []
        client.request("b", "boom", on_error=errors.append)
        sim.run()
        assert len(errors) == 1
        assert isinstance(errors[0], RemoteError)
        assert "server exploded" in str(errors[0])

    def test_unknown_operation_is_remote_error(self, sim, pair):
        client, _ = pair
        errors = []
        client.request("b", "nothing", on_error=errors.append)
        sim.run()
        assert isinstance(errors[0], RemoteError)

    def test_timeout_when_destination_unreachable(self, sim, network, pair):
        client, _ = pair
        network.partition("a", "b")
        errors = []
        client.request("b", "op", on_error=errors.append, timeout=1.0)
        sim.run()
        assert isinstance(errors[0], RequestTimeout)
        assert client.timeouts == 1

    def test_reply_cancels_timeout(self, sim, pair):
        client, server = pair
        server.register("op", lambda sender, body: "ok")
        errors = []
        client.request("b", "op", on_error=errors.append, timeout=5.0)
        sim.run()
        assert errors == []
        assert client.timeouts == 0

    def test_late_reply_after_timeout_is_dropped(self, sim, network, pair):
        client, server = pair
        server.register("op", lambda sender, body: "late")
        replies, errors = [], []
        # Timeout far shorter than any possible round trip.
        client.request(
            "b", "op", on_reply=replies.append, on_error=errors.append, timeout=0.0001
        )
        sim.run()
        assert replies == []
        assert len(errors) == 1

    def test_concurrent_requests_matched_to_callers(self, sim, pair):
        client, server = pair
        server.register("echo", lambda sender, body: body)
        replies = []
        for value in range(5):
            client.request("b", "echo", value, on_reply=replies.append)
        sim.run()
        assert sorted(replies) == [0, 1, 2, 3, 4]


class TestNotify:
    def test_notify_is_one_way(self, sim, pair):
        client, server = pair
        got = []
        server.register("event", lambda sender, body: got.append(body))
        client.notify("b", "event", {"n": 1})
        sim.run()
        assert got == [{"n": 1}]

    def test_notify_unknown_operation_silently_ignored(self, sim, pair):
        client, _ = pair
        client.notify("b", "nothing")
        sim.run()  # no exception

    def test_notify_handler_error_swallowed(self, sim, pair):
        client, server = pair

        def broken(sender, body):
            raise ValueError("handler bug")

        server.register("event", broken)
        client.notify("b", "event")
        sim.run()  # no exception

    def test_broadcast_notify(self, sim, network, pair):
        client, server = pair
        c = network.attach(NetworkNode("c", Position(0, 5)))
        third = Transport(c, sim)
        got = []
        server.register("ann", lambda sender, body: got.append("b"))
        third.register("ann", lambda sender, body: got.append("c"))
        client.broadcast("ann")
        sim.run()
        assert sorted(got) == ["b", "c"]


class TestSelfAndEdgeCases:
    def test_request_to_self(self, sim, pair):
        """A node may call its own services (distance zero, in range)."""
        client, _ = pair
        client.register("local.echo", lambda sender, body: body)
        replies = []
        client.request("a", "local.echo", "me", on_reply=replies.append)
        sim.run()
        assert replies == ["me"]

    def test_duplicate_reply_ignored(self, sim, pair):
        """A handler answering twice (misbehaving server) cannot fire the
        callback twice — the pending entry is consumed by the first."""
        client, server = pair
        from repro.net.transport import _REPLY, _ReplyBody

        def echo_twice(sender, body):
            # sneak an extra forged reply onto the wire
            server.node.send(sender, _REPLY, _ReplyBody("req:forged", "op", 1, None))
            return "real"

        server.register("op", echo_twice)
        replies = []
        client.request("b", "op", on_reply=replies.append)
        sim.run()
        assert replies == ["real"]

    def test_zero_payload_kinds(self, sim, pair):
        client, server = pair
        seen = []
        server.register("op", lambda sender, body: seen.append(body))
        client.notify("b", "op", None)
        client.notify("b", "op", 0)
        client.notify("b", "op", "")
        sim.run()
        assert seen == [None, 0, ""]


class TestTimeoutSemantics:
    def test_timeout_fails_pending_exactly_once(self, sim, network, pair):
        """The timeout consumes the pending entry: on_error fires once,
        and a stray second timeout callback for the same id is a no-op."""
        client, _ = pair
        network.partition("a", "b")
        errors = []
        request_id = client.request("b", "op", on_error=errors.append, timeout=1.0)
        sim.run()
        assert len(errors) == 1
        assert isinstance(errors[0], RequestTimeout)
        assert client.timeouts == 1
        # A duplicate firing (e.g. a stale scheduled event) must not
        # re-fail the request or bump the counter.
        client._handle_timeout(request_id)
        assert len(errors) == 1
        assert client.timeouts == 1

    def test_timeout_emits_metric_and_event(self, sim, network, pair):
        from repro.telemetry import MetricsRegistry, runtime

        client, _ = pair
        network.partition("a", "b")
        registry = MetricsRegistry(clock=sim.clock)
        with runtime.recording(registry):
            client.request("b", "slow.op", timeout=1.0)
            sim.run()
        assert registry.counter_value(
            "net.transport.timeouts", node="a", operation="slow.op"
        ) == 1
        timeout_events = [e for e in registry.events if e.name == "transport.timeout"]
        assert len(timeout_events) == 1
        assert timeout_events[0].fields["operation"] == "slow.op"
        assert timeout_events[0].fields["waited"] == pytest.approx(1.0)

    def test_reply_after_timeout_records_no_rtt(self, sim, pair):
        from repro.telemetry import MetricsRegistry, runtime

        client, server = pair
        server.register("op", lambda sender, body: "late")
        registry = MetricsRegistry(clock=sim.clock)
        with runtime.recording(registry):
            client.request("b", "op", timeout=0.0001)
            sim.run()
        assert registry.counter_total("net.transport.timeouts") == 1
        assert registry.histogram("net.transport.rtt", operation="op") is None


class TestRegistration:
    def test_unregister(self, sim, pair):
        client, server = pair
        server.register("op", lambda sender, body: "ok")
        server.unregister("op")
        errors = []
        client.request("b", "op", on_error=errors.append)
        sim.run()
        assert isinstance(errors[0], RemoteError)

    def test_serves(self, pair):
        _, server = pair
        server.register("op", lambda sender, body: None)
        assert server.serves("op")
        assert not server.serves("other")

    def test_stats_counted(self, sim, pair):
        client, server = pair
        server.register("op", lambda sender, body: None)
        client.request("b", "op")
        sim.run()
        assert client.requests_sent == 1
        assert server.requests_served == 1
