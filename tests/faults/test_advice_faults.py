"""Advice-level fault injectors (FaultyExtension modes)."""

from __future__ import annotations

import pickle

import pytest

from repro.aop import AspectSandbox, ProseVM, SandboxPolicy, SystemGateway
from repro.errors import FaultPlanError
from repro.faults import (
    BUDGET_OVERRUN,
    RAISE_ON_KTH,
    VIOLATION_PROBE,
    FaultyExtension,
)
from repro.supervision import (
    STRIKE_BUDGET,
    STRIKE_ERROR,
    STRIKE_VIOLATION,
    ExtensionSupervisor,
    SupervisionPolicy,
)

from tests.support import Engine, fresh_class


def woven(sim, aspect, policy=None, services=None):
    vm = ProseVM()
    supervisor = ExtensionSupervisor(sim, policy or SupervisionPolicy(max_strikes=99))
    sandbox = AspectSandbox(SandboxPolicy.restrictive(), aspect.name)
    aspect.bind(SystemGateway(services or {}, sandbox))
    cls = fresh_class(Engine)
    vm.load_class(cls)
    vm.insert(aspect, sandbox=sandbox, containment=supervisor.guard(aspect))
    return supervisor, cls()


class TestFaultModes:
    def test_raise_mode_misbehaves_on_every_kth_call(self, sim):
        aspect = FaultyExtension(
            mode=RAISE_ON_KTH, every=3, method_pattern="throttle"
        )
        supervisor, engine = woven(sim, aspect)
        for _ in range(9):
            engine.throttle(1)  # contained; never reaches the app
        assert aspect.calls == 9
        assert aspect.misbehaved == [3, 6, 9]
        health = supervisor.health_of(aspect)
        assert health.contained == 3
        assert {s.kind for s in health.strikes} == {STRIKE_ERROR}

    def test_budget_mode_trips_the_step_budget(self, sim):
        aspect = FaultyExtension(
            mode=BUDGET_OVERRUN, every=2, spin_steps=10_000,
            method_pattern="throttle",
        )
        supervisor, engine = woven(
            sim, aspect, policy=SupervisionPolicy(max_strikes=99, step_budget=500)
        )
        engine.throttle(1)  # clean call, cheap advice
        engine.throttle(1)  # overrun, aborted mid-spin
        health = supervisor.health_of(aspect)
        assert health.contained == 1
        assert health.strikes[0].kind == STRIKE_BUDGET

    def test_violation_mode_trips_the_sandbox(self, sim):
        aspect = FaultyExtension(
            mode=VIOLATION_PROBE, every=1, method_pattern="throttle"
        )
        # The service exists on the node; the (empty) declared capability
        # set still denies it.
        supervisor, engine = woven(sim, aspect, services={"store": object()})
        engine.throttle(1)
        health = supervisor.health_of(aspect)
        assert health.strikes[0].kind == STRIKE_VIOLATION
        assert aspect.misbehaved == [1]

    def test_determinism_is_a_function_of_call_count_only(self, sim):
        first = FaultyExtension(every=4, method_pattern="throttle")
        supervisor_a, engine_a = woven(sim, first)
        second = FaultyExtension(every=4, method_pattern="throttle")
        supervisor_b, engine_b = woven(sim, second)
        for _ in range(12):
            engine_a.throttle(1)
            engine_b.throttle(1)
        assert first.misbehaved == second.misbehaved == [4, 8, 12]


class TestValidationAndDistribution:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mode": "nonsense"},
            {"every": 0},
            {"spin_steps": 0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(FaultPlanError):
            FaultyExtension(**kwargs)

    def test_picklable_for_envelope_distribution(self):
        aspect = FaultyExtension(every=3, method_pattern="throttle")
        clone = pickle.loads(pickle.dumps(aspect))
        assert clone.mode == RAISE_ON_KTH
        assert clone.every == 3
        assert clone.calls == 0
