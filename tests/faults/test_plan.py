"""Fault-plan validation, matching, and serialization."""

import math
import random

import pytest

from repro.errors import FaultPlanError
from repro.faults.plan import (
    DELAY,
    DROP,
    CrashSchedule,
    FaultPlan,
    LinkFlap,
    MessageMatch,
    MessageRule,
)


class TestValidation:
    def test_unknown_action_rejected(self):
        with pytest.raises(FaultPlanError):
            MessageRule("explode")

    def test_probability_out_of_range_rejected(self):
        with pytest.raises(FaultPlanError):
            MessageRule(DROP, probability=1.5)

    def test_duplicate_needs_two_copies(self):
        with pytest.raises(FaultPlanError):
            MessageRule("duplicate", copies=1)

    def test_crash_time_must_be_nonnegative(self):
        with pytest.raises(FaultPlanError):
            CrashSchedule("n", at=-1.0)

    def test_crash_down_for_must_be_positive(self):
        with pytest.raises(FaultPlanError):
            CrashSchedule("n", at=0.0, down_for=0.0)

    def test_flap_period_must_exceed_down_time(self):
        with pytest.raises(FaultPlanError):
            LinkFlap("a", "b", period=1.0, down_for=1.0)


class TestMatching:
    def test_wildcards_match_everything(self):
        match = MessageMatch()
        assert match.matches(5.0, "transport.request", "lookup.renew", "a", "b")

    def test_operation_pattern(self):
        match = MessageMatch(operation="lookup.*")
        assert match.matches(0.0, "k", "lookup.renew", "a", "b")
        assert not match.matches(0.0, "k", "midas.offer", "a", "b")

    def test_time_window_is_half_open(self):
        match = MessageMatch(after=2.0, before=5.0)
        assert not match.matches(1.9, "k", "op", "a", "b")
        assert match.matches(2.0, "k", "op", "a", "b")
        assert not match.matches(5.0, "k", "op", "a", "b")

    def test_endpoint_patterns(self):
        match = MessageMatch(source="hall", destination="robot-*")
        assert match.matches(0.0, "k", "op", "hall", "robot-1")
        assert not match.matches(0.0, "k", "op", "hall", "pda")
        assert not match.matches(0.0, "k", "op", "robot-1", "robot-2")

    def test_max_count_budgets_rule(self):
        rule = MessageRule(DROP, max_count=2)
        rng = random.Random(0)
        assert rule.applies(0.0, "k", "op", "a", "b", rng)
        rule.injected = 2
        assert not rule.applies(0.0, "k", "op", "a", "b", rng)

    def test_probability_uses_given_rng(self):
        rule = MessageRule(DROP, probability=0.5)
        rng_a, rng_b = random.Random(42), random.Random(42)
        outcomes_a = [rule.applies(0.0, "k", "op", "a", "b", rng_a) for _ in range(20)]
        outcomes_b = [rule.applies(0.0, "k", "op", "a", "b", rng_b) for _ in range(20)]
        assert outcomes_a == outcomes_b
        assert any(outcomes_a) and not all(outcomes_a)


class TestSerialization:
    def test_round_trip(self):
        plan = (
            FaultPlan()
            .drop(operation="midas.offer", probability=0.2, max_count=3)
            .delay(extra=0.5, jitter=0.1, kind="transport.reply")
            .duplicate(copies=3, between=(1.0, 9.0))
            .reorder(source="hall")
            .crash("hall", at=30.0, down_for=8.0)
            .crash("pda", at=50.0)
            .flap_link("hall", "robot", period=4.0, down_for=1.0, between=(0.0, 20.0))
            .skew_clock("robot", offset=0.25, drift=0.001)
        )
        rebuilt = FaultPlan.from_dict(plan.to_dict())
        assert rebuilt.to_dict() == plan.to_dict()
        assert len(rebuilt.message_rules) == 4
        assert rebuilt.crashes == plan.crashes
        assert rebuilt.link_flaps == plan.link_flaps
        assert rebuilt.clock_skews == plan.clock_skews

    def test_injected_counter_not_serialized(self):
        plan = FaultPlan().drop()
        plan.message_rules[0].injected = 7
        rebuilt = FaultPlan.from_dict(plan.to_dict())
        assert rebuilt.message_rules[0].injected == 0

    def test_builder_defaults(self):
        plan = FaultPlan().delay(extra=0.25)
        rule = plan.message_rules[0]
        assert rule.action == DELAY
        assert rule.match.before == math.inf
        assert rule.extra_delay == 0.25
