"""FaultInjector behavior against a live network."""

import pytest

from repro.errors import RequestTimeout
from repro.faults import FaultInjector, FaultPlan, SkewedClock
from repro.net.geometry import Position
from repro.net.network import Network
from repro.net.node import NetworkNode
from repro.net.transport import Transport
from repro.sim.kernel import Simulator
from repro.telemetry import MetricsRegistry
from repro.telemetry import runtime as _telemetry


@pytest.fixture
def world(sim, network):
    a = network.attach(NetworkNode("a", Position(0, 0)))
    b = network.attach(NetworkNode("b", Position(5, 0)))
    return Transport(a, sim), Transport(b, sim)


@pytest.fixture
def registry(sim):
    registry = MetricsRegistry(clock=sim.clock)
    previous = _telemetry.install(registry)
    yield registry
    _telemetry.install(previous)


class TestMessageRules:
    def test_drop_rule_eats_matching_requests(self, sim, network, world):
        client, server = world
        server.register("ping", lambda sender, body: "pong")
        plan = FaultPlan().drop(operation="ping")
        injector = FaultInjector(network, sim, plan).install()
        errors = []
        client.request("b", "ping", on_error=errors.append, timeout=1.0)
        sim.run()
        assert isinstance(errors[0], RequestTimeout)
        assert injector.faults_injected == 1
        assert network.messages_dropped == 1

    def test_non_matching_operations_untouched(self, sim, network, world):
        client, server = world
        server.register("ping", lambda sender, body: "pong")
        FaultInjector(network, sim, FaultPlan().drop(operation="other")).install()
        replies = []
        client.request("b", "ping", on_reply=replies.append)
        sim.run()
        assert replies == ["pong"]

    def test_delay_rule_postpones_delivery(self, sim, network, world):
        client, server = world
        server.register("ping", lambda sender, body: "pong")
        FaultInjector(
            network, sim, FaultPlan().delay(extra=0.5, kind="transport.request")
        ).install()
        arrival = []
        client.request("b", "ping", on_reply=lambda _: arrival.append(sim.now))
        sim.run()
        assert arrival[0] > 0.5

    def test_duplicate_rule_delivers_copies(self, sim, network, world):
        client, server = world
        executions = []
        server.register("ping", lambda sender, body: executions.append(sender))
        FaultInjector(
            network, sim, FaultPlan().duplicate(kind="transport.request")
        ).install()
        replies = []
        client.request("b", "ping", on_reply=replies.append)
        sim.run()
        # Two copies arrive; the dedup cache re-runs the handler only once
        # and the second (identical) reply is dropped as a stray.
        assert len(executions) == 1
        assert server.duplicate_requests == 1
        assert len(replies) == 1
        assert client.stray_replies == 1

    def test_reorder_rule_lets_late_traffic_overtake(self, sim, network, world):
        client, _ = world
        received = []
        network.node("b").set_handler(
            "transport.notify", lambda msg: received.append(msg.payload.operation)
        )
        # First notify is delayed 0.1 s; the second bypasses link FIFO and
        # overtakes it.  Without REORDER the FIFO link would preserve order.
        plan = (
            FaultPlan()
            .delay(extra=0.1, kind="transport.notify", max_count=1)
            .reorder(kind="transport.notify")
        )
        FaultInjector(network, sim, plan).install()
        client.notify("b", "first")
        client.notify("b", "second")
        sim.run()
        assert received == ["second", "first"]

    def test_first_applicable_rule_wins(self, sim, network, world):
        client, server = world
        server.register("ping", lambda sender, body: "pong")
        plan = FaultPlan().drop(operation="ping").duplicate(operation="ping")
        injector = FaultInjector(network, sim, plan).install()
        client.request("b", "ping", timeout=1.0)
        sim.run()
        assert plan.message_rules[0].injected == 1
        assert plan.message_rules[1].injected == 0
        assert injector.faults_injected == 1

    def test_faults_recorded_in_telemetry(self, sim, network, world, registry):
        client, _ = world
        FaultInjector(network, sim, FaultPlan().drop()).install()
        client.request("b", "ping", timeout=1.0)
        sim.run()
        assert registry.counter_total("faults.injected") == 1
        events = [e for e in registry.events if e.name == "fault.injected"]
        assert events and events[0].fields["action"] == "drop"

    def test_uninstall_restores_clean_path(self, sim, network, world):
        client, server = world
        server.register("ping", lambda sender, body: "pong")
        injector = FaultInjector(network, sim, FaultPlan().drop()).install()
        injector.uninstall()
        assert network.fault_hook is None
        replies = []
        client.request("b", "ping", on_reply=replies.append)
        sim.run()
        assert replies == ["pong"]


class TestCrashRestart:
    def test_scheduled_crash_detaches_and_restart_reattaches(self, sim, network, world):
        client, server = world
        server.register("ping", lambda sender, body: "pong")
        plan = FaultPlan().crash("b", at=1.0, down_for=2.0)
        injector = FaultInjector(network, sim, plan).install()
        crashes, restarts = [], []
        injector.on_crash.connect(crashes.append)
        injector.on_restart.connect(restarts.append)

        errors, replies = [], []
        sim.schedule_at(
            1.5, lambda: client.request("b", "ping", on_error=errors.append, timeout=1.0)
        )
        sim.schedule_at(
            3.5, lambda: client.request("b", "ping", on_reply=replies.append)
        )
        sim.run_for(10.0)
        assert crashes == ["b"] and restarts == ["b"]
        assert isinstance(errors[0], RequestTimeout)
        assert replies == ["pong"]

    def test_crash_without_restart_stays_down(self, sim, network, world):
        client, _ = world
        injector = FaultInjector(
            network, sim, FaultPlan().crash("b", at=1.0)
        ).install()
        sim.run_for(10.0)
        assert "b" not in network
        assert injector.crashed == {"b"}

    def test_crash_events_in_telemetry(self, sim, network, world, registry):
        FaultInjector(
            network, sim, FaultPlan().crash("b", at=1.0, down_for=1.0)
        ).install()
        sim.run_for(5.0)
        names = [e.name for e in registry.events]
        assert "fault.crash" in names and "fault.restart" in names

    def test_manual_crash_and_restart(self, sim, network, world):
        injector = FaultInjector(network, sim, FaultPlan()).install()
        injector.crash_now("b")
        assert "b" not in network
        injector.restart_now("b")
        assert "b" in network


class TestLinkFlaps:
    def test_flap_cycles_partition(self, sim, network, world):
        client, server = world
        server.register("ping", lambda sender, body: "pong")
        plan = FaultPlan().flap_link("a", "b", period=4.0, down_for=1.0)
        FaultInjector(network, sim, plan).install()
        outcomes = []

        def attempt():
            client.request(
                "b", "ping",
                on_reply=lambda _: outcomes.append("ok"),
                on_error=lambda _: outcomes.append("fail"),
                timeout=0.5,
            )

        sim.schedule_at(0.5, attempt)   # link down (flap at t=0)
        sim.schedule_at(2.0, attempt)   # link healed
        sim.run_for(6.0)
        assert outcomes == ["fail", "ok"]

    def test_flap_window_closes(self, sim, network, world, registry):
        plan = FaultPlan().flap_link("a", "b", period=2.0, down_for=0.5, between=(0, 5))
        FaultInjector(network, sim, plan).install()
        sim.run_for(20.0)
        downs = [e for e in registry.events if e.name == "fault.link_down"]
        ups = [e for e in registry.events if e.name == "fault.link_up"]
        assert len(downs) == 3  # t = 0, 2, 4
        assert len(ups) == len(downs)
        assert network.reachable(network.node("a"), network.node("b"))


class TestClockSkew:
    def test_clock_for_returns_skewed_view(self, sim, network):
        plan = FaultPlan().skew_clock("n", offset=1.0, drift=0.1)
        injector = FaultInjector(network, sim, plan)
        clock = injector.clock_for("n")
        assert isinstance(clock, SkewedClock)
        sim.run_for(10.0)
        assert clock.now() == pytest.approx(10.0 * 1.1 + 1.0)
        assert injector.clock_for("other").now() == pytest.approx(10.0)


class TestDeterminism:
    def _run(self, seed):
        sim = Simulator()
        network = Network(sim, seed=seed)
        a = network.attach(NetworkNode("a", Position(0, 0)))
        b = network.attach(NetworkNode("b", Position(5, 0)))
        client, server = Transport(a, sim), Transport(b, sim)
        server.register("ping", lambda sender, body: "pong")
        plan = FaultPlan().drop(probability=0.3).delay(extra=0.05, probability=0.2)
        injector = FaultInjector(network, sim, plan).install()
        outcomes = []
        for i in range(40):
            sim.schedule_at(
                i * 0.5,
                lambda: client.request(
                    "b", "ping",
                    on_reply=lambda _: outcomes.append("ok"),
                    on_error=lambda _: outcomes.append("fail"),
                    timeout=0.4,
                ),
            )
        sim.run_for(30.0)
        return outcomes, injector.faults_injected, network.messages_dropped

    def test_same_seed_same_chaos(self):
        assert self._run(77) == self._run(77)

    def test_different_seed_different_chaos(self):
        assert self._run(77) != self._run(78)
