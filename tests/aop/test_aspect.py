"""Aspect declaration and lifecycle tests."""

import pickle

from repro.aop import Aspect, MethodCut, ProseVM, after, before
from repro.aop.advice import DEFAULT_ORDER, AdviceKind

from tests.support import TraceAspect, fresh_class


class TestAdviceCollection:
    def test_decorated_methods_collected(self):
        class Two(Aspect):
            @before(MethodCut(type="A", method="x"))
            def first(self, ctx):
                pass

            @after(MethodCut(type="B", method="y"))
            def second(self, ctx):
                pass

        advices = Two().advices()
        kinds = {(a.name, a.kind) for a in advices}
        assert kinds == {("first", AdviceKind.BEFORE), ("second", AdviceKind.AFTER)}

    def test_one_method_multiple_decorators(self):
        class Multi(Aspect):
            @before(MethodCut(type="A", method="x"))
            @before(MethodCut(type="B", method="y"))
            def advice(self, ctx):
                pass

        assert len(Multi().advices()) == 2

    def test_string_crosscut_parsed(self):
        class Stringy(Aspect):
            @before("Engine.start")
            def advice(self, ctx):
                pass

        advice = Stringy().advices()[0]
        assert isinstance(advice.crosscut, MethodCut)

    def test_order_default_and_explicit(self):
        class Ordered(Aspect):
            @before("A.x")
            def default_order(self, ctx):
                pass

            @before("A.x", order=5)
            def explicit(self, ctx):
                pass

        by_name = {a.name: a.order for a in Ordered().advices()}
        assert by_name["default_order"] == DEFAULT_ORDER
        assert by_name["explicit"] == 5

    def test_inherited_advice_collected_once(self):
        class Base(Aspect):
            @before("A.x")
            def advice(self, ctx):
                pass

        class Derived(Base):
            pass

        assert len(Derived().advices()) == 1

    def test_subclass_override_keeps_declaration(self):
        calls = []

        class Base(Aspect):
            @before(MethodCut(type="Engine", method="start"))
            def advice(self, ctx):
                calls.append("base")

        class Derived(Base):
            def advice(self, ctx):
                calls.append("derived")

        vm = ProseVM()
        cls = fresh_class()
        vm.load_class(cls)
        vm.insert(Derived())
        cls().start()
        assert calls == ["derived"]

    def test_instance_advice_via_add_advice(self):
        aspect = Aspect()
        aspect.add_advice(AdviceKind.BEFORE, "Engine.start", lambda ctx: None)
        assert len(aspect.advices()) == 1

    def test_advices_bound_to_instance(self):
        class Stateful(Aspect):
            def __init__(self):
                super().__init__()
                self.count = 0

            @before("Engine.start")
            def advice(self, ctx):
                self.count += 1

        first, second = Stateful(), Stateful()
        vm = ProseVM()
        cls = fresh_class()
        vm.load_class(cls)
        vm.insert(first)
        vm.insert(second)
        cls().start()
        assert first.count == 1
        assert second.count == 1


class TestNames:
    def test_unique_default_names(self):
        assert TraceAspect().name != TraceAspect().name

    def test_explicit_name(self):
        assert Aspect(name="my-ext").name == "my-ext"


class TestSerialization:
    def test_aspect_pickles_round_trip(self):
        aspect = TraceAspect(type_pattern="Engine", method_pattern="start")
        clone = pickle.loads(pickle.dumps(aspect))
        assert clone.name == aspect.name
        assert len(clone.advices()) == 1

    def test_gateway_not_serialized(self):
        aspect = TraceAspect()
        aspect.bind(object())
        clone = pickle.loads(pickle.dumps(aspect))
        assert clone.gateway is None

    def test_clone_weaves_independently(self):
        aspect = TraceAspect(type_pattern="Engine", method_pattern="start")
        clone = pickle.loads(pickle.dumps(aspect))
        vm = ProseVM()
        cls = fresh_class()
        vm.load_class(cls)
        vm.insert(clone)
        cls().start()
        assert len(clone.trace) == 1
        assert aspect.trace == []
