"""ProseVM weaving tests."""

import pytest

from repro.aop import Aspect, MethodCut, ProseVM, before
from repro.aop.joinpoint import JoinPointKind
from repro.errors import ClassNotLoadedError, NotWovenError, WeaveError

from tests.support import Engine, TraceAspect, fresh_class


@pytest.fixture
def vm():
    return ProseVM()


class TestClassLoading:
    def test_load_creates_method_joinpoints(self, vm):
        cls = fresh_class()
        vm.load_class(cls)
        names = {jp.member for jp in vm.joinpoints(JoinPointKind.METHOD)}
        assert {"start", "throttle", "send_telemetry", "get_id"} <= names

    def test_init_is_a_joinpoint(self, vm):
        cls = fresh_class()
        vm.load_class(cls)
        assert "__init__" in {jp.member for jp in vm.joinpoints()}

    def test_other_dunders_not_stubbed(self, vm):
        cls = fresh_class()
        vm.load_class(cls)
        assert "__repr__" not in {jp.member for jp in vm.joinpoints()}

    def test_load_is_idempotent(self, vm):
        cls = fresh_class()
        vm.load_class(cls)
        count = vm.stats.methods_stubbed
        vm.load_class(cls)
        assert vm.stats.methods_stubbed == count

    def test_loaded_class_behaves_identically(self, vm):
        cls = fresh_class()
        vm.load_class(cls)
        engine = cls("e1")
        engine.start()
        assert engine.throttle(100) == 900
        assert engine.get_id() == "e1"

    def test_load_non_class_rejected(self, vm):
        with pytest.raises(WeaveError):
            vm.load_class(42)

    def test_unload_restores_original_methods(self, vm):
        cls = fresh_class()
        original_start = vars(cls).get("start")
        vm.load_class(cls)
        vm.unload_class(cls)
        assert not hasattr(cls.start, "__prose_table__")
        engine = cls()
        engine.start()
        assert engine.rpm == 800
        assert original_start is None or vars(cls)["start"] is original_start

    def test_unload_unknown_class_raises(self, vm):
        with pytest.raises(ClassNotLoadedError):
            vm.unload_class(Engine)

    def test_include_inherited_materializes_base_methods(self, vm):
        from tests.support import Turbine

        cls = fresh_class(Turbine)
        vm.load_class(cls, include_inherited=True)
        members = {jp.member for jp in vm.joinpoints()}
        assert "throttle" in members  # inherited from Engine
        assert "spool" in members

    def test_staticmethods_are_stubbed(self, vm):
        class WithStatic:
            @staticmethod
            def helper(x: int) -> int:
                return x * 2

        vm.load_class(WithStatic)
        trace = TraceAspect(method_pattern="helper")
        vm.insert(trace)
        assert WithStatic.helper(21) == 42
        assert trace.trace == [("helper", (21,))]

    def test_classmethods_are_stubbed(self, vm):
        class WithClass:
            count = 3

            @classmethod
            def bump(cls) -> int:
                return cls.count + 1

        vm.load_class(WithClass)
        trace = TraceAspect(method_pattern="bump")
        vm.insert(trace)
        assert WithClass.bump() == 4
        assert trace.trace == [("bump", ())]


class TestInsertWithdraw:
    def test_insert_activates_matching_advice(self, vm):
        cls = fresh_class()
        vm.load_class(cls)
        trace = TraceAspect(type_pattern="Engine", method_pattern="start")
        vm.insert(trace)
        cls().start()
        assert trace.trace == [("start", ())]

    def test_non_matching_advice_inactive(self, vm):
        cls = fresh_class()
        vm.load_class(cls)
        trace = TraceAspect(type_pattern="Rocket")
        vm.insert(trace)
        cls().start()
        assert trace.trace == []

    def test_withdraw_deactivates(self, vm):
        cls = fresh_class()
        vm.load_class(cls)
        trace = TraceAspect(type_pattern="Engine")
        vm.insert(trace)
        engine = cls()
        engine.start()
        vm.withdraw(trace)
        trace.trace.clear()
        engine.start()
        assert trace.trace == []

    def test_double_insert_rejected(self, vm):
        trace = TraceAspect()
        vm.insert(trace)
        with pytest.raises(WeaveError):
            vm.insert(trace)

    def test_withdraw_uninserted_rejected(self, vm):
        with pytest.raises(NotWovenError):
            vm.withdraw(TraceAspect())

    def test_insert_before_class_load_still_weaves(self, vm):
        trace = TraceAspect(type_pattern="Engine", method_pattern="start")
        vm.insert(trace)
        cls = fresh_class()
        vm.load_class(cls)  # class arrives after the aspect
        cls().start()
        assert trace.trace == [("start", ())]

    def test_two_aspects_independent_withdrawal(self, vm):
        cls = fresh_class()
        vm.load_class(cls)
        first = TraceAspect(method_pattern="start")
        second = TraceAspect(method_pattern="start")
        vm.insert(first)
        vm.insert(second)
        vm.withdraw(first)
        cls().start()
        assert first.trace == []
        assert len(second.trace) == 1

    def test_withdraw_all(self, vm):
        vm.insert(TraceAspect())
        vm.insert(TraceAspect())
        vm.withdraw_all()
        assert vm.aspects == ()

    def test_is_inserted(self, vm):
        trace = TraceAspect()
        assert not vm.is_inserted(trace)
        vm.insert(trace)
        assert vm.is_inserted(trace)

    def test_advised_joinpoints_reflect_weaving(self, vm):
        cls = fresh_class()
        vm.load_class(cls)
        assert vm.advised_joinpoints() == []
        trace = TraceAspect(method_pattern="start")
        vm.insert(trace)
        assert [jp.member for jp in vm.advised_joinpoints()] == ["start"]

    def test_interception_count(self, vm):
        cls = fresh_class()
        vm.load_class(cls)
        vm.insert(TraceAspect(method_pattern="start"))
        engine = cls()
        engine.start()
        engine.start()
        engine.throttle(1)  # not advised: fast path, not counted
        assert vm.interception_count() == 2

    def test_lifecycle_hooks_called(self, vm):
        events = []

        class Lifecycle(Aspect):
            def on_insert(self, target_vm):
                events.append(("insert", target_vm))

            def on_withdraw(self, target_vm):
                events.append(("withdraw", target_vm))

            @before(MethodCut(type="*", method="nothing"))
            def advice(self, ctx):
                pass

        aspect = Lifecycle()
        vm.insert(aspect)
        vm.withdraw(aspect)
        assert events == [("insert", vm), ("withdraw", vm)]

    def test_unload_class_detaches_aspect_registrations(self, vm):
        cls = fresh_class()
        vm.load_class(cls)
        trace = TraceAspect(method_pattern="start")
        vm.insert(trace)
        vm.unload_class(cls)
        cls().start()
        assert trace.trace == []
        # Re-loading re-weaves the still-inserted aspect.
        vm.load_class(cls)
        cls().start()
        assert len(trace.trace) == 1


class TestMultipleVMs:
    def test_second_vm_does_not_restub(self, vm):
        cls = fresh_class()
        vm.load_class(cls)
        other = ProseVM(name="other")
        other.load_class(cls)
        assert other.stats.methods_stubbed == 0
