"""Hook-table unit tests (the dispatch machinery directly)."""

import pytest

from repro.aop import Aspect, MethodCut, ProseVM
from repro.aop.advice import Advice, AdviceKind
from repro.errors import ClassNotLoadedError

from tests.support import TraceAspect, fresh_class


@pytest.fixture
def vm():
    return ProseVM()


class TestMethodHookTable:
    def test_table_lookup(self, vm):
        cls = fresh_class()
        vm.load_class(cls)
        table = vm.table_for(cls, "start")
        assert table.joinpoint.member == "start"
        assert not table.advised

    def test_table_for_unknown_class(self, vm):
        with pytest.raises(ClassNotLoadedError):
            vm.table_for(dict, "update")

    def test_table_for_unknown_method(self, vm):
        cls = fresh_class()
        vm.load_class(cls)
        with pytest.raises(ClassNotLoadedError):
            vm.table_for(cls, "not_a_method")

    def test_advice_count_and_listing(self, vm):
        cls = fresh_class()
        vm.load_class(cls)
        first = TraceAspect(type_pattern="Engine", method_pattern="start")
        second = TraceAspect(type_pattern="Engine", method_pattern="start")
        vm.insert(first)
        vm.insert(second)
        table = vm.table_for(cls, "start")
        assert table.advice_count() == 2
        owners = {advice.aspect for advice in table.advices()}
        assert owners == {first, second}

    def test_remove_aspect_returns_count(self, vm):
        cls = fresh_class()
        vm.load_class(cls)
        aspect = TraceAspect(type_pattern="Engine", method_pattern="start")
        vm.insert(aspect)
        table = vm.table_for(cls, "start")
        assert table.remove_aspect(aspect) == 1
        assert table.remove_aspect(aspect) == 0
        assert not table.advised

    def test_interception_counter(self, vm):
        cls = fresh_class()
        vm.load_class(cls)
        vm.insert(TraceAspect(type_pattern="Engine", method_pattern="start"))
        table = vm.table_for(cls, "start")
        engine = cls()
        engine.start()
        engine.start()
        assert table.interceptions == 2

    def test_fast_path_not_counted(self, vm):
        cls = fresh_class()
        vm.load_class(cls)
        table = vm.table_for(cls, "start")
        cls().start()
        assert table.interceptions == 0


class TestCodegenStubs:
    def test_defaults_preserved(self, vm):
        class WithDefaults:
            def greet(self, name="world", punctuation="!"):
                return f"hello {name}{punctuation}"

        vm.load_class(WithDefaults)
        obj = WithDefaults()
        assert obj.greet() == "hello world!"
        assert obj.greet("there") == "hello there!"
        assert obj.greet(punctuation="?") == "hello world?"

    def test_var_positional_and_keyword(self, vm):
        class Variadic:
            def collect(self, first, *rest, **options):
                return (first, rest, options)

        vm.load_class(Variadic)
        trace = TraceAspect(type_pattern="Variadic", method_pattern="collect")
        vm.insert(trace)
        obj = Variadic()
        assert obj.collect(1, 2, 3, mode="x") == (1, (2, 3), {"mode": "x"})
        assert trace.trace == [("collect", (1, 2, 3))]

    def test_keyword_only_falls_back_to_generic(self, vm):
        class KwOnly:
            def configure(self, *, retries: int = 3):
                return retries

        vm.load_class(KwOnly)
        trace = TraceAspect(type_pattern="KwOnly", method_pattern="configure")
        vm.insert(trace)
        obj = KwOnly()
        assert obj.configure(retries=7) == 7
        assert len(trace.trace) == 1

    def test_param_named_like_internals_falls_back(self, vm):
        class Weird:
            def run(self, _prose_cell):
                return _prose_cell * 2

        vm.load_class(Weird)
        assert Weird().run(21) == 42

    def test_exceptions_propagate_through_stub(self, vm):
        cls = fresh_class()
        vm.load_class(cls)
        with pytest.raises(RuntimeError):
            cls().fail()
        vm.insert(TraceAspect(type_pattern="Engine", method_pattern="fail"))
        with pytest.raises(RuntimeError):
            cls().fail()
