"""Crosscut matching tests."""

from repro.aop.crosscut import ExceptionCut, FieldWriteCut, MethodCut
from repro.aop.joinpoint import JoinPoint, JoinPointKind

from tests.support import Engine, Turbine


def method_jp(cls, name):
    return JoinPoint(JoinPointKind.METHOD, cls, name)


def field_jp(cls, name):
    return JoinPoint(JoinPointKind.FIELD_WRITE, cls, name)


class TestMethodCut:
    def test_from_signature_text(self):
        cut = MethodCut("Engine.start")
        assert cut.matches(method_jp(Engine, "start"))
        assert not cut.matches(method_jp(Engine, "throttle"))

    def test_from_keyword_parts(self):
        cut = MethodCut(type="Engine", method="th*")
        assert cut.matches(method_jp(Engine, "throttle"))

    def test_type_pattern_covers_subclasses(self):
        cut = MethodCut(type="Engine", method="*")
        assert cut.matches(method_jp(Turbine, "spool"))

    def test_subclass_pattern_excludes_base(self):
        cut = MethodCut(type="Turbine", method="*")
        assert not cut.matches(method_jp(Engine, "start"))

    def test_wrong_kind_rejected(self):
        cut = MethodCut(type="*", method="*")
        assert not cut.matches(field_jp(Engine, "rpm"))

    def test_callable_refinement(self):
        cut = MethodCut(type="Engine", method="throttle", params=("int",))
        assert cut.matches(method_jp(Engine, "throttle"), Engine.throttle)
        cut_wrong = MethodCut(type="Engine", method="throttle", params=("str",))
        assert not cut_wrong.matches(method_jp(Engine, "throttle"), Engine.throttle)


class TestFieldWriteCut:
    def test_field_pattern(self):
        cut = FieldWriteCut(type="Engine", field="rpm")
        assert cut.matches(field_jp(Engine, "rpm"))
        assert not cut.matches(field_jp(Engine, "log"))

    def test_wildcard_field(self):
        cut = FieldWriteCut(type="*", field="*")
        assert cut.matches(field_jp(Engine, "anything"))

    def test_type_pattern_covers_subclasses(self):
        cut = FieldWriteCut(type="Engine", field="rpm")
        assert cut.matches(field_jp(Turbine, "rpm"))

    def test_wrong_kind_rejected(self):
        cut = FieldWriteCut(type="*", field="*")
        assert not cut.matches(method_jp(Engine, "start"))


class TestExceptionCut:
    def test_matches_method_joinpoints(self):
        cut = ExceptionCut(type="Engine", method="fail")
        assert cut.matches(method_jp(Engine, "fail"))
        assert not cut.matches(method_jp(Engine, "start"))

    def test_accepts_filters_by_exception_type(self):
        cut = ExceptionCut(type="*", method="*", exception=ValueError)
        assert cut.accepts(ValueError("x"))
        assert not cut.accepts(KeyError("y"))

    def test_accepts_everything_without_filter(self):
        cut = ExceptionCut(type="*", method="*")
        assert cut.accepts(RuntimeError("anything"))

    def test_accepts_subclass_exceptions(self):
        class Special(ValueError):
            pass

        cut = ExceptionCut(type="*", method="*", exception=ValueError)
        assert cut.accepts(Special("x"))
