"""String-crosscut ergonomics across all decorators."""

import pytest

from repro.aop import Aspect, ProseVM, after, after_throwing, around, before

from tests.support import fresh_class


@pytest.fixture
def vm():
    return ProseVM()


class TestStringCrosscuts:
    def test_before_with_signature_text(self, vm):
        hits = []

        class A(Aspect):
            @before("Engine.throttle(int)")
            def advice(self, ctx):
                hits.append(ctx.args)

        cls = fresh_class()
        vm.load_class(cls)
        vm.insert(A())
        cls().throttle(5)
        assert hits == [(5,)]

    def test_wildcard_signature_with_params(self, vm):
        hits = []

        class A(Aspect):
            @before("* *.send*(bytes, ..)")
            def advice(self, ctx):
                hits.append(ctx.method_name)

        cls = fresh_class()
        vm.load_class(cls)
        vm.insert(A())
        engine = cls()
        engine.send_telemetry(b"x")
        engine.throttle(1)  # not a send*
        assert hits == ["send_telemetry"]

    def test_after_and_around_with_strings(self, vm):
        order = []

        class A(Aspect):
            @around("Engine.start")
            def wrap(self, ctx):
                order.append("around")
                return ctx.proceed()

            @after("Engine.start")
            def post(self, ctx):
                order.append("after")

        cls = fresh_class()
        vm.load_class(cls)
        vm.insert(A())
        cls().start()
        assert order == ["around", "after"]

    def test_after_throwing_with_string_catches_any_exception(self, vm):
        caught = []

        class A(Aspect):
            @after_throwing("Engine.fail")
            def advice(self, ctx):
                caught.append(type(ctx.exception).__name__)

        cls = fresh_class()
        vm.load_class(cls)
        vm.insert(A())
        with pytest.raises(RuntimeError):
            cls().fail()
        assert caught == ["RuntimeError"]
