"""Aspect sandbox tests."""

import pytest

from repro.aop import (
    AspectSandbox,
    Capability,
    MethodCut,
    ProseVM,
    SandboxPolicy,
    SystemGateway,
    before,
    current_sandbox,
)
from repro.aop.aspect import Aspect
from repro.errors import SandboxViolation

from tests.support import NetworkUsingAspect, fresh_class


class TestSandboxPolicy:
    def test_permissive_allows_everything(self):
        policy = SandboxPolicy.permissive()
        assert all(policy.allows(cap) for cap in Capability.ALL)

    def test_restrictive_allows_nothing(self):
        policy = SandboxPolicy.restrictive()
        assert not any(policy.allows(cap) for cap in Capability.ALL)

    def test_explicit_allowlist(self):
        policy = SandboxPolicy({Capability.NETWORK})
        assert policy.allows(Capability.NETWORK)
        assert not policy.allows(Capability.STORE)

    def test_restricted_to_intersects(self):
        policy = SandboxPolicy({Capability.NETWORK, Capability.STORE})
        narrowed = policy.restricted_to({Capability.NETWORK, Capability.CLOCK})
        assert narrowed.allows(Capability.NETWORK)
        assert not narrowed.allows(Capability.STORE)
        assert not narrowed.allows(Capability.CLOCK)

    def test_restricted_to_of_permissive_grants_exactly_requested(self):
        narrowed = SandboxPolicy.permissive().restricted_to({Capability.CLOCK})
        assert narrowed.allows(Capability.CLOCK)
        assert not narrowed.allows(Capability.NETWORK)


class TestAspectSandbox:
    def test_require_allows(self):
        sandbox = AspectSandbox(SandboxPolicy({Capability.CLOCK}), "ext")
        sandbox.require(Capability.CLOCK)

    def test_require_denies_and_records(self):
        sandbox = AspectSandbox(SandboxPolicy.restrictive(), "ext")
        with pytest.raises(SandboxViolation) as info:
            sandbox.require(Capability.NETWORK)
        assert info.value.capability == Capability.NETWORK
        assert info.value.aspect_name == "ext"
        assert sandbox.violations == [Capability.NETWORK]

    def test_wrap_sets_current_sandbox(self):
        sandbox = AspectSandbox(SandboxPolicy.permissive(), "ext")
        observed = []
        wrapped = sandbox.wrap(lambda: observed.append(current_sandbox()))
        assert current_sandbox() is None
        wrapped()
        assert observed == [sandbox]
        assert current_sandbox() is None

    def test_wrap_restores_on_exception(self):
        sandbox = AspectSandbox(SandboxPolicy.permissive(), "ext")

        def boom():
            raise ValueError()

        wrapped = sandbox.wrap(boom)
        with pytest.raises(ValueError):
            wrapped()
        assert current_sandbox() is None


class TestSystemGateway:
    def test_acquire_allowed_service(self):
        sandbox = AspectSandbox(SandboxPolicy({Capability.CLOCK}), "ext")
        clock = object()
        gateway = SystemGateway({Capability.CLOCK: clock}, sandbox)
        assert gateway.acquire(Capability.CLOCK) is clock

    def test_acquire_denied_by_policy(self):
        sandbox = AspectSandbox(SandboxPolicy.restrictive(), "ext")
        gateway = SystemGateway({Capability.CLOCK: object()}, sandbox)
        with pytest.raises(SandboxViolation):
            gateway.acquire(Capability.CLOCK)

    def test_acquire_missing_service(self):
        sandbox = AspectSandbox(SandboxPolicy.permissive(), "ext")
        gateway = SystemGateway({}, sandbox)
        with pytest.raises(SandboxViolation):
            gateway.acquire(Capability.NETWORK)

    def test_unbound_gateway_uses_current_sandbox(self):
        gateway = SystemGateway({Capability.CLOCK: object()})
        sandbox = AspectSandbox(SandboxPolicy.restrictive(), "ext")

        def attempt():
            gateway.acquire(Capability.CLOCK)

        with pytest.raises(SandboxViolation):
            sandbox.wrap(attempt)()
        # Outside any sandbox, access is unmediated (local trusted code).
        gateway.acquire(Capability.CLOCK)

    def test_offers_and_capabilities(self):
        gateway = SystemGateway({Capability.CLOCK: object()})
        assert gateway.offers(Capability.CLOCK)
        assert not gateway.offers(Capability.NETWORK)
        assert gateway.capabilities() == frozenset({Capability.CLOCK})


class TestSandboxedWeaving:
    def test_denied_advice_raises_at_interception(self):
        vm = ProseVM()
        cls = fresh_class()
        vm.load_class(cls)
        aspect = NetworkUsingAspect()
        sandbox = AspectSandbox(SandboxPolicy.restrictive(), aspect.name)
        aspect.bind(SystemGateway({}, sandbox))
        vm.insert(aspect, sandbox=sandbox)
        with pytest.raises(SandboxViolation):
            cls().start()

    def test_allowed_advice_proceeds(self):
        vm = ProseVM()
        cls = fresh_class()
        vm.load_class(cls)
        aspect = NetworkUsingAspect()
        sandbox = AspectSandbox(SandboxPolicy({Capability.NETWORK}), aspect.name)
        aspect.bind(SystemGateway({Capability.NETWORK: object()}, sandbox))
        vm.insert(aspect, sandbox=sandbox)
        engine = cls()
        engine.start()
        assert aspect.posts == 1
        assert engine.rpm == 800

    def test_application_code_not_sandboxed(self):
        vm = ProseVM()
        cls = fresh_class()
        vm.load_class(cls)
        observed = []

        class Peek(Aspect):
            @before(MethodCut(type="Engine", method="start"))
            def peek(self, ctx):
                observed.append(current_sandbox())

        aspect = Peek()
        sandbox = AspectSandbox(SandboxPolicy.restrictive(), aspect.name)
        vm.insert(aspect, sandbox=sandbox)
        engine = cls()
        engine.start()
        assert observed == [sandbox]
        assert current_sandbox() is None
