"""Swap-mode weaving tests (the DESIGN §6 ablation).

In swap mode hooks exist only while advised: loading a class plants
nothing, inserting an aspect installs stubs at exactly the matched join
points, withdrawing it restores the pristine methods.
"""

import pytest

from repro.aop import Aspect, MethodCut, ProseVM, RESIDENT, SWAP, before
from repro.aop.advice import AdviceKind
from repro.aop.crosscut import FieldWriteCut
from repro.errors import WeaveError

from tests.support import TraceAspect, fresh_class


@pytest.fixture
def vm():
    return ProseVM(mode=SWAP)


class TestSwapMode:
    def test_load_installs_nothing(self, vm):
        cls = fresh_class()
        vm.load_class(cls)
        assert not hasattr(cls.start, "__prose_table__")
        assert "__setattr__" not in vars(cls)

    def test_joinpoints_still_enumerable(self, vm):
        cls = fresh_class()
        vm.load_class(cls)
        assert {jp.member for jp in vm.joinpoints()} >= {"start", "throttle"}

    def test_insert_installs_only_matched_stubs(self, vm):
        cls = fresh_class()
        vm.load_class(cls)
        vm.insert(TraceAspect(type_pattern="Engine", method_pattern="start"))
        assert hasattr(cls.start, "__prose_table__")
        assert not hasattr(cls.throttle, "__prose_table__")

    def test_interception_works(self, vm):
        cls = fresh_class()
        vm.load_class(cls)
        trace = TraceAspect(type_pattern="Engine", method_pattern="start")
        vm.insert(trace)
        cls().start()
        assert trace.trace == [("start", ())]

    def test_withdraw_restores_pristine_methods(self, vm):
        cls = fresh_class()
        original = vars(cls)["start"]
        vm.load_class(cls)
        trace = TraceAspect(type_pattern="Engine", method_pattern="start")
        vm.insert(trace)
        vm.withdraw(trace)
        assert vars(cls)["start"] is original

    def test_field_hook_swapped(self, vm):
        cls = fresh_class()
        vm.load_class(cls)

        aspect = Aspect()
        writes = []
        aspect.add_advice(
            AdviceKind.AFTER,
            FieldWriteCut(type="Engine", field="rpm"),
            lambda ctx: writes.append(ctx.new_value),
        )
        vm.insert(aspect)
        assert "__setattr__" in vars(cls)
        engine = cls()
        engine.rpm = 5
        assert 5 in writes
        vm.withdraw(aspect)
        assert "__setattr__" not in vars(cls)

    def test_two_aspects_one_joinpoint(self, vm):
        cls = fresh_class()
        vm.load_class(cls)
        first = TraceAspect(type_pattern="Engine", method_pattern="start")
        second = TraceAspect(type_pattern="Engine", method_pattern="start")
        vm.insert(first)
        vm.insert(second)
        vm.withdraw(first)
        # Still advised by the second: stub stays.
        assert hasattr(cls.start, "__prose_table__")
        vm.withdraw(second)
        assert not hasattr(cls.start, "__prose_table__")

    def test_unload_while_advised(self, vm):
        cls = fresh_class()
        vm.load_class(cls)
        trace = TraceAspect(type_pattern="Engine")
        vm.insert(trace)
        vm.unload_class(cls)
        cls().start()
        assert not hasattr(cls.start, "__prose_table__")

    def test_unknown_mode_rejected(self):
        with pytest.raises(WeaveError):
            ProseVM(mode="hybrid")

    def test_default_mode_is_resident(self):
        assert ProseVM().mode == RESIDENT
