"""Assorted AOP edge cases."""

import pytest

from repro.aop import Aspect, MethodCut, ProseVM, SWAP, before
from repro.aop.signature import parse_signature

from tests.support import TraceAspect, Turbine, fresh_class


class TestSignatureEdges:
    def test_unintrospectable_callable_matches_only_unconstrained(self):
        unconstrained = parse_signature("*.*")
        constrained = parse_signature("*.*(int)")
        assert unconstrained.matches_callable(dict.update)
        assert not constrained.matches_callable(dict.update)

    def test_repr_round_readable(self):
        sig = parse_signature("void Motor.send*(bytes, ..)")
        text = repr(sig)
        assert "Motor" in text and "send*" in text


class TestSwapModeInheritance:
    def test_materialized_inherited_stub_removed_on_withdraw(self):
        vm = ProseVM(mode=SWAP)
        cls = fresh_class(Turbine)
        vm.load_class(cls, include_inherited=True)
        # 'throttle' is inherited from Engine and materialized lazily.
        assert "throttle" not in vars(cls)
        trace = TraceAspect(type_pattern="Turbine", method_pattern="throttle")
        vm.insert(trace)
        assert "throttle" in vars(cls)  # class-local stub installed
        turbine = cls()
        turbine.throttle(5)
        assert trace.trace[-1] == ("throttle", (5,))
        vm.withdraw(trace)
        assert "throttle" not in vars(cls)  # back to plain inheritance
        turbine.throttle(5)
        vm.unload_class(cls)


class TestVmMisc:
    def test_stats_repr_and_counts(self):
        vm = ProseVM()
        cls = fresh_class()
        vm.load_class(cls)
        trace = TraceAspect()
        vm.insert(trace)
        vm.withdraw(trace)
        assert vm.stats.classes_loaded == 1
        assert vm.stats.inserts == 1
        assert vm.stats.withdrawals == 1
        assert "classes=1" in repr(vm.stats)
        vm.unload_class(cls)

    def test_joinpoints_filtered_by_kind(self):
        from repro.aop.joinpoint import JoinPointKind

        vm = ProseVM()
        cls = fresh_class()
        vm.load_class(cls)
        assert vm.joinpoints(JoinPointKind.METHOD)
        assert vm.joinpoints(JoinPointKind.FIELD_WRITE) == []
        vm.unload_class(cls)

    def test_insert_returns_none_and_orders_aspects(self):
        vm = ProseVM()
        first, second = TraceAspect(), TraceAspect()
        vm.insert(first)
        vm.insert(second)
        assert vm.aspects == (first, second)
