"""Field-write join point tests."""

import pytest

from repro.aop import Aspect, FieldWriteCut, ProseVM
from repro.aop.advice import AdviceKind
from repro.errors import WeaveError

from tests.support import FieldTraceAspect, fresh_class


@pytest.fixture
def vm():
    return ProseVM()


@pytest.fixture
def cls(vm):
    klass = fresh_class()
    vm.load_class(klass)
    return klass


class TestFieldInterception:
    def test_write_intercepted_with_old_and_new(self, vm, cls):
        aspect = FieldTraceAspect(type_pattern="Engine", field_pattern="rpm")
        vm.insert(aspect)
        engine = cls()
        engine.rpm = 1000
        writes = [w for w in aspect.writes if w[0] == "rpm"]
        assert (("rpm", 0, 1000)) in writes

    def test_initialization_writes_seen(self, vm):
        aspect = FieldTraceAspect(field_pattern="rpm")
        vm.insert(aspect)
        cls = fresh_class()
        vm.load_class(cls)
        cls()
        assert ("rpm", None, 0) in aspect.writes

    def test_non_matching_fields_untouched(self, vm, cls):
        aspect = FieldTraceAspect(field_pattern="rpm")
        vm.insert(aspect)
        engine = cls()
        aspect.writes.clear()
        engine.log = ["x"]
        assert aspect.writes == []

    def test_withdraw_stops_interception(self, vm, cls):
        aspect = FieldTraceAspect(field_pattern="rpm")
        vm.insert(aspect)
        engine = cls()
        vm.withdraw(aspect)
        aspect.writes.clear()
        engine.rpm = 5
        assert aspect.writes == []

    def test_writes_still_take_effect(self, vm, cls):
        vm.insert(FieldTraceAspect())
        engine = cls()
        engine.rpm = 123
        assert engine.rpm == 123

    def test_before_advice_can_rewrite_value(self, vm, cls):
        class Clamp(Aspect):
            def __init__(self):
                super().__init__()
                self.add_advice(
                    AdviceKind.BEFORE,
                    FieldWriteCut(type="Engine", field="rpm"),
                    self.clamp,
                )

            def clamp(self, ctx):
                if isinstance(ctx.new_value, int) and ctx.new_value > 100:
                    ctx.new_value = 100

        vm.insert(Clamp())
        engine = cls()
        engine.rpm = 5000
        assert engine.rpm == 100

    def test_around_on_field_cut_rejected(self, vm):
        class Bad(Aspect):
            def __init__(self):
                super().__init__()
                self.add_advice(
                    AdviceKind.AROUND, FieldWriteCut(type="*", field="*"), self.advice
                )

            def advice(self, ctx):
                pass

        with pytest.raises(WeaveError):
            vm.insert(Bad())

    def test_subclass_instances_matched_dynamically(self, vm):
        from tests.support import Turbine

        base = fresh_class()  # Engine clone

        class Turbo(base):  # subclass defined after, not separately loaded
            pass

        vm.load_class(base)
        aspect = FieldTraceAspect(type_pattern="Turbo", field_pattern="rpm")
        vm.insert(aspect)
        base().rpm = 1  # an Engine, not a Turbo: no match
        count_after_base = len([w for w in aspect.writes if w[0] == "rpm" and w[2] == 1])
        Turbo().rpm = 2
        turbo_writes = [w for w in aspect.writes if w[0] == "rpm" and w[2] == 2]
        assert count_after_base == 0
        assert turbo_writes

    def test_slots_classes_supported(self, vm):
        class Slotted:
            __slots__ = ("value",)

            def __init__(self):
                self.value = 0

        vm.load_class(Slotted)
        aspect = FieldTraceAspect(type_pattern="Slotted")
        vm.insert(aspect)
        obj = Slotted()
        obj.value = 9
        assert ("value", None, 9) in aspect.writes
        assert obj.value == 9

    def test_unload_restores_setattr(self, vm):
        cls = fresh_class()
        vm.load_class(cls)
        assert hasattr(cls.__setattr__, "__prose_field_table__")
        vm.unload_class(cls)
        assert not hasattr(cls.__setattr__, "__prose_field_table__")
        engine = cls()
        engine.rpm = 7
        assert engine.rpm == 7

    def test_custom_setattr_preserved(self, vm):
        class Custom:
            def __init__(self):
                self.history = []

            def __setattr__(self, name, value):
                object.__setattr__(self, name, value)
                if name != "history":
                    self.history.append(name)

        vm.load_class(Custom)
        aspect = FieldTraceAspect(type_pattern="Custom", field_pattern="speed")
        vm.insert(aspect)
        obj = Custom()
        obj.speed = 3
        assert obj.speed == 3
        assert "speed" in obj.history  # original __setattr__ still runs
        assert ("speed", None, 3) in aspect.writes
