"""Reentrancy edges: weaving operations from inside advice."""

import pytest

from repro.aop import Aspect, MethodCut, ProseVM, before

from tests.support import TraceAspect, fresh_class


@pytest.fixture
def vm():
    return ProseVM()


class TestReentrantWeaving:
    def test_aspect_withdrawing_itself_mid_call(self, vm):
        """A one-shot aspect: its advice withdraws it.  The in-flight
        dispatch completes; later calls take the fast path."""
        cls = fresh_class()
        vm.load_class(cls)

        class OneShot(Aspect):
            def __init__(self, target_vm):
                super().__init__()
                self.vm = target_vm
                self.fired = 0

            @before(MethodCut(type="Engine", method="start"))
            def advice(self, ctx):
                self.fired += 1
                self.vm.withdraw(self)

        aspect = OneShot(vm)
        vm.insert(aspect)
        engine = cls()
        engine.start()
        engine.start()
        assert aspect.fired == 1
        assert not vm.is_inserted(aspect)
        assert engine.rpm == 800  # the intercepted call still ran

    def test_advice_inserting_another_aspect(self, vm):
        """Advice may insert a new aspect; it becomes active for
        subsequent calls (not the in-flight one)."""
        cls = fresh_class()
        vm.load_class(cls)
        late = TraceAspect(type_pattern="Engine", method_pattern="start")

        class Bootstrapper(Aspect):
            def __init__(self, target_vm):
                super().__init__()
                self.vm = target_vm
                self.done = False

            @before(MethodCut(type="Engine", method="start"))
            def advice(self, ctx):
                if not self.done:
                    self.done = True
                    self.vm.insert(late)

        vm.insert(Bootstrapper(vm))
        engine = cls()
        engine.start()  # bootstraps; late aspect not yet active this call
        assert late.trace == []
        engine.start()
        assert len(late.trace) == 1

    def test_intercepted_method_calling_intercepted_method(self, vm):
        """Nested interceptions on the same aspect work (no accidental
        global reentrancy suppression)."""
        calls = []

        class Chatty:
            def outer(self):
                self.inner()
                return "outer"

            def inner(self):
                return "inner"

        class Watcher(Aspect):
            @before(MethodCut(type="Chatty", method="*"))
            def advice(self, ctx):
                calls.append(ctx.method_name)

        vm.load_class(Chatty)
        vm.insert(Watcher())
        Chatty().outer()
        assert calls == ["outer", "inner"]

    def test_advice_raising_during_init_interception(self, vm):
        """An aspect blocking __init__ prevents construction cleanly."""

        class NoConstruction(Aspect):
            @before(MethodCut(type="Engine", method="__init__"))
            def advice(self, ctx):
                raise PermissionError("no new engines in this hall")

        cls = fresh_class()
        vm.load_class(cls)
        vm.insert(NoConstruction())
        with pytest.raises(PermissionError):
            cls()
