"""Semantics of before/after/around/after_throwing advice."""

import pytest

from repro.aop import (
    Aspect,
    ExceptionCut,
    MethodCut,
    ProseVM,
    after,
    after_throwing,
    around,
    before,
)

from tests.support import fresh_class


@pytest.fixture
def vm():
    return ProseVM()


@pytest.fixture
def cls(vm):
    klass = fresh_class()
    vm.load_class(klass)
    return klass


class TestBefore:
    def test_runs_before_body(self, vm, cls):
        order = []

        class A(Aspect):
            @before(MethodCut(type="Engine", method="start"))
            def advice(self, ctx):
                order.append("advice")
                order.append(("rpm-before", ctx.target.rpm))

        vm.insert(A())
        engine = cls()
        engine.start()
        assert order[0] == "advice"
        assert ("rpm-before", 0) in order
        assert engine.rpm == 800

    def test_can_rewrite_args(self, vm, cls):
        class Doubler(Aspect):
            @before(MethodCut(type="Engine", method="throttle"))
            def advice(self, ctx):
                ctx.args = (ctx.args[0] * 2,)

        vm.insert(Doubler())
        engine = cls()
        engine.start()
        assert engine.throttle(50) == 900  # 800 + 100

    def test_exception_blocks_call(self, vm, cls):
        class Blocker(Aspect):
            @before(MethodCut(type="Engine", method="start"))
            def advice(self, ctx):
                raise PermissionError("denied")

        vm.insert(Blocker())
        engine = cls()
        with pytest.raises(PermissionError):
            engine.start()
        assert engine.rpm == 0  # body never ran


class TestAfter:
    def test_runs_after_body_sees_result(self, vm, cls):
        seen = []

        class A(Aspect):
            @after(MethodCut(type="Engine", method="throttle"))
            def advice(self, ctx):
                seen.append(ctx.result)

        vm.insert(A())
        engine = cls()
        engine.throttle(5)
        assert seen == [5]

    def test_can_replace_result(self, vm, cls):
        class Clamp(Aspect):
            @after(MethodCut(type="Engine", method="throttle"))
            def advice(self, ctx):
                ctx.result = min(ctx.result, 100)

        vm.insert(Clamp())
        engine = cls()
        assert engine.throttle(500) == 100

    def test_skipped_on_exception(self, vm, cls):
        ran = []

        class A(Aspect):
            @after(MethodCut(type="Engine", method="fail"))
            def advice(self, ctx):
                ran.append(True)

        vm.insert(A())
        with pytest.raises(RuntimeError):
            cls().fail()
        assert ran == []


class TestAround:
    def test_wraps_body(self, vm, cls):
        order = []

        class A(Aspect):
            @around(MethodCut(type="Engine", method="throttle"))
            def advice(self, ctx):
                order.append("pre")
                result = ctx.proceed()
                order.append("post")
                return result + 1

        vm.insert(A())
        assert cls().throttle(5) == 6
        assert order == ["pre", "post"]

    def test_short_circuit_without_proceed(self, vm, cls):
        class Cache(Aspect):
            @around(MethodCut(type="Engine", method="throttle"))
            def advice(self, ctx):
                return -1

        vm.insert(Cache())
        engine = cls()
        assert engine.throttle(5) == -1
        assert engine.rpm == 0  # body never ran

    def test_nested_arounds_by_order(self, vm, cls):
        order = []

        class Outer(Aspect):
            @around(MethodCut(type="Engine", method="start"), order=1)
            def advice(self, ctx):
                order.append("outer-in")
                result = ctx.proceed()
                order.append("outer-out")
                return result

        class Inner(Aspect):
            @around(MethodCut(type="Engine", method="start"), order=2)
            def advice(self, ctx):
                order.append("inner-in")
                result = ctx.proceed()
                order.append("inner-out")
                return result

        vm.insert(Inner())
        vm.insert(Outer())
        cls().start()
        assert order == ["outer-in", "inner-in", "inner-out", "outer-out"]

    def test_around_can_retry(self, vm, cls):
        attempts = []

        class Retry(Aspect):
            @around(MethodCut(type="Engine", method="throttle"))
            def advice(self, ctx):
                attempts.append(1)
                first = ctx.proceed()
                second = ctx.proceed()  # run the body twice
                return (first, second)

        vm.insert(Retry())
        engine = cls()
        assert engine.throttle(10) == (10, 20)


class TestAfterThrowing:
    def test_sees_escaping_exception(self, vm, cls):
        seen = []

        class A(Aspect):
            @after_throwing(ExceptionCut(type="Engine", method="fail"))
            def advice(self, ctx):
                seen.append(type(ctx.exception).__name__)

        vm.insert(A())
        with pytest.raises(RuntimeError):
            cls().fail()
        assert seen == ["RuntimeError"]

    def test_exception_still_propagates(self, vm, cls):
        class A(Aspect):
            @after_throwing(ExceptionCut(type="Engine", method="fail"))
            def advice(self, ctx):
                pass

        vm.insert(A())
        with pytest.raises(RuntimeError):
            cls().fail()

    def test_type_filter(self, vm, cls):
        seen = []

        class OnlyValueErrors(Aspect):
            @after_throwing(ExceptionCut(type="Engine", method="*", exception=ValueError))
            def advice(self, ctx):
                seen.append(ctx.exception)

        vm.insert(OnlyValueErrors())
        with pytest.raises(RuntimeError):
            cls().fail()  # raises RuntimeError: filtered out
        assert seen == []

    def test_not_called_on_success(self, vm, cls):
        seen = []

        class A(Aspect):
            @after_throwing(ExceptionCut(type="Engine", method="start"))
            def advice(self, ctx):
                seen.append(True)

        vm.insert(A())
        cls().start()
        assert seen == []


class TestCombined:
    def test_full_pipeline_order(self, vm, cls):
        order = []

        class Everything(Aspect):
            @before(MethodCut(type="Engine", method="throttle"))
            def pre(self, ctx):
                order.append("before")

            @around(MethodCut(type="Engine", method="throttle"))
            def wrap(self, ctx):
                order.append("around-in")
                result = ctx.proceed()
                order.append("around-out")
                return result

            @after(MethodCut(type="Engine", method="throttle"))
            def post(self, ctx):
                order.append("after")

        vm.insert(Everything())
        cls().throttle(1)
        assert order == ["before", "around-in", "around-out", "after"]

    def test_session_shared_across_advice(self, vm, cls):
        seen = []

        class Producer(Aspect):
            @before(MethodCut(type="Engine", method="start"), order=1)
            def put(self, ctx):
                ctx.session["token"] = "abc"

        class Consumer(Aspect):
            @before(MethodCut(type="Engine", method="start"), order=2)
            def get(self, ctx):
                seen.append(ctx.session.get("token"))

        vm.insert(Producer())
        vm.insert(Consumer())
        cls().start()
        assert seen == ["abc"]
