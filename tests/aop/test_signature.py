"""Signature language tests."""

import pytest

from repro.aop.signature import REST, MethodSignature, parse_signature
from repro.errors import PatternSyntaxError


class TestParsing:
    def test_paper_example(self):
        sig = parse_signature("void *.send*(bytes, ..)")
        assert sig.return_pattern.pattern == "None"
        assert sig.type_pattern.pattern == "*"
        assert sig.method_pattern.pattern == "send*"
        assert sig.param_patterns[-1] is REST

    def test_java_style_tolerated(self):
        # 'byte[] x' becomes the type with array suffix stripped.
        sig = parse_signature("void *.send*(byte[] x, ..)")
        assert sig.param_patterns[0].pattern == "byte"

    def test_bare_method_name(self):
        sig = parse_signature("spin")
        assert sig.type_pattern.pattern == "*"
        assert sig.method_pattern.pattern == "spin"

    def test_qualified_name_without_params(self):
        sig = parse_signature("Motor.*")
        assert sig.type_pattern.pattern == "Motor"
        assert sig.method_pattern.pattern == "*"

    def test_empty_params(self):
        sig = parse_signature("Motor.stop()")
        assert sig.param_patterns == ()

    def test_only_rest(self):
        sig = parse_signature("Motor.*(..)")
        assert sig.param_patterns == (REST,)

    def test_empty_signature_rejected(self):
        with pytest.raises(PatternSyntaxError):
            parse_signature("")

    def test_unterminated_params_rejected(self):
        with pytest.raises(PatternSyntaxError):
            parse_signature("Motor.spin(int")

    def test_nested_parens_rejected(self):
        with pytest.raises(PatternSyntaxError):
            parse_signature("Motor.spin((int))")

    def test_too_many_tokens_rejected(self):
        with pytest.raises(PatternSyntaxError):
            parse_signature("public void Motor.spin()")

    def test_rest_must_be_last(self):
        with pytest.raises(PatternSyntaxError):
            MethodSignature(param_patterns=(REST, "int"))

    def test_empty_param_rejected(self):
        with pytest.raises(PatternSyntaxError):
            parse_signature("Motor.spin(int,,str)")


class TestNameMatching:
    def test_method_pattern(self):
        sig = parse_signature("*.send*")
        assert sig.matches_names(("Radio",), "sendBytes")
        assert not sig.matches_names(("Radio",), "receive")

    def test_type_pattern_any_mro_name(self):
        sig = parse_signature("Device.*")
        assert sig.matches_names(("Motor", "Device"), "spin")
        assert not sig.matches_names(("Radio",), "spin")

    def test_universal_type(self):
        sig = parse_signature("*.*")
        assert sig.matches_names(("Anything",), "whatever")


class TestCallableMatching:
    def test_unconstrained_matches_anything(self):
        sig = parse_signature("Motor.*")
        assert sig.matches_callable(lambda a, b, c: None)

    def test_param_type_by_annotation(self):
        sig = parse_signature("* *.f(int)")

        def annotated(self, x: int) -> None: ...
        def wrong(self, x: str) -> None: ...

        assert sig.matches_callable(annotated)
        assert not sig.matches_callable(wrong)

    def test_unannotated_param_matches_any_pattern(self):
        sig = parse_signature("* *.f(bytes)")

        def bare(self, x): ...

        assert sig.matches_callable(bare)

    def test_arity_must_match_without_rest(self):
        sig = parse_signature("* *.f(int)")

        def two(self, x: int, y: int): ...
        def zero(self): ...

        assert not sig.matches_callable(two)
        assert not sig.matches_callable(zero)

    def test_rest_absorbs_extra_params(self):
        sig = parse_signature("* *.f(int, ..)")

        def many(self, x: int, y: str, z: float): ...

        assert sig.matches_callable(many)

    def test_var_positional_absorbs_patterns(self):
        sig = parse_signature("* *.f(int, int)")

        def star(self, *values): ...

        assert sig.matches_callable(star)

    def test_return_annotation_matching(self):
        sig = parse_signature("int *.f")

        def returns_int(self) -> int: ...
        def returns_str(self) -> str: ...
        def returns_nothing(self): ...

        assert sig.matches_callable(returns_int)
        assert not sig.matches_callable(returns_str)
        assert sig.matches_callable(returns_nothing)  # unannotated matches

    def test_void_aliases_none(self):
        sig = parse_signature("void *.f")

        def proc(self) -> None: ...

        assert sig.matches_callable(proc)

    def test_empty_params_requires_no_args(self):
        sig = parse_signature("* *.f()")

        def nullary(self): ...
        def unary(self, x): ...

        assert sig.matches_callable(nullary)
        assert not sig.matches_callable(unary)


class TestEquality:
    def test_equal_signatures(self):
        assert parse_signature("Motor.spin(int)") == parse_signature("Motor.spin(int)")

    def test_hashable(self):
        sigs = {parse_signature("a.b"), parse_signature("a.b"), parse_signature("a.c")}
        assert len(sigs) == 2
