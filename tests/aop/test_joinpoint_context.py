"""Join point identity and execution context tests."""

from repro.aop.context import ExecutionContext, FieldWriteContext
from repro.aop.joinpoint import JoinPoint, JoinPointKind

from tests.support import Engine, Turbine


class TestJoinPoint:
    def test_equality_by_kind_class_member(self):
        a = JoinPoint(JoinPointKind.METHOD, Engine, "start")
        b = JoinPoint(JoinPointKind.METHOD, Engine, "start")
        c = JoinPoint(JoinPointKind.FIELD_WRITE, Engine, "start")
        assert a == b
        assert a != c
        assert hash(a) == hash(b)

    def test_different_classes_differ(self):
        a = JoinPoint(JoinPointKind.METHOD, Engine, "start")
        b = JoinPoint(JoinPointKind.METHOD, Turbine, "start")
        assert a != b

    def test_mro_names_exclude_object(self):
        jp = JoinPoint(JoinPointKind.METHOD, Turbine, "spool")
        names = list(jp.mro_names())
        assert names == ["Turbine", "Engine"]

    def test_class_name(self):
        jp = JoinPoint(JoinPointKind.METHOD, Engine, "start")
        assert jp.class_name == "Engine"


class TestExecutionContext:
    def make_ctx(self, arounds=()):
        jp = JoinPoint(JoinPointKind.METHOD, Engine, "throttle")
        return ExecutionContext(
            jp, Engine(), (10,), {}, Engine.throttle, tuple(arounds)
        )

    def test_proceed_calls_original(self):
        ctx = self.make_ctx()
        assert ctx.proceed() == 10  # fresh Engine: rpm 0 + 10

    def test_method_name(self):
        assert self.make_ctx().method_name == "throttle"

    def test_session_starts_empty(self):
        assert self.make_ctx().session == {}

    def test_arounds_chain_in_order(self):
        order = []

        def outer(ctx):
            order.append("outer")
            return ctx.proceed()

        def inner(ctx):
            order.append("inner")
            return ctx.proceed()

        ctx = self.make_ctx([outer, inner])
        result = ctx.proceed()
        assert order == ["outer", "inner"]
        assert result == 10

    def test_depth_restored_after_exception(self):
        def failing(ctx):
            raise RuntimeError("boom")

        ctx = self.make_ctx([failing])
        try:
            ctx.proceed()
        except RuntimeError:
            pass
        # Depth unwound: a retry reaches the around again, then the body.
        calls = []

        def ok(ctx2):
            calls.append(1)
            return ctx2.proceed()

        ctx2 = self.make_ctx([ok])
        ctx2.proceed()
        assert calls == [1]


class TestFieldWriteContext:
    def make_ctx(self, **kwargs):
        jp = JoinPoint(JoinPointKind.FIELD_WRITE, Engine, "rpm")
        return FieldWriteContext(jp, Engine(), "rpm", **kwargs)

    def test_initialization_flag(self):
        ctx = self.make_ctx(new_value=5)
        assert ctx.is_initialization
        assert ctx.old_value is None

    def test_update_has_old_value(self):
        ctx = self.make_ctx(old_value=3, new_value=5)
        assert not ctx.is_initialization
        assert ctx.old_value == 3
        assert ctx.new_value == 5
