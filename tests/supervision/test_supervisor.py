"""Unit tests for the extension supervisor's containment barrier."""

from __future__ import annotations

import pytest

from repro.aop import (
    Aspect,
    AspectSandbox,
    Capability,
    MethodCut,
    ProseVM,
    SandboxPolicy,
    SystemGateway,
    around,
    before,
)
from repro.errors import AccessDeniedError, AdviceBudgetExceeded, FaultPlanError
from repro.supervision import (
    STRIKE_BUDGET,
    STRIKE_ERROR,
    STRIKE_VIOLATION,
    ExtensionSupervisor,
    SupervisionPolicy,
)
from repro.telemetry import MetricsRegistry
from repro.telemetry import runtime as _telemetry

from tests.support import Engine, fresh_class


class CrashingBefore(Aspect):
    """Before-advice that always raises."""

    @before(MethodCut(type="*", method="throttle"))
    def explode(self, ctx):
        raise ValueError("advice bug")


class VetoingBefore(Aspect):
    """Before-advice that raises a platform exception (intentional veto)."""

    @before(MethodCut(type="*", method="throttle"))
    def veto(self, ctx):
        raise AccessDeniedError("no session")


class CrashingAroundPreProceed(Aspect):
    """Around-advice that dies before proceeding."""

    @around(MethodCut(type="*", method="throttle"))
    def explode(self, ctx):
        raise ValueError("pre-proceed bug")


class CrashingAroundPostProceed(Aspect):
    """Around-advice that proceeds, then dies."""

    @around(MethodCut(type="*", method="throttle"))
    def explode(self, ctx):
        ctx.proceed()
        raise ValueError("post-proceed bug")


class RelayingAround(Aspect):
    """Around-advice that just proceeds (relaying app exceptions)."""

    @around(MethodCut(type="*", method="fail"))
    def relay(self, ctx):
        return ctx.proceed()


class SpinningBefore(Aspect):
    """Before-advice burning unbounded interpreter steps."""

    @before(MethodCut(type="*", method="throttle"))
    def spin(self, ctx):
        total = 0
        for step in range(1_000_000):
            total += step


class ProceedingAround(Aspect):
    """Around-advice that is cheap itself but proceeds into app code."""

    def __init__(self):
        super().__init__()
        self.results: list[int] = []

    @around(MethodCut(type="*", method="throttle"))
    def pass_through(self, ctx):
        value = ctx.proceed()
        self.results.append(value)
        return value


class ViolatingBefore(Aspect):
    """Before-advice that acquires a capability it was never granted."""

    @before(MethodCut(type="*", method="throttle"))
    def grab(self, ctx):
        self.gateway.acquire(Capability.NETWORK)


def supervised_world(sim, policy=None, aspect=None, sandbox=None):
    """A VM with one instrumented Engine clone and one supervised aspect."""
    vm = ProseVM()
    supervisor = ExtensionSupervisor(sim, policy or SupervisionPolicy())
    cls = fresh_class(Engine)
    vm.load_class(cls)
    if aspect is not None:
        vm.insert(aspect, sandbox=sandbox, containment=supervisor.guard(aspect))
    return vm, supervisor, cls()


class TestErrorContainment:
    def test_before_advice_error_is_contained(self, sim):
        aspect = CrashingBefore()
        vm, supervisor, engine = supervised_world(sim, aspect=aspect)
        assert engine.throttle(5) == 5  # application unharmed
        health = supervisor.health_of(aspect)
        assert health.contained == 1
        assert health.strikes[0].kind == STRIKE_ERROR
        assert "ValueError" in health.strikes[0].detail

    def test_around_failing_before_proceed_keeps_app_alive(self, sim):
        aspect = CrashingAroundPreProceed()
        vm, supervisor, engine = supervised_world(sim, aspect=aspect)
        # The guard proceeds on the dead advice's behalf.
        assert engine.throttle(7) == 7
        assert supervisor.health_of(aspect).strikes[0].kind == STRIKE_ERROR

    def test_around_failing_after_proceed_returns_proceed_value(self, sim):
        aspect = CrashingAroundPostProceed()
        vm, supervisor, engine = supervised_world(sim, aspect=aspect)
        assert engine.throttle(3) == 3  # the already-computed result
        assert supervisor.health_of(aspect).contained == 1

    def test_application_exception_through_proceed_is_not_a_strike(self, sim):
        aspect = RelayingAround()
        vm, supervisor, engine = supervised_world(sim, aspect=aspect)
        with pytest.raises(RuntimeError, match="engine failure"):
            engine.fail()
        assert supervisor.health_of(aspect).contained == 0

    def test_passthrough_exception_propagates_without_strike(self, sim):
        aspect = VetoingBefore()
        vm, supervisor, engine = supervised_world(sim, aspect=aspect)
        with pytest.raises(AccessDeniedError):
            engine.throttle(1)
        assert supervisor.health_of(aspect).contained == 0

    def test_observing_policy_records_but_reraises(self, sim):
        aspect = CrashingBefore()
        vm, supervisor, engine = supervised_world(
            sim, policy=SupervisionPolicy.observing(), aspect=aspect
        )
        with pytest.raises(ValueError, match="advice bug"):
            engine.throttle(1)
        health = supervisor.health_of(aspect)
        assert health.contained == 1
        assert not health.quarantined


class TestBudgets:
    def test_step_budget_aborts_runaway_advice(self, sim):
        aspect = SpinningBefore()
        vm, supervisor, engine = supervised_world(
            sim, policy=SupervisionPolicy(step_budget=500), aspect=aspect
        )
        assert engine.throttle(2) == 2  # aborted advice, app unharmed
        health = supervisor.health_of(aspect)
        assert health.strikes[0].kind == STRIKE_BUDGET
        assert "step budget" in health.strikes[0].detail

    def test_step_budget_excludes_proceeded_application_code(self, sim):
        aspect = ProceedingAround()
        vm, supervisor, engine = supervised_world(
            sim, policy=SupervisionPolicy(step_budget=200), aspect=aspect
        )
        # The application method can be arbitrarily busy without charging
        # the advice's budget.
        for _ in range(5):
            engine.throttle(1)
        assert supervisor.health_of(aspect).contained == 0
        assert len(aspect.results) == 5

    def test_budget_exceeded_error_carries_label_and_budget(self):
        exc = AdviceBudgetExceeded("ext.advice", 42)
        assert exc.advice_label == "ext.advice"
        assert exc.budget == 42
        assert "42" in str(exc)

    def test_time_budget_is_post_hoc(self, sim):
        aspect = ProceedingAround()
        vm, supervisor, engine = supervised_world(
            sim, policy=SupervisionPolicy(time_budget=1e-12), aspect=aspect
        )
        # Any real execution exceeds a 1ps budget: a strike is recorded
        # but the advice's result is kept (post-hoc semantics).
        assert engine.throttle(4) == 4
        assert aspect.results == [4]
        health = supervisor.health_of(aspect)
        assert health.contained == 1
        assert health.strikes[0].kind == STRIKE_BUDGET


class TestViolations:
    def test_sandbox_violation_is_contained_as_violation_strike(self, sim):
        aspect = ViolatingBefore()
        sandbox = AspectSandbox(SandboxPolicy.restrictive(), aspect.name)
        aspect.bind(SystemGateway({}, sandbox))
        vm, supervisor, engine = supervised_world(
            sim, aspect=aspect, sandbox=sandbox
        )
        assert engine.throttle(9) == 9
        assert supervisor.health_of(aspect).strikes[0].kind == STRIKE_VIOLATION


class TestQuarantine:
    def test_strikes_in_window_trigger_quarantine_once(self, sim):
        aspect = CrashingBefore()
        fired: list[tuple] = []
        vm, supervisor, engine = supervised_world(
            sim, policy=SupervisionPolicy(max_strikes=3), aspect=aspect
        )
        supervisor.on_quarantine.connect(lambda a, h: fired.append((a, h)))
        for _ in range(5):
            engine.throttle(1)
        health = supervisor.health_of(aspect)
        assert health.quarantined
        assert health.quarantined_at == sim.now
        assert len(fired) == 1  # fires exactly once
        assert fired[0][0] is aspect

    def test_quarantined_advice_is_skipped(self, sim):
        aspect = CrashingBefore()
        vm, supervisor, engine = supervised_world(
            sim, policy=SupervisionPolicy(max_strikes=2), aspect=aspect
        )
        engine.throttle(1)
        engine.throttle(1)
        assert supervisor.health_of(aspect).quarantined
        contained_before = supervisor.health_of(aspect).contained
        assert engine.throttle(1) == 3  # advice skipped, app still works
        assert supervisor.health_of(aspect).contained == contained_before

    def test_strikes_outside_window_do_not_escalate(self, sim):
        aspect = CrashingBefore()
        vm, supervisor, engine = supervised_world(
            sim,
            policy=SupervisionPolicy(max_strikes=2, strike_window=5.0),
            aspect=aspect,
        )
        engine.throttle(1)
        sim.run_for(10.0)  # first strike ages out of the window
        engine.throttle(1)
        health = supervisor.health_of(aspect)
        assert health.contained == 2
        assert not health.quarantined

    def test_lenient_policy_never_quarantines(self, sim):
        aspect = CrashingBefore()
        vm, supervisor, engine = supervised_world(
            sim, policy=SupervisionPolicy.lenient(), aspect=aspect
        )
        for _ in range(10):
            engine.throttle(1)
        health = supervisor.health_of(aspect)
        assert health.contained == 10
        assert not health.quarantined

    def test_release_forgets_health(self, sim):
        aspect = CrashingBefore()
        vm, supervisor, engine = supervised_world(sim, aspect=aspect)
        engine.throttle(1)
        supervisor.release(aspect)
        assert supervisor.health_of(aspect) is None
        assert supervisor.supervised() == []


class TestTelemetryAndPolicy:
    def test_containment_and_quarantine_are_counted(self, sim):
        registry = MetricsRegistry(clock=sim.clock)
        aspect = CrashingBefore()
        with _telemetry.recording(registry):
            vm, supervisor, engine = supervised_world(
                sim, policy=SupervisionPolicy(max_strikes=2), aspect=aspect
            )
            engine.throttle(1)
            engine.throttle(1)
        assert registry.counter_total("supervision.contained") == 2
        assert registry.counter_total("supervision.quarantined") == 1
        kinds = {
            event.fields["kind"]
            for event in registry.events
            if event.name == "supervision.contained"
        }
        assert kinds == {STRIKE_ERROR}

    def test_snapshot_is_serializable_summary(self, sim):
        aspect = CrashingBefore()
        vm, supervisor, engine = supervised_world(sim, aspect=aspect)
        engine.throttle(1)
        snap = supervisor.snapshot()
        assert snap["policy"]["max_strikes"] == 3
        assert snap["extensions"][0]["contained"] == 1
        assert snap["extensions"][0]["recent_strikes"][0]["kind"] == STRIKE_ERROR

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_strikes": 0},
            {"strike_window": 0.0},
            {"step_budget": 0},
            {"time_budget": 0.0},
        ],
    )
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(FaultPlanError):
            SupervisionPolicy(**kwargs)
