"""MIDAS-level quarantine lifecycle: withdraw, report, suppress, heal."""

from __future__ import annotations

import pytest

from repro.faults import FaultyExtension
from repro.midas.receiver import REASON_QUARANTINED
from repro.supervision import SupervisionPolicy
from repro.telemetry import MetricsRegistry
from repro.telemetry import runtime as _telemetry

from tests.midas.conftest import MidasWorld
from tests.support import Engine, NeedsFlakySession, TraceAspect, fresh_class


@pytest.fixture
def registry(sim):
    reg = MetricsRegistry(clock=sim.clock)
    previous = _telemetry.install(reg)
    yield reg
    _telemetry.install(previous)


@pytest.fixture
def supervised_world(sim, network) -> MidasWorld:
    return MidasWorld(
        sim,
        network,
        supervision=SupervisionPolicy(max_strikes=3, strike_window=30.0),
        device_attributes={"class": "robot"},
    )


def adapt(world: MidasWorld, **extensions) -> object:
    """Register extensions, connect the device, return a driven Engine."""
    for name, factory in extensions.items():
        world.catalog.add(name, factory)
    world.start_receiver()
    world.run(5.0)
    cls = fresh_class(Engine)
    world.vm.load_class(cls)
    return cls()


class TestQuarantineLifecycle:
    def test_offender_quarantined_and_withdrawn(
        self, supervised_world, registry
    ):
        world = supervised_world
        engine = adapt(
            world,
            saboteur=lambda: FaultyExtension(every=3, method_pattern="throttle"),
            tracer=TraceAspect,
        )
        assert world.receiver.is_installed("saboteur")

        withdrawn = []
        world.receiver.on_withdrawn.connect(
            lambda installed, reason: withdrawn.append((installed.name, reason))
        )
        # Strikes land on interceptions 3, 6 and 9; none of them reaches
        # the application.
        for amount in range(1, 10):
            engine.throttle(1)
        assert ("saboteur", REASON_QUARANTINED) in withdrawn
        assert not world.receiver.is_installed("saboteur")
        assert world.receiver.is_installed("tracer")  # innocents untouched
        assert registry.counter_total("supervision.quarantined") == 1

    def test_base_marks_catalog_and_stops_reoffering(
        self, supervised_world, registry
    ):
        world = supervised_world
        engine = adapt(
            world,
            saboteur=lambda: FaultyExtension(every=3, method_pattern="throttle"),
        )
        reports = []
        world.base.on_quarantined.connect(
            lambda node, name, body: reports.append((node, name, body))
        )
        for _ in range(9):
            engine.throttle(1)
        world.run(2.0)  # deliver the midas.health report

        assert reports and reports[0][:2] == ("device", "saboteur")
        assert reports[0][2]["offender"] == "saboteur"
        assert len(reports[0][2]["strikes"]) == 3
        assert not world.catalog.is_healthy("saboteur", "robot")
        assert world.catalog.is_healthy("saboteur", "other-class")
        assert any(
            record.action == "quarantined"
            for record in world.base.activity_for("device")
        )

        # Reconcile rounds keep running, but the bad version is held back.
        world.run(60.0)
        assert not world.receiver.is_installed("saboteur")
        assert registry.counter_value(
            "midas.quarantines",
            node="base",
            extension="saboteur",
            node_class="robot",
        ) == 1
        assert registry.counter_total("midas.offers_suppressed") > 0

    def test_publishing_new_version_heals_quarantine(self, supervised_world):
        world = supervised_world
        engine = adapt(
            world,
            saboteur=lambda: FaultyExtension(every=3, method_pattern="throttle"),
        )
        for _ in range(9):
            engine.throttle(1)
        world.run(30.0)
        assert not world.receiver.is_installed("saboteur")

        # The hall publishes a fixed version: the version bump heals the
        # mark and the reconciler re-adapts the device.
        world.base.replace_extension("saboteur", TraceAspect)
        assert world.catalog.is_healthy("saboteur", "robot")
        world.run(30.0)
        assert world.receiver.is_installed("saboteur")

    def test_quarantined_implicit_dependency_withdraws_dependents(
        self, supervised_world, registry
    ):
        world = supervised_world
        engine = adapt(world, monitor=NeedsFlakySession)
        assert world.receiver.is_installed("monitor")
        dependency = world.receiver.find("monitor").implicit[0]

        for _ in range(3):
            engine.throttle(1)
        world.run(2.0)

        # The flaky dependency struck out; its dependent was withdrawn
        # (shutdown first), taking the dependency with it.
        assert not world.receiver.is_installed("monitor")
        assert not world.vm.is_inserted(dependency)
        assert world.receiver.installed() == []
        assert registry.counter_value(
            "midas.withdrawals", node="device", reason=REASON_QUARANTINED
        ) == 1

    def test_quarantine_spans_join_the_install_trace(
        self, supervised_world, registry
    ):
        world = supervised_world
        engine = adapt(
            world,
            saboteur=lambda: FaultyExtension(every=3, method_pattern="throttle"),
        )
        for _ in range(9):
            engine.throttle(1)
        world.run(2.0)

        for spans in registry.traces().values():
            names = {span.name for span in spans}
            if "midas.quarantine" in names:
                assert "midas.install" in names
                assert "midas.offer" in names
                break
        else:
            pytest.fail("no trace contains the quarantine span")
