"""Property-based tests of the radio network's delivery guarantees."""

from hypothesis import given, settings, strategies as st

from repro.net.geometry import Position
from repro.net.network import Network, NetworkConfig
from repro.net.node import NetworkNode
from repro.sim.kernel import Simulator


def build_pair(loss=0.0, jitter=0.0005, fifo=True, seed=0):
    sim = Simulator()
    network = Network(
        sim,
        NetworkConfig(loss_probability=loss, jitter=jitter, fifo_links=fifo),
        seed=seed,
    )
    a = network.attach(NetworkNode("a", Position(0, 0)))
    b = network.attach(NetworkNode("b", Position(10, 0)))
    return sim, network, a, b


class TestDeliveryProperties:
    @given(st.integers(min_value=1, max_value=60), st.integers(min_value=0, max_value=99))
    @settings(max_examples=30)
    def test_fifo_links_preserve_send_order(self, count, seed):
        sim, network, a, b = build_pair(seed=seed)
        received = []
        b.set_handler("seq", lambda msg: received.append(msg.payload))
        for index in range(count):
            a.send("b", "seq", index)
        sim.run()
        assert received == list(range(count))

    @given(st.integers(min_value=1, max_value=40), st.integers(min_value=0, max_value=99))
    @settings(max_examples=20)
    def test_lossless_network_delivers_everything(self, count, seed):
        sim, network, a, b = build_pair(seed=seed)
        received = []
        b.set_handler("seq", lambda msg: received.append(msg.payload))
        for index in range(count):
            a.send("b", "seq", index)
        sim.run()
        assert len(received) == count
        assert network.messages_dropped == 0

    @given(
        st.floats(min_value=0.1, max_value=0.9),
        st.integers(min_value=0, max_value=99),
    )
    @settings(max_examples=20)
    def test_conservation_under_loss(self, loss, seed):
        """delivered + dropped == transmitted, always."""
        sim, network, a, b = build_pair(loss=loss, seed=seed)
        b.set_handler("x", lambda msg: None)
        for _ in range(50):
            a.send("b", "x")
        sim.run()
        assert (
            network.messages_delivered + network.messages_dropped
            == network.messages_transmitted
        )

    @given(st.integers(min_value=0, max_value=99))
    @settings(max_examples=20)
    def test_same_seed_same_outcome(self, seed):
        def run():
            sim, network, a, b = build_pair(loss=0.3, seed=seed)
            received = []
            b.set_handler("x", lambda msg: received.append(msg.payload))
            for index in range(30):
                a.send("b", "x", index)
            sim.run()
            return received

        assert run() == run()
