"""Property-based tests of canvas geometry (the replication ground truth)."""

import math

from hypothesis import given, strategies as st

from repro.robot.world import Canvas

coords = st.floats(min_value=-1000, max_value=1000, allow_nan=False)
points = st.lists(st.tuples(coords, coords), min_size=2, max_size=20)
scales = st.floats(min_value=0.1, max_value=10.0)


def draw(canvas_points):
    canvas = Canvas()
    canvas.pen_down(canvas_points[0])
    for point in canvas_points[1:]:
        canvas.pen_move(point)
    canvas.pen_up()
    return canvas


class TestCanvasProperties:
    @given(points)
    def test_matches_is_reflexive(self, pts):
        assert draw(pts).matches(draw(pts))

    @given(points, scales)
    def test_scaling_multiplies_ink_length(self, pts, factor):
        canvas = draw(pts)
        scaled = canvas.scaled(factor)
        assert math.isclose(
            scaled.total_ink(), canvas.total_ink() * factor, rel_tol=1e-6, abs_tol=1e-6
        )

    @given(points, scales, scales)
    def test_scaling_composes(self, pts, a, b):
        canvas = draw(pts)
        twice = canvas.scaled(a).scaled(b)
        once = canvas.scaled(a * b)
        assert twice.matches(once, tolerance=1e-6 * max(1.0, a * b) * 1000)

    @given(points)
    def test_unit_scale_is_identity(self, pts):
        canvas = draw(pts)
        assert canvas.scaled(1.0).matches(canvas)

    @given(points)
    def test_bounding_box_contains_all_points(self, pts):
        canvas = draw(pts)
        min_x, min_y, max_x, max_y = canvas.bounding_box()
        for x, y in canvas.points():
            assert min_x <= x <= max_x
            assert min_y <= y <= max_y

    @given(points)
    def test_ink_nonnegative_and_zero_only_for_dots(self, pts):
        canvas = draw(pts)
        ink = canvas.total_ink()
        assert ink >= 0.0
        distinct = len(set(pts)) > 1
        if ink == 0.0:
            assert not distinct
