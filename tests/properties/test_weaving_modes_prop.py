"""Resident and swap weaving must be observationally equivalent.

The two modes differ only in *when* hooks are installed; any program
should produce identical results and identical advice traces under both.
We drive random call scripts against random advice sets in both modes
and compare.
"""

from hypothesis import given, strategies as st

from repro.aop import Aspect, MethodCut, ProseVM
from repro.aop.advice import AdviceKind

METHODS = ("alpha", "beta", "gamma")


def make_app_class():
    namespace = {}
    for index, name in enumerate(METHODS):
        exec(  # noqa: S102 - test scaffolding
            f"def {name}(self, x):\n    return x + {index}", namespace
        )
    return type("App", (), namespace)


class Recorder(Aspect):
    def __init__(self, method):
        super().__init__()
        self.seen = []
        self.add_advice(
            AdviceKind.BEFORE,
            MethodCut(type="App", method=method),
            self.record,
        )

    def record(self, ctx):
        self.seen.append((ctx.method_name, ctx.args))


# A script: list of (action, arg) where action is call/insert/withdraw.
scripts = st.lists(
    st.one_of(
        st.tuples(st.just("call"), st.sampled_from(METHODS), st.integers(-5, 5)),
        st.tuples(st.just("insert"), st.sampled_from(METHODS), st.just(0)),
        st.tuples(st.just("withdraw"), st.integers(0, 5), st.just(0)),
    ),
    max_size=25,
)


def run_script(mode, script):
    vm = ProseVM(mode=mode)
    cls = make_app_class()
    vm.load_class(cls)
    app = cls()
    inserted = []
    results = []
    traces = []
    for action, arg, value in script:
        if action == "call":
            results.append(getattr(app, arg)(value))
        elif action == "insert":
            aspect = Recorder(arg)
            vm.insert(aspect)
            inserted.append(aspect)
            traces.append(aspect.seen)
        elif action == "withdraw" and inserted:
            aspect = inserted[arg % len(inserted)]
            if vm.is_inserted(aspect):
                vm.withdraw(aspect)
    return results, traces


class TestModeEquivalence:
    @given(scripts)
    def test_results_and_traces_identical(self, script):
        resident = run_script("resident", script)
        swap = run_script("swap", script)
        assert resident == swap
