"""Property-based tests of the lease state machine.

Invariant under arbitrary interleavings of grant/renew/cancel/advance:
every lease ends in exactly one of {active, expired, cancelled}; expiry
fires exactly once per expired lease, at a time >= its last renewal +
duration; active leases always satisfy expires_at > now.
"""

from hypothesis import given, strategies as st

from repro.errors import LeaseExpiredError
from repro.leasing.lease import LeaseState
from repro.leasing.table import LeaseTable
from repro.sim.kernel import Simulator

# An operation script: each entry is (op, arg)
ops = st.lists(
    st.one_of(
        st.tuples(st.just("grant"), st.floats(min_value=0.5, max_value=10.0)),
        st.tuples(st.just("renew"), st.integers(min_value=0, max_value=9)),
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=9)),
        st.tuples(st.just("advance"), st.floats(min_value=0.1, max_value=15.0)),
    ),
    max_size=30,
)


class TestLeaseStateMachine:
    @given(ops)
    def test_invariants_hold_under_any_script(self, script):
        sim = Simulator()
        table = LeaseTable(sim, name="prop")
        expired_events = []
        cancelled_events = []
        table.on_expired.connect(lambda lease: expired_events.append(lease.lease_id))
        table.on_cancelled.connect(lambda lease: cancelled_events.append(lease.lease_id))
        granted = []

        for op, arg in script:
            if op == "grant":
                granted.append(table.grant("holder", "res", duration=arg))
            elif op == "renew" and granted:
                lease = granted[arg % len(granted)]
                try:
                    table.renew(lease.lease_id)
                except LeaseExpiredError:
                    assert not lease.active
            elif op == "cancel" and granted:
                lease = granted[arg % len(granted)]
                try:
                    table.cancel(lease.lease_id)
                except LeaseExpiredError:
                    assert not lease.active
            elif op == "advance":
                sim.run_for(arg)

        sim.run_for(100.0)  # drain every pending expiry

        for lease in granted:
            assert lease.state in (LeaseState.EXPIRED, LeaseState.CANCELLED)
        # Exactly-once signals, and disjoint outcomes.
        assert len(expired_events) == len(set(expired_events))
        assert len(cancelled_events) == len(set(cancelled_events))
        assert not (set(expired_events) & set(cancelled_events))
        assert len(expired_events) + len(cancelled_events) == len(granted)

    @given(st.floats(min_value=0.5, max_value=20.0), st.integers(min_value=0, max_value=10))
    def test_expiry_time_respects_renewals(self, duration, renewal_count):
        sim = Simulator()
        table = LeaseTable(sim, name="prop")
        expiry_times = []
        table.on_expired.connect(lambda lease: expiry_times.append(sim.now))
        lease = table.grant("h", "r", duration=duration)
        for _ in range(renewal_count):
            sim.run_for(duration / 2)
            table.renew(lease.lease_id)
        last_renewal_time = sim.now
        sim.run_for(duration * 3)
        assert len(expiry_times) == 1
        assert abs(expiry_times[0] - (last_renewal_time + duration)) < 1e-9

    @given(st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=1, max_size=10))
    def test_active_leases_never_past_due(self, durations):
        sim = Simulator()
        table = LeaseTable(sim, name="prop")
        for duration in durations:
            table.grant("h", "r", duration=duration)
        checkpoint = min(durations) / 2
        sim.run_for(checkpoint)
        for lease in table.active():
            assert lease.expires_at > sim.now - 1e-9
