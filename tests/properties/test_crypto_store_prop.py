"""Property-based tests for the cipher, trust and movement store."""

from hypothesis import given, strategies as st

from repro.extensions.encryption import XorCipher
from repro.midas.trust import Signer, TrustStore
from repro.store.database import MovementRecord, MovementStore


class TestCipherProperties:
    @given(st.binary(min_size=1, max_size=32), st.binary(max_size=500))
    def test_round_trip(self, key, data):
        cipher = XorCipher(key)
        assert cipher.decrypt(cipher.encrypt(data)) == data

    @given(st.binary(min_size=1, max_size=32), st.binary(min_size=1, max_size=200))
    def test_length_preserved(self, key, data):
        assert len(XorCipher(key).encrypt(data)) == len(data)


class TestTrustProperties:
    @given(st.text(min_size=1, max_size=20), st.binary(max_size=200))
    def test_sign_verify_round_trip(self, entity, payload):
        signer = Signer.generate(entity)
        store = TrustStore()
        store.trust_signer(signer)
        store.verify(entity, payload, signer.sign(payload))

    @given(st.binary(min_size=1, max_size=100), st.binary(min_size=1, max_size=100))
    def test_different_payloads_different_signatures(self, one, two):
        if one == two:
            return
        signer = Signer.generate("e")
        assert signer.sign(one) != signer.sign(two)


times = st.lists(st.floats(min_value=0, max_value=1000), min_size=1, max_size=30)


class TestStoreProperties:
    @given(times)
    def test_actions_sorted_and_complete(self, time_list):
        store = MovementStore()
        for t in sorted(time_list):
            store.append(MovementRecord("r", "d", "rotate", (1.0,), t))
        actions = store.actions_of("r")
        assert [a.time for a in actions] == sorted(time_list)

    @given(times, st.floats(min_value=0, max_value=1000), st.floats(min_value=0, max_value=1000))
    def test_window_query_is_filter(self, time_list, a, b):
        since, until = min(a, b), max(a, b)
        store = MovementStore()
        for t in sorted(time_list):
            store.append(MovementRecord("r", "d", "rotate", (1.0,), t))
        windowed = store.actions_of("r", since=since, until=until)
        assert [r.time for r in windowed] == [
            t for t in sorted(time_list) if since <= t <= until
        ]

    @given(times)
    def test_time_span_bounds(self, time_list):
        store = MovementStore()
        for t in time_list:
            store.append(MovementRecord("r", "d", "rotate", (1.0,), t))
        first, last = store.time_span("r")
        assert first == min(time_list)
        assert last == max(time_list)
