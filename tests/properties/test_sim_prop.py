"""Property-based tests of the simulation kernel's ordering guarantees."""

from hypothesis import given, strategies as st

from repro.sim.kernel import Simulator

delays = st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=50)


class TestKernelOrdering:
    @given(delays)
    def test_events_fire_in_nondecreasing_time_order(self, delay_list):
        sim = Simulator()
        fired_times = []
        for delay in delay_list:
            sim.schedule(delay, lambda d=delay: fired_times.append(sim.now))
        sim.run()
        assert fired_times == sorted(fired_times)
        assert len(fired_times) == len(delay_list)

    @given(delays)
    def test_equal_times_fire_in_fifo_order(self, delay_list):
        sim = Simulator()
        fired = []
        for index, delay in enumerate(delay_list):
            rounded = round(delay)  # force collisions
            sim.schedule(rounded, fired.append, (rounded, index))
        sim.run()
        for (time_a, seq_a), (time_b, seq_b) in zip(fired, fired[1:]):
            if time_a == time_b:
                assert seq_a < seq_b

    @given(delays, st.floats(min_value=0.0, max_value=100.0))
    def test_run_until_partitions_cleanly(self, delay_list, horizon):
        sim = Simulator()
        before, after = [], []
        for delay in delay_list:
            target = before if delay <= horizon else after
            sim.schedule(delay, lambda t=target: t.append(sim.now))
        sim.run(until=horizon)
        executed = len(before)
        assert executed == sum(1 for d in delay_list if d <= horizon)
        sim.run()
        assert len(before) + len(after) == len(delay_list)

    @given(delays)
    def test_identical_schedules_identical_traces(self, delay_list):
        def trace():
            sim = Simulator()
            out = []
            for index, delay in enumerate(delay_list):
                sim.schedule(delay, out.append, index)
            sim.run()
            return out

        assert trace() == trace()
