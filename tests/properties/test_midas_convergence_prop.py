"""MIDAS convergence property.

Under *any* interleaving of partitions, heals, policy replacements,
revocations and time, the system converges to the invariant:

- connected and settled  ⇒ the node holds exactly the hall's catalog
  (at the current versions);
- disconnected and settled ⇒ the node holds nothing.
"""

from hypothesis import given, settings, strategies as st

from repro.core.platform import ProactivePlatform
from repro.net.geometry import Position

from tests.support import TraceAspect

operations = st.lists(
    st.one_of(
        st.tuples(st.just("partition"), st.just(0)),
        st.tuples(st.just("heal"), st.just(0)),
        st.tuples(st.just("replace"), st.integers(0, 1)),
        st.tuples(st.just("revoke"), st.integers(0, 1)),
        st.tuples(st.just("run"), st.floats(min_value=0.5, max_value=20.0)),
    ),
    max_size=12,
)

SETTLE = 90.0  # comfortably past lease terms, reconcile rounds, renewals


def build_world(seed=0):
    platform = ProactivePlatform(seed=seed)
    hall = platform.create_base_station("hall", Position(0, 0))
    hall.add_extension("ext-0", TraceAspect)
    hall.add_extension("ext-1", TraceAspect)
    node = platform.create_mobile_node("node", Position(5, 0))
    return platform, hall, node


class TestConvergence:
    @settings(max_examples=25, deadline=None)
    @given(operations, st.integers(0, 9))
    def test_connected_quiescence_holds_full_policy(self, script, seed):
        platform, hall, node = build_world(seed)
        for op, arg in script:
            if op == "partition":
                platform.network.partition("hall", "node")
            elif op == "heal":
                platform.network.heal("hall", "node")
            elif op == "replace":
                hall.replace_extension(f"ext-{arg}", TraceAspect)
            elif op == "revoke":
                hall.extension_base.revoke("node", f"ext-{arg}")
            elif op == "run":
                platform.run_for(arg)

        platform.network.heal_all()
        platform.run_for(SETTLE)
        assert sorted(node.extensions()) == ["ext-0", "ext-1"]
        # And at the current catalog versions.
        for name in ("ext-0", "ext-1"):
            installed = node.adaptation.find(name)
            assert installed.envelope.version == hall.catalog.version_of(name)

    @settings(max_examples=15, deadline=None)
    @given(operations, st.integers(0, 9))
    def test_disconnected_quiescence_holds_nothing(self, script, seed):
        platform, hall, node = build_world(seed)
        for op, arg in script:
            if op == "partition":
                platform.network.partition("hall", "node")
            elif op == "heal":
                platform.network.heal("hall", "node")
            elif op == "replace":
                hall.replace_extension(f"ext-{arg}", TraceAspect)
            elif op == "revoke":
                hall.extension_base.revoke("node", f"ext-{arg}")
            elif op == "run":
                platform.run_for(arg)

        platform.network.partition("hall", "node")
        platform.run_for(SETTLE)
        assert node.extensions() == []
        assert node.vm.aspects == ()
