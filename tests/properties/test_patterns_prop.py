"""Property-based tests for wildcard patterns and signatures."""

import string

from hypothesis import given, strategies as st

from repro.aop.signature import parse_signature
from repro.util.patterns import WildcardPattern, wildcard_match

identifiers = st.text(alphabet=string.ascii_letters + string.digits + "_", min_size=1, max_size=12)
texts = st.text(alphabet=string.ascii_letters + string.digits + "_.", max_size=30)


class TestWildcardProperties:
    @given(texts)
    def test_star_matches_everything(self, text):
        assert wildcard_match("*", text)

    @given(identifiers)
    def test_literal_pattern_matches_only_itself(self, word):
        assert wildcard_match(word, word)
        assert not wildcard_match(word, word + "x")
        assert not wildcard_match(word, "x" + word)

    @given(identifiers, texts)
    def test_prefix_star(self, prefix, tail):
        assert wildcard_match(prefix + "*", prefix + tail)

    @given(identifiers, texts)
    def test_star_suffix(self, suffix, head):
        assert wildcard_match("*" + suffix, head + suffix)

    @given(identifiers, identifiers, texts)
    def test_infix_star(self, head, tail, middle):
        assert wildcard_match(head + "*" + tail, head + middle + tail)

    @given(texts)
    def test_pattern_object_agrees_with_function(self, text):
        pattern = WildcardPattern("a*b")
        assert pattern.matches(text) == wildcard_match("a*b", text)

    @given(identifiers)
    def test_double_star_equivalent_to_single(self, word):
        assert wildcard_match("**", word)
        assert wildcard_match("a**b", "a--b") == wildcard_match("a*b", "a--b")


class TestSignatureProperties:
    @given(identifiers, identifiers)
    def test_parse_qualified_name(self, type_name, method_name):
        sig = parse_signature(f"{type_name}.{method_name}")
        assert sig.type_pattern.pattern == type_name
        assert sig.method_pattern.pattern == method_name

    @given(identifiers, identifiers)
    def test_parsed_signature_matches_its_own_names(self, type_name, method_name):
        sig = parse_signature(f"{type_name}.{method_name}")
        assert sig.matches_names((type_name,), method_name)

    @given(identifiers)
    def test_bare_name_matches_any_type(self, method_name):
        sig = parse_signature(method_name)
        assert sig.matches_names(("Whatever",), method_name)

    @given(st.lists(identifiers, min_size=0, max_size=4))
    def test_param_list_round_trip(self, params):
        text = f"Cls.m({', '.join(params)})"
        sig = parse_signature(text)
        assert len(sig.param_patterns) == len(params)
