"""Property-based tests of the tuple space."""

import string

from hypothesis import given, strategies as st

from repro.sim.kernel import Simulator
from repro.tuplespace.space import ANY, Tuple, TupleSpace, TupleTemplate

names = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6)
field_values = st.one_of(st.integers(-5, 5), names)
field_dicts = st.dictionaries(names, field_values, max_size=4)


class TestMatchingProperties:
    @given(names, field_dicts)
    def test_tuple_matches_its_own_template(self, kind, fields):
        record = Tuple(kind, fields)
        assert TupleTemplate(kind, fields).matches(record)

    @given(names, field_dicts)
    def test_empty_template_matches_same_kind(self, kind, fields):
        assert TupleTemplate(kind).matches(Tuple(kind, fields))

    @given(names, field_dicts)
    def test_any_fields_match(self, kind, fields):
        template = TupleTemplate(kind, {key: ANY for key in fields})
        assert template.matches(Tuple(kind, fields))

    @given(names, names, field_dicts)
    def test_kind_mismatch_never_matches(self, kind_a, kind_b, fields):
        if kind_a == kind_b:
            return
        assert not TupleTemplate(kind_a, fields).matches(Tuple(kind_b, fields))

    @given(names, field_dicts, names)
    def test_extra_template_field_requires_presence(self, kind, fields, extra_key):
        if extra_key in fields:
            return
        template = TupleTemplate(kind, {**fields, extra_key: 1})
        assert not template.matches(Tuple(kind, fields))


ops = st.lists(
    st.one_of(
        st.tuples(st.just("out"), names),
        st.tuples(st.just("take"), names),
        st.tuples(st.just("rd"), names),
    ),
    max_size=40,
)


class TestSpaceInvariants:
    @given(ops)
    def test_count_accounting(self, script):
        """len(space) == outs - takes-that-found-something, always."""
        space = TupleSpace(Simulator())
        outs = 0
        takes = 0
        for op, kind in script:
            if op == "out":
                space.out(Tuple(kind), lease_duration=1000.0)
                outs += 1
            elif op == "take":
                if space.take(TupleTemplate(kind)) is not None:
                    takes += 1
            else:
                space.rd(TupleTemplate(kind))  # never changes the count
            assert len(space) == outs - takes

    @given(ops)
    def test_rd_take_consistency(self, script):
        """take finds a tuple exactly when rd does."""
        space = TupleSpace(Simulator())
        for op, kind in script:
            if op == "out":
                space.out(Tuple(kind), lease_duration=1000.0)
            else:
                template = TupleTemplate(kind)
                visible = space.rd(template) is not None
                if op == "take":
                    assert (space.take(template) is not None) == visible
