"""Install-rollback property: a failed install is perfectly invisible.

For any fault point in the implicit-dependency chain, any amount of
pre-existing shared state, and any order of attempts, a failed install
leaves the receiver exactly as it was before the offer — and never
poisons later clean installs.  Examples are derandomized (fixed seeds),
so runs are reproducible.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.midas.envelope import ExtensionEnvelope
from repro.net.network import Network
from repro.sim.kernel import Simulator

from tests.midas.conftest import MidasWorld
from tests.support import CHAIN_FAIL_AT, ChainSibling, ChainTop

FAULT_POINTS = ["ChainLeaf", "ChainMid", "ChainTop"]


@pytest.fixture(autouse=True)
def reset_chain_fault():
    yield
    CHAIN_FAIL_AT["target"] = None


def build_world(seed: int) -> MidasWorld:
    sim = Simulator()
    return MidasWorld(sim, Network(sim, seed=seed))


def snapshot(world: MidasWorld) -> tuple:
    return (
        tuple(sorted(ext.name for ext in world.receiver.installed())),
        len(world.receiver._leases),
        tuple(
            sorted(
                (cls.__name__, count)
                for cls, (_, count) in world.receiver._implicit.items()
            )
        ),
        len(world.vm.aspects),
        len(world.vm.advised_joinpoints()),
    )


class TestRollbackProperty:
    @settings(max_examples=40, deadline=None, derandomize=True)
    @given(
        fault_point=st.sampled_from(FAULT_POINTS),
        sibling_first=st.booleans(),
        attempts=st.integers(min_value=1, max_value=3),
        seed=st.sampled_from([7, 21, 99]),
    )
    def test_failed_install_is_invisible(
        self, fault_point, sibling_first, attempts, seed
    ):
        # Hypothesis runs many examples inside one test call: reset the
        # module-level fault switch at the start of every example.
        CHAIN_FAIL_AT["target"] = None
        world = build_world(seed)
        if sibling_first:
            world.receiver.install_envelope(
                ExtensionEnvelope.seal("sibling", ChainSibling(), world.signer)
            )
        before = snapshot(world)

        CHAIN_FAIL_AT["target"] = fault_point
        # A leaf fault cannot fire when the sibling already installed the
        # leaf: the shared instance is reused, no on_insert runs.
        expect_failure = not (sibling_first and fault_point == "ChainLeaf")
        for _ in range(attempts):
            if expect_failure:
                with pytest.raises(RuntimeError):
                    world.receiver.install_envelope(
                        ExtensionEnvelope.seal("top", ChainTop(), world.signer)
                    )
                assert snapshot(world) == before  # byte-identical each time
            else:
                world.receiver.install_envelope(
                    ExtensionEnvelope.seal("top", ChainTop(), world.signer)
                )
                assert world.receiver.is_installed("top")

        # The fault clears and the same extension installs cleanly: the
        # failed attempts left nothing behind to conflict with.
        CHAIN_FAIL_AT["target"] = None
        world.receiver.install_envelope(
            ExtensionEnvelope.seal("top", ChainTop(), world.signer)
        )
        assert world.receiver.is_installed("top")
        implicit = {
            cls.__name__: count
            for cls, (_, count) in world.receiver._implicit.items()
        }
        expected_leaf = 2 if sibling_first else 1
        assert implicit == {"ChainLeaf": expected_leaf, "ChainMid": 1}
