"""CLI entry-point tests."""

import pytest

from repro.__main__ import SCENARIOS, main


class TestCli:
    def test_listing_without_arguments(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        for name in SCENARIOS:
            assert name in out

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            main(["not-a-scenario"])

    def test_runs_quickstart(self, capsys, monkeypatch):
        import sys
        from pathlib import Path

        monkeypatch.syspath_prepend(str(Path(__file__).resolve().parents[2]))
        assert main(["quickstart"]) == 0
        assert "quickstart OK" in capsys.readouterr().out
