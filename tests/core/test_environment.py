"""Production hall / environment tests."""

import pytest

from repro.core.environment import ProactiveEnvironment
from repro.core.platform import ProactivePlatform
from repro.net.geometry import Position, Region

from tests.support import TraceAspect


@pytest.fixture
def site():
    platform = ProactivePlatform(seed=3)
    env = ProactiveEnvironment(platform)
    return platform, env


class TestHalls:
    def test_add_hall_places_station_at_center(self, site):
        platform, env = site
        hall = env.add_hall(Region(0, 0, 40, 40, name="paint-shop"))
        assert hall.station.node.position == Position(20, 20)
        assert hall.name == "paint-shop"

    def test_station_radio_covers_whole_hall(self, site):
        platform, env = site
        hall = env.add_hall(Region(0, 0, 40, 40, name="big"))
        for corner in hall.region.corners():
            assert (
                hall.station.node.position.distance_to(corner)
                <= hall.station.node.radio_range
            )

    def test_policy_installed(self, site):
        platform, env = site
        hall = env.add_hall(
            Region(0, 0, 10, 10, name="a"),
            policy={"trace": TraceAspect},
        )
        assert hall.station.catalog.names() == ["trace"]

    def test_hall_of_locates_node(self, site):
        platform, env = site
        env.add_hall(Region(0, 0, 10, 10, name="a"))
        env.add_hall(Region(100, 0, 110, 10, name="b"))
        robot = platform.create_mobile_node("robot", Position(5, 5))
        assert env.hall_of(robot).name == "a"

    def test_hall_of_none_outside(self, site):
        platform, env = site
        env.add_hall(Region(0, 0, 10, 10, name="a"))
        robot = platform.create_mobile_node("robot", Position(50, 50))
        assert env.hall_of(robot) is None

    def test_hall_named(self, site):
        platform, env = site
        env.add_hall(Region(0, 0, 10, 10, name="a"))
        assert env.hall_named("a").name == "a"
        with pytest.raises(KeyError):
            env.hall_named("ghost")

    def test_iteration(self, site):
        platform, env = site
        env.add_hall(Region(0, 0, 10, 10, name="a"))
        env.add_hall(Region(20, 0, 30, 10, name="b"))
        assert [hall.name for hall in env] == ["a", "b"]
