"""Platform façade tests."""

import pytest

from repro.aop.sandbox import SandboxPolicy
from repro.core.platform import ProactivePlatform
from repro.midas.trust import Signer
from repro.net.geometry import Position

from tests.support import Engine, TraceAspect, fresh_class


@pytest.fixture
def platform():
    return ProactivePlatform(seed=11)


class TestConstruction:
    def test_base_station_wiring(self, platform):
        hall = platform.create_base_station("hall-A", Position(0, 0))
        assert hall.node_id == "hall-A"
        assert hall.store_ref.node_id == "hall-A"
        assert platform.base_stations["hall-A"] is hall

    def test_mobile_node_wiring(self, platform):
        platform.create_base_station("hall-A", Position(0, 0))
        robot = platform.create_mobile_node("robot", Position(5, 0))
        assert robot.node_id == "robot"
        assert robot.trust_store.trusts("hall-A")

    def test_explicit_trust_list(self, platform):
        platform.create_base_station("hall-A", Position(0, 0))
        stranger = Signer.generate("stranger")
        robot = platform.create_mobile_node("robot", trusted=[stranger])
        assert robot.trust_store.trusts("stranger")
        assert not robot.trust_store.trusts("hall-A")

    def test_time_advances(self, platform):
        platform.run_for(5.0)
        assert platform.now == 5.0


class TestCapabilityServices:
    def test_standard_service_set(self, platform):
        from repro.aop.sandbox import Capability
        from repro.core.platform import capability_services
        from repro.net.node import NetworkNode
        from repro.net.transport import Transport

        node = platform.network.attach(NetworkNode("helper"))
        transport = Transport(node, platform.simulator)
        services = capability_services(platform, transport)
        assert set(services) == {
            Capability.NETWORK,
            Capability.CLOCK,
            Capability.SCHEDULER,
        }
        assert services[Capability.CLOCK].now() == platform.now

    def test_extra_services_merged(self, platform):
        from repro.core.platform import capability_services
        from repro.net.node import NetworkNode
        from repro.net.transport import Transport

        node = platform.network.attach(NetworkNode("helper"))
        transport = Transport(node, platform.simulator)
        hardware = object()
        services = capability_services(platform, transport, {"hardware": hardware})
        assert services["hardware"] is hardware


class TestAdaptationFlow:
    def test_node_adapted_on_discovery(self, platform):
        hall = platform.create_base_station("hall-A", Position(0, 0))
        hall.add_extension("trace", lambda: TraceAspect(type_pattern="Engine"))
        robot = platform.create_mobile_node("robot", Position(5, 0))
        cls = fresh_class()
        robot.load_class(cls)
        platform.run_for(5.0)
        assert robot.extensions() == ["trace"]
        cls().start()
        installed = robot.adaptation.find("trace")
        assert ("start", ()) in installed.aspect.trace

    def test_restrictive_node_rejects_capability_hungry_extension(self, platform):
        from tests.support import NetworkUsingAspect

        hall = platform.create_base_station("hall-A", Position(0, 0))
        hall.add_extension("needs-net", NetworkUsingAspect)
        robot = platform.create_mobile_node(
            "robot", Position(5, 0), policy=SandboxPolicy.restrictive()
        )
        platform.run_for(5.0)
        assert robot.extensions() == []

    def test_walk_to_moves_node(self, platform):
        robot = platform.create_mobile_node("robot", Position(0, 0))
        robot.walk_to(Position(10, 0))
        platform.run_for(60.0)
        assert robot.node.position == Position(10, 0)

    def test_provide_service_reaches_extensions(self, platform):
        hall = platform.create_base_station("hall-A", Position(0, 0))
        robot = platform.create_mobile_node("robot", Position(5, 0))
        marker = object()
        robot.provide_service("hardware", marker)
        assert robot.adaptation._services["hardware"] is marker

    def test_summary_snapshot(self, platform):
        hall = platform.create_base_station("hall-A", Position(0, 0))
        hall.add_extension("trace", lambda: TraceAspect(type_pattern="Engine"))
        robot = platform.create_mobile_node("robot", Position(5, 0))
        cls = fresh_class()
        robot.load_class(cls)
        platform.run_for(5.0)
        cls().start()

        summary = platform.summary()
        assert summary["time"] == 5.0
        assert summary["network"]["delivered"] > 0
        hall_view = summary["base_stations"]["hall-A"]
        assert hall_view["catalog"] == ["trace"]
        assert hall_view["adapted_nodes"] == ["robot"]
        robot_view = summary["mobile_nodes"]["robot"]
        assert robot_view["extensions"] == ["trace"]
        assert robot_view["interceptions"] >= 1

    def test_replace_extension_propagates(self, platform):
        hall = platform.create_base_station("hall-A", Position(0, 0))
        hall.add_extension("trace", lambda: TraceAspect(type_pattern="Engine"))
        robot = platform.create_mobile_node("robot", Position(5, 0))
        platform.run_for(5.0)
        first = robot.adaptation.find("trace").aspect
        hall.replace_extension("trace", lambda: TraceAspect(type_pattern="Turbine"))
        platform.run_for(5.0)
        second = robot.adaptation.find("trace").aspect
        assert second is not first
        assert robot.adaptation.find("trace").envelope.version == 2
