"""Workload kernel correctness tests."""

import pytest

from repro.aop import ProseVM
from repro.workloads.kernels import (
    CompressKernel,
    DbKernel,
    RayKernel,
    Vec3,
    workload_classes,
)
from repro.workloads.suite import WorkloadSuite


class TestCompressKernel:
    def test_round_trip(self):
        kernel = CompressKernel(size=256)
        packed = kernel.compress(kernel.data)
        assert kernel.decompress(packed) == kernel.data

    def test_run_once_returns_compressed_size(self):
        kernel = CompressKernel(size=256)
        assert 0 < kernel.run_once() <= 2 * 256

    def test_deterministic_data(self):
        assert CompressKernel(seed=3).data == CompressKernel(seed=3).data
        assert CompressKernel(seed=3).data != CompressKernel(seed=4).data

    def test_compresses_runs(self):
        kernel = CompressKernel()
        packed = kernel.compress(b"a" * 100)
        assert len(packed) == 2


class TestDbKernel:
    def test_crud_cycle(self):
        db = DbKernel(rows=10)
        db.insert(1, "alice", 100)
        assert db.lookup(1) == ("alice", 100)
        assert db.update(1, 50) == 150
        assert db.delete(1)
        assert db.lookup(1) is None
        assert not db.delete(1)

    def test_run_once_checksum_stable(self):
        assert DbKernel(rows=20).run_once() == DbKernel(rows=20).run_once()

    def test_run_once_leaves_table_empty(self):
        db = DbKernel(rows=20)
        db.run_once()
        assert db.lookup(0) is None


class TestRayKernel:
    def test_vector_arithmetic(self):
        v = Vec3(1, 2, 3).add(Vec3(1, 1, 1)).sub(Vec3(0, 0, 1)).scale(2.0)
        assert (v.x, v.y, v.z) == (4.0, 6.0, 6.0)
        assert Vec3(1, 0, 0).dot(Vec3(0, 1, 0)) == 0.0

    def test_some_rays_hit(self):
        hits = RayKernel(rays=20).run_once()
        assert 0 < hits < 400

    def test_intersect_miss(self):
        kernel = RayKernel()
        assert kernel.intersect(Vec3(0, 0, 0), Vec3(0, 1, 0)) is None

    def test_intersect_hit_distance(self):
        kernel = RayKernel()
        distance = kernel.intersect(Vec3(0, 0, 0), Vec3(0, 0, 1))
        assert distance == pytest.approx(5.0 - 1.5**0.5)


class TestSuite:
    def test_suite_runs(self):
        suite = WorkloadSuite(compress_size=128, db_rows=20, rays=10)
        assert suite.run(2) > 0

    def test_suite_behaves_identically_when_instrumented(self):
        plain = WorkloadSuite(compress_size=128, db_rows=20, rays=10).run_once()
        vm = ProseVM()
        for cls in workload_classes():
            vm.load_class(cls)
        try:
            instrumented = WorkloadSuite(
                compress_size=128, db_rows=20, rays=10
            ).run_once()
        finally:
            for cls in workload_classes():
                vm.unload_class(cls)
        assert instrumented == plain

    def test_time_iterations_positive(self):
        suite = WorkloadSuite(compress_size=64, db_rows=10, rays=5)
        assert suite.time_iterations(1) > 0.0
