"""Fixtures for the platform-lint tests: source trees built on disk.

The lint analyzes files, not live objects, so every fixture writes real
modules under ``tmp_path`` and parses them through the shared core —
the same path ``python -m repro lint`` takes.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis.core import FileAst, TreeIndex, clear_ast_caches, load_file, load_tree


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_ast_caches()
    yield
    clear_ast_caches()


@pytest.fixture
def make_file(tmp_path):
    """Write one module and parse it: ``make_file('x.py', source)``."""

    def _make(rel: str, source: str) -> FileAst:
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        file_ast = load_file(path, tmp_path)
        assert file_ast is not None, f"fixture source failed to parse: {rel}"
        return file_ast

    return _make


@pytest.fixture
def make_tree(tmp_path, make_file):
    """Write several modules and index them: ``make_tree({'a.py': src})``."""

    def _make(sources: dict[str, str]) -> TreeIndex:
        for rel, source in sources.items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(source), encoding="utf-8")
        return load_tree(tmp_path)

    return _make


@pytest.fixture
def repo_src() -> Path:
    """The real platform tree (tests assert the lint is clean on it)."""
    return Path(__file__).resolve().parents[2] / "src" / "repro"
