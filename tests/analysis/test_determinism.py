"""Determinism lint: planted violations fire, sanctioned patterns don't."""

from __future__ import annotations

from repro.analysis import findings as F
from repro.analysis.determinism import check_file


def rules(findings):
    return [f.rule for f in findings]


class TestWallClock:
    def test_planted_wall_clock_in_sim(self, make_file):
        file = make_file(
            "sim/kernel.py",
            """
            import time

            class Simulator:
                def now(self):
                    return time.time()
            """,
        )
        found = check_file(file)
        assert rules(found) == [F.RULE_WALL_CLOCK]
        assert found[0].key == "Simulator.now:time.time"
        assert found[0].severity == F.ERROR

    def test_datetime_now(self, make_file):
        file = make_file(
            "m.py",
            """
            from datetime import datetime

            def stamp():
                return datetime.now()
            """,
        )
        assert rules(check_file(file)) == [F.RULE_WALL_CLOCK]

    def test_simulator_clock_is_clean(self, make_file):
        file = make_file(
            "m.py",
            """
            def now(self):
                return self.simulator.now
            """,
        )
        assert check_file(file) == []


class TestRandomness:
    def test_module_level_random_flagged(self, make_file):
        file = make_file(
            "m.py",
            """
            import random

            def pick(items):
                return random.choice(items)
            """,
        )
        found = check_file(file)
        assert rules(found) == [F.RULE_UNSEEDED_RANDOM]

    def test_seedless_constructor_flagged(self, make_file):
        file = make_file(
            "m.py",
            """
            import random

            def make():
                return random.Random()
            """,
        )
        assert rules(check_file(file)) == [F.RULE_UNSEEDED_RANDOM]

    def test_seeded_constructor_clean(self, make_file):
        file = make_file(
            "m.py",
            """
            import random

            def make(seed):
                rng = random.Random(seed)
                return rng.choice([1, 2])
            """,
        )
        assert check_file(file) == []


class TestEntropyAndHashes:
    def test_uuid4_and_urandom(self, make_file):
        file = make_file(
            "m.py",
            """
            import os
            import uuid

            def ids():
                return uuid.uuid4(), os.urandom(8)
            """,
        )
        assert rules(check_file(file)) == [F.RULE_ENTROPY, F.RULE_ENTROPY]

    def test_secrets_module(self, make_file):
        file = make_file(
            "m.py",
            """
            import secrets

            def token():
                return secrets.token_hex(4)
            """,
        )
        assert rules(check_file(file)) == [F.RULE_ENTROPY]

    def test_builtin_hash_and_id_warn(self, make_file):
        file = make_file(
            "m.py",
            """
            def shard_of(self, key):
                return hash(key) % self.shards

            def tag(self, obj):
                return id(obj)
            """,
        )
        found = check_file(file)
        assert rules(found) == [F.RULE_UNSTABLE_HASH, F.RULE_UNSTABLE_HASH]
        assert all(f.severity == F.WARNING for f in found)

    def test_crc32_is_clean(self, make_file):
        file = make_file(
            "m.py",
            """
            import zlib

            def shard_of(self, key):
                return zlib.crc32(key.encode()) % self.shards
            """,
        )
        assert check_file(file) == []


class TestUnorderedIteration:
    def test_for_over_set_display(self, make_file):
        file = make_file(
            "m.py",
            """
            def emit(self, log):
                for name in {"b", "a"}:
                    log.append(name)
            """,
        )
        assert rules(check_file(file)) == [F.RULE_UNORDERED_ITER]

    def test_comprehension_over_set_call(self, make_file):
        file = make_file(
            "m.py",
            """
            def emit(self, items):
                return [x for x in set(items)]
            """,
        )
        found = check_file(file)
        assert rules(found) == [F.RULE_UNORDERED_ITER]
        assert found[0].key == "<comprehension>:set-iteration"

    def test_sorted_wrapping_is_clean(self, make_file):
        file = make_file(
            "m.py",
            """
            def emit(self, items):
                out = [x for x in sorted(set(items))]
                for name in sorted({"b", "a"}):
                    out.append(name)
                return out
            """,
        )
        assert check_file(file) == []

    def test_list_iteration_is_clean(self, make_file):
        file = make_file(
            "m.py",
            """
            def emit(self, items):
                for x in items:
                    yield x
            """,
        )
        assert check_file(file) == []


class TestCleanTreeControl:
    def test_representative_clean_module(self, make_file):
        """A module in the platform's own idiom produces no findings."""
        file = make_file(
            "fleet/sample.py",
            """
            import random
            import zlib

            class Region:
                def __init__(self, seed):
                    self.rng = random.Random(f"fleet:{seed}")
                    self.log = []

                def step(self, simulator, names):
                    for name in sorted(names):
                        self.log.append((simulator.now, name))
                    return zlib.crc32(repr(self.log).encode())
            """,
        )
        assert check_file(file) == []
