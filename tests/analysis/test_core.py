"""Shared analysis core: names, imports, waivers, caching, resolution."""

from __future__ import annotations

import ast

from repro.analysis.core import (
    clear_ast_caches,
    dotted_name,
    import_map_from_tree,
    load_file,
    load_tree,
    parse_waivers,
)


class TestDottedName:
    def test_renders_pure_chains(self):
        node = ast.parse("a.b.c", mode="eval").body
        assert dotted_name(node) == "a.b.c"

    def test_bare_name(self):
        node = ast.parse("x", mode="eval").body
        assert dotted_name(node) == "x"

    def test_impure_chain_is_none(self):
        node = ast.parse("f().b", mode="eval").body
        assert dotted_name(node) is None


class TestImportMap:
    def test_historical_semantics(self):
        tree = ast.parse(
            "import a.b\n"
            "import a.b as c\n"
            "from m import x as y\n"
            "from m import z\n"
        )
        aliases = import_map_from_tree(tree)
        assert aliases["a"] == "a"  # plain import binds the root
        assert aliases["c"] == "a.b"  # aliased import binds the full path
        assert aliases["y"] == "m.x"
        assert aliases["z"] == "m.z"


class TestWaivers:
    def test_covers_own_and_next_line(self):
        lines = [
            "x = 1",
            "# lint: allow(det.wall-clock) — operator timestamp",
            "stamp = now()",
            "other = 2",
        ]
        waivers = parse_waivers(lines)
        assert "det.wall-clock" in waivers[2]
        assert "det.wall-clock" in waivers[3]
        assert 4 not in waivers

    def test_multiple_rules_one_comment(self):
        waivers = parse_waivers(["y = f()  # lint: allow(a.one, b.two)"])
        assert waivers[1] == frozenset({"a.one", "b.two"})

    def test_plain_comments_ignored(self):
        assert parse_waivers(["# lint this is not a waiver", "x = 1"]) == {}


class TestFileCache:
    def test_unchanged_file_returns_same_object(self, tmp_path):
        path = tmp_path / "m.py"
        path.write_text("x = 1\n", encoding="utf-8")
        first = load_file(path, tmp_path)
        second = load_file(path, tmp_path)
        assert first is second

    def test_changed_file_reparses(self, tmp_path):
        import os

        path = tmp_path / "m.py"
        path.write_text("x = 1\n", encoding="utf-8")
        first = load_file(path, tmp_path)
        path.write_text("x = 2\n", encoding="utf-8")
        os.utime(path, ns=(1, 1))  # force a distinct mtime
        second = load_file(path, tmp_path)
        assert first is not second

    def test_syntax_error_returns_none(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def (:\n", encoding="utf-8")
        assert load_file(path, tmp_path) is None

    def test_clear_caches_drops_entries(self, tmp_path):
        path = tmp_path / "m.py"
        path.write_text("x = 1\n", encoding="utf-8")
        first = load_file(path, tmp_path)
        clear_ast_caches()
        assert load_file(path, tmp_path) is not first


class TestTreeIndex:
    def test_skips_pycache_and_sorts(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "junk.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "b.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
        tree = load_tree(tmp_path)
        rels = [f.rel_path for f in tree.files]
        assert rels == ["pkg/a.py", "pkg/b.py"]

    def test_module_lookup_by_suffix(self, make_tree):
        tree = make_tree({"repro/net/transport.py": 'OP = "x.y"\n'})
        assert tree.module("repro.net.transport") is not None
        assert tree.module("net.transport") is not None
        assert tree.module("nowhere.transport") is tree.module("transport")

    def test_resolve_constant_shapes(self, make_tree):
        tree = make_tree(
            {
                "defs.py": 'OP = "the.op"\n',
                "use.py": (
                    "from defs import OP\n"
                    "import defs\n"
                    'LOCAL = "local.op"\n'
                ),
            }
        )
        use = tree.module("use")
        assert use is not None
        resolve = tree.resolve_constant
        literal = ast.parse('"lit.op"', mode="eval").body
        assert resolve(use, literal) == "lit.op"
        assert resolve(use, ast.parse("LOCAL", mode="eval").body) == "local.op"
        assert resolve(use, ast.parse("OP", mode="eval").body) == "the.op"
        assert resolve(use, ast.parse("defs.OP", mode="eval").body) == "the.op"
        assert resolve(use, ast.parse('f"dyn.{x}"', mode="eval").body) is None
        assert resolve(use, ast.parse("unknown", mode="eval").body) is None
