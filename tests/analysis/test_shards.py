"""Shard-race detector: planted races fire, the sanctioned channels don't."""

from __future__ import annotations

from repro.analysis import findings as F
from repro.analysis.shards import check_file


def rules(findings):
    return [f.rule for f in findings]


class TestCrossContextWrite:
    def test_planted_cross_shard_write(self, make_file):
        """Two region-routed callbacks mutate one attribute: the race."""
        file = make_file(
            "fleet/bad.py",
            """
            class Broken:
                def __init__(self, kernel):
                    self.kernel = kernel
                    self.tally = []
                    self.kernel.schedule(0, 1.0, self._tick_a)
                    self.kernel.schedule(1, 1.0, self._tick_b)

                def _tick_a(self):
                    self.tally.append("a")

                def _tick_b(self):
                    self.tally.append("b")
            """,
        )
        found = check_file(file)
        assert rules(found) == [F.RULE_CROSS_CONTEXT_WRITE]
        assert found[0].key == "Broken:tally"
        assert found[0].severity == F.ERROR

    def test_handoff_routed_callbacks_are_sanctioned(self, make_file):
        """Mutation from handoff-delivered callbacks passed the barrier."""
        file = make_file(
            "fleet/good.py",
            """
            class Quantized:
                def __init__(self, kernel):
                    self.kernel = kernel
                    self.tally = []

                def cross(self, region):
                    self.kernel.handoff(0, region, self._deliver, "x")

                def _deliver(self, item):
                    self.tally.append(item)
            """,
        )
        assert check_file(file) == []

    def test_single_region_context_is_clean(self, make_file):
        """One parameterized context alone cannot race with itself."""
        file = make_file(
            "fleet/one.py",
            """
            class OneRegion:
                def __init__(self, kernel, region):
                    self.kernel = kernel
                    self.count = 0
                    self.kernel.schedule(region, 1.0, self._tick)

                def _tick(self):
                    self.count += 1
                    self.kernel.schedule(region, 1.0, self._tick)
            """,
        )
        assert check_file(file) == []

    def test_race_through_helper_propagation(self, make_file):
        """Contexts follow self-calls: the race hides one hop deep."""
        file = make_file(
            "fleet/deep.py",
            """
            class Indirect:
                def __init__(self, kernel):
                    self.kernel = kernel
                    self.cells = {}
                    self.kernel.schedule(0, 1.0, self._tick_a)
                    self.kernel.schedule(1, 1.0, self._tick_b)

                def _tick_a(self):
                    self._bump()

                def _tick_b(self):
                    self._bump()

                def _bump(self):
                    self.cells.setdefault("k", 0)
            """,
        )
        found = check_file(file)
        assert rules(found) == [F.RULE_CROSS_CONTEXT_WRITE]
        assert found[0].key == "Indirect:cells"


class TestCrossContextRead:
    def test_write_one_region_read_another(self, make_file):
        file = make_file(
            "fleet/stale.py",
            """
            class Stale:
                def __init__(self, kernel):
                    self.kernel = kernel
                    self.latest = None
                    self.kernel.schedule(0, 1.0, self._produce)
                    self.kernel.schedule(1, 1.0, self._consume)

                def _produce(self):
                    self.latest = "value"

                def _consume(self):
                    return self.latest
            """,
        )
        found = check_file(file)
        assert rules(found) == [F.RULE_CROSS_CONTEXT_READ]
        assert found[0].severity == F.WARNING


class TestPrivateHeapReach:
    def test_foreign_shards_access_flagged(self, make_file):
        file = make_file(
            "fleet/reach.py",
            """
            class Meddler:
                def poke(self, kernel):
                    return kernel._shards[0]
            """,
        )
        found = check_file(file)
        assert rules(found) == [F.RULE_PRIVATE_HEAP_REACH]
        assert found[0].key == "Meddler.poke:_shards"

    def test_own_shards_access_clean(self, make_file):
        file = make_file(
            "fleet/own.py",
            """
            class Kernel:
                def __init__(self, count):
                    self._shards = [object() for _ in range(count)]

                def shard(self, index):
                    return self._shards[index]
            """,
        )
        assert check_file(file) == []


class TestPipelineIdiom:
    def test_accept_queue_pipeline_shape_is_clean(self, make_file):
        """submit() from callers plus sim-scheduled completion: sanctioned."""
        file = make_file(
            "midas/pipeline.py",
            """
            class Pipeline:
                def __init__(self, simulator):
                    self.simulator = simulator
                    self.queue = []
                    self.done = 0

                def submit(self, job):
                    self.queue.append(job)
                    self.simulator.schedule(0.1, self._complete)

                def _complete(self):
                    self.queue.pop()
                    self.done += 1
            """,
        )
        assert check_file(file) == []
