"""Runner and CLI: scopes, waivers, baselines, exit codes, dispatch."""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis import findings as F
from repro.analysis.baseline import Baseline, load_baseline
from repro.analysis.cli import main as lint_main
from repro.analysis.runner import LintConfig, run_lint

WALL_CLOCK_SIM = """
import time

class Clock:
    def now(self):
        return time.time()
"""


def _config(root: Path, **kwargs) -> LintConfig:
    return LintConfig(root=root, targets=[root], **kwargs)


class TestScopes:
    def test_determinism_scope_includes_sim(self, make_tree, tmp_path):
        make_tree({"repro/sim/clock.py": WALL_CLOCK_SIM})
        result = run_lint(_config(tmp_path))
        assert [f.rule for f in result.findings] == [F.RULE_WALL_CLOCK]

    def test_out_of_scope_module_not_linted_for_determinism(
        self, make_tree, tmp_path
    ):
        """Telemetry reads real clocks on purpose; the det pass skips it."""
        make_tree({"repro/telemetry/clock.py": WALL_CLOCK_SIM})
        result = run_lint(_config(tmp_path))
        assert result.findings == []
        assert result.files_scanned == 1

    def test_scope_matches_when_root_is_repro_itself(self, make_tree, tmp_path):
        """Linting src/repro directly still anchors scopes correctly."""
        make_tree({"sim/clock.py": WALL_CLOCK_SIM})
        result = run_lint(_config(tmp_path))
        assert [f.rule for f in result.findings] == [F.RULE_WALL_CLOCK]


class TestWaivers:
    def test_inline_waiver_suppresses_and_is_reported(self, make_tree, tmp_path):
        make_tree(
            {
                "repro/sim/clock.py": """
                import time

                class Clock:
                    def now(self):
                        # lint: allow(det.wall-clock) — test fixture
                        return time.time()
                """,
            }
        )
        result = run_lint(_config(tmp_path))
        assert result.findings == []
        assert [f.rule for f in result.waived] == [F.RULE_WALL_CLOCK]

    def test_waiver_for_other_rule_does_not_suppress(self, make_tree, tmp_path):
        make_tree(
            {
                "repro/sim/clock.py": """
                import time

                class Clock:
                    def now(self):
                        # lint: allow(det.entropy) — wrong rule
                        return time.time()
                """,
            }
        )
        result = run_lint(_config(tmp_path))
        assert [f.rule for f in result.findings] == [F.RULE_WALL_CLOCK]


class TestBaseline:
    def test_baseline_suppresses_by_fingerprint_not_line(
        self, make_tree, tmp_path
    ):
        make_tree({"repro/sim/clock.py": WALL_CLOCK_SIM})
        first = run_lint(_config(tmp_path))
        baseline = Baseline.from_findings(first.findings, "known, tracked")

        # Shift every line: the fingerprint (rule, path, key) still matches.
        make_tree({"repro/sim/clock.py": "\n\n\n" + WALL_CLOCK_SIM})
        second = run_lint(_config(tmp_path, baseline=baseline))
        assert second.findings == []
        assert [f.rule for f in second.baselined] == [F.RULE_WALL_CLOCK]
        assert second.stale_baseline == []

    def test_stale_entries_surface(self, make_tree, tmp_path):
        make_tree({"repro/sim/clock.py": WALL_CLOCK_SIM})
        first = run_lint(_config(tmp_path))
        baseline = Baseline.from_findings(first.findings, "was real once")

        make_tree({"repro/sim/clock.py": "x = 1\n"})  # violation fixed
        second = run_lint(_config(tmp_path, baseline=baseline))
        assert second.findings == []
        assert len(second.stale_baseline) == 1
        assert second.stale_baseline[0]["justification"] == "was real once"

    def test_round_trips_through_disk(self, make_tree, tmp_path):
        make_tree({"repro/sim/clock.py": WALL_CLOCK_SIM})
        first = run_lint(_config(tmp_path))
        baseline = Baseline.from_findings(first.findings, "accepted")
        path = tmp_path / "baseline.json"
        baseline.save(path)
        loaded = load_baseline(path)
        assert loaded.entries == baseline.entries

    def test_missing_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json").entries == {}


class TestCli:
    def test_clean_tree_exits_zero(self, make_tree, tmp_path, capsys):
        make_tree({"repro/sim/clock.py": "x = 1\n"})
        assert lint_main([str(tmp_path)]) == 0
        assert "OK:" in capsys.readouterr().out

    def test_errors_exit_one(self, make_tree, tmp_path, capsys):
        make_tree({"repro/sim/clock.py": WALL_CLOCK_SIM})
        assert lint_main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "det.wall-clock" in out and "FAIL" in out

    def test_warnings_gate_only_under_strict(self, make_tree, tmp_path):
        make_tree(
            {
                "repro/sim/order.py": """
                def emit(log):
                    for name in {"b", "a"}:
                        log.append(name)
                """,
            }
        )
        assert lint_main([str(tmp_path)]) == 0
        assert lint_main(["--strict", str(tmp_path)]) == 1

    def test_bad_target_exits_two(self, tmp_path, capsys):
        assert lint_main([str(tmp_path / "nope")]) == 2
        assert "no such target" in capsys.readouterr().err

    def test_json_report_shape(self, make_tree, tmp_path, capsys):
        make_tree({"repro/sim/clock.py": WALL_CLOCK_SIM})
        assert lint_main(["--json", str(tmp_path)]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["summary"]["errors"] == 1
        assert report["findings"][0]["rule"] == "det.wall-clock"
        assert report["findings"][0]["key"] == "Clock.now:time.time"

    def test_write_then_use_baseline(self, make_tree, tmp_path, capsys):
        make_tree({"repro/sim/clock.py": WALL_CLOCK_SIM})
        baseline_path = tmp_path / "accepted.json"
        assert lint_main(["--write-baseline", str(baseline_path), str(tmp_path)]) == 0
        capsys.readouterr()
        assert (
            lint_main(["--baseline", str(baseline_path), str(tmp_path)]) == 0
        )
        assert "1 baselined" in capsys.readouterr().out

    def test_implicit_baseline_next_to_root(self, make_tree, tmp_path, capsys):
        make_tree({"repro/sim/clock.py": WALL_CLOCK_SIM})
        lint_main(
            ["--write-baseline", str(tmp_path / "lint-baseline.json"), str(tmp_path)]
        )
        capsys.readouterr()
        assert lint_main([str(tmp_path)]) == 0

    def test_stale_baseline_gates_under_strict(self, make_tree, tmp_path, capsys):
        make_tree({"repro/sim/clock.py": WALL_CLOCK_SIM})
        baseline_path = tmp_path / "accepted.json"
        lint_main(["--write-baseline", str(baseline_path), str(tmp_path)])
        make_tree({"repro/sim/clock.py": "x = 1\n"})  # fixed: entry now stale
        capsys.readouterr()
        assert lint_main(["--baseline", str(baseline_path), str(tmp_path)]) == 0
        assert (
            lint_main(["--strict", "--baseline", str(baseline_path), str(tmp_path)])
            == 1
        )

    def test_main_module_dispatch(self, make_tree, tmp_path):
        from repro.__main__ import main as repro_main

        make_tree({"repro/sim/clock.py": "x = 1\n"})
        assert repro_main(["lint", str(tmp_path)]) == 0
