"""Behavioral regressions for the findings fixed in the lint sweep.

The lint's unguarded-request warnings were fixed by adding error paths;
these tests drive the error paths for real — a request to a node that
never answers must now reach the new handler instead of vanishing into
the transport's debug log.
"""

from __future__ import annotations

import pytest

from repro.net.geometry import Position
from repro.net.node import NetworkNode
from repro.net.transport import Transport
from repro.store.client import HallClient
from repro.tuplespace.service import TupleSpaceClient


@pytest.fixture
def lonely_transport(sim, network):
    """A transport whose peers never answer (requests always time out)."""
    node = network.attach(NetworkNode("lonely", Position(0, 0)))
    return Transport(node, sim)


class TestStoreClientDegradesGracefully:
    def test_list_robots_times_out_to_empty(self, sim, lonely_transport):
        results = []
        client = HallClient(lonely_transport, sim)
        client.list_robots("ghost-store", results.append)
        sim.run_for(60.0)
        assert results == [[]]

    def test_action_list_times_out_to_empty(self, sim, lonely_transport):
        results = []
        client = HallClient(lonely_transport, sim)
        client.action_list("ghost-store", "r1", results.append)
        sim.run_for(60.0)
        assert results == [[]]

    def test_caller_supplied_on_error_wins(self, sim, lonely_transport):
        results, errors = [], []
        client = HallClient(lonely_transport, sim)
        client.list_robots("ghost-store", results.append, on_error=errors.append)
        sim.run_for(60.0)
        assert results == []
        assert len(errors) == 1


class TestTupleSpaceClientErrorPaths:
    def test_renew_error_reaches_callback(self, sim, lonely_transport):
        errors = []
        client = TupleSpaceClient(lonely_transport, "ghost-space")
        client.renew("lease-1", on_error=errors.append)
        sim.run_for(60.0)
        assert len(errors) == 1

    def test_retract_error_reaches_callback(self, sim, lonely_transport):
        errors = []
        client = TupleSpaceClient(lonely_transport, "ghost-space")
        client.retract("lease-1", on_error=errors.append)
        sim.run_for(60.0)
        assert len(errors) == 1

    def test_failed_listen_unregisters_delivery_op(self, sim, lonely_transport):
        """A lost LISTEN must not leave the minted delivery op dangling."""
        errors = []
        client = TupleSpaceClient(lonely_transport, "ghost-space")
        client.listen(
            template=None, listener=lambda t: None, on_error=errors.append
        )
        operation = f"space.deliver.{lonely_transport.node.node_id}.1"
        assert lonely_transport.serves(operation)
        sim.run_for(60.0)
        assert len(errors) == 1
        assert not lonely_transport.serves(operation)


class TestFleetSendAccounting:
    def test_fleet_exposes_send_error_accounting(self):
        """Lost registrar requests are counted (never fingerprinted)."""
        from repro.fleet.population import FleetBuilder

        fleet = FleetBuilder(leaves=8, leaves_per_cluster=4, seed=7).build()
        assert fleet.send_errors == 0
        assert fleet.stats()["send_errors"] == 0
        fleet.distribute("fleet-policy")
        fleet.run_epochs(4)
        # The base answers in-sim, so the healthy path stays error-free
        # and the fingerprint-bearing counters are untouched by the fix.
        assert fleet.send_errors == 0
        assert fleet.offers_sent > 0
