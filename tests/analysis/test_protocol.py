"""Protocol pass: unhandled ops, unguarded requests, mixed modes."""

from __future__ import annotations

from repro.analysis import findings as F
from repro.analysis.protocol import check_tree


def rules(findings):
    return [f.rule for f in findings]


SERVER = """
OP = "svc.ping"

class Server:
    def __init__(self, transport):
        transport.register(OP, self._serve_ping)

    def _serve_ping(self, sender, body):
        return {"pong": True}
"""


class TestUnhandledOp:
    def test_planted_unhandled_op(self, make_tree):
        tree = make_tree(
            {
                "server.py": SERVER,
                "client.py": """
                class Client:
                    def poke(self):
                        self.transport.request(
                            "srv", "svc.typo", {}, on_error=self._oops
                        )

                    def _oops(self, exc):
                        pass
                """,
            }
        )
        found = check_tree(tree)
        assert rules(found) == [F.RULE_UNHANDLED_OP]
        assert "svc.typo" in found[0].message
        assert found[0].severity == F.ERROR

    def test_registered_op_is_clean(self, make_tree):
        tree = make_tree(
            {
                "server.py": SERVER,
                "client.py": """
                from server import OP

                class Client:
                    def poke(self):
                        self.transport.request("srv", OP, {}, on_error=print)
                """,
            }
        )
        assert check_tree(tree) == []

    def test_cross_file_constant_resolution(self, make_tree):
        """``m.OP`` attribute reads resolve through the defining module."""
        tree = make_tree(
            {
                "server.py": SERVER,
                "client.py": """
                import server

                class Client:
                    def poke(self):
                        self.transport.notify("srv", server.OP, {})
                """,
            }
        )
        assert check_tree(tree) == []

    def test_broadcast_needs_a_handler_too(self, make_tree):
        tree = make_tree(
            {
                "probe.py": """
                class Prober:
                    def sweep(self):
                        self.transport.broadcast("probe.nobody", {})
                """,
            }
        )
        assert rules(check_tree(tree)) == [F.RULE_UNHANDLED_OP]


class TestUnguardedRequest:
    def test_request_without_on_error_warns(self, make_tree):
        tree = make_tree(
            {
                "server.py": SERVER,
                "client.py": """
                from server import OP

                class Client:
                    def poke(self):
                        self.transport.request("srv", OP, {})
                """,
            }
        )
        found = check_tree(tree)
        assert rules(found) == [F.RULE_UNGUARDED_REQUEST]
        assert found[0].severity == F.WARNING

    def test_on_error_keyword_guards(self, make_tree):
        tree = make_tree(
            {
                "server.py": SERVER,
                "client.py": """
                from server import OP

                class Client:
                    def poke(self):
                        self.transport.request(
                            "srv", OP, {}, on_error=lambda exc: None
                        )
                """,
            }
        )
        assert check_tree(tree) == []

    def test_resilient_call_guards(self, make_tree):
        """Retried sends through a client wrapper need no on_error."""
        tree = make_tree(
            {
                "server.py": SERVER,
                "client.py": """
                from server import OP

                class Client:
                    def poke(self):
                        self._client.call("srv", OP, {})
                """,
            }
        )
        assert check_tree(tree) == []

    def test_literal_none_on_error_does_not_guard(self, make_tree):
        tree = make_tree(
            {
                "server.py": SERVER,
                "client.py": """
                from server import OP

                class Client:
                    def poke(self):
                        self.transport.request("srv", OP, {}, on_error=None)
                """,
            }
        )
        assert rules(check_tree(tree)) == [F.RULE_UNGUARDED_REQUEST]


class TestMixedSendModes:
    def test_op_sent_by_request_and_notify(self, make_tree):
        tree = make_tree(
            {
                "server.py": SERVER,
                "client.py": """
                from server import OP

                class Client:
                    def ask(self):
                        self.transport.request("srv", OP, {}, on_error=print)

                    def shout(self):
                        self.transport.notify("srv", OP, {})
                """,
            }
        )
        found = check_tree(tree)
        assert rules(found) == [F.RULE_MIXED_SEND_MODES]
        assert found[0].severity == F.WARNING
        # The finding anchors at the undeduped notify site.
        assert found[0].path == "client.py"

    def test_notify_only_op_is_fine(self, make_tree):
        tree = make_tree(
            {
                "server.py": SERVER.replace("svc.ping", "svc.event"),
                "client.py": """
                class Client:
                    def shout(self):
                        self.transport.notify("srv", "svc.event", {})
                """,
            }
        )
        assert check_tree(tree) == []


class TestDynamicOps:
    def test_dynamic_send_and_register_are_info(self, make_tree):
        tree = make_tree(
            {
                "dyn.py": """
                class Dyn:
                    def subscribe(self, operation, listener):
                        self.transport.register(operation, listener)

                    def publish(self, operation, body):
                        self.transport.notify("peer", operation, body)
                """,
            }
        )
        found = check_tree(tree)
        assert rules(found) == [F.RULE_DYNAMIC_OP, F.RULE_DYNAMIC_OP]
        assert all(f.severity == F.INFO for f in found)

    def test_non_transport_receivers_ignored(self, make_tree):
        """Methods that merely share names (space.notify, proxy.call,
        discovery.register) are not protocol sends."""
        tree = make_tree(
            {
                "other.py": """
                class Other:
                    def use(self, space, proxy, discovery, item, ref):
                        space.notify(item, print)
                        proxy.call(ref, {"x": 1})
                        discovery.register(item, 30.0)
                """,
            }
        )
        assert check_tree(tree) == []
