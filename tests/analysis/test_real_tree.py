"""The acceptance gate: the platform's own tree lints clean.

These tests are the CI lint job in miniature — they run the exact
configuration ``python -m repro lint --strict src/repro`` uses and pin
the tree at zero errors and zero warnings.  A regression in any linted
property (a new wall-clock read in ``sim/``, an unguarded request, a
typo'd op) fails here before it fails in CI.
"""

from __future__ import annotations

from repro.analysis import findings as F
from repro.analysis.baseline import DEFAULT_BASELINE_NAME, load_baseline
from repro.analysis.runner import LintConfig, run_lint


def _real_result(repo_src):
    baseline = load_baseline(repo_src / DEFAULT_BASELINE_NAME)
    return run_lint(
        LintConfig(root=repo_src, targets=[repo_src], baseline=baseline)
    )


class TestRealTree:
    def test_strict_clean(self, repo_src):
        result = _real_result(repo_src)
        rendered = "\n".join(f.render() for f in result.findings)
        assert result.errors() == [], rendered
        assert result.warnings() == [], rendered

    def test_no_stale_baseline_entries(self, repo_src):
        result = _real_result(repo_src)
        assert result.stale_baseline == [], result.stale_baseline

    def test_scans_the_whole_tree(self, repo_src):
        result = _real_result(repo_src)
        assert result.files_scanned > 100

    def test_every_request_is_guarded(self, repo_src):
        """Regression for the fix sweep: no request path in the tree may
        lose a timeout silently (discovery cancels, tuplespace
        renew/retract/listen, fleet tree and population sends, store
        client queries, loadgen registration were all fixed)."""
        result = _real_result(repo_src)
        unguarded = [
            f for f in result.findings + result.baselined
            if f.rule == F.RULE_UNGUARDED_REQUEST
        ]
        assert unguarded == []

    def test_roamed_mixed_mode_is_waived_not_hidden(self, repo_src):
        """The classic fire-and-forget ROAMED notify stays, justified by
        an inline waiver (the handler is epoch-idempotent)."""
        result = _real_result(repo_src)
        waived_rules = {f.rule for f in result.waived}
        assert F.RULE_MIXED_SEND_MODES in waived_rules

    def test_dynamic_ops_are_baselined_with_justifications(self, repo_src):
        baseline = load_baseline(repo_src / DEFAULT_BASELINE_NAME)
        assert baseline.entries, "expected checked-in lint-baseline.json"
        for entry in baseline.entries.values():
            assert entry["rule"] == F.RULE_DYNAMIC_OP
            assert len(entry["justification"]) > 10
