"""Signal (pub/sub) tests."""

from repro.util.signal import Signal


class TestSignal:
    def test_fire_reaches_listener(self):
        signal = Signal("s")
        got = []
        signal.connect(got.append)
        signal.fire(42)
        assert got == [42]

    def test_fire_with_kwargs(self):
        signal = Signal("s")
        got = []
        signal.connect(lambda a, b=None: got.append((a, b)))
        signal.fire(1, b=2)
        assert got == [(1, 2)]

    def test_multiple_listeners_all_called_in_order(self):
        signal = Signal("s")
        order = []
        signal.connect(lambda: order.append("first"))
        signal.connect(lambda: order.append("second"))
        signal.fire()
        assert order == ["first", "second"]

    def test_disconnect(self):
        signal = Signal("s")
        got = []
        listener = got.append
        signal.connect(listener)
        signal.disconnect(listener)
        signal.fire(1)
        assert got == []

    def test_disconnect_unknown_listener_is_noop(self):
        Signal("s").disconnect(lambda: None)

    def test_listener_error_does_not_stop_others(self):
        signal = Signal("s")
        got = []

        def bad():
            raise ValueError("boom")

        signal.connect(bad)
        signal.connect(lambda: got.append("ok"))
        errors = signal.fire()
        assert got == ["ok"]
        assert len(errors) == 1
        assert isinstance(errors[0], ValueError)

    def test_connect_returns_listener_for_decorator_use(self):
        signal = Signal("s")

        @signal.connect
        def listener():
            pass

        assert len(signal) == 1
        assert listener is not None

    def test_listener_added_during_fire_not_called_this_round(self):
        signal = Signal("s")
        got = []

        def adder():
            signal.connect(lambda: got.append("late"))

        signal.connect(adder)
        signal.fire()
        assert got == []
        signal.fire()
        assert got == ["late"]

    def test_len_counts_listeners(self):
        signal = Signal("s")
        assert len(signal) == 0
        signal.connect(lambda: None)
        assert len(signal) == 1
