"""Wildcard pattern tests."""

from repro.util.patterns import WildcardPattern, wildcard_match


class TestWildcardMatch:
    def test_literal_match(self):
        assert wildcard_match("spin", "spin")

    def test_literal_mismatch(self):
        assert not wildcard_match("spin", "spun")

    def test_star_matches_everything(self):
        assert wildcard_match("*", "")
        assert wildcard_match("*", "anything at all")

    def test_prefix_pattern(self):
        assert wildcard_match("send*", "sendBytes")
        assert wildcard_match("send*", "send")
        assert not wildcard_match("send*", "resend")

    def test_suffix_pattern(self):
        assert wildcard_match("*Sensor", "TouchSensor")
        assert not wildcard_match("*Sensor", "SensorArray")

    def test_infix_pattern(self):
        assert wildcard_match("get*Value", "getRawValue")
        assert not wildcard_match("get*Value", "getValueNow")

    def test_multiple_stars(self):
        assert wildcard_match("*o*o*", "robot motor")
        assert not wildcard_match("*o*o*", "ox")

    def test_anchored_both_ends(self):
        assert not wildcard_match("pin", "spinning")

    def test_regex_metacharacters_are_literal(self):
        assert wildcard_match("a.b", "a.b")
        assert not wildcard_match("a.b", "axb")
        assert wildcard_match("f(x)*", "f(x) = y")


class TestWildcardPattern:
    def test_matches(self):
        assert WildcardPattern("Motor*").matches("MotorProxy")

    def test_is_universal(self):
        assert WildcardPattern("*").is_universal
        assert not WildcardPattern("*a").is_universal

    def test_equality_and_hash(self):
        assert WildcardPattern("x*") == WildcardPattern("x*")
        assert hash(WildcardPattern("x*")) == hash(WildcardPattern("x*"))
        assert WildcardPattern("x*") != WildcardPattern("y*")

    def test_usable_in_sets(self):
        patterns = {WildcardPattern("a"), WildcardPattern("a"), WildcardPattern("b")}
        assert len(patterns) == 2
