"""Identifier generation tests."""

import threading

from repro.util.ids import IdGenerator, fresh_id


class TestIdGenerator:
    def test_sequential_per_prefix(self):
        gen = IdGenerator()
        assert gen.next("a") == "a:0"
        assert gen.next("a") == "a:1"

    def test_prefixes_count_independently(self):
        gen = IdGenerator()
        gen.next("a")
        assert gen.next("b") == "b:0"

    def test_instances_are_independent(self):
        first, second = IdGenerator(), IdGenerator()
        first.next("x")
        assert second.next("x") == "x:0"

    def test_reset_restarts_counters(self):
        gen = IdGenerator()
        gen.next("a")
        gen.reset()
        assert gen.next("a") == "a:0"

    def test_no_duplicates_under_concurrency(self):
        gen = IdGenerator()
        seen: list[str] = []

        def worker():
            for _ in range(200):
                seen.append(gen.next("t"))

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(seen) == len(set(seen)) == 800


class TestFreshId:
    def test_unique_across_calls(self):
        assert fresh_id("test-prefix") != fresh_id("test-prefix")

    def test_uses_prefix(self):
        assert fresh_id("widget").startswith("widget:")
