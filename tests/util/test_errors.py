"""Exception hierarchy tests."""

import inspect

import pytest

import repro.errors as errors
from repro.errors import ReproError, SandboxViolation


class TestHierarchy:
    def test_every_library_error_derives_from_repro_error(self):
        for name, obj in vars(errors).items():
            if inspect.isclass(obj) and issubclass(obj, Exception):
                assert issubclass(obj, ReproError), f"{name} outside hierarchy"

    def test_family_catch(self):
        with pytest.raises(ReproError):
            raise errors.LeaseExpiredError("gone")

    def test_subfamily_relationships(self):
        assert issubclass(errors.RequestTimeout, errors.TransportError)
        assert issubclass(errors.TransportError, errors.NetworkError)
        assert issubclass(errors.SandboxViolation, errors.AopError)
        assert issubclass(errors.UntrustedSignerError, errors.MidasError)
        assert issubclass(errors.HardwareFrozenError, errors.RobotError)


class TestSandboxViolation:
    def test_carries_capability_and_aspect(self):
        violation = SandboxViolation("network", "monitor#1")
        assert violation.capability == "network"
        assert violation.aspect_name == "monitor#1"
        assert "monitor#1" in str(violation)
        assert "network" in str(violation)

    def test_anonymous_extension(self):
        violation = SandboxViolation("store")
        assert violation.aspect_name is None
        assert "extension" in str(violation)
