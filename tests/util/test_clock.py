"""Clock abstraction tests."""

import pytest

from repro.errors import ClockError
from repro.util.clock import ManualClock, SystemClock


class TestSystemClock:
    def test_monotonic(self):
        clock = SystemClock()
        first = clock.now()
        second = clock.now()
        assert second >= first

    def test_returns_float(self):
        assert isinstance(SystemClock().now(), float)


class TestManualClock:
    def test_starts_at_given_time(self):
        assert ManualClock(5.0).now() == 5.0

    def test_defaults_to_zero(self):
        assert ManualClock().now() == 0.0

    def test_advance_moves_time(self):
        clock = ManualClock()
        clock.advance(2.5)
        assert clock.now() == 2.5

    def test_advance_returns_new_time(self):
        clock = ManualClock(1.0)
        assert clock.advance(1.0) == 2.0

    def test_advance_accumulates(self):
        clock = ManualClock()
        clock.advance(1.0)
        clock.advance(0.5)
        assert clock.now() == 1.5

    def test_negative_advance_rejected(self):
        clock = ManualClock()
        with pytest.raises(ClockError):
            clock.advance(-0.1)

    def test_set_jumps_forward(self):
        clock = ManualClock()
        clock.set(10.0)
        assert clock.now() == 10.0

    def test_set_backwards_rejected(self):
        clock = ManualClock(5.0)
        with pytest.raises(ClockError):
            clock.set(4.9)

    def test_set_to_same_time_allowed(self):
        clock = ManualClock(5.0)
        clock.set(5.0)
        assert clock.now() == 5.0
