"""The registrar tree wired end to end (small fleet, full stack)."""

import pytest

from repro.fleet import FleetBuilder, HEAD_INTERFACE
from repro.discovery.service import ServiceTemplate


@pytest.fixture
def small_fleet():
    """640 leaves → 8 heads → 2 registrars → 3 regions."""
    return FleetBuilder(
        leaves=640,
        leaves_per_cluster=80,
        clusters_per_registrar=4,
        shards=2,
        seed=11,
        churn=0.0,
    ).build()


class TestTreeWiring:
    def test_topology_comes_out_as_planned(self, small_fleet):
        assert small_fleet.plan.heads == 8
        assert small_fleet.plan.registrars == 2
        assert len(small_fleet.registrars) == 2
        assert [len(r.heads) for r in small_fleet.registrars] == [4, 4]
        regions = {h.region for h in small_fleet.heads}
        assert regions == {1, 2}

    def test_heads_lease_liveness_at_the_base(self, small_fleet):
        small_fleet.run_epochs(2)
        assert small_fleet.base.lookup.registration_count() == 8
        items = small_fleet.base.lookup.items(
            ServiceTemplate(interface=HEAD_INTERFACE)
        )
        assert len(items) == 8
        assert {item.provider for item in items} == {
            "registrar-000", "registrar-001",
        }

    def test_head_leases_survive_on_batched_renewals(self, small_fleet):
        # Head lease duration is 20 s; run well past several terms.  The
        # base never sees per-head renew traffic — one batch round trip
        # per registrar per interval keeps all 8 alive.
        small_fleet.run_epochs(70)
        assert small_fleet.base.lookup.registration_count() == 8
        batches = sum(r.renew_batches for r in small_fleet.registrars)
        assert batches == 2 * 14  # 2 registrars, every 5 s over 70 s
        assert all(r.head_reregistrations == 0 for r in small_fleet.registrars)

    def test_distribute_verifies_once_per_registrar(self, small_fleet):
        small_fleet.distribute("fleet-policy")
        small_fleet.run_epochs(5)
        assert [r.envelopes_verified for r in small_fleet.registrars] == [1, 1]
        assert small_fleet.population.counts()["installed"] == 640
        assert small_fleet.offers_acked == 2

    def test_install_reports_aggregate_uptree(self, small_fleet):
        small_fleet.distribute("fleet-policy")
        small_fleet.run_epochs(10)
        assert [r.leaf_installs for r in small_fleet.registrars] == [320, 320]
        # Sweeps renew whole regions and report aggregates, not leaves.
        assert all(r.leaf_renewals > 0 for r in small_fleet.registrars)

    def test_withdraw_revokes_the_whole_fleet(self, small_fleet):
        small_fleet.distribute("fleet-policy")
        small_fleet.run_epochs(5)
        small_fleet.withdraw("fleet-policy")
        small_fleet.run_epochs(3)
        counts = small_fleet.population.counts()
        assert counts["installed"] == 0
        assert counts["revoked"] == 640
        assert [r.leaf_revocations for r in small_fleet.registrars] == [320, 320]

    def test_offers_ride_the_base_pipeline(self, small_fleet):
        small_fleet.distribute("fleet-policy")
        small_fleet.run_epochs(5)
        stats = small_fleet.base.extension_base.pipeline.stats()
        assert stats["submitted"] == 2
        assert stats["completed"] == 2

    def test_churned_leaves_expire_without_base_traffic(self):
        fleet = FleetBuilder(
            leaves=200,
            leaves_per_cluster=50,
            clusters_per_registrar=2,
            seed=3,
            churn=1.0,            # every leaf stops renewing...
            churn_horizon=10.0,   # ...within 10 s
            leaf_lease_duration=8.0,
        ).build()
        fleet.distribute("fleet-policy")
        fleet.run_epochs(40)
        counts = fleet.population.counts()
        assert counts["installed"] == 0
        assert counts["expired"] == 200
        total_expired = sum(r.leaf_expiries for r in fleet.registrars)
        assert total_expired == 200
