"""Fleet determinism: fixed seed ⇒ fixed fingerprint, shards invisible.

Two properties, both load-bearing for reproducible experiments:

1. **Replay** — building and driving the same seeded scenario twice
   (fresh processes-worth of global state aside) produces bit-identical
   fingerprints.
2. **Shard-count independence** — the region→shard mapping is an
   execution detail: any shard count produces the same per-region event
   history, because cross-region traffic is epoch-quantized regardless
   of which heap the regions happen to share.
"""

from repro.fleet import FleetBuilder


def drive(shards, seed=21):
    """A small cross-region scenario: install, churned renewal, revoke."""
    fleet = FleetBuilder(
        leaves=900,
        leaves_per_cluster=60,
        clusters_per_registrar=5,
        shards=shards,
        seed=seed,
        churn=0.3,
        churn_horizon=25.0,
        leaf_lease_duration=12.0,
    ).build()
    fleet.distribute("fleet-policy")
    fleet.run_epochs(35)
    fleet.withdraw("fleet-policy")
    fleet.run_epochs(6)
    return fleet


class TestReplayDeterminism:
    def test_same_seed_same_shards_identical_fingerprint(self):
        first = drive(shards=2)
        second = drive(shards=2)
        assert first.fingerprint() == second.fingerprint()
        # The logs themselves match, not just their digest.
        assert first.region_logs == second.region_logs
        assert first.population.counts() == second.population.counts()

    def test_different_seed_changes_the_run(self):
        # Churn deadlines are seeded; a different seed must not produce
        # the same history (or the fingerprint measures nothing).
        assert drive(2, seed=21).fingerprint() != drive(2, seed=22).fingerprint()


class TestShardCountIndependence:
    def test_shard_count_is_unobservable(self):
        fingerprints = {
            shards: drive(shards).fingerprint() for shards in (1, 2, 3, None)
        }
        assert len(set(fingerprints.values())) == 1, fingerprints

    def test_cross_region_handoffs_identical_across_shardings(self):
        one = drive(shards=1)
        many = drive(shards=None)  # one shard per region
        assert one.kernel.shards == 1
        assert many.kernel.shards == one.plan.regions
        assert one.kernel.handoffs_delivered == many.kernel.handoffs_delivered
        assert one.region_logs == many.region_logs
