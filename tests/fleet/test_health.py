"""Fleet health: detached-plane feeding from region sweeps, the lease
SLO, and the guarantee that health never perturbs the fingerprint."""

from __future__ import annotations

from repro.fleet import FleetBuilder
from repro.fleet.population import fleet_health_plane


def drive(leaves: int = 1024, seed: int = 5, health: bool = True):
    fleet = FleetBuilder(leaves=leaves, seed=seed, health=health).build()
    fleet.distribute("fleet-policy")
    fleet.run_epochs(25)
    return fleet


class TestFleetHealthPlane:
    def test_builder_attaches_a_detached_plane(self):
        fleet = drive()
        assert fleet.health is not None
        assert fleet.health.registry is None  # detached: no global recorder

    def test_sweeps_feed_the_lease_slo(self):
        fleet = drive()
        slo = next(
            s for s in fleet.health.engine.slos if s.name == "fleet-lease-renewal"
        )
        assert slo.good_total > 0  # renewals arrived via ingest_count
        series = fleet.health.book.series("sweep-rate")
        assert series  # one rate series per (metric, swept region)
        identities = {(s.metric, dict(s.labels).get("region")) for s in series}
        assert len(identities) == len(series)
        assert all(region is not None for _, region in identities)

    def test_healthy_fleet_reports_healthy(self):
        report = drive().health_report()
        assert report is not None
        assert report.subsystems["fleet"] == "healthy"

    def test_health_report_none_when_disabled(self):
        fleet = drive(health=False)
        assert fleet.health is None
        assert fleet.health_report() is None

    def test_region_activity_totals_match_plane_stream(self):
        fleet = drive()
        activity = fleet.region_activity()
        assert activity and all(row["sweeps"] > 0 for row in activity)
        renewed = sum(row["renewed"] for row in activity)
        slo = next(
            s for s in fleet.health.engine.slos if s.name == "fleet-lease-renewal"
        )
        assert slo.good_total == float(renewed)


class TestFingerprintInvariance:
    def test_health_never_feeds_the_fingerprint(self):
        with_health = drive(health=True)
        without = drive(health=False)
        assert with_health.fingerprint() == without.fingerprint()


class TestFleetHealthPlaneFactory:
    def test_windows_scale_with_renew_interval(self):
        fast = fleet_health_plane(renew_interval=1.0)
        slow = fleet_health_plane(renew_interval=4.0)
        fast_slo = fast.engine.slos[0]
        slow_slo = slow.engine.slos[0]
        assert max(slow_slo._windows) == 4.0 * max(fast_slo._windows)
