"""Array-backed population rows, interning, and tree topology math."""

import math

import pytest

from repro.errors import SimulationError
from repro.fleet.population import (
    EXPIRED,
    IDLE,
    INSTALLED,
    OFFERED,
    REVOKED,
    EndpointInterner,
    FleetPopulation,
)
from repro.fleet.tree import TreePlan


class TestEndpointInterner:
    def test_ids_are_dense_and_stable(self):
        interner = EndpointInterner()
        a = interner.intern("leaf-0")
        b = interner.intern("leaf-1")
        assert (a, b) == (0, 1)
        assert interner.intern("leaf-0") == a
        assert interner.name(b) == "leaf-1"
        assert len(interner) == 2
        assert "leaf-0" in interner and "leaf-9" not in interner


class TestFleetPopulation:
    def test_rows_not_objects(self):
        population = FleetPopulation()
        for i in range(100):
            population.add_leaf(f"leaf-{i}", region=1 + i % 3, head=i // 10)
        assert len(population) == 100
        assert population.endpoint_of(42) == "leaf-42"
        assert population.counts()["idle"] == 100

    def test_lifecycle_range_transitions(self):
        population = FleetPopulation()
        for i in range(10):
            population.add_leaf(f"l{i}", region=1, head=0)
        assert population.offer_range(0, 10) == 10
        assert population.counts()["offered"] == 10
        assert population.install_range(0, 10, now=1.0, duration=5.0) == 10
        assert population.counts()["installed"] == 10
        assert population.expires_at[3] == 6.0
        # Offer/install are idempotent over already-moved rows.
        assert population.offer_range(0, 10) == 0
        assert population.install_range(0, 10, 1.0, 5.0) == 0

    def test_sweep_renews_until_churn_deadline_then_expires(self):
        population = FleetPopulation()
        # Leaf 0 renews forever; leaf 1 churns out at t=4.
        population.add_leaf("keeper", 1, 0, renew_until=math.inf)
        population.add_leaf("churner", 1, 0, renew_until=4.0)
        population.offer_range(0, 2)
        population.install_range(0, 2, now=0.0, duration=5.0)
        assert population.sweep_range(0, 2, now=3.0, duration=5.0) == (2, 0)
        assert population.expires_at[0] == 8.0
        # At t=6 the churner's deadline passed: only the keeper renews.
        assert population.sweep_range(0, 2, now=6.0, duration=5.0) == (1, 0)
        # By t=10 the churner's last term (ends 8.0) has lapsed.
        assert population.sweep_range(0, 2, now=10.0, duration=5.0) == (1, 1)
        assert population.state_of(1) == EXPIRED
        assert population.counts() == {
            "idle": 0, "offered": 0, "installed": 1, "revoked": 0, "expired": 1,
        }
        assert population.renewals == 4
        assert population.expiries == 1

    def test_revoke_takes_offered_and_installed_only(self):
        population = FleetPopulation()
        for i in range(4):
            population.add_leaf(f"l{i}", 1, 0)
        population.offer_range(0, 2)
        population.install_range(0, 2, 0.0, 5.0)
        population.offer_range(2, 3)  # leaf 2 offered, leaf 3 idle
        assert population.revoke_range(0, 4) == 3
        assert population.state_of(3) == IDLE
        assert population.counts()["revoked"] == 3
        assert population.revocations == 3

    def test_counts_stay_exact_through_mixed_traffic(self):
        population = FleetPopulation()
        for i in range(50):
            population.add_leaf(f"l{i}", 1, 0, renew_until=0.0)
        population.offer_range(0, 50)
        population.install_range(0, 50, 0.0, 2.0)
        population.sweep_range(0, 50, now=5.0, duration=2.0)  # all lapse
        counts = population.counts()
        assert counts["expired"] == 50
        assert sum(counts.values()) == 50


class TestTreePlan:
    def test_exact_division(self):
        plan = TreePlan(1024, leaves_per_cluster=256, clusters_per_registrar=2)
        assert plan.heads == 4
        assert plan.registrars == 2
        assert plan.regions == 3
        assert plan.leaf_range(3) == (768, 1024)
        assert plan.head_range(1) == (2, 4)
        assert plan.region_of_head(0) == 1
        assert plan.region_of_head(3) == 2

    def test_ragged_division_clamps_final_ranges(self):
        plan = TreePlan(1000, leaves_per_cluster=300, clusters_per_registrar=3)
        assert plan.heads == 4  # 300+300+300+100
        assert plan.registrars == 2
        assert plan.leaf_range(3) == (900, 1000)
        assert plan.head_range(1) == (3, 4)

    def test_rejects_nonsense(self):
        with pytest.raises(SimulationError):
            TreePlan(0)
        with pytest.raises(SimulationError):
            TreePlan(10, leaves_per_cluster=0)
