"""Sharded kernel: epoch barriers and cross-region handoff."""

import pytest

from repro.errors import SimulationError
from repro.fleet.regions import ShardedKernel
from repro.sim.kernel import Simulator


class TestTopology:
    def test_region_to_shard_mapping_is_stable(self):
        kernel = ShardedKernel(regions=10, epoch=1.0, shards=3)
        assert [kernel.shard_of(r) for r in range(10)] == [
            0, 1, 2, 0, 1, 2, 0, 1, 2, 0,
        ]

    def test_shards_default_to_one_per_region(self):
        kernel = ShardedKernel(regions=4, epoch=1.0)
        assert kernel.shards == 4
        assert len({id(kernel.simulator(r)) for r in range(4)}) == 4

    def test_shards_clamped_to_region_count(self):
        kernel = ShardedKernel(regions=2, epoch=1.0, shards=16)
        assert kernel.shards == 2

    def test_platform_simulator_becomes_shard_zero(self):
        sim = Simulator()
        sim.run(until=3.0)  # a platform mid-flight
        kernel = ShardedKernel(regions=3, epoch=1.0, shards=2, shard0=sim)
        assert kernel.simulator(0) is sim
        assert kernel.time == 3.0
        assert kernel.simulator(1).now == 3.0  # other shards start aligned

    def test_bad_arguments_rejected(self):
        with pytest.raises(SimulationError):
            ShardedKernel(regions=0, epoch=1.0)
        with pytest.raises(SimulationError):
            ShardedKernel(regions=1, epoch=0.0)
        with pytest.raises(SimulationError):
            ShardedKernel(regions=2, epoch=1.0).schedule(5, 0.1, print)


class TestEpochExecution:
    def test_region_local_events_run_within_their_epoch(self):
        kernel = ShardedKernel(regions=2, epoch=1.0)
        fired = []
        kernel.schedule(0, 0.3, fired.append, ("a", 0.3))
        kernel.schedule(1, 0.7, fired.append, ("b", 0.7))
        kernel.schedule(0, 1.5, fired.append, ("c", 1.5))
        assert kernel.run_epoch() == 2
        assert fired == [("a", 0.3), ("b", 0.7)]
        assert kernel.run_epoch() == 1
        assert fired[-1] == ("c", 1.5)
        assert kernel.epochs == 2
        assert kernel.events_processed == 3

    def test_run_until_advances_whole_epochs(self):
        kernel = ShardedKernel(regions=2, epoch=0.5)
        kernel.run_until(1.7)
        assert kernel.time == pytest.approx(2.0)
        assert kernel.epochs == 4

    def test_run_until_quiet_drains_then_stops(self):
        kernel = ShardedKernel(regions=2, epoch=1.0)
        kernel.schedule(1, 2.5, lambda: None)
        ran = kernel.run_until_quiet(max_epochs=50)
        # The event (at t=2.5) runs in epoch 3; epoch 4 is quiet.
        assert ran == 1
        assert kernel.epochs == 4


class TestHandoff:
    def test_handoff_arrives_at_next_epoch_boundary(self):
        kernel = ShardedKernel(regions=2, epoch=1.0)
        arrivals = []

        def sender():
            kernel.handoff(0, 1, lambda: arrivals.append(kernel.simulator(1).now))

        kernel.schedule(0, 0.2, sender)
        kernel.run_epoch()
        assert arrivals == []  # buffered, not yet delivered
        kernel.run_epoch()
        assert arrivals == [1.0]  # quantized to the boundary

    def test_same_shard_handoff_is_quantized_too(self):
        # Both regions on one shard: delivery must still wait for the
        # boundary, or shard count would change application behavior.
        kernel = ShardedKernel(regions=2, epoch=1.0, shards=1)
        arrivals = []
        kernel.schedule(0, 0.2, lambda: kernel.handoff(
            0, 1, lambda: arrivals.append(kernel.simulator(1).now)))
        kernel.run_epoch()
        assert arrivals == []
        kernel.run_epoch()
        assert arrivals == [1.0]

    def test_delivery_order_is_time_then_source_then_seq(self):
        kernel = ShardedKernel(regions=3, epoch=1.0, shards=3)
        order = []
        # Region 2 sends early in the epoch, region 1 later; two messages
        # from region 1 keep their send order.
        kernel.schedule(2, 0.1, lambda: kernel.handoff(2, 0, order.append, "r2@0.1"))
        def r1_sends():
            kernel.handoff(1, 0, order.append, "r1-first")
            kernel.handoff(1, 0, order.append, "r1-second")
        kernel.schedule(1, 0.1, r1_sends)
        kernel.schedule(1, 0.05, lambda: kernel.handoff(1, 0, order.append, "r1@0.05"))
        kernel.run_epochs(2)
        assert order == ["r1@0.05", "r1-first", "r1-second", "r2@0.1"]
        assert kernel.handoffs_delivered == 4

    def test_pending_counts_buffered_handoffs(self):
        kernel = ShardedKernel(regions=2, epoch=1.0)
        kernel.handoff(0, 1, lambda: None)
        assert kernel.pending == 1
        kernel.schedule(1, 0.5, lambda: None)
        assert kernel.pending == 2
        kernel.run_epoch()
        assert kernel.pending == 1  # handoff now queued in region 1's heap
        kernel.run_epoch()
        assert kernel.pending == 0

    def test_handoff_region_bounds_checked(self):
        kernel = ShardedKernel(regions=2, epoch=1.0)
        with pytest.raises(SimulationError):
            kernel.handoff(0, 2, print)
        with pytest.raises(SimulationError):
            kernel.handoff(-1, 0, print)
