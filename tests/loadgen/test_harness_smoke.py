"""End-to-end closed-loop runs on the smoke preset (fast, deterministic)."""

import pytest

from repro.loadgen.harness import LoadReport, run_scenario
from repro.loadgen.scenario import PRESETS
from repro.telemetry import MetricsRegistry


@pytest.fixture(scope="module")
def report() -> LoadReport:
    return run_scenario(PRESETS["smoke"])


class TestSmokeRun:
    def test_loop_completes_operations_without_errors(self, report):
        assert report.overall["completions"] > 0
        assert report.overall["errors"] == 0
        assert report.clients["errors"] == 0
        assert report.clients["completed"] > 0

    def test_all_mix_operations_exercised(self, report):
        # The smoke mix names all four ops; every one must complete at
        # least once during the measured phase.
        assert set(report.overall["per_op"]) == {
            "install",
            "renew",
            "revoke",
            "discovery",
        }

    def test_run_finds_a_stable_span(self, report):
        first, last = report.span
        assert last - first >= 4
        assert report.stable["windows"] == last - first

    def test_station_accounting_is_consistent(self, report):
        station = report.station
        assert station["shed"] == 0
        assert station["failed"] == 0
        assert 0.0 < station["utilization"] <= 1.0
        # Sojourn decomposes into wait + service.
        assert station["mean_sojourn"] == pytest.approx(
            station["mean_wait"] + station["mean_service"]
        )

    def test_windows_cover_the_measured_duration(self, report):
        spec = report.scenario
        assert len(report.windows) == int(spec.duration / spec.window)

    def test_operational_laws_hold(self, report):
        # Check the interactive response-time law in its cycle-time form
        # N/X = R + Z: distribution-free, and well-conditioned even when
        # R << Z (the direct R-form divides by a near-zero quantity).  A
        # big gap means the harness mismeasured, not that a model is off.
        spec = report.scenario
        cycle_measured = spec.clients / report.stable["throughput"]
        cycle_law = report.stable["latency"]["mean"] + spec.think_time
        assert cycle_measured == pytest.approx(cycle_law, rel=0.10)

    def test_report_serializes_to_plain_json(self, report):
        import json

        payload = json.dumps(report.to_dict())
        assert PRESETS["smoke"].name in payload

    def test_summary_lines_mention_the_key_numbers(self, report):
        text = "\n".join(report.summary_lines())
        assert "closed mmn" in text
        assert "stable windows" in text


class TestDeterminism:
    def test_same_seed_reproduces_the_report(self, report):
        again = run_scenario(PRESETS["smoke"])
        assert again.to_dict() == report.to_dict()

    def test_different_seed_changes_the_trace(self, report):
        other = run_scenario(PRESETS["smoke"].replace(seed=43))
        assert other.to_dict() != report.to_dict()


class TestTelemetryFeed:
    def test_registry_receives_load_metrics(self):
        registry = MetricsRegistry()
        run_scenario(PRESETS["smoke"], registry=registry)
        assert registry.histograms_named("loadgen.window.throughput")
        assert registry.histograms_named("loadgen.window.latency")
        assert registry.histograms_named("midas.pipeline.sojourn")
        assert registry.counter_total("midas.pipeline.completed") > 0
