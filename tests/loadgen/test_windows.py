"""Windowed-statistics tests: bucketing, stable spans, aggregation."""

import pytest

from repro.loadgen.windows import (
    Window,
    WindowedCollector,
    aggregate,
    percentile,
    stable_span,
)
from repro.util.clock import ManualClock


@pytest.fixture
def clock():
    return ManualClock()


class TestPercentile:
    def test_empty_returns_none(self):
        assert percentile([], 0.5) is None

    def test_single_value(self):
        assert percentile([7.0], 0.5) == 7.0
        assert percentile([7.0], 0.99) == 7.0

    def test_nearest_rank(self):
        values = [float(v) for v in range(1, 11)]  # 1..10
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 0.5) == 5.0  # round(0.5 * 9) = 4 -> values[4]
        assert percentile(values, 1.0) == 10.0

    def test_unsorted_input(self):
        assert percentile([3.0, 1.0, 2.0], 1.0) == 3.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)


class TestCollector:
    def test_records_before_begin_are_dropped(self, clock):
        collector = WindowedCollector(clock, window=1.0)
        collector.record("install", 0.1)
        assert not collector.armed
        assert collector.finalize() == []

    def test_completions_bucket_by_time(self, clock):
        collector = WindowedCollector(clock, window=1.0)
        collector.begin()
        collector.record("install", 0.1)
        clock.advance(0.5)
        collector.record("renew", 0.2)
        clock.advance(1.0)  # t=1.5 -> window 1
        collector.record("install", 0.3)
        windows = collector.finalize()
        assert len(windows) == 2
        assert windows[0].completions == 2
        assert windows[0].per_op == {"install": 1, "renew": 1}
        assert windows[1].completions == 1

    def test_windows_measured_from_begin_not_zero(self, clock):
        clock.advance(10.0)
        collector = WindowedCollector(clock, window=2.0)
        collector.begin()
        clock.advance(1.0)
        collector.record("install", 0.1)
        (window,) = collector.finalize()
        assert window.start == 10.0
        assert window.end == 12.0

    def test_errors_counted_separately(self, clock):
        collector = WindowedCollector(clock, window=1.0)
        collector.begin()
        collector.record("install", 0.1, ok=True)
        collector.record("install", 5.0, ok=False)
        (window,) = collector.finalize()
        assert window.completions == 1
        assert window.errors == 1
        assert window.latencies == [0.1]  # error latency excluded

    def test_finalize_fills_gaps_with_empty_windows(self, clock):
        collector = WindowedCollector(clock, window=1.0)
        collector.begin()
        collector.record("install", 0.1)
        clock.advance(3.5)
        collector.record("install", 0.1)
        windows = collector.finalize()
        assert [w.completions for w in windows] == [1, 0, 0, 1]
        assert windows[2].throughput == 0.0

    def test_samples_and_snapshot_attach_to_current_window(self, clock):
        collector = WindowedCollector(clock, window=1.0)
        collector.begin()
        collector.sample({"depth": 3.0})
        collector.snapshot({"completed": 17.0})
        (window,) = collector.finalize()
        assert window.samples == {"depth": 3.0}
        assert window.snapshot == {"completed": 17.0}

    def test_non_positive_window_rejected(self, clock):
        with pytest.raises(ValueError):
            WindowedCollector(clock, window=0.0)

    def test_throughput_is_per_second(self, clock):
        collector = WindowedCollector(clock, window=2.0)
        collector.begin()
        for _ in range(6):
            collector.record("install", 0.1)
        (window,) = collector.finalize()
        assert window.throughput == pytest.approx(3.0)


class TestStableSpan:
    def test_flat_run_is_fully_stable(self):
        assert stable_span([10.0] * 6) == (0, 6)

    def test_ramp_up_is_excluded(self):
        values = [1.0, 4.0, 9.9, 10.0, 10.1, 9.9, 10.0]
        first, last = stable_span(values)
        assert first == 2
        assert last == 7

    def test_no_qualifying_span_returns_empty(self):
        # Monotone doubling: no 4-window run stays within 15% of median.
        assert stable_span([1.0, 2.0, 4.0, 8.0, 16.0]) == (0, 0)

    def test_too_few_windows_returns_empty(self):
        assert stable_span([10.0, 10.0], min_windows=4) == (0, 0)

    def test_min_windows_one_accepts_single_window(self):
        assert stable_span([5.0], min_windows=1) == (0, 1)

    def test_all_zero_run_counts_as_stable(self):
        assert stable_span([0.0] * 5) == (0, 5)

    def test_zero_median_span_with_nonzero_value_rejected(self):
        # median 0 but one non-zero value: not a stable all-idle span.
        assert stable_span([0.0, 0.0, 0.0, 7.0], min_windows=4) == (0, 0)

    def test_longest_span_wins(self):
        values = [10.0] * 4 + [100.0] + [20.0] * 6
        assert stable_span(values) == (5, 11)

    def test_bad_min_windows_rejected(self):
        with pytest.raises(ValueError):
            stable_span([1.0], min_windows=0)


class TestAggregate:
    def make_window(self, index, completions, latencies, errors=0):
        window = Window(index, float(index), float(index + 1))
        window.completions = completions
        window.errors = errors
        window.latencies = list(latencies)
        window.per_op = {"install": completions}
        return window

    def test_empty_span_aggregate(self):
        result = aggregate([], (0, 0))
        assert result["windows"] == 0
        assert result["throughput"] == 0.0
        assert result["latency"] is None

    def test_aggregate_over_span_only(self):
        windows = [
            self.make_window(0, 1, [9.0]),  # outside span
            self.make_window(1, 4, [0.1, 0.2, 0.3, 0.4]),
            self.make_window(2, 4, [0.1, 0.1, 0.2, 0.2], errors=1),
        ]
        result = aggregate(windows, (1, 3))
        assert result["windows"] == 2
        assert result["completions"] == 8
        assert result["errors"] == 1
        assert result["throughput"] == pytest.approx(4.0)
        assert result["per_op"] == {"install": 8}
        assert result["latency"]["mean"] == pytest.approx(0.2)
        assert result["latency"]["max"] == 0.4
        assert 9.0 not in [result["latency"]["p99"]]

    def test_throughput_min_max(self):
        windows = [
            self.make_window(0, 2, [0.1, 0.1]),
            self.make_window(1, 6, [0.1] * 6),
        ]
        result = aggregate(windows, (0, 2))
        assert result["throughput_min"] == pytest.approx(2.0)
        assert result["throughput_max"] == pytest.approx(6.0)
