"""Load-harness health adoption: the plane rides every run, reports in
the LoadReport, and honors a caller-supplied plane instance."""

from __future__ import annotations

import pytest

from repro.loadgen.harness import load_health_plane, run_scenario
from repro.loadgen.scenario import Scenario


@pytest.fixture(scope="module")
def scenario() -> Scenario:
    return Scenario(
        name="health-smoke", clients=8, duration=12.0, warmup=3.0, seed=11
    )


class TestLoadHealth:
    def test_report_carries_health_verdict(self, scenario):
        report = run_scenario(scenario)
        assert report.health is not None
        assert report.health["overall"] == "healthy"
        slos = {s["name"] for s in report.health["slos"]}
        assert slos == {"pipeline-availability", "pipeline-latency"}

    def test_health_false_disables_the_plane(self, scenario):
        report = run_scenario(scenario, health=False)
        assert report.health is None

    def test_caller_supplied_plane_is_honored(self, scenario):
        plane = load_health_plane(scenario)
        report = run_scenario(scenario, health=plane)
        # The tower uses this to inspect rollups after the run: the very
        # plane we handed in saw the traffic.
        assert report.health is not None
        slo = next(
            s
            for s in plane.engine.slos
            if s.name == "pipeline-availability"
        )
        assert slo.good_total > 0
        assert plane.book.series("pipeline-errors")
        assert plane.ticks > 0

    def test_plane_windows_scale_to_scenario(self, scenario):
        plane = load_health_plane(scenario)
        for slo in plane.engine.slos:
            for pair in slo.pairs:
                assert pair.short_window >= 2 * scenario.window
                assert pair.long_window <= max(
                    scenario.duration, 4 * scenario.window
                )
