"""Scenario spec validation and (de)serialization tests."""

import json

import pytest

from repro.errors import SimulationError
from repro.loadgen.scenario import OPERATIONS, PRESETS, Scenario


class TestValidation:
    def test_default_scenario_is_valid(self):
        Scenario().validate()

    @pytest.mark.parametrize(
        "changes",
        [
            {"clients": 0},
            {"think_time": -0.1},
            {"think_distribution": "uniform"},
            {"duration": 0.0},
            {"warmup": -1.0},
            {"window": 0.0},
            {"window": 100.0, "duration": 10.0},
            {"catalog_size": 0},
            {"mix": {"teleport": 1.0}},
            {"mix": {"install": -0.5, "renew": 1.0}},
            {"mix": {"install": 0.0}},
            {"op_timeout": 0.0},
            {"workers": 0},
        ],
    )
    def test_bad_specs_rejected(self, changes):
        with pytest.raises(SimulationError):
            Scenario(**changes).validate()

    def test_presets_all_validate(self):
        for name, preset in PRESETS.items():
            assert preset.validate().name == name

    def test_operations_cover_default_mix(self):
        assert set(Scenario().mix) <= set(OPERATIONS)


class TestMix:
    def test_normalized_mix_sums_to_one(self):
        scenario = Scenario(mix={"install": 3.0, "renew": 1.0})
        mix = scenario.normalized_mix()
        assert sum(mix.values()) == pytest.approx(1.0)
        assert mix["install"] == pytest.approx(0.75)

    def test_normalized_mix_drops_zero_weights(self):
        scenario = Scenario(mix={"install": 1.0, "revoke": 0.0})
        assert set(scenario.normalized_mix()) == {"install"}


class TestSerialization:
    def test_round_trip_preserves_everything(self):
        original = PRESETS["mmn"]
        assert Scenario.from_dict(original.to_dict()) == original

    def test_from_dict_rejects_unknown_fields(self):
        data = Scenario().to_dict()
        data["velocity"] = 3
        with pytest.raises(SimulationError, match="velocity"):
            Scenario.from_dict(data)

    def test_from_dict_validates(self):
        data = Scenario().to_dict()
        data["clients"] = 0
        with pytest.raises(SimulationError):
            Scenario.from_dict(data)

    def test_from_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(Scenario(name="disk", clients=3).to_dict()))
        loaded = Scenario.from_file(path)
        assert loaded.name == "disk"
        assert loaded.clients == 3

    def test_replace_returns_modified_copy(self):
        base = Scenario()
        tweaked = base.replace(clients=99)
        assert tweaked.clients == 99
        assert base.clients != 99

    def test_pipeline_config_mirrors_scenario(self):
        scenario = Scenario(workers=3, dispatch="rr", service_time=0.5, seed=11)
        config = scenario.pipeline_config()
        assert config.workers == 3
        assert config.dispatch == "rr"
        assert config.service_time == 0.5
        assert config.seed == 11
