"""Queueing-model tests against hand-computed and identity values."""

import math

import pytest

from repro.loadgen.analysis import (
    closed_mmn,
    erlang_c,
    interactive_response_time,
    littles_law,
    mm1_metrics,
    mmn_metrics,
    operational_checks,
    saturation_point,
    utilization_law,
)


class TestOperationalLaws:
    def test_utilization_law(self):
        assert utilization_law(10.0, 0.05) == pytest.approx(0.5)
        assert utilization_law(10.0, 0.05, servers=2) == pytest.approx(0.25)

    def test_utilization_law_rejects_no_servers(self):
        with pytest.raises(ValueError):
            utilization_law(1.0, 1.0, servers=0)

    def test_littles_law(self):
        assert littles_law(4.0, 0.5) == pytest.approx(2.0)

    def test_interactive_response_time(self):
        # N=10, X=8/s, Z=1s -> R = 10/8 - 1 = 0.25
        assert interactive_response_time(10, 8.0, 1.0) == pytest.approx(0.25)

    def test_interactive_response_time_zero_throughput(self):
        assert interactive_response_time(10, 0.0, 1.0) == math.inf

    def test_operational_checks_consistent_measurement(self):
        # A perfectly law-consistent measurement has zero gap.
        clients, think, x = 10, 1.0, 8.0
        r = clients / x - think
        checks = operational_checks(
            clients=clients,
            think_time=think,
            throughput=x,
            response_time=r,
            service_time=0.1,
            servers=2,
        )
        assert checks["response_time_gap"] == pytest.approx(0.0)
        assert checks["utilization"] == pytest.approx(0.4)
        assert checks["population_in_system"] == pytest.approx(x * r)


class TestMM1:
    def test_textbook_half_load(self):
        # rho=0.5: R = S/(1-rho) = 2S, L = 1, Lq = 0.5
        metrics = mm1_metrics(5.0, 0.1)
        assert metrics["rho"] == pytest.approx(0.5)
        assert metrics["response_time"] == pytest.approx(0.2)
        assert metrics["number_in_system"] == pytest.approx(1.0)
        assert metrics["queue_length"] == pytest.approx(0.5)

    def test_saturated_returns_infinities(self):
        metrics = mm1_metrics(10.0, 0.1)
        assert metrics["response_time"] == math.inf
        assert metrics["number_in_system"] == math.inf

    def test_bad_inputs_rejected(self):
        with pytest.raises(ValueError):
            mm1_metrics(-1.0, 0.1)
        with pytest.raises(ValueError):
            mm1_metrics(1.0, 0.0)


class TestErlangC:
    def test_single_server_equals_rho(self):
        # With n=1, P(queue) = rho for M/M/1.
        assert erlang_c(5.0, 0.1, 1) == pytest.approx(0.5)

    def test_textbook_two_servers(self):
        # a=1 Erlang, n=2: C = 1/3 (standard table value).
        assert erlang_c(10.0, 0.1, 2) == pytest.approx(1.0 / 3.0)

    def test_overloaded_queues_certainly(self):
        assert erlang_c(30.0, 0.1, 2) == 1.0

    def test_light_load_rarely_queues(self):
        assert erlang_c(1.0, 0.1, 4) < 0.001


class TestMMN:
    def test_single_server_matches_mm1(self):
        mm1 = mm1_metrics(5.0, 0.1)
        mmn = mmn_metrics(5.0, 0.1, servers=1)
        for key in ("rho", "response_time", "wait_time", "number_in_system"):
            assert mmn[key] == pytest.approx(mm1[key])

    def test_two_servers_at_one_erlang(self):
        # a=1, n=2, rho=0.5: Wq = C * S / (n (1-rho)) = (1/3) * 0.1 / 1
        metrics = mmn_metrics(10.0, 0.1, servers=2)
        assert metrics["rho"] == pytest.approx(0.5)
        assert metrics["wait_time"] == pytest.approx(0.1 / 3.0)
        assert metrics["response_time"] == pytest.approx(0.1 + 0.1 / 3.0)

    def test_more_servers_means_less_waiting(self):
        waits = [mmn_metrics(18.0, 0.1, n)["wait_time"] for n in (2, 4, 8)]
        assert waits[0] > waits[1] > waits[2]

    def test_saturated_returns_infinities(self):
        assert mmn_metrics(30.0, 0.1, 2)["response_time"] == math.inf


class TestClosedMMN:
    def test_response_time_law_identity(self):
        # R = N/X - Z must hold *exactly* in the closed chain.
        for clients, think, service, servers in [
            (4, 0.5, 0.05, 1),
            (12, 0.4, 0.04, 2),
            (32, 0.2, 0.04, 4),
        ]:
            metrics = closed_mmn(clients, think, service, servers)
            law = clients / metrics["throughput"] - think
            assert metrics["response_time"] == pytest.approx(law)

    def test_single_client_never_queues(self):
        # One client alternates think/service: X = 1/(Z+S), R = S.
        metrics = closed_mmn(1, 0.9, 0.1, 1)
        assert metrics["throughput"] == pytest.approx(1.0)
        assert metrics["response_time"] == pytest.approx(0.1)
        assert metrics["queue_length"] == pytest.approx(0.0)

    def test_heavy_population_saturates_at_service_ceiling(self):
        metrics = closed_mmn(100, 0.2, 0.04, 2)
        assert metrics["throughput"] == pytest.approx(2 / 0.04, rel=0.01)
        assert metrics["utilization"] == pytest.approx(1.0, abs=0.01)

    def test_zero_think_time(self):
        metrics = closed_mmn(5, 0.0, 0.1, 2)
        assert metrics["throughput"] == pytest.approx(20.0)
        assert metrics["number_at_station"] == 5.0
        assert metrics["queue_length"] == 3.0

    def test_population_conservation(self):
        # Station population + thinking population = N (Little's law on
        # the think station: thinking = X * Z).
        metrics = closed_mmn(12, 0.4, 0.04, 2)
        thinking = metrics["throughput"] * 0.4
        assert metrics["number_at_station"] + thinking == pytest.approx(12.0)

    def test_bad_inputs_rejected(self):
        with pytest.raises(ValueError):
            closed_mmn(0, 0.5, 0.1, 1)
        with pytest.raises(ValueError):
            closed_mmn(1, 0.5, 0.0, 1)
        with pytest.raises(ValueError):
            closed_mmn(1, -0.5, 0.1, 1)


class TestSaturationPoint:
    def test_knee_formula(self):
        # Z=0.2, S=0.04, n=2: N* = 0.24 * 2 / 0.04 = 12
        assert saturation_point(0.2, 0.04, 2) == pytest.approx(12.0)

    def test_knee_separates_regimes(self):
        knee = saturation_point(0.2, 0.04, 2)
        below = closed_mmn(int(knee) - 6, 0.2, 0.04, 2)
        above = closed_mmn(int(knee) * 3, 0.2, 0.04, 2)
        # Below the knee throughput tracks N/(Z+S); above it the ceiling.
        assert below["throughput"] == pytest.approx(6 / 0.24, rel=0.1)
        assert above["throughput"] == pytest.approx(2 / 0.04, rel=0.02)

    def test_zero_service_rejected(self):
        with pytest.raises(ValueError):
            saturation_point(0.2, 0.0, 1)
