"""CI validation gate: measured response times must match closed M/M/n.

These are the acceptance assertions from the X2 experiment, pinned to
fixed seeds so CI is deterministic: below saturation the measured mean
response time over the stable window must land within ±25% of the
closed-M/M/n prediction, and a multi-worker pipeline must push a
saturated station to materially higher throughput than one worker.
"""

import pytest

from repro.loadgen.analysis import closed_mmn
from repro.loadgen.harness import run_scenario
from repro.loadgen.scenario import PRESETS

TOLERANCE = 0.25


@pytest.fixture(scope="module")
def mmn_report():
    return run_scenario(PRESETS["mmn"])


class TestModelValidation:
    def test_run_stabilizes(self, mmn_report):
        first, last = mmn_report.span
        assert last - first >= 4
        assert mmn_report.overall["errors"] == 0

    def test_prediction_is_below_saturation(self, mmn_report):
        # The gate only makes sense below the knee — guard the preset.
        assert mmn_report.predicted["utilization"] < 0.8

    def test_response_time_within_25_percent_of_closed_mmn(self, mmn_report):
        gap = mmn_report.model_gap
        assert gap is not None
        assert gap <= TOLERANCE, (
            f"measured R {mmn_report.stable['latency']['mean']:.4f}s vs "
            f"predicted {mmn_report.predicted['response_time']:.4f}s "
            f"({gap * 100:.1f}% > {TOLERANCE * 100:.0f}%)"
        )

    def test_throughput_within_25_percent_of_closed_mmn(self, mmn_report):
        measured = mmn_report.stable["throughput"]
        predicted = mmn_report.predicted["throughput"]
        assert abs(measured - predicted) / predicted <= TOLERANCE

    def test_station_utilization_tracks_prediction(self, mmn_report):
        measured = mmn_report.station["utilization"]
        predicted = mmn_report.predicted["utilization"]
        assert abs(measured - predicted) / predicted <= TOLERANCE


class TestMultiWorkerSpeedup:
    def test_workers_raise_saturated_throughput(self):
        # Saturated station (N=32, Z=0.2, S=0.04): one worker caps at
        # 1/S = 25 op/s; four workers must beat 2.5x that.
        base = PRESETS["saturate"].replace(duration=30.0, warmup=6.0)
        single = run_scenario(base)
        quad = run_scenario(base.replace(workers=4, name="saturate-w4"))
        ceiling = 1.0 / base.service_time
        assert single.stable["throughput"] == pytest.approx(ceiling, rel=0.10)
        assert quad.stable["throughput"] > 2.5 * single.stable["throughput"]

    def test_saturated_throughput_matches_model_too(self):
        # Even at saturation the *closed* model stays exact (unlike the
        # open M/M/1, which predicts infinity).
        report = run_scenario(PRESETS["saturate"].replace(duration=30.0, warmup=6.0))
        predicted = closed_mmn(32, 0.2, 0.04, 1)
        measured = report.stable["throughput"]
        assert abs(measured - predicted["throughput"]) / predicted["throughput"] < 0.10
