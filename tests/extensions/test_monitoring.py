"""Hardware monitoring extension tests (Fig. 3b / Fig. 5)."""

import pytest

from repro.aop.sandbox import AspectSandbox, Capability, SandboxPolicy, SystemGateway
from repro.aop.vm import ProseVM
from repro.extensions.monitoring import HwMonitoring
from repro.midas.remote import ServiceRef
from repro.midas.scheduler import SchedulerService
from repro.robot.hardware import Motor
from repro.robot.rcx import RCXBrick

from tests.support import fresh_class


class FakeCaller:
    """A RemoteCaller stand-in capturing posts."""

    def __init__(self):
        self.posts = []

    def post(self, ref, body):
        self.posts.append((ref, body))


@pytest.fixture
def rig(sim, vm):
    # The real Motor class is instrumented; the vm fixture restores it.
    motor_cls = Motor
    vm.load_class(motor_cls)
    caller = FakeCaller()
    aspect = HwMonitoring(
        "robot:1:1", ServiceRef("base", "store.append"), flush_interval=1.0
    )
    sandbox = AspectSandbox(SandboxPolicy.permissive(), aspect.name)
    gateway = SystemGateway(
        {
            Capability.NETWORK: caller,
            Capability.CLOCK: sim.clock,
            Capability.SCHEDULER: SchedulerService(sim),
        },
        sandbox,
    )
    aspect.bind(gateway)
    vm.insert(aspect, sandbox=sandbox)
    return vm, motor_cls, aspect, caller


class TestCapture:
    def test_motor_commands_captured(self, sim, rig):
        _, motor_cls, aspect, _ = rig
        motor = motor_cls("m.x")
        motor.rotate(30.0)
        assert aspect.records_captured >= 1
        rotations = [r for r in aspect._buffer if r.command == "rotate"]
        assert rotations and rotations[0].args == (30.0,)
        assert rotations[0].device_id == "m.x"
        assert rotations[0].robot_id == "robot:1:1"

    def test_record_time_from_clock(self, sim, rig):
        _, motor_cls, aspect, _ = rig
        motor = motor_cls("m.x")
        sim.run_for(5.0)
        motor.rotate(1.0)
        rotations = [r for r in aspect._buffer if r.command == "rotate"]
        assert rotations[-1].time == 5.0


class TestAsyncShipping:
    def test_flush_timer_ships_batches(self, sim, rig):
        _, motor_cls, aspect, caller = rig
        motor = motor_cls("m.x")
        motor.rotate(1.0)
        motor.rotate(2.0)
        assert caller.posts == []  # buffered locally first
        sim.run_for(1.5)
        assert len(caller.posts) == 1
        ref, body = caller.posts[0]
        assert ref.operation == "store.append"
        assert len(body["records"]) >= 2
        assert aspect.pending == 0

    def test_no_posts_when_idle(self, sim, rig):
        _, _, _, caller = rig
        sim.run_for(5.0)
        assert caller.posts == []

    def test_shutdown_performs_final_flush(self, sim, rig):
        _, motor_cls, aspect, caller = rig
        motor_cls("m.x").rotate(9.0)
        aspect.shutdown()
        assert len(caller.posts) == 1
        assert aspect.pending == 0
        # timer stopped: no further posts
        sim.run_for(10.0)
        assert len(caller.posts) == 1

    def test_counts(self, sim, rig):
        _, motor_cls, aspect, _ = rig
        motor = motor_cls("m.x")
        for _ in range(5):
            motor.rotate(1.0)
        sim.run_for(2.0)
        assert aspect.records_shipped >= 5


class TestScope:
    def test_only_motor_classes_monitored(self, sim, rig):
        vm, _, aspect, _ = rig
        other = fresh_class()
        vm.load_class(other)
        before = aspect.records_captured
        other().start()
        assert aspect.records_captured == before

    def test_monitors_rcx_driven_motors(self, sim, rig):
        from repro.robot.rcx import HardwareMacro

        vm, motor_cls, aspect, caller = rig
        rcx = RCXBrick("rcx")
        rcx.attach_motor("A", motor_cls("m.a"))
        rcx.execute(HardwareMacro("A", "rotate", (15.0,)))
        sim.run_for(2.0)
        shipped = [r for _, body in caller.posts for r in body["records"]]
        assert any(r.device_id == "m.a" and r.command == "rotate" for r in shipped)
