"""Movement-control extension tests (§4.5)."""

import pytest

from repro.errors import MovementDeniedError
from repro.extensions.control import ForbiddenRegion, MovementControl
from repro.robot.plotter import Plotter, build_plotter


@pytest.fixture
def plotter(vm):
    vm.load_class(Plotter)
    return build_plotter("robot:1:1")


@pytest.fixture
def control(vm, plotter):
    aspect = MovementControl(
        [ForbiddenRegion(40, 40, 60, 60, label="keep-out")]
    )
    vm.insert(aspect)
    return aspect


class TestForbiddenRegion:
    def test_contains(self):
        region = ForbiddenRegion(0, 0, 10, 10)
        assert region.contains(5, 5)
        assert region.contains(0, 10)
        assert not region.contains(11, 5)


class TestMovementControl:
    def test_allowed_movement_proceeds(self, plotter, control):
        plotter.move_to(10, 10)
        assert plotter.position == (10, 10)
        assert control.movements_checked == 1
        assert control.movements_denied == 0

    def test_forbidden_movement_blocked_before_hardware(self, plotter, control):
        with pytest.raises(MovementDeniedError) as info:
            plotter.move_to(50, 50)
        assert "keep-out" in str(info.value)
        assert plotter.position == (0, 0)  # carriage never moved
        assert plotter.rcx.motor("A").angle == 0.0
        assert control.movements_denied == 1

    def test_ink_kept_out_of_forbidden_region(self, plotter, control):
        plotter.pen_down()
        plotter.move_to(30, 30)
        with pytest.raises(MovementDeniedError):
            plotter.move_to(50, 50)
        plotter.move_to(30, 0)
        plotter.pen_up()
        min_x, min_y, max_x, max_y = plotter.canvas.bounding_box()
        assert max_x < 40 and max_y < 40

    def test_multiple_regions(self, vm, plotter):
        control = MovementControl(
            [ForbiddenRegion(0, 50, 10, 60), ForbiddenRegion(50, 0, 60, 10)]
        )
        vm.insert(control)
        with pytest.raises(MovementDeniedError):
            plotter.move_to(5, 55)
        with pytest.raises(MovementDeniedError):
            plotter.move_to(55, 5)
        plotter.move_to(30, 30)

    def test_withdrawal_lifts_restrictions(self, vm, plotter, control):
        vm.withdraw(control)
        plotter.move_to(50, 50)
        assert plotter.position == (50, 50)

    def test_edge_of_region_is_forbidden(self, plotter, control):
        with pytest.raises(MovementDeniedError):
            plotter.move_to(40, 40)

    def test_draw_polyline_stops_at_denial(self, plotter, control):
        with pytest.raises(MovementDeniedError):
            plotter.draw_polyline([(0, 0), (30, 30), (50, 50), (70, 70)])
        # The safe prefix was drawn.
        assert plotter.canvas.total_ink() > 0
