"""Ad-hoc transactions extension tests."""

import pytest

from repro.extensions.transactions import AdHocTransactions

from tests.support import fresh_class


class Account:
    """A toy transactional object."""

    def __init__(self):
        self.balance = 100
        self.history = 0

    def transfer(self, amount: int) -> int:
        self.balance += amount
        self.history += 1
        if self.balance < 0:
            raise ValueError("overdraft")
        return self.balance

    def deposit_twice(self, amount: int) -> None:
        self.transfer(amount)
        self.transfer(amount)

    def risky_batch(self, amount: int) -> None:
        self.deposit_twice(amount)
        raise RuntimeError("batch failed after inner commits")


@pytest.fixture
def account_cls(vm):
    cls = fresh_class(Account)
    vm.load_class(cls)
    return cls


@pytest.fixture
def tx(vm):
    transactions = AdHocTransactions(
        method_type_pattern="Account",
        method_pattern="transfer",
        state_type_pattern="Account",
    )
    vm.insert(transactions)
    return transactions


class TestCommit:
    def test_successful_method_commits(self, account_cls, tx):
        account = account_cls()
        assert account.transfer(50) == 150
        assert account.balance == 150
        assert tx.commits == 1
        assert tx.rollbacks == 0

    def test_not_in_transaction_outside_calls(self, account_cls, tx):
        account = account_cls()
        assert not tx.in_transaction
        account.transfer(1)
        assert not tx.in_transaction


class TestRollback:
    def test_exception_rolls_back_all_writes(self, account_cls, tx):
        account = account_cls()
        with pytest.raises(ValueError):
            account.transfer(-500)
        assert account.balance == 100  # restored
        assert account.history == 0  # restored too
        assert tx.rollbacks == 1
        assert tx.fields_undone == 2

    def test_writes_outside_transactions_untouched(self, account_cls, tx):
        account = account_cls()
        account.balance = 42  # plain write, no transaction open
        assert account.balance == 42
        assert tx.fields_undone == 0

    def test_new_field_deleted_on_rollback(self, vm, tx):
        class Widget:
            def assemble(self) -> None:
                self.part = "bolted"
                raise RuntimeError("assembly failure")

        vm.load_class(Widget)
        transactions = AdHocTransactions(
            method_type_pattern="Widget", state_type_pattern="Widget"
        )
        vm.insert(transactions)
        widget = Widget()
        with pytest.raises(RuntimeError):
            widget.assemble()
        assert not hasattr(widget, "part")


class TestNesting:
    def test_nested_commits_fold_into_outer(self, vm, tx):
        cls = fresh_class(Account)
        vm.load_class(cls)
        nested_tx = AdHocTransactions(
            method_type_pattern="Account",
            method_pattern="deposit_twice",
            state_type_pattern="Account",
        )
        vm.insert(nested_tx)
        account = cls()
        account.deposit_twice(10)
        assert account.balance == 120

    def test_outer_rollback_undoes_inner_commits(self, vm):
        cls = fresh_class(Account)
        vm.load_class(cls)
        transactions = AdHocTransactions(
            method_type_pattern="Account",
            method_pattern="risky_batch",
            state_type_pattern="Account",
        )
        inner = AdHocTransactions(
            method_type_pattern="Account",
            method_pattern="transfer",
            state_type_pattern="Account",
        )
        vm.insert(transactions)
        account = cls()
        with pytest.raises(RuntimeError):
            account.risky_batch(10)
        # The inner transfers succeeded, but the enclosing transaction
        # rolled the whole batch back.
        assert account.balance == 100
        assert account.history == 0
        assert transactions.rollbacks == 1
        assert inner.commits == 0  # never inserted; sanity of fixture
