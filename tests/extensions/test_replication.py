"""Replication extension + mirror hub tests (§4.5)."""

import pytest

from repro.aop.sandbox import AspectSandbox, Capability, SandboxPolicy, SystemGateway
from repro.extensions.replication import MirrorHub, ReplicationExtension
from repro.midas.remote import RemoteCaller
from repro.net.geometry import Position
from repro.net.node import NetworkNode
from repro.net.transport import Transport
from repro.robot.plotter import DrawingService, Plotter, build_plotter


@pytest.fixture
def rig(sim, network, vm):
    """Source plotter on 'robot', hub on 'base', mirror plotter on 'mirror'."""
    robot_node = network.attach(NetworkNode("robot", Position(0, 0)))
    base_node = network.attach(NetworkNode("base", Position(5, 0)))
    mirror_node = network.attach(NetworkNode("mirror", Position(0, 5)))

    robot_transport = Transport(robot_node, sim)
    base_transport = Transport(base_node, sim)
    mirror_transport = Transport(mirror_node, sim)

    hub = MirrorHub(base_transport)
    source = build_plotter("robot:1:1")
    mirror = build_plotter("robot:2:2")
    DrawingService(mirror, mirror_transport)

    vm.load_class(Plotter)
    aspect = ReplicationExtension(hub.feed_ref, robot_id="robot:1:1")
    sandbox = AspectSandbox(SandboxPolicy.permissive(), aspect.name)
    aspect.bind(
        SystemGateway({Capability.NETWORK: RemoteCaller(robot_transport)}, sandbox)
    )
    vm.insert(aspect, sandbox=sandbox)
    return hub, source, mirror, aspect


class TestReplication:
    def test_identical_mirror(self, sim, rig):
        hub, source, mirror, aspect = rig
        hub.add_mirror("mirror", scale=1.0)
        source.draw_polyline([(0, 0), (10, 0), (10, 10)])
        sim.run_for(2.0)
        assert mirror.canvas.matches(source.canvas)
        assert aspect.operations_fed > 0

    def test_scaled_mirror(self, sim, rig):
        """Replication 'at a scale different from the original' (§4.5)."""
        hub, source, mirror, _ = rig
        hub.add_mirror("mirror", scale=2.0)
        source.draw_polyline([(0, 0), (10, 0), (10, 10)])
        sim.run_for(2.0)
        assert mirror.canvas.matches(source.canvas.scaled(2.0))
        assert mirror.canvas.total_ink() == pytest.approx(
            2.0 * source.canvas.total_ink()
        )

    def test_collection_of_mirrors(self, sim, network, rig):
        hub, source, mirror, _ = rig
        second_node = network.attach(NetworkNode("mirror2", Position(5, 5)))
        second = build_plotter("robot:3:3")
        DrawingService(second, Transport(second_node, sim))
        hub.add_mirror("mirror", scale=1.0)
        hub.add_mirror("mirror2", scale=0.5)
        source.draw_polyline([(0, 0), (8, 0)])
        sim.run_for(2.0)
        assert mirror.canvas.total_ink() == pytest.approx(8.0)
        assert second.canvas.total_ink() == pytest.approx(4.0)

    def test_no_mirrors_no_traffic(self, sim, rig):
        hub, source, mirror, _ = rig
        source.draw_polyline([(0, 0), (5, 0)])
        sim.run_for(2.0)
        assert mirror.canvas.total_ink() == 0.0
        assert hub.operations_routed == 0

    def test_remove_mirror(self, sim, rig):
        hub, source, mirror, _ = rig
        hub.add_mirror("mirror")
        source.draw_polyline([(0, 0), (5, 0)])
        sim.run_for(2.0)
        hub.remove_mirror("mirror")
        source.draw_polyline([(0, 10), (5, 10)])
        sim.run_for(2.0)
        assert mirror.canvas.stroke_count() == 1

    def test_invalid_scale_rejected(self, rig):
        hub, _, _, _ = rig
        with pytest.raises(ValueError):
            hub.add_mirror("mirror", scale=0.0)

    def test_withdrawn_extension_stops_feeding(self, sim, vm, rig):
        hub, source, mirror, aspect = rig
        hub.add_mirror("mirror")
        vm.withdraw(aspect)
        source.draw_polyline([(0, 0), (5, 0)])
        sim.run_for(2.0)
        assert mirror.canvas.total_ink() == 0.0
