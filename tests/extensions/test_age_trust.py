"""Age-trust extension tests (§4.6)."""

import pytest

from repro.aop.sandbox import AspectSandbox, Capability, SandboxPolicy, SystemGateway
from repro.errors import AccessDeniedError
from repro.extensions.age_trust import AgeTrust
from repro.robot.hardware import Motor
from repro.util.clock import ManualClock


@pytest.fixture
def clock():
    return ManualClock()


@pytest.fixture
def aspect(vm, clock):
    trust = AgeTrust(min_age=10.0, type_pattern="Device", method_pattern="rotate")
    sandbox = AspectSandbox(SandboxPolicy.permissive(), trust.name)
    trust.bind(SystemGateway({Capability.CLOCK: clock}, sandbox))
    vm.load_class(Motor)
    vm.insert(trust, sandbox=sandbox)
    return trust


class TestAgeTrust:
    def test_newborn_device_denied(self, aspect):
        motor = Motor("m.x")
        with pytest.raises(AccessDeniedError):
            motor.rotate(1.0)
        assert aspect.denied == 1

    def test_birth_date_recorded_on_first_sight(self, clock, aspect):
        motor = Motor("m.x")
        clock.advance(3.0)
        with pytest.raises(AccessDeniedError):
            motor.rotate(1.0)
        assert aspect.birth_date(motor) == 3.0

    def test_aged_device_allowed(self, clock, aspect):
        motor = Motor("m.x")
        with pytest.raises(AccessDeniedError):
            motor.rotate(1.0)  # stamps birth at t=0
        clock.advance(11.0)
        motor.rotate(1.0)  # now 11s old
        assert motor.angle == 1.0

    def test_age_of(self, clock, aspect):
        motor = Motor("m.x")
        with pytest.raises(AccessDeniedError):
            motor.rotate(1.0)
        clock.advance(4.0)
        assert aspect.age_of(motor) == 4.0

    def test_unseen_device_has_no_age(self, aspect):
        assert aspect.age_of(Motor("ghost")) is None

    def test_devices_aged_independently(self, clock, aspect):
        old = Motor("old")
        with pytest.raises(AccessDeniedError):
            old.rotate(1.0)
        clock.advance(11.0)
        young = Motor("young")
        old.rotate(1.0)  # fine
        with pytest.raises(AccessDeniedError):
            young.rotate(1.0)  # just born

    def test_zero_min_age_allows_everyone(self, vm, clock):
        trust = AgeTrust(min_age=0.0, type_pattern="Device", method_pattern="rotate")
        sandbox = AspectSandbox(SandboxPolicy.permissive(), trust.name)
        trust.bind(SystemGateway({Capability.CLOCK: clock}, sandbox))
        vm.insert(trust, sandbox=sandbox)
        Motor("m").rotate(1.0)

    def test_negative_min_age_rejected(self):
        with pytest.raises(ValueError):
            AgeTrust(min_age=-1.0)
