"""Session-management extension tests."""

from repro.aop import Aspect, MethodCut, before
from repro.extensions.session import CALLER_KEY, SessionManagement


class TestSessionManagement:
    def test_local_call_has_no_caller(self, vm, engine_cls):
        seen = []

        class Reader(Aspect):
            @before(MethodCut(type="Engine", method="start"), order=50)
            def read(self, ctx):
                seen.append(ctx.session.get(CALLER_KEY))

        vm.insert(SessionManagement())
        vm.insert(Reader())
        engine_cls().start()
        assert seen == [None]

    def test_remote_caller_extracted(self, sim, network, vm, engine_cls):
        from repro.net.geometry import Position
        from repro.net.node import NetworkNode
        from repro.net.transport import Transport

        server_node = network.attach(NetworkNode("server", Position(0, 0)))
        client_node = network.attach(NetworkNode("client", Position(5, 0)))
        server = Transport(server_node, sim)
        client = Transport(client_node, sim)

        engine = engine_cls()
        server.register("engine.start", lambda sender, body: engine.start())

        seen = []

        class Reader(Aspect):
            @before(MethodCut(type="Engine", method="start"), order=50)
            def read(self, ctx):
                seen.append(ctx.session.get(CALLER_KEY))

        vm.insert(SessionManagement())
        vm.insert(Reader())
        client.request("server", "engine.start")
        sim.run_for(1.0)
        assert seen == ["client"]

    def test_runs_before_default_order_advice(self, vm, engine_cls):
        order = []

        class Later(Aspect):
            @before(MethodCut(type="Engine", method="start"))
            def late(self, ctx):
                order.append("later")

        session = SessionManagement()
        session.extract_session_orig = session.extract_session

        def tracking(ctx):
            order.append("session")
            session.extract_session_orig(ctx)

        session._instance_advices[0].callback = tracking
        engine = engine_cls()
        vm.insert(Later())
        vm.insert(session)
        engine.start()
        assert order == ["session", "later"]

    def test_pattern_restricts_joinpoints(self, vm, engine_cls):
        session = SessionManagement(type_pattern="Engine", method_pattern="start")
        vm.insert(session)
        engine = engine_cls()
        engine.start()
        engine.throttle(1)
        assert session.sessions_started == 1

    def test_counts_sessions(self, vm, engine_cls):
        session = SessionManagement()
        vm.insert(session)
        engine = engine_cls()
        engine.start()
        engine.start()
        assert session.sessions_started >= 2
