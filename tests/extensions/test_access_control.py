"""Access-control extension tests."""

import pytest

from repro.errors import AccessDeniedError
from repro.extensions.access_control import AccessControl
from repro.extensions.session import SessionManagement
from repro.net.geometry import Position
from repro.net.node import NetworkNode
from repro.net.transport import RemoteError, Transport


class TestLocalCalls:
    def test_local_calls_allowed_by_default(self, vm, engine_cls):
        engine = engine_cls()
        vm.insert(SessionManagement())
        control = AccessControl(allowed={"boss"}, type_pattern="Engine")
        vm.insert(control)
        engine.start()
        assert control.granted == 1

    def test_local_calls_denied_when_configured(self, vm, engine_cls):
        vm.insert(SessionManagement())
        control = AccessControl(allowed={"boss"}, allow_local=False)
        vm.insert(control)
        with pytest.raises(AccessDeniedError):
            engine_cls().start()
        assert control.denied == 1


class TestRemoteCalls:
    @pytest.fixture
    def rig(self, sim, network, vm, engine_cls):
        server_node = network.attach(NetworkNode("server", Position(0, 0)))
        authorized = network.attach(NetworkNode("boss", Position(5, 0)))
        intruder = network.attach(NetworkNode("mallory", Position(0, 5)))
        server = Transport(server_node, sim)
        engine = engine_cls()
        server.register("engine.start", lambda sender, body: engine.start())
        vm.insert(SessionManagement())
        control = AccessControl(allowed={"boss"}, type_pattern="Engine")
        vm.insert(control)
        return control, Transport(authorized, sim), Transport(intruder, sim), engine

    def test_authorized_caller_allowed(self, sim, rig):
        control, boss, _, engine = rig
        boss.request("server", "engine.start")
        sim.run_for(1.0)
        assert control.granted == 1
        assert engine.rpm == 800

    def test_unauthorized_caller_denied_with_exception(self, sim, rig):
        control, _, mallory, engine = rig
        errors = []
        mallory.request("server", "engine.start", on_error=errors.append)
        sim.run_for(1.0)
        assert control.denied == 1
        assert engine.rpm == 0  # application logic never ran
        assert isinstance(errors[0], RemoteError)
        assert "not authorized" in str(errors[0])


class TestImplicitDependency:
    def test_requires_session_management(self):
        assert SessionManagement in AccessControl.REQUIRES

    def test_without_session_all_calls_look_local(self, vm, engine_cls):
        # Inserted *without* its implicit dependency, the extension sees
        # no caller identity; allow_local therefore governs everything.
        engine = engine_cls()
        control = AccessControl(allowed=set(), allow_local=True)
        vm.insert(control)
        engine.start()
        assert control.granted == 1
