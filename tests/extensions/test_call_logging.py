"""Call-logging extension tests."""

from repro.extensions.call_logging import CallLogging


class TestCallLogging:
    def test_records_calls_with_args(self, vm, engine_cls):
        logging_ext = CallLogging(type_pattern="Engine")
        engine = engine_cls()
        vm.insert(logging_ext)
        engine.throttle(5)
        entries = logging_ext.entries()
        assert any(
            e.method == "throttle" and e.args == (5,) and e.cls == "Engine"
            for e in entries
        )

    def test_knows_nothing_of_the_application(self, vm):
        """Default pattern logs calls of any loaded class (§3.3)."""
        from tests.support import fresh_class

        logging_ext = CallLogging()
        vm.insert(logging_ext)
        cls = fresh_class()
        vm.load_class(cls)
        cls("e").start()
        assert logging_ext.calls_to("start") == 1
        assert logging_ext.calls_to("__init__") == 1

    def test_ring_buffer_caps_retention(self, vm, engine_cls):
        logging_ext = CallLogging(type_pattern="Engine", capacity=3)
        engine = engine_cls()
        vm.insert(logging_ext)
        for value in range(10):
            engine.throttle(value)
        assert len(logging_ext) == 3
        assert logging_ext.total_calls == 10
        assert logging_ext.entries()[-1].args == (9,)

    def test_clear_keeps_total(self, vm, engine_cls):
        logging_ext = CallLogging(type_pattern="Engine")
        engine = engine_cls()
        vm.insert(logging_ext)
        engine.start()
        logging_ext.clear()
        assert len(logging_ext) == 0
        assert logging_ext.total_calls == 1

    def test_caller_is_none_for_local_calls(self, vm, engine_cls):
        logging_ext = CallLogging(type_pattern="Engine")
        engine = engine_cls()
        vm.insert(logging_ext)
        engine.start()
        assert logging_ext.entries()[0].caller is None
