"""Orthogonal persistence extension tests."""

from repro.extensions.persistence import OrthogonalPersistence


class TestJournaling:
    def test_field_writes_journaled(self, vm, engine_cls):
        persistence = OrthogonalPersistence(type_pattern="Engine")
        vm.insert(persistence)
        engine = engine_cls("e1")
        engine.start()
        snapshot = persistence.snapshot(engine)
        assert snapshot["rpm"] == 800
        assert snapshot["engine_id"] == "e1"

    def test_latest_value_wins(self, vm, engine_cls):
        persistence = OrthogonalPersistence(type_pattern="Engine")
        vm.insert(persistence)
        engine = engine_cls()
        engine.rpm = 100
        engine.rpm = 200
        assert persistence.snapshot(engine)["rpm"] == 200

    def test_field_pattern_filters(self, vm, engine_cls):
        persistence = OrthogonalPersistence(type_pattern="Engine", field_pattern="rpm")
        vm.insert(persistence)
        engine = engine_cls()
        assert "engine_id" not in persistence.snapshot(engine)
        assert "rpm" in persistence.snapshot(engine)

    def test_keyed_by_device_id_when_present(self, vm):
        from repro.robot.hardware import Motor

        vm.load_class(Motor)
        persistence = OrthogonalPersistence(type_pattern="Motor")
        vm.insert(persistence)
        motor = Motor("m.x")
        key = persistence.key_of(motor)
        assert key == "Motor:m.x"


class TestRestore:
    def test_restore_reapplies_state(self, vm, engine_cls):
        persistence = OrthogonalPersistence(
            type_pattern="Engine", identity_attr="engine_id"
        )
        vm.insert(persistence)
        engine = engine_cls("e1")
        engine.start()
        engine.throttle(150)

        # "crash": interception stops, a fresh object with the same
        # identity is constructed, then recovered from the journal.
        vm.withdraw(persistence)
        replacement = engine_cls("e1")
        restored = persistence.restore(replacement)
        assert replacement.rpm == 950
        assert restored >= 2

    def test_restore_unknown_object_is_noop(self, vm, engine_cls):
        persistence = OrthogonalPersistence(type_pattern="Engine")
        vm.insert(persistence)
        fresh = engine_cls.__new__(engine_cls)
        assert persistence.restore(fresh) == 0

    def test_forget(self, vm, engine_cls):
        persistence = OrthogonalPersistence(type_pattern="Engine")
        vm.insert(persistence)
        engine = engine_cls("e1")
        persistence.forget(engine)
        assert persistence.snapshot(engine) == {}

    def test_journal_size(self, vm, engine_cls):
        persistence = OrthogonalPersistence(type_pattern="Engine")
        vm.insert(persistence)
        engine_cls("a")
        engine_cls("b")
        # keyed by id() fallback per instance... both journaled
        assert persistence.journal_size >= 1
        assert persistence.writes_journaled >= 4
