"""Keeps docs/extending.md honest: its worked example must really work."""

import pickle

import pytest

from repro.aop import Aspect, Capability, MethodCut, before
from repro.robot.hardware import Motor


class SpeedGovernor(Aspect):
    """The docs/extending.md worked example, verbatim in behaviour."""

    REQUIRED_CAPABILITIES = frozenset({Capability.CLOCK})
    REQUIRES = ()

    def __init__(self, max_power: int):
        super().__init__()
        self.max_power = max_power
        self.capped = 0

    @before(MethodCut(type="Motor", method="set_power", params=("int",)))
    def govern(self, ctx):
        if ctx.args and ctx.args[0] > self.max_power:
            self.capped += 1
            ctx.args = (self.max_power,)


class TestDocExample:
    def test_caps_power_locally(self, vm):
        vm.load_class(Motor)
        governor = SpeedGovernor(max_power=3)
        vm.insert(governor)
        motor = Motor("m")
        motor.set_power(7)
        assert motor.power == 3
        assert governor.capped == 1
        motor.set_power(2)
        assert motor.power == 2
        assert governor.capped == 1

    def test_survives_serialization(self):
        clone = pickle.loads(pickle.dumps(SpeedGovernor(max_power=5)))
        assert clone.max_power == 5

    def test_distributed_through_a_hall(self):
        from repro.core.platform import ProactivePlatform
        from repro.net.geometry import Position

        platform = ProactivePlatform(seed=121)
        hall = platform.create_base_station("hall", Position(0, 0))
        hall.add_extension("speed-governor", lambda: SpeedGovernor(max_power=3))
        node = platform.create_mobile_node("robot", Position(5, 0))
        node.load_class(Motor)
        try:
            platform.run_for(5.0)
            assert node.extensions() == ["speed-governor"]
            motor = Motor("m")
            motor.set_power(7)
            assert motor.power == 3
        finally:
            node.vm.unload_class(Motor)
