"""Billing extension tests."""

from repro.extensions.billing import LOCAL_PRINCIPAL, Billing
from repro.extensions.session import SessionManagement
from repro.net.geometry import Position
from repro.net.node import NetworkNode
from repro.net.transport import Transport


class TestTariff:
    def test_flat_tariff_charges_every_call(self, vm, engine_cls):
        engine = engine_cls()
        billing = Billing({"*": 0.5}, type_pattern="Engine")
        vm.insert(billing)
        engine.start()
        engine.throttle(1)
        assert billing.balance(LOCAL_PRINCIPAL) == 1.0
        assert billing.calls_billed == 2

    def test_pattern_tariff(self, vm, engine_cls):
        engine = engine_cls()
        billing = Billing({"send*": 2.0, "throttle": 0.1}, type_pattern="Engine")
        vm.insert(billing)
        engine.send_telemetry(b"x")
        engine.throttle(1)
        engine.start()  # untariffed
        assert billing.balance(LOCAL_PRINCIPAL) == 2.1
        assert billing.calls_billed == 2

    def test_first_matching_pattern_wins(self, vm):
        billing = Billing({"send*": 2.0, "*": 9.0})
        assert billing.price_of("send_telemetry") == 2.0
        assert billing.price_of("start") == 9.0


class TestAccounts:
    def test_remote_callers_billed_individually(self, sim, network, vm, engine_cls):
        server_node = network.attach(NetworkNode("server", Position(0, 0)))
        alice = Transport(network.attach(NetworkNode("alice", Position(5, 0))), sim)
        bob = Transport(network.attach(NetworkNode("bob", Position(0, 5))), sim)
        server = Transport(server_node, sim)
        engine = engine_cls()
        server.register("engine.start", lambda sender, body: engine.start())

        vm.insert(SessionManagement())
        billing = Billing({"start": 1.0}, type_pattern="Engine")
        vm.insert(billing)

        alice.request("server", "engine.start")
        alice.request("server", "engine.start")
        bob.request("server", "engine.start")
        sim.run_for(1.0)
        assert billing.invoice() == {"alice": 2.0, "bob": 1.0}

    def test_requires_session_management(self):
        assert SessionManagement in Billing.REQUIRES


class TestSettlement:
    def test_shutdown_posts_invoice(self, sim, vm, engine_cls):
        from repro.midas.remote import ServiceRef
        from repro.midas.scheduler import SchedulerService
        from repro.aop.sandbox import (
            AspectSandbox,
            Capability,
            SandboxPolicy,
            SystemGateway,
        )

        posts = []

        class FakeCaller:
            def post(self, ref, body):
                posts.append((ref, body))

        engine = engine_cls()
        billing = Billing(
            {"*": 1.0},
            type_pattern="Engine",
            settlement=ServiceRef("base", "billing.settle"),
        )
        sandbox = AspectSandbox(SandboxPolicy.permissive(), billing.name)
        billing.bind(
            SystemGateway(
                {
                    Capability.NETWORK: FakeCaller(),
                    Capability.SCHEDULER: SchedulerService(sim),
                },
                sandbox,
            )
        )
        vm.insert(billing, sandbox=sandbox)
        engine.start()
        billing.shutdown()
        assert len(posts) == 1
        assert posts[0][1]["invoice"] == {LOCAL_PRINCIPAL: 1.0}
        assert posts[0][1]["final"] is True

    def test_shutdown_without_settlement_is_quiet(self, vm, engine_cls):
        billing = Billing({"*": 1.0})
        vm.insert(billing)
        billing.shutdown()  # no gateway, no settlement: no error
