"""Encryption extension tests (the §3.1 motivating aspect)."""

import pytest

from repro.extensions.encryption import EncryptionExtension, XorCipher


class TestXorCipher:
    def test_round_trip(self):
        cipher = XorCipher(b"key")
        data = b"attack at dawn"
        assert cipher.decrypt(cipher.encrypt(data)) == data

    def test_ciphertext_differs_from_plaintext(self):
        cipher = XorCipher(b"key")
        assert cipher.encrypt(b"hello world") != b"hello world"

    def test_key_matters(self):
        data = b"secret"
        assert XorCipher(b"a").encrypt(data) != XorCipher(b"b").encrypt(data)

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            XorCipher(b"")


class TestEncryptionExtension:
    def test_send_methods_encrypted(self, vm, engine_cls):
        ext = EncryptionExtension(b"hall-key")
        engine = engine_cls()
        vm.insert(ext)
        plaintext = b"telemetry data"
        on_the_wire = engine.send_telemetry(plaintext)
        assert on_the_wire != plaintext
        assert ext.cipher.decrypt(on_the_wire) == plaintext
        assert ext.encrypted == 1

    def test_receive_methods_decrypted(self, vm, engine_cls):
        ext = EncryptionExtension(b"hall-key")
        engine = engine_cls()
        vm.insert(ext)
        ciphertext = ext.cipher.encrypt(b"command")
        assert engine.receive_command(ciphertext) == b"command"
        assert ext.decrypted == 1

    def test_paper_example_end_to_end(self, vm, engine_cls):
        """Encrypt on send, decrypt on receive: a transparent channel."""
        ext = EncryptionExtension(b"shared")
        engine = engine_cls()
        vm.insert(ext)
        wire = engine.send_telemetry(b"position=42")
        assert engine.receive_command(wire) == b"position=42"

    def test_non_send_methods_untouched(self, vm, engine_cls):
        ext = EncryptionExtension(b"hall-key")
        engine = engine_cls()
        vm.insert(ext)
        engine.start()
        assert ext.encrypted == 0

    def test_extra_args_preserved(self, vm, engine_cls):
        ext = EncryptionExtension(b"hall-key")
        engine = engine_cls()
        vm.insert(ext)
        engine.send_telemetry(b"x", 5)
        assert engine.log[-1] == "telemetry"

    def test_withdrawal_restores_plaintext(self, vm, engine_cls):
        ext = EncryptionExtension(b"hall-key")
        engine = engine_cls()
        vm.insert(ext)
        vm.withdraw(ext)
        assert engine.send_telemetry(b"clear") == b"clear"
