"""Fixtures for extension tests."""

from __future__ import annotations

import pytest

from repro.aop.vm import ProseVM

from tests.support import fresh_class


@pytest.fixture
def vm():
    """A VM that restores every class it instrumented at teardown."""
    machine = ProseVM()
    yield machine
    for cls in list(machine.loaded_classes):
        machine.unload_class(cls)


@pytest.fixture
def engine_cls(vm):
    """A freshly instrumented Engine clone."""
    cls = fresh_class()
    vm.load_class(cls)
    return cls
