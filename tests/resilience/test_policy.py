"""RetryPolicy math."""

import random

import pytest

from repro.resilience import NO_RETRY, RetryPolicy


class TestBackoff:
    def test_exponential_growth_without_jitter(self):
        policy = RetryPolicy(initial_backoff=0.5, multiplier=2.0, jitter=0.0)
        rng = random.Random(0)
        assert policy.backoff(1, rng) == 0.5
        assert policy.backoff(2, rng) == 1.0
        assert policy.backoff(3, rng) == 2.0

    def test_capped_at_max_backoff(self):
        policy = RetryPolicy(
            initial_backoff=1.0, multiplier=10.0, max_backoff=3.0, jitter=0.0
        )
        assert policy.backoff(5, random.Random(0)) == 3.0

    def test_jitter_subtracts_bounded_fraction(self):
        policy = RetryPolicy(initial_backoff=1.0, multiplier=1.0, jitter=0.5)
        rng = random.Random(7)
        for attempt in range(1, 30):
            delay = policy.backoff(attempt, rng)
            assert 0.5 <= delay <= 1.0

    def test_jitter_is_deterministic_per_seed(self):
        policy = RetryPolicy(jitter=0.5)
        a = [policy.backoff(i, random.Random(3)) for i in range(1, 5)]
        b = [policy.backoff(i, random.Random(3)) for i in range(1, 5)]
        assert a == b

    def test_attempt_must_be_positive(self):
        with pytest.raises(ValueError):
            RetryPolicy().backoff(0, random.Random(0))


class TestLimits:
    def test_max_attempts_bounds_retries(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.allows_retry(2, elapsed=0.0, backoff=0.1)
        assert not policy.allows_retry(3, elapsed=0.0, backoff=0.1)

    def test_deadline_bounds_elapsed_plus_backoff(self):
        policy = RetryPolicy(max_attempts=100, deadline=5.0)
        assert policy.allows_retry(1, elapsed=3.0, backoff=1.0)
        assert not policy.allows_retry(1, elapsed=4.5, backoff=0.6)

    def test_with_deadline_returns_new_policy(self):
        policy = RetryPolicy()
        bounded = policy.with_deadline(7.5)
        assert bounded.deadline == 7.5
        assert policy.deadline is None
        assert bounded.max_attempts == policy.max_attempts

    def test_at_least_one_attempt_required(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)

    def test_jitter_must_be_a_fraction(self):
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)


class TestWorstCase:
    def test_sums_timeouts_and_backoffs(self):
        policy = RetryPolicy(
            max_attempts=3, initial_backoff=1.0, multiplier=2.0, jitter=0.0
        )
        # 3 × 2.0 s timeouts + backoffs of 1.0 and 2.0.
        assert policy.worst_case_duration(2.0) == pytest.approx(9.0)

    def test_deadline_caps_worst_case(self):
        policy = RetryPolicy(max_attempts=50, deadline=10.0)
        assert policy.worst_case_duration(2.0) <= 12.0


class TestNoRetry:
    def test_single_attempt(self):
        assert NO_RETRY.max_attempts == 1
        assert not NO_RETRY.allows_retry(1, elapsed=0.0, backoff=0.0)

    def test_zero_backoff(self):
        assert NO_RETRY.backoff(1, random.Random(0)) == 0.0
