"""ResilientClient: retries, deadlines, breaker integration."""

import pytest

from repro.errors import CircuitOpenError, RequestTimeout
from repro.net.geometry import Position
from repro.net.node import NetworkNode
from repro.net.transport import RemoteError, Transport
from repro.resilience import BreakerState, ResilientClient, RetryPolicy


@pytest.fixture
def world(sim, network):
    a = network.attach(NetworkNode("a", Position(0, 0)))
    b = network.attach(NetworkNode("b", Position(5, 0)))
    return Transport(a, sim), Transport(b, sim)


def make_client(sim, transport, **kwargs):
    kwargs.setdefault("policy", RetryPolicy(max_attempts=4, initial_backoff=0.2))
    return ResilientClient(transport, sim, **kwargs)


class TestRetries:
    def test_clean_call_is_plain_request(self, sim, world):
        transport, server = world
        server.register("ping", lambda sender, body: "pong")
        client = make_client(sim, transport)
        replies = []
        client.call("b", "ping", on_reply=replies.append)
        sim.run()
        assert replies == ["pong"]
        assert client.retries == 0

    def test_retry_succeeds_after_transient_outage(self, sim, network, world):
        transport, server = world
        server.register("ping", lambda sender, body: "pong")
        network.partition("a", "b")
        sim.schedule_at(2.0, network.heal, "a", "b")
        client = make_client(sim, transport)
        replies, errors = [], []
        client.call(
            "b", "ping", on_reply=replies.append, on_error=errors.append, timeout=1.0
        )
        sim.run()
        assert replies == ["pong"]
        assert errors == []
        assert client.retries >= 1

    def test_exhaustion_reports_last_underlying_error(self, sim, network, world):
        transport, _ = world
        network.partition("a", "b")
        client = make_client(
            sim, transport, policy=RetryPolicy(max_attempts=2, initial_backoff=0.1)
        )
        errors = []
        client.call("b", "ping", on_error=errors.append, timeout=0.5)
        sim.run()
        assert isinstance(errors[0], RequestTimeout)
        assert client.exhausted == 1
        assert transport.requests_sent == 2  # initial + one retry

    def test_remote_errors_not_retried_by_default(self, sim, world):
        transport, server = world

        def broken(sender, body):
            raise ValueError("boom")

        server.register("boom", broken)
        client = make_client(sim, transport)
        errors = []
        client.call("b", "boom", on_error=errors.append)
        sim.run()
        assert isinstance(errors[0], RemoteError)
        assert client.retries == 0

    def test_remote_errors_retried_when_policy_opts_in(self, sim, world):
        transport, server = world
        calls = []

        def flaky(sender, body):
            calls.append(sender)
            if len(calls) < 3:
                raise ValueError("transient")
            return "ok"

        server.register("flaky", flaky)
        client = make_client(
            sim,
            transport,
            policy=RetryPolicy(
                max_attempts=5, initial_backoff=0.1, retry_remote_errors=True
            ),
        )
        replies = []
        client.call("b", "flaky", on_reply=replies.append)
        sim.run()
        assert replies == ["ok"]
        assert len(calls) == 3

    def test_deadline_stops_retrying(self, sim, network, world):
        transport, _ = world
        network.partition("a", "b")
        client = make_client(
            sim,
            transport,
            policy=RetryPolicy(
                max_attempts=100, initial_backoff=0.5, jitter=0.0, deadline=4.0
            ),
        )
        errors = []
        client.call("b", "ping", on_error=errors.append, timeout=1.0)
        sim.run()
        assert errors
        # Gave up within (roughly) the deadline, not after 100 attempts.
        assert sim.now < 8.0
        assert transport.requests_sent < 10

    def test_each_retry_is_a_fresh_request_id(self, sim, network, world):
        transport, server = world
        seen = []
        server.register("ping", lambda sender, body: "pong")
        original = transport.request

        def spying_request(destination, operation, body=None, **kwargs):
            request_id = original(destination, operation, body, **kwargs)
            seen.append(request_id)
            return request_id

        transport.request = spying_request
        network.partition("a", "b")
        sim.schedule_at(1.5, network.heal, "a", "b")
        client = make_client(sim, transport)
        client.call("b", "ping", timeout=1.0)
        sim.run()
        assert len(seen) >= 2
        assert len(set(seen)) == len(seen)


class TestBreakerIntegration:
    def test_breaker_opens_after_repeated_silence(self, sim, network, world):
        transport, _ = world
        network.partition("a", "b")
        client = make_client(
            sim,
            transport,
            policy=RetryPolicy(max_attempts=1),
            failure_threshold=3,
        )
        for i in range(4):
            sim.schedule_at(i * 2.0, client.call, "b", "ping", None, None, None, 0.5)
        sim.run()
        assert client.breaker("b").state is BreakerState.OPEN

    def test_open_breaker_rejects_locally(self, sim, network, world):
        transport, _ = world
        network.partition("a", "b")
        client = make_client(
            sim,
            transport,
            policy=RetryPolicy(max_attempts=1),
            failure_threshold=2,
            recovery_time=60.0,
        )
        errors = []
        for i in range(3):
            sim.schedule_at(
                i * 2.0,
                client.call,
                "b", "ping", None, None, errors.append, 0.5,
            )
        sent_before = None

        def snapshot():
            nonlocal sent_before
            sent_before = transport.requests_sent

        sim.schedule_at(3.9, snapshot)
        sim.run()
        # The third call was rejected without touching the wire.
        assert transport.requests_sent == sent_before
        assert client.rejected == 1
        assert isinstance(errors[-1], CircuitOpenError)

    def test_half_open_probe_closes_breaker_on_recovery(self, sim, network, world):
        transport, server = world
        server.register("ping", lambda sender, body: "pong")
        network.partition("a", "b")
        client = make_client(
            sim,
            transport,
            policy=RetryPolicy(max_attempts=1),
            failure_threshold=2,
            recovery_time=3.0,
        )
        replies = []
        for i in range(2):
            sim.schedule_at(i * 1.0, client.call, "b", "ping", None, None, None, 0.5)
        sim.schedule_at(2.0, network.heal, "a", "b")
        sim.schedule_at(
            6.0, client.call, "b", "ping", None, replies.append, None, None
        )
        sim.run()
        assert replies == ["pong"]
        assert client.breaker("b").state is BreakerState.CLOSED

    def test_remote_error_does_not_trip_breaker(self, sim, world):
        transport, server = world

        def broken(sender, body):
            raise ValueError("boom")

        server.register("boom", broken)
        client = make_client(
            sim, transport, policy=RetryPolicy(max_attempts=1), failure_threshold=1
        )
        client.call("b", "boom")
        sim.run()
        # The peer answered; the breaker must treat that as liveness.
        assert client.breaker("b").state is BreakerState.CLOSED

    def test_breaking_can_be_disabled(self, sim, network, world):
        transport, _ = world
        client = make_client(sim, transport, failure_threshold=None)
        assert client.breaker("b") is None


class TestDeterminism:
    def test_same_seeds_same_retry_schedule(self, sim, network, world):
        transport, _ = world
        network.partition("a", "b")

        def schedule(client):
            instants = []
            original = transport.request

            def spying(destination, operation, body=None, **kwargs):
                instants.append(sim.now)
                return original(destination, operation, body, **kwargs)

            transport.request = spying
            client.call("b", "ping", timeout=0.5)
            sim.run()
            transport.request = original
            return instants

        first = schedule(make_client(sim, transport, name="x"))
        second = schedule(make_client(sim, transport, name="x"))
        assert len(first) > 1
        # approx: the second run starts at a later sim.now, so the same
        # backoff deltas accumulate different float round-off.
        assert [b - a for a, b in zip(first, first[1:])] == pytest.approx(
            [b - a for a, b in zip(second, second[1:])]
        )
