"""Circuit-breaker state machine."""

import pytest

from repro.resilience import BreakerState, CircuitBreaker


@pytest.fixture
def breaker(sim):
    return CircuitBreaker("peer", sim.clock, failure_threshold=3, recovery_time=5.0)


class TestClosed:
    def test_starts_closed_and_allowing(self, breaker):
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allows()

    def test_failures_below_threshold_stay_closed(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allows()

    def test_success_resets_failure_count(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED


class TestOpen:
    def _open(self, breaker):
        for _ in range(3):
            breaker.record_failure()

    def test_opens_at_threshold(self, breaker):
        self._open(breaker)
        assert breaker.state is BreakerState.OPEN
        assert breaker.times_opened == 1

    def test_open_rejects_before_recovery_time(self, sim, breaker):
        self._open(breaker)
        sim.run_for(4.9)
        assert not breaker.allows()

    def test_half_open_after_recovery_time(self, sim, breaker):
        self._open(breaker)
        sim.run_for(5.0)
        assert breaker.allows()
        assert breaker.state is BreakerState.HALF_OPEN


class TestHalfOpen:
    def _half_open(self, sim, breaker):
        for _ in range(3):
            breaker.record_failure()
        sim.run_for(5.0)
        assert breaker.allows()  # takes the probe slot

    def test_single_probe_slot(self, sim, breaker):
        self._half_open(sim, breaker)
        assert not breaker.allows()  # probe outstanding

    def test_probe_success_closes(self, sim, breaker):
        self._half_open(sim, breaker)
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allows()

    def test_probe_failure_reopens(self, sim, breaker):
        self._half_open(sim, breaker)
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allows()
        assert breaker.times_opened == 2

    def test_reopened_breaker_waits_full_recovery_again(self, sim, breaker):
        self._half_open(sim, breaker)
        breaker.record_failure()
        sim.run_for(4.0)
        assert not breaker.allows()
        sim.run_for(1.0)
        assert breaker.allows()


def test_threshold_must_be_positive(sim):
    with pytest.raises(ValueError):
        CircuitBreaker("peer", sim.clock, failure_threshold=0)
