"""Shared fixtures."""

from __future__ import annotations

import pytest

from repro.net.network import Network
from repro.sim.kernel import Simulator


@pytest.fixture
def sim() -> Simulator:
    """A fresh discrete-event simulator."""
    return Simulator()


@pytest.fixture
def network(sim: Simulator) -> Network:
    """A deterministic radio network on ``sim``."""
    return Network(sim, seed=1234)
