"""Extension base (distribution side) tests."""

from repro.net.geometry import Position
from repro.net.mobility import WaypointMobility

from tests.support import TraceAspect


class TestDistribution:
    def test_adapted_nodes_listing(self, world):
        world.catalog.add("trace", TraceAspect)
        world.start_receiver()
        world.run(3.0)
        assert world.base.adapted_nodes() == ["device"]

    def test_extension_added_later_not_pushed_automatically(self, world):
        world.catalog.add("first", TraceAspect)
        world.start_receiver()
        world.run(3.0)
        world.catalog.add("second", TraceAspect)
        world.run(3.0)
        # Only a fresh adapt_node (or re-registration) pushes new entries.
        assert world.base.extensions_on("device") == ["first"]
        world.base.adapt_node("device")
        world.run(3.0)
        assert world.base.extensions_on("device") == ["first", "second"]

    def test_base_never_adapts_itself(self, world):
        # The base's own lookup sees only the device's adaptation service;
        # offering to itself is guarded regardless.
        world.catalog.add("trace", TraceAspect)
        world.start_receiver()
        world.run(3.0)
        assert "base" not in world.base.adapted_nodes()

    def test_keepalives_maintain_extension(self, world):
        world.catalog.add("trace", TraceAspect)
        world.start_receiver()
        world.run(60.0)  # many lease terms
        assert world.receiver.is_installed("trace")

    def test_activity_log_records_lifecycle(self, world):
        world.catalog.add("trace", TraceAspect)
        world.start_receiver()
        world.run(3.0)
        actions = [record.action for record in world.base.activity_for("device")]
        assert actions[:2] == ["offered", "accepted"]

    def test_node_loss_detected_and_logged(self, world):
        world.catalog.add("trace", TraceAspect)
        world.start_receiver()
        world.run(3.0)
        lost = []
        world.base.on_node_lost.connect(lost.append)
        mobility = WaypointMobility(world.sim, world.device_node, speed=100.0)
        mobility.go_to(Position(2000, 0))
        world.run(120.0)
        assert lost == ["device"]
        assert world.base.adapted_nodes() == []
        actions = {record.action for record in world.base.activity_for("device")}
        assert "renewed-lost" in actions or "roamed" in actions

    def test_returning_node_readapted(self, world):
        world.catalog.add("trace", TraceAspect)
        world.start_receiver()
        world.run(3.0)
        mobility = WaypointMobility(world.sim, world.device_node, speed=100.0)
        mobility.go_to(Position(2000, 0))
        world.run(120.0)
        mobility.go_to(Position(5, 0))
        world.run(120.0)
        assert world.base.adapted_nodes() == ["device"]
        assert world.receiver.is_installed("trace")

    def test_revoke_node_revokes_all(self, world):
        world.catalog.add("a", TraceAspect)
        world.catalog.add("b", TraceAspect)
        world.start_receiver()
        world.run(3.0)
        world.base.revoke_node("device")
        world.run(2.0)
        assert world.receiver.installed() == []
        assert world.base.adapted_nodes() == []
