"""Signing and trust-store tests."""

import pytest

from repro.errors import UntrustedSignerError, VerificationError
from repro.midas.trust import Signer, TrustStore


class TestSigner:
    def test_deterministic_generation(self):
        assert Signer.generate("hall").export_key() == Signer.generate("hall").export_key()

    def test_different_entities_different_keys(self):
        assert Signer.generate("a").export_key() != Signer.generate("b").export_key()

    def test_signature_depends_on_payload(self):
        signer = Signer.generate("hall")
        assert signer.sign(b"one") != signer.sign(b"two")

    def test_empty_key_rejected(self):
        with pytest.raises(VerificationError):
            Signer("x", b"")


class TestTrustStore:
    def test_verify_valid_signature(self):
        signer = Signer.generate("hall")
        store = TrustStore()
        store.trust_signer(signer)
        payload = b"extension bytes"
        store.verify("hall", payload, signer.sign(payload))  # no raise

    def test_unknown_signer_rejected(self):
        signer = Signer.generate("hall")
        store = TrustStore()
        with pytest.raises(UntrustedSignerError):
            store.verify("hall", b"data", signer.sign(b"data"))

    def test_tampered_payload_rejected(self):
        signer = Signer.generate("hall")
        store = TrustStore()
        store.trust_signer(signer)
        signature = signer.sign(b"original")
        with pytest.raises(VerificationError):
            store.verify("hall", b"tampered", signature)

    def test_wrong_signer_key_rejected(self):
        mallory = Signer.generate("mallory")
        store = TrustStore()
        store.trust_signer(Signer.generate("hall"))
        with pytest.raises(VerificationError):
            store.verify("hall", b"data", mallory.sign(b"data"))

    def test_revoke(self):
        signer = Signer.generate("hall")
        store = TrustStore()
        store.trust_signer(signer)
        store.revoke("hall")
        assert not store.trusts("hall")
        with pytest.raises(UntrustedSignerError):
            store.verify("hall", b"data", signer.sign(b"data"))

    def test_trusted_entities_listing(self):
        store = TrustStore()
        store.trust_signer(Signer.generate("b"))
        store.trust_signer(Signer.generate("a"))
        assert store.trusted_entities() == ["a", "b"]
        assert len(store) == 2
