"""Extension base watching a *remote* registrar (watch_remote).

Topology: the lookup service runs on its own infrastructure node; the
extension base is a separate node that discovers adaptable devices
through the Jini event protocol instead of co-hosting the registrar.
"""

import pytest

from repro.aop.sandbox import Capability, SandboxPolicy
from repro.aop.vm import ProseVM
from repro.discovery.client import DiscoveryClient
from repro.discovery.registrar import LookupService
from repro.discovery.service import ServiceTemplate
from repro.midas.base import ExtensionBase
from repro.midas.catalog import ExtensionCatalog
from repro.midas.receiver import AdaptationService
from repro.midas.remote import RemoteCaller
from repro.midas.scheduler import SchedulerService
from repro.midas.trust import Signer, TrustStore
from repro.net.geometry import Position
from repro.net.mobility import WaypointMobility
from repro.net.node import NetworkNode
from repro.net.transport import Transport

from tests.support import TraceAspect


@pytest.fixture
def world(sim, network):
    # Infrastructure node hosting only the registrar.
    infra = network.attach(NetworkNode("infra", Position(0, 0), 80))
    LookupService(Transport(infra, sim), sim).start()

    # The base station: no registrar of its own.
    signer = Signer.generate("hall")
    base_node = network.attach(NetworkNode("base", Position(10, 0), 80))
    base_transport = Transport(base_node, sim)
    catalog = ExtensionCatalog(signer)
    catalog.add("trace", TraceAspect)
    base = ExtensionBase(base_transport, sim, catalog)
    base_discovery = DiscoveryClient(base_transport, sim).start()
    base.watch_remote(base_discovery)

    # The device.
    device_node = network.attach(NetworkNode("device", Position(5, 5), 80))
    device_transport = Transport(device_node, sim)
    trust = TrustStore()
    trust.trust_signer(signer)
    receiver = AdaptationService(
        ProseVM(),
        device_transport,
        sim,
        trust,
        policy=SandboxPolicy.permissive(),
        services={
            Capability.NETWORK: RemoteCaller(device_transport),
            Capability.CLOCK: sim.clock,
            Capability.SCHEDULER: SchedulerService(sim),
        },
        discovery=DiscoveryClient(device_transport, sim).start(),
    ).start()
    return base, receiver, device_node


class TestRemoteWatching:
    def test_device_adapted_through_remote_registrar(self, sim, world):
        base, receiver, _ = world
        sim.run_for(10.0)
        assert receiver.is_installed("trace")
        assert base.adapted_nodes() == ["device"]

    def test_departure_noticed_via_events(self, sim, world):
        base, receiver, device_node = world
        sim.run_for(10.0)
        WaypointMobility(sim, device_node, speed=100.0).go_to(Position(2000, 0))
        sim.run_for(120.0)
        assert base.adapted_nodes() == []
        assert receiver.installed() == []

    def test_late_device_adapted_via_reconcile_or_event(self, sim, network, world):
        base, _, _ = world
        sim.run_for(10.0)
        signer = Signer.generate("hall")
        late_node = network.attach(NetworkNode("late", Position(5, -5), 80))
        late_transport = Transport(late_node, sim)
        trust = TrustStore()
        trust.trust_signer(signer)
        late = AdaptationService(
            ProseVM(),
            late_transport,
            sim,
            trust,
            policy=SandboxPolicy.permissive(),
            services={
                Capability.NETWORK: RemoteCaller(late_transport),
                Capability.CLOCK: sim.clock,
                Capability.SCHEDULER: SchedulerService(sim),
            },
            discovery=DiscoveryClient(late_transport, sim).start(),
        ).start()
        sim.run_for(20.0)
        assert late.is_installed("trace")
