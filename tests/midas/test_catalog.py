"""Extension catalog tests."""

import pytest

from repro.errors import UnknownExtensionError
from repro.midas.catalog import ExtensionCatalog
from repro.midas.trust import Signer, TrustStore

from tests.support import TraceAspect


@pytest.fixture
def catalog():
    return ExtensionCatalog(Signer.generate("hall"))


class TestCatalog:
    def test_add_and_names(self, catalog):
        catalog.add("trace", TraceAspect)
        assert catalog.names() == ["trace"]
        assert "trace" in catalog
        assert len(catalog) == 1

    def test_seal_produces_fresh_instances(self, catalog):
        catalog.add("trace", TraceAspect)
        first = catalog.seal("trace")
        second = catalog.seal("trace")
        assert first.envelope_id != second.envelope_id

    def test_sealed_envelope_opens(self, catalog):
        catalog.add("trace", TraceAspect)
        trust = TrustStore()
        trust.trust_signer(catalog.signer)
        aspect = catalog.seal("trace").open(trust)
        assert isinstance(aspect, TraceAspect)

    def test_readd_bumps_version(self, catalog):
        catalog.add("trace", TraceAspect)
        assert catalog.version_of("trace") == 1
        catalog.add("trace", lambda: TraceAspect(type_pattern="Engine"))
        assert catalog.version_of("trace") == 2
        assert catalog.seal("trace").version == 2

    def test_remove(self, catalog):
        catalog.add("trace", TraceAspect)
        catalog.remove("trace")
        assert "trace" not in catalog

    def test_remove_unknown_raises(self, catalog):
        with pytest.raises(UnknownExtensionError):
            catalog.remove("ghost")

    def test_seal_unknown_raises(self, catalog):
        with pytest.raises(UnknownExtensionError):
            catalog.seal("ghost")

    def test_factory_must_return_aspect(self, catalog):
        catalog.add("broken", lambda: object())
        with pytest.raises(UnknownExtensionError):
            catalog.seal("broken")

    def test_seal_all(self, catalog):
        catalog.add("a", TraceAspect)
        catalog.add("b", TraceAspect)
        assert [e.name for e in catalog.seal_all()] == ["a", "b"]
