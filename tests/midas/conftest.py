"""Fixtures for MIDAS protocol tests: one base station, one mobile node."""

from __future__ import annotations

import pytest

from repro.aop.sandbox import Capability, SandboxPolicy
from repro.aop.vm import ProseVM
from repro.discovery.client import DiscoveryClient
from repro.discovery.registrar import LookupService
from repro.midas.base import ExtensionBase
from repro.midas.catalog import ExtensionCatalog
from repro.midas.receiver import AdaptationService
from repro.midas.remote import RemoteCaller
from repro.midas.scheduler import SchedulerService
from repro.midas.trust import Signer, TrustStore
from repro.net.geometry import Position
from repro.net.node import NetworkNode
from repro.net.transport import Transport


class MidasWorld:
    """A wired-up base station + one adaptable device."""

    def __init__(
        self,
        sim,
        network,
        device_policy: SandboxPolicy | None = None,
        supervision=None,
        device_attributes=None,
    ):
        self.sim = sim
        self.network = network
        self.signer = Signer.generate("hall-A")

        self.base_node = network.attach(NetworkNode("base", Position(0, 0), 60))
        self.base_transport = Transport(self.base_node, sim)
        self.lookup = LookupService(self.base_transport, sim).start()
        self.catalog = ExtensionCatalog(self.signer)
        self.base = ExtensionBase(self.base_transport, sim, self.catalog)
        self.base.watch_lookup(self.lookup)

        self.device_node = network.attach(NetworkNode("device", Position(5, 0), 60))
        self.device_transport = Transport(self.device_node, sim)
        self.vm = ProseVM()
        self.trust = TrustStore()
        self.trust.trust_signer(self.signer)
        self.discovery = DiscoveryClient(self.device_transport, sim).start()
        self.receiver = AdaptationService(
            self.vm,
            self.device_transport,
            sim,
            self.trust,
            policy=device_policy or SandboxPolicy.permissive(),
            services={
                Capability.NETWORK: RemoteCaller(self.device_transport),
                Capability.CLOCK: sim.clock,
                Capability.SCHEDULER: SchedulerService(sim),
            },
            discovery=self.discovery,
            attributes=device_attributes,
            supervision=supervision,
        )

    def start_receiver(self) -> None:
        self.receiver.start()

    def run(self, seconds: float) -> None:
        self.sim.run_for(seconds)


@pytest.fixture
def world(sim, network) -> MidasWorld:
    return MidasWorld(sim, network)
