"""Transactional adaptation: all-or-nothing installs, hardened withdrawal.

A failed install of a deep implicit-dependency (REQUIRES) chain must
leave the receiver byte-identical to its pre-offer state: zero aspects
woven, zero leases, zero refcounts.  And withdrawal must run to
completion even when extension hooks throw.
"""

from __future__ import annotations

import pytest

from repro.errors import DependencyError, MidasError
from repro.midas.envelope import ExtensionEnvelope
from repro.telemetry import MetricsRegistry
from repro.telemetry import runtime as _telemetry

from tests.support import (
    CHAIN_FAIL_AT,
    BrokenShutdownAspect,
    ChainSibling,
    ChainTop,
    CyclicA,
    Engine,
    fresh_class,
)


@pytest.fixture(autouse=True)
def reset_chain_fault():
    yield
    CHAIN_FAIL_AT["target"] = None


@pytest.fixture
def registry(sim):
    reg = MetricsRegistry(clock=sim.clock)
    previous = _telemetry.install(reg)
    yield reg
    _telemetry.install(previous)


def sealed(world, name, aspect):
    return ExtensionEnvelope.seal(name, aspect, world.signer)


def receiver_state(world) -> dict:
    """Everything observable about the receiver's adaptation state."""
    return {
        "installed": sorted(ext.name for ext in world.receiver.installed()),
        "leases": len(world.receiver._leases),
        "implicit": {
            cls.__name__: count
            for cls, (aspect, count) in world.receiver._implicit.items()
        },
        "aspects": len(world.vm.aspects),
        "advised": len(world.vm.advised_joinpoints()),
    }


class TestDeepChainInstall:
    def test_three_deep_chain_installs_dependencies_first(self, world):
        world.receiver.install_envelope(sealed(world, "top", ChainTop()))
        installed = world.receiver.find("top")
        names = [type(dep).__name__ for dep in installed.implicit]
        assert names == ["ChainLeaf", "ChainMid"]  # dependencies first
        assert receiver_state(world)["implicit"] == {"ChainLeaf": 1, "ChainMid": 1}

        # All three layers observe the same interception.
        cls = fresh_class(Engine)
        world.vm.load_class(cls)
        cls().throttle(1)
        assert installed.aspect.seen == 1
        assert all(dep.seen == 1 for dep in installed.implicit)

    @pytest.mark.parametrize("fail_at", ["ChainLeaf", "ChainMid", "ChainTop"])
    def test_failure_at_any_depth_rolls_back_completely(
        self, world, registry, fail_at
    ):
        before = receiver_state(world)
        assert before == {
            "installed": [],
            "leases": 0,
            "implicit": {},
            "aspects": 0,
            "advised": 0,
        }
        CHAIN_FAIL_AT["target"] = fail_at
        with pytest.raises(RuntimeError, match="injected on_insert failure"):
            world.receiver.install_envelope(sealed(world, "top", ChainTop()))
        assert receiver_state(world) == before
        assert registry.counter_total("midas.rollbacks") == 1
        assert registry.counter_total("midas.rejections") == 1

        # The receiver is not poisoned: the same chain installs cleanly
        # once the fault is gone.
        CHAIN_FAIL_AT["target"] = None
        world.receiver.install_envelope(sealed(world, "top", ChainTop()))
        assert world.receiver.is_installed("top")

    def test_rollback_preserves_shared_dependency_refcounts(
        self, world, registry
    ):
        world.receiver.install_envelope(sealed(world, "sibling", ChainSibling()))
        assert receiver_state(world)["implicit"] == {"ChainLeaf": 1}
        survivor = world.receiver.find("sibling")
        leaf = survivor.implicit[0]

        CHAIN_FAIL_AT["target"] = "ChainMid"
        with pytest.raises(RuntimeError):
            world.receiver.install_envelope(sealed(world, "top", ChainTop()))

        # The shared leaf is still woven with its original refcount; the
        # new mid-link was retracted.
        assert receiver_state(world)["implicit"] == {"ChainLeaf": 1}
        assert world.vm.is_inserted(leaf)
        assert world.receiver.is_installed("sibling")

    def test_cyclic_requires_is_rejected_before_any_state_change(self, world):
        before = receiver_state(world)
        with pytest.raises(DependencyError, match="cyclic REQUIRES"):
            world.receiver.install_envelope(sealed(world, "cyclic", CyclicA()))
        assert receiver_state(world) == before

    def test_rejection_counts_no_rollback_when_nothing_staged(
        self, world, registry
    ):
        # A capability denial happens before any weaving: a rejection is
        # counted but no rollback event is emitted (nothing to undo).
        from repro.aop.sandbox import SandboxPolicy
        from tests.support import NetworkUsingAspect

        world.receiver.policy = SandboxPolicy.restrictive()
        with pytest.raises(MidasError):
            world.receiver.install_envelope(
                sealed(world, "needs-net", NetworkUsingAspect())
            )
        assert registry.counter_total("midas.rejections") == 1
        assert registry.counter_total("midas.rollbacks") == 0


class TestHardenedWithdrawal:
    def test_broken_shutdown_cannot_abort_lease_cleanup(self, world, registry):
        lease_id = world.receiver.install_envelope(
            sealed(world, "broken", BrokenShutdownAspect())
        )
        installed = world.receiver.find("broken")
        events = []
        world.receiver.on_withdrawn.connect(
            lambda ext, reason: events.append((ext.name, reason))
        )

        assert world.receiver.withdraw("broken")

        assert not world.receiver.is_installed("broken")
        assert lease_id not in world.receiver._leases
        assert not world.vm.is_inserted(installed.aspect)
        assert events == [("broken", "local-request")]
        assert registry.counter_value(
            "midas.withdraw_errors", node="device", stage="shutdown"
        ) == 1

    def test_stop_withdraws_everything_despite_broken_hooks(self, world):
        world.receiver.install_envelope(sealed(world, "broken", BrokenShutdownAspect()))
        world.receiver.install_envelope(sealed(world, "top", ChainTop()))
        world.receiver.stop()
        assert world.receiver.installed() == []
        assert len(world.receiver._leases) == 0
        assert world.vm.aspects == ()
