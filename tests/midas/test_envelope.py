"""Extension envelope tests."""

import pytest

from repro.errors import UntrustedSignerError, VerificationError
from repro.midas.envelope import ExtensionEnvelope
from repro.midas.trust import Signer, TrustStore

from tests.support import TraceAspect


@pytest.fixture
def signer():
    return Signer.generate("hall")


@pytest.fixture
def store(signer):
    trust = TrustStore()
    trust.trust_signer(signer)
    return trust


class TestSeal:
    def test_seal_produces_signed_payload(self, signer):
        envelope = ExtensionEnvelope.seal("trace", TraceAspect(), signer)
        assert envelope.name == "trace"
        assert envelope.signer == "hall"
        assert envelope.size > 0

    def test_capabilities_copied_from_aspect(self, signer):
        from tests.support import NetworkUsingAspect

        envelope = ExtensionEnvelope.seal("net", NetworkUsingAspect(), signer)
        assert envelope.capabilities == frozenset({"network"})

    def test_unserializable_aspect_rejected(self, signer):
        aspect = TraceAspect()
        aspect.unpicklable = lambda: None  # local function: not picklable
        with pytest.raises(VerificationError):
            ExtensionEnvelope.seal("bad", aspect, signer)


class TestOpen:
    def test_round_trip(self, signer, store):
        original = TraceAspect(type_pattern="Engine")
        envelope = ExtensionEnvelope.seal("trace", original, signer)
        clone = envelope.open(store)
        assert type(clone) is TraceAspect
        assert clone.name == original.name
        assert clone is not original

    def test_untrusted_signer_rejected_before_deserialization(self, signer):
        envelope = ExtensionEnvelope.seal("trace", TraceAspect(), signer)
        with pytest.raises(UntrustedSignerError):
            envelope.open(TrustStore())

    def test_tampered_payload_rejected(self, signer, store):
        envelope = ExtensionEnvelope.seal("trace", TraceAspect(), signer)
        forged = ExtensionEnvelope(
            name=envelope.name,
            payload=envelope.payload + b"x",
            signer=envelope.signer,
            signature=envelope.signature,
            capabilities=envelope.capabilities,
        )
        with pytest.raises(VerificationError):
            forged.open(store)

    def test_non_aspect_payload_rejected(self, signer, store):
        import pickle

        payload = pickle.dumps({"not": "an aspect"})
        envelope = ExtensionEnvelope(
            name="bogus",
            payload=payload,
            signer=signer.entity,
            signature=signer.sign(payload),
        )
        with pytest.raises(VerificationError):
            envelope.open(store)

    def test_version_carried(self, signer):
        envelope = ExtensionEnvelope.seal("trace", TraceAspect(), signer, version=7)
        assert envelope.version == 7
