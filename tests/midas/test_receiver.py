"""Adaptation service (extension receiver) tests."""

import pytest

from repro.aop.sandbox import SandboxPolicy
from repro.midas.receiver import (
    REASON_LEASE_EXPIRED,
    REASON_REPLACED,
    REASON_REVOKED,
)

from tests.midas.conftest import MidasWorld
from tests.support import Engine, TraceAspect, NetworkUsingAspect, fresh_class


class TestInstallation:
    def test_discovered_node_receives_catalog(self, world):
        world.catalog.add("trace", TraceAspect)
        world.start_receiver()
        world.run(3.0)
        assert world.receiver.is_installed("trace")
        assert world.base.extensions_on("device") == ["trace"]

    def test_installed_extension_intercepts(self, world):
        world.catalog.add("trace", lambda: TraceAspect(type_pattern="Engine"))
        cls = fresh_class()
        world.vm.load_class(cls)
        world.start_receiver()
        world.run(3.0)
        cls().start()
        installed = world.receiver.find("trace")
        assert ("start", ()) in installed.aspect.trace

    def test_on_installed_signal(self, world):
        world.catalog.add("trace", TraceAspect)
        seen = []
        world.receiver.on_installed.connect(lambda inst: seen.append(inst.name))
        world.start_receiver()
        world.run(3.0)
        assert seen == ["trace"]

    def test_reoffer_same_version_renews_not_duplicates(self, world):
        world.catalog.add("trace", TraceAspect)
        world.start_receiver()
        world.run(3.0)
        world.base.offer("device", "trace")
        world.run(2.0)
        assert len(world.receiver.installed()) == 1
        assert len(world.vm.aspects) == 1


class TestSecurity:
    def test_untrusted_signer_rejected(self, sim, network):
        from repro.midas.trust import Signer

        world = MidasWorld(sim, network)
        world.trust.revoke(world.signer.entity)
        world.trust.trust_signer(Signer.generate("someone-else"))
        world.catalog.add("trace", TraceAspect)
        rejected = []
        world.receiver.on_rejected.connect(
            lambda envelope, error: rejected.append(envelope.name)
        )
        world.start_receiver()
        world.run(5.0)
        assert not world.receiver.is_installed("trace")
        assert "trace" in rejected
        assert world.vm.aspects == ()

    def test_denied_capability_rejected(self, sim, network):
        world = MidasWorld(sim, network, device_policy=SandboxPolicy.restrictive())
        world.catalog.add("needs-net", NetworkUsingAspect)
        world.start_receiver()
        world.run(5.0)
        assert not world.receiver.is_installed("needs-net")
        records = [r.action for r in world.base.activity_for("device")]
        assert "rejected" in records


class TestRevocation:
    def test_lease_expires_when_base_vanishes(self, world):
        world.catalog.add("trace", TraceAspect)
        world.start_receiver()
        world.run(3.0)
        withdrawn = []
        world.receiver.on_withdrawn.connect(
            lambda inst, reason: withdrawn.append((inst.name, reason))
        )
        world.network.partition("base", "device")
        world.run(60.0)
        assert ("trace", REASON_LEASE_EXPIRED) in withdrawn
        assert world.vm.aspects == ()

    def test_base_revoke_removes_extension(self, world):
        world.catalog.add("trace", TraceAspect)
        world.start_receiver()
        world.run(3.0)
        withdrawn = []
        world.receiver.on_withdrawn.connect(
            lambda inst, reason: withdrawn.append(reason)
        )
        world.base.revoke("device", "trace")
        world.run(2.0)
        assert REASON_REVOKED in withdrawn
        assert not world.receiver.is_installed("trace")

    def test_shutdown_called_before_withdrawal(self, world):
        from tests.support import CleanShutdownAspect

        world.catalog.add("clean", CleanShutdownAspect)
        world.start_receiver()
        world.run(3.0)
        aspect = world.receiver.find("clean").aspect
        world.receiver.withdraw("clean")
        assert aspect.events == ["shutdown", "withdraw"]

    def test_local_withdraw_returns_false_for_unknown(self, world):
        assert world.receiver.withdraw("ghost") is False

    def test_stop_withdraws_everything(self, world):
        world.catalog.add("trace", TraceAspect)
        world.start_receiver()
        world.run(3.0)
        world.receiver.stop()
        assert world.receiver.installed() == []
        assert world.vm.aspects == ()


class TestReplacement:
    def test_new_version_replaces_old(self, world):
        world.catalog.add("trace", lambda: TraceAspect(type_pattern="Engine"))
        world.start_receiver()
        world.run(3.0)
        old = world.receiver.find("trace").aspect
        reasons = []
        world.receiver.on_withdrawn.connect(
            lambda inst, reason: reasons.append(reason)
        )
        world.base.replace_extension(
            "trace", lambda: TraceAspect(type_pattern="Turbine")
        )
        world.run(3.0)
        assert reasons == [REASON_REPLACED]
        new = world.receiver.find("trace").aspect
        assert new is not old
        assert world.receiver.find("trace").envelope.version == 2
        assert len(world.vm.aspects) == 1


class TestImplicitExtensions:
    def test_requires_auto_inserted(self, world):
        from repro.extensions.access_control import AccessControl
        from repro.extensions.session import SessionManagement

        world.catalog.add("access", lambda: AccessControl(allowed={"boss"}))
        world.start_receiver()
        world.run(3.0)
        kinds = {type(aspect) for aspect in world.vm.aspects}
        assert AccessControl in kinds
        assert SessionManagement in kinds

    def test_implicit_shared_and_refcounted(self, world):
        from repro.extensions.access_control import AccessControl
        from repro.extensions.billing import Billing
        from repro.extensions.session import SessionManagement

        world.catalog.add("access", lambda: AccessControl(allowed={"boss"}))
        world.catalog.add("billing", lambda: Billing({"*": 1.0}))
        world.start_receiver()
        world.run(3.0)
        sessions = [a for a in world.vm.aspects if isinstance(a, SessionManagement)]
        assert len(sessions) == 1  # shared, not duplicated
        world.receiver.withdraw("access")
        sessions = [a for a in world.vm.aspects if isinstance(a, SessionManagement)]
        assert len(sessions) == 1  # still needed by billing
        world.receiver.withdraw("billing")
        sessions = [a for a in world.vm.aspects if isinstance(a, SessionManagement)]
        assert sessions == []  # last user gone
