"""ExtensionBase signal tests."""

from tests.support import NetworkUsingAspect, TraceAspect


class TestBaseSignals:
    def test_on_adapted_fires_per_extension(self, world):
        adapted = []
        world.base.on_adapted.connect(lambda node, name: adapted.append((node, name)))
        world.catalog.add("a", TraceAspect)
        world.catalog.add("b", TraceAspect)
        world.start_receiver()
        world.run(3.0)
        assert sorted(adapted) == [("device", "a"), ("device", "b")]

    def test_on_rejected_fires_with_reason(self, sim, network):
        from repro.aop.sandbox import SandboxPolicy
        from tests.midas.conftest import MidasWorld

        world = MidasWorld(sim, network, device_policy=SandboxPolicy.restrictive())
        rejections = []
        world.base.on_rejected.connect(
            lambda node, name, detail: rejections.append((node, name, detail))
        )
        world.catalog.add("needs-net", NetworkUsingAspect)
        world.start_receiver()
        world.run(3.0)
        assert rejections
        node, name, detail = rejections[0]
        assert (node, name) == ("device", "needs-net")
        assert "denied capabilities" in detail

    def test_on_node_lost_once_per_node(self, world):
        world.catalog.add("a", TraceAspect)
        world.catalog.add("b", TraceAspect)
        world.start_receiver()
        world.run(3.0)
        lost = []
        world.base.on_node_lost.connect(lost.append)
        world.network.partition("base", "device")
        world.run(90.0)
        assert lost.count("device") == 1
