"""ServiceRef / RemoteCaller tests."""

import pickle

import pytest

from repro.midas.remote import RemoteCaller, ServiceRef
from repro.net.geometry import Position
from repro.net.node import NetworkNode
from repro.net.transport import Transport


@pytest.fixture
def rig(sim, network):
    a = network.attach(NetworkNode("a", Position(0, 0)))
    b = network.attach(NetworkNode("b", Position(5, 0)))
    return Transport(a, sim), Transport(b, sim)


class TestServiceRef:
    def test_is_plain_serializable_data(self):
        ref = ServiceRef("base", "store.append")
        clone = pickle.loads(pickle.dumps(ref))
        assert clone == ref

    def test_equality(self):
        assert ServiceRef("a", "op") == ServiceRef("a", "op")
        assert ServiceRef("a", "op") != ServiceRef("a", "other")


class TestRemoteCaller:
    def test_post_is_one_way(self, sim, rig):
        sender, receiver = rig
        got = []
        receiver.register("store.append", lambda src, body: got.append(body))
        caller = RemoteCaller(sender)
        caller.post(ServiceRef("b", "store.append"), {"n": 1})
        sim.run_for(1.0)
        assert got == [{"n": 1}]

    def test_call_round_trip(self, sim, rig):
        sender, receiver = rig
        receiver.register("math.double", lambda src, body: body * 2)
        caller = RemoteCaller(sender)
        replies = []
        caller.call(ServiceRef("b", "math.double"), 21, on_reply=replies.append)
        sim.run_for(1.0)
        assert replies == [42]

    def test_call_error_path(self, sim, rig):
        sender, _ = rig
        caller = RemoteCaller(sender)
        errors = []
        caller.call(ServiceRef("b", "missing.op"), on_error=errors.append)
        sim.run_for(1.0)
        assert errors

    def test_local_node_id(self, rig):
        sender, _ = rig
        assert RemoteCaller(sender).local_node_id == "a"
