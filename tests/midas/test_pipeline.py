"""Accept-queue → worker-pool pipeline tests."""

import pytest

from repro.errors import PipelineOverloadError, SimulationError
from repro.midas.pipeline import AcceptQueuePipeline, PipelineConfig


def make(sim, **overrides):
    defaults = dict(workers=1, service_time=1.0, service_distribution="fixed")
    defaults.update(overrides)
    return AcceptQueuePipeline(sim, PipelineConfig(**defaults), name="test")


class TestConfig:
    def test_defaults_validate(self):
        PipelineConfig().validate()

    @pytest.mark.parametrize(
        "changes",
        [
            {"workers": 0},
            {"dispatch": "magic"},
            {"queue_capacity": -1},
            {"service_time": -1.0},
            {"service_distribution": "pareto"},
        ],
    )
    def test_bad_configs_rejected(self, changes):
        with pytest.raises(SimulationError):
            PipelineConfig(**changes).validate()


class TestSingleWorker:
    def test_jobs_run_in_fifo_order_after_service(self, sim):
        done = []
        pipe = make(sim)
        pipe.submit("a", "offer", lambda: done.append(("a", sim.now)))
        pipe.submit("b", "offer", lambda: done.append(("b", sim.now)))
        sim.run()
        assert done == [("a", 1.0), ("b", 2.0)]

    def test_zero_service_still_defers_to_event(self, sim):
        # Even with service_time=0 the job runs via the queue, not inline.
        done = []
        pipe = make(sim, service_time=0.0)
        pipe.submit("a", "offer", lambda: done.append(sim.now))
        assert done == []
        sim.run()
        assert done == [0.0]

    def test_wait_and_service_accounting_exact(self, sim):
        pipe = make(sim)
        pipe.submit("a", "offer", lambda: None)
        pipe.submit("b", "offer", lambda: None)
        sim.run()
        stats = pipe.stats()
        assert stats["submitted"] == 2
        assert stats["completed"] == 2
        assert stats["service_seconds"] == pytest.approx(2.0)
        assert stats["wait_seconds"] == pytest.approx(1.0)  # b waited for a

    def test_failed_job_counted_and_pipeline_continues(self, sim):
        done = []
        pipe = make(sim)
        pipe.submit("a", "offer", lambda: 1 / 0)
        pipe.submit("b", "offer", lambda: done.append("b"))
        sim.run()
        assert done == ["b"]
        assert pipe.stats()["failed"] == 1
        assert pipe.stats()["completed"] == 2  # both consumed a worker


class TestDispatch:
    def test_multiple_workers_run_concurrently(self, sim):
        done = []
        pipe = make(sim, workers=2)
        for key in ("a", "b", "c"):
            pipe.submit(key, "offer", lambda key=key: done.append((key, sim.now)))
        sim.run()
        assert done == [("a", 1.0), ("b", 1.0), ("c", 2.0)]

    def test_rr_spreads_jobs_round_robin(self, sim):
        done = []
        pipe = make(sim, workers=2, dispatch="rr")
        for index in range(4):
            pipe.submit("same-key", "offer", lambda i=index: done.append((i, sim.now)))
        sim.run()
        assert done == [(0, 1.0), (1, 1.0), (2, 2.0), (3, 2.0)]

    def test_shard_keeps_a_key_on_one_worker(self, sim):
        done = []
        pipe = make(sim, workers=4, dispatch="shard")
        for index in range(3):
            pipe.submit("node-7", "offer", lambda i=index: done.append((i, sim.now)))
        sim.run()
        # Same key -> same worker -> strictly serial service.
        assert done == [(0, 1.0), (1, 2.0), (2, 3.0)]

    def test_shard_is_deterministic_across_pipelines(self, sim):
        from repro.midas.pipeline import _Job

        first = make(sim, workers=4, dispatch="shard")
        second = make(sim, workers=4, dispatch="shard")
        jobs = [_Job(f"node-{i}", "offer", lambda: None, 0.0) for i in range(16)]
        picks = [first._assign(job).index for job in jobs]
        assert picks == [second._assign(job).index for job in jobs]
        assert len(set(picks)) > 1  # keys actually spread across workers


class TestBackpressure:
    def test_overflow_sheds_newest_job(self, sim):
        shed = []
        pipe = make(sim, queue_capacity=1)
        assert pipe.submit("a", "offer", lambda: None) is True  # in service
        assert pipe.submit("b", "offer", lambda: None) is True  # queued
        accepted = pipe.submit("c", "offer", lambda: None, on_shed=shed.append)
        assert accepted is False
        assert len(shed) == 1 and isinstance(shed[0], PipelineOverloadError)
        sim.run()
        stats = pipe.stats()
        assert stats["shed"] == 1
        assert stats["completed"] == 2

    def test_capacity_frees_up_as_jobs_finish(self, sim):
        pipe = make(sim, queue_capacity=1)
        pipe.submit("a", "offer", lambda: None)
        pipe.submit("b", "offer", lambda: None)
        sim.run_for(1.0)  # a finished, b in service, queue empty
        assert pipe.submit("c", "offer", lambda: None) is True


class TestExponentialService:
    def test_durations_vary_but_stay_deterministic(self, sim):
        from repro.sim.kernel import Simulator

        def run(seed):
            simulator = Simulator()
            done = []
            pipe = AcceptQueuePipeline(
                simulator,
                PipelineConfig(
                    service_time=0.5, service_distribution="exponential", seed=seed
                ),
                name="exp",
            )
            for i in range(5):
                pipe.submit(str(i), "offer", lambda: done.append(simulator.now))
            simulator.run()
            return done

        assert run(1) == run(1)
        assert run(1) != run(2)
        assert len(set(run(1))) == 5  # draws actually vary


class TestResetVolatile:
    def test_reset_drops_queued_work_but_keeps_counters(self, sim):
        done = []
        pipe = make(sim)
        pipe.submit("a", "offer", lambda: done.append("a"))
        pipe.submit("b", "offer", lambda: done.append("b"))
        sim.run_for(1.0)  # a completed; b now in service
        pipe.reset_volatile()
        sim.run()
        assert done == ["a"]  # b's service event was cancelled
        stats = pipe.stats()
        assert stats["submitted"] == 2
        assert stats["completed"] == 1
        assert pipe.idle
