"""Per-base node-filter tests: a hall with per-device-kind policies."""

import pytest

from repro.aop.sandbox import Capability, SandboxPolicy
from repro.aop.vm import ProseVM
from repro.discovery.client import DiscoveryClient
from repro.discovery.registrar import LookupService
from repro.discovery.service import ServiceTemplate
from repro.midas.base import ExtensionBase
from repro.midas.catalog import ExtensionCatalog
from repro.midas.receiver import AdaptationService
from repro.midas.remote import RemoteCaller
from repro.midas.scheduler import SchedulerService
from repro.midas.trust import Signer, TrustStore
from repro.net.geometry import Position
from repro.net.node import NetworkNode
from repro.net.transport import Transport

from tests.support import TraceAspect


def make_device(sim, network, name, role, signer):
    node = network.attach(NetworkNode(name, Position(5, len(name)), 60))
    transport = Transport(node, sim)
    trust = TrustStore()
    trust.trust_signer(signer)
    discovery = DiscoveryClient(transport, sim).start()
    return AdaptationService(
        ProseVM(name=name),
        transport,
        sim,
        trust,
        policy=SandboxPolicy.permissive(),
        services={
            Capability.NETWORK: RemoteCaller(transport),
            Capability.CLOCK: sim.clock,
            Capability.SCHEDULER: SchedulerService(sim),
        },
        discovery=discovery,
        attributes={"role": role},
    ).start()


class TestNodeFilter:
    def test_only_matching_roles_adapted(self, sim, network):
        signer = Signer.generate("hall")
        base_node = network.attach(NetworkNode("base", Position(0, 0), 60))
        base_transport = Transport(base_node, sim)
        lookup = LookupService(base_transport, sim).start()
        catalog = ExtensionCatalog(signer)
        catalog.add("robot-policy", TraceAspect)
        base = ExtensionBase(
            base_transport,
            sim,
            catalog,
            node_filter=ServiceTemplate(attributes={"role": "robot"}),
        )
        base.watch_lookup(lookup)

        robot = make_device(sim, network, "robot-1", "robot", signer)
        pda = make_device(sim, network, "pda-1", "pda", signer)
        sim.run_for(15.0)

        assert robot.is_installed("robot-policy")
        assert not pda.is_installed("robot-policy")
        assert base.adapted_nodes() == ["robot-1"]

    def test_no_filter_adapts_everyone(self, sim, network):
        signer = Signer.generate("hall")
        base_node = network.attach(NetworkNode("base", Position(0, 0), 60))
        base_transport = Transport(base_node, sim)
        lookup = LookupService(base_transport, sim).start()
        catalog = ExtensionCatalog(signer)
        catalog.add("policy", TraceAspect)
        base = ExtensionBase(base_transport, sim, catalog)
        base.watch_lookup(lookup)

        make_device(sim, network, "robot-1", "robot", signer)
        make_device(sim, network, "pda-1", "pda", signer)
        sim.run_for(15.0)
        assert base.adapted_nodes() == ["pda-1", "robot-1"]
