"""Epoch-stamped ROAMED: idempotence, ordering, refusal, anti-entropy.

PR 8 hardened federated roaming: announcements carry the arrival's roam
epoch ``(time, base)``, duplicates and reordered stale announcements are
ignored, announcements for *unknown* nodes are recorded so a late
re-adapt is refused, lost announcements are retried (with telemetry when
retries exhaust), and a periodic anti-entropy digest exchange converges
the bases even when every announcement was eaten.
"""

from __future__ import annotations

import pytest

from repro.core.platform import ProactivePlatform
from repro.extensions.call_logging import CallLogging
from repro.faults.plan import FaultPlan
from repro.midas.base import ROAMED
from repro.net.geometry import ORIGIN
from repro.net.node import NetworkNode
from repro.net.transport import Transport
from repro.resilience.policy import RetryPolicy
from repro.scenarios.nodes import StormNode


def build_world(retry: bool = True, sync: float | None = None):
    """Two linked bases + one storm node, telemetry on."""
    platform = ProactivePlatform(
        seed=5,
        lease_duration=6.0,
        retry_policy=(
            RetryPolicy(max_attempts=3, initial_backoff=0.5, jitter=0.0)
            if retry
            else None
        ),
        roam_sync_interval=sync,
    )
    registry = platform.enable_telemetry()
    stations = [
        platform.create_base_station("base-a", ORIGIN),
        platform.create_base_station("base-b", ORIGIN),
    ]
    for station in stations:
        station.add_extension("roam-ext", lambda: CallLogging(type_pattern="X"))
    device = platform.network.attach(NetworkNode("dev-1", ORIGIN))
    node = StormNode(
        1, Transport(device, platform.simulator), platform.simulator, "class-a", 30.0
    )
    return platform, registry, stations[0].extension_base, stations[1].extension_base, node


def tracks(base, node_id: str) -> bool:
    return any(node == node_id for (node, _name) in base._adapted)


# -- epoch ordering (pure unit: announcements applied directly) -------------------


def test_roamed_for_unknown_node_is_recorded():
    platform, registry, base_a, base_b, node = build_world()
    base_a._handle_roamed("base-b", {"node_id": "ghost", "epoch": [5.0, "base-b"]})
    assert base_a._roam_epochs["ghost"] == (5.0, "base-b")
    kinds = [e.kind for e in registry.flight.events("base-a")]
    assert "midas.roam.recorded" in kinds


def test_duplicate_roamed_is_ignored():
    platform, registry, base_a, _base_b, _node = build_world()
    body = {"node_id": "ghost", "epoch": [5.0, "base-b"]}
    base_a._handle_roamed("base-b", body)
    base_a._handle_roamed("base-b", dict(body))
    assert registry.counter_total("midas.roam.stale_ignored") == 1
    assert base_a._roam_epochs["ghost"] == (5.0, "base-b")


def test_reordered_stale_roamed_loses_to_newer_epoch():
    platform, registry, base_a, _base_b, _node = build_world()
    # The *newer* arrival (at base-c) is delivered first ...
    base_a._handle_roamed("base-c", {"node_id": "ghost", "epoch": [9.0, "base-c"]})
    # ... and the older one (base-b) straggles in afterwards: ignored.
    base_a._handle_roamed("base-b", {"node_id": "ghost", "epoch": [4.0, "base-b"]})
    assert base_a._roam_epochs["ghost"] == (9.0, "base-c")
    assert registry.counter_total("midas.roam.stale_ignored") == 1
    # A genuinely newer arrival still wins.
    base_a._handle_roamed("base-d", {"node_id": "ghost", "epoch": [11.0, "base-d"]})
    assert base_a._roam_epochs["ghost"] == (11.0, "base-d")


def test_recorded_roam_refuses_late_nonfresh_adapt():
    platform, registry, base_a, _base_b, _node = build_world()
    base_a._handle_roamed("base-b", {"node_id": "ghost", "epoch": [5.0, "base-b"]})
    # A late reconcile pass (non-fresh sighting) must not resurrect it ...
    base_a.adapt_node("ghost")
    assert not tracks(base_a, "ghost")
    assert registry.counter_total("midas.roam.stale_refused") == 1
    # ... but a genuine re-registration here — necessarily *after* the
    # recorded arrival — overrides the record (newest epoch wins).
    platform.run_for(6.0)
    base_a.adapt_node("ghost", fresh=True)
    assert base_a._roam_epochs["ghost"][1] == "base-a"


def test_legacy_roamed_without_epoch_still_drops(sim):
    platform, registry, base_a, base_b, node = build_world()
    node.join("base-a")
    platform.run_for(3.0)
    assert tracks(base_a, "dev-1")
    # A pre-epoch announcer sends no epoch: classic always-drop holds.
    base_a._handle_roamed("base-b", {"node_id": "dev-1"})
    assert not tracks(base_a, "dev-1")
    assert base_a._roam_epochs["dev-1"][1] == "base-b"


# -- the live announcement path ---------------------------------------------------


@pytest.mark.parametrize("retry", [True, False])
def test_migration_announcement_drops_old_home(retry):
    platform, registry, base_a, base_b, node = build_world(retry=retry)
    node.join("base-a")
    platform.run_for(3.0)
    assert tracks(base_a, "dev-1") and not tracks(base_b, "dev-1")
    node.migrate("base-b")
    platform.run_for(3.0)
    assert tracks(base_b, "dev-1")
    assert not tracks(base_a, "dev-1")
    assert registry.counter_total("midas.roam.announced") >= 1


def test_exhausted_announce_retries_count_telemetry():
    platform, registry, base_a, base_b, node = build_world(retry=True)
    node.join("base-a")
    platform.run_for(3.0)
    # Sever the base backbone only: the device can still reach base-b.
    platform.network.partition("base-a", "base-b")
    node.migrate("base-b")
    platform.run_for(20.0)
    assert tracks(base_a, "dev-1"), "without the announcement base-a keeps it"
    assert registry.counter_total("midas.roam.announce_failed") >= 1
    kinds = [e.kind for e in registry.flight.events("base-b")]
    assert "midas.roam.announce_failed" in kinds


def test_anti_entropy_converges_when_announcements_are_eaten():
    platform, registry, base_a, base_b, node = build_world(retry=True, sync=2.0)
    platform.install_faults(FaultPlan().drop(operation=ROAMED))
    node.join("base-a")
    platform.run_for(3.0)
    node.migrate("base-b")
    platform.run_for(15.0)
    assert tracks(base_b, "dev-1")
    assert not tracks(base_a, "dev-1"), "anti-entropy must reconcile the lost ROAMED"
    assert registry.counter_total("midas.roam.reconciled") >= 1
    assert registry.counter_total("midas.roam.sync_sent") >= 1


def test_roam_sync_resolves_conflict_toward_newest_epoch():
    platform, registry, base_a, base_b, _node = build_world()
    base_a._roam_epochs["ghost"] = (9.0, "base-a")
    # base-b claims an older arrival: the serving side reports a conflict.
    reply = base_a._serve_roam_sync("base-b", {"adapted": {"ghost": [4.0, "base-b"]}})
    assert reply["conflicts"] == {"ghost": [9.0, "base-a"]}
    # A newer claim is learned instead.
    reply = base_a._serve_roam_sync("base-b", {"adapted": {"ghost": [12.0, "base-b"]}})
    assert reply["conflicts"] == {}
    assert base_a._roam_epochs["ghost"] == (12.0, "base-b")
