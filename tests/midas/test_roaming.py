"""Roaming between two extension bases (the §3.2 roaming algorithm)."""

import pytest

from repro.core.platform import ProactivePlatform
from repro.net.geometry import Position

from tests.support import Engine, TraceAspect, fresh_class


@pytest.fixture
def site():
    platform = ProactivePlatform(seed=5)
    hall_a = platform.create_base_station("hall-A", Position(0, 0), radio_range=60)
    hall_b = platform.create_base_station("hall-B", Position(200, 0), radio_range=60)
    hall_a.add_extension("trace-a", lambda: TraceAspect(type_pattern="Engine"))
    hall_b.add_extension("trace-b", lambda: TraceAspect(type_pattern="Engine"))
    robot = platform.create_mobile_node("robot", Position(5, 0), radio_range=60)
    robot.load_class(fresh_class(Engine))
    return platform, hall_a, hall_b, robot


class TestRoaming:
    def test_moving_between_halls_swaps_extensions(self, site):
        platform, hall_a, hall_b, robot = site
        platform.run_for(5.0)
        assert robot.extensions() == ["trace-a"]

        robot.walk_to(Position(200, 5))
        platform.run_for(200.0)
        assert "trace-b" in robot.extensions()
        assert "trace-a" not in robot.extensions()

    def test_roaming_notification_drops_leases_at_old_base(self, site):
        platform, hall_a, hall_b, robot = site
        platform.run_for(5.0)
        assert hall_a.extension_base.adapted_nodes() == ["robot"]

        robot.walk_to(Position(200, 5))
        platform.run_for(200.0)
        # Hall B announced the arrival; hall A dropped its bookkeeping.
        assert hall_a.extension_base.adapted_nodes() == []
        assert hall_b.extension_base.adapted_nodes() == ["robot"]
        actions = {r.action for r in hall_a.extension_base.activity_for("robot")}
        assert "roamed" in actions or "renewed-lost" in actions

    def test_peer_bases_linked_automatically(self, site):
        platform, hall_a, hall_b, _ = site
        assert "hall-B" in hall_a.extension_base._peer_bases
        assert "hall-A" in hall_b.extension_base._peer_bases

    def test_round_trip_roaming(self, site):
        platform, hall_a, hall_b, robot = site
        platform.run_for(5.0)
        robot.walk_to(Position(200, 5))
        platform.run_for(200.0)
        robot.walk_to(Position(5, 0))
        platform.run_for(200.0)
        assert robot.extensions() == ["trace-a"]
        assert hall_b.extension_base.adapted_nodes() == []
