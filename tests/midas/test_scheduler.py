"""Scheduler service tests."""

from repro.midas.scheduler import SchedulerService


class TestSchedulerService:
    def test_periodic_timer_started(self, sim):
        scheduler = SchedulerService(sim)
        ticks = []
        timer = scheduler.periodic(1.0, lambda: ticks.append(sim.now))
        sim.run_for(3.5)
        assert ticks == [1.0, 2.0, 3.0]
        timer.stop()
        sim.run_for(5.0)
        assert len(ticks) == 3

    def test_after_runs_once(self, sim):
        scheduler = SchedulerService(sim)
        fired = []
        scheduler.after(2.0, lambda: fired.append(sim.now))
        sim.run_for(10.0)
        assert fired == [2.0]

    def test_after_cancellable(self, sim):
        scheduler = SchedulerService(sim)
        fired = []
        event = scheduler.after(2.0, lambda: fired.append(True))
        event.cancel()
        sim.run_for(10.0)
        assert fired == []
