"""Assorted MIDAS edge cases."""

import pytest

from repro.errors import UnknownExtensionError

from tests.support import TraceAspect


class TestBaseEdges:
    def test_replace_unknown_extension_raises(self, world):
        with pytest.raises(UnknownExtensionError):
            world.base.replace_extension("ghost", TraceAspect)

    def test_revoke_unknown_is_noop(self, world):
        world.base.revoke("device", "ghost")  # no error
        world.base.revoke_node("nobody")

    def test_offer_skips_already_adapted_current_version(self, world):
        world.catalog.add("trace", TraceAspect)
        world.start_receiver()
        world.run(3.0)
        offered_before = len(
            [r for r in world.base.activity_log if r.action == "offered"]
        )
        world.base.offer("device", "trace")  # live at current version
        world.run(1.0)
        offered_after = len(
            [r for r in world.base.activity_log if r.action == "offered"]
        )
        assert offered_after == offered_before

    def test_extension_lease_duration_honored(self, world):
        world.base.lease_duration = 4.0
        world.catalog.add("trace", TraceAspect)
        world.start_receiver()
        world.run(3.0)
        installed = world.receiver.installed()[0]
        lease = world.receiver._leases.get(installed.lease_id)
        assert lease.duration == 4.0


class TestReceiverEdges:
    def test_keepalive_reports_unknown_leases(self, world):
        replies = []
        world.base.transport.request(
            "device",
            "midas.keepalive",
            {"lease_ids": ["lease:bogus"]},
            on_reply=replies.append,
        )
        world.run(1.0)
        assert replies == [{"renewed": [], "unknown": ["lease:bogus"]}]

    def test_revoke_unknown_lease_reports_false(self, world):
        replies = []
        world.base.transport.request(
            "device",
            "midas.revoke",
            {"lease_id": "lease:bogus"},
            on_reply=replies.append,
        )
        world.run(1.0)
        assert replies == [{"revoked": False}]

    def test_start_is_idempotent(self, world):
        world.start_receiver()
        world.start_receiver()  # second call must not double-register
        world.run(3.0)
        assert world.lookup.registration_count() == 1
