"""Crosscut interference analysis between (and within) extensions."""

from __future__ import annotations

from repro.vetting import (
    DEFAULT_ALLOWLIST,
    interference_findings,
    self_interference_findings,
    summarize,
    summarize_class,
)
from repro.vetting import report as R
from tests.vetting import fixtures as fx


def _pair(a, b, allowlist=DEFAULT_ALLOWLIST):
    return interference_findings(
        summarize_class(a), summarize_class(b), allowlist
    )


class TestAroundConflicts:
    def test_overlapping_around_advices_are_an_error(self):
        findings = _pair(fx.OverlapAspectA, fx.OverlapAspectB)
        (finding,) = findings
        assert finding.rule == R.RULE_AROUND_CONFLICT
        assert finding.severity == R.ERROR
        assert "OverlapAspectA" in finding.message
        assert "OverlapAspectB" in finding.message

    def test_disjoint_arounds_are_silent(self):
        assert _pair(fx.OverlapAspectA, fx.DisjointAspect) == []

    def test_allowlisted_pair_downgrades_to_info(self):
        allowlist = frozenset(
            {frozenset({"OverlapAspectA", "OverlapAspectB"})}
        )
        (finding,) = _pair(fx.OverlapAspectA, fx.OverlapAspectB, allowlist)
        assert finding.severity == R.INFO
        assert "allowlisted" in finding.message

    def test_allowlist_matches_extension_names_too(self):
        candidate = summarize_class(fx.OverlapAspectA)
        other = summarize_class(fx.OverlapAspectB)
        by_name = frozenset(
            {frozenset({candidate.extension, other.extension})}
        )
        (finding,) = interference_findings(candidate, other, by_name)
        assert finding.severity == R.INFO


class TestFieldAndExceptionOverlap:
    def test_field_write_overlap_warns_about_shadowing(self):
        (finding,) = _pair(fx.FieldWatcherA, fx.FieldWatcherB)
        assert finding.rule == R.RULE_FIELD_SHADOWING
        assert finding.severity == R.WARNING

    def test_exception_overlap_is_informational(self):
        (finding,) = _pair(fx.ExceptionWatcher, fx.ExceptionWatcher)
        assert finding.rule == R.RULE_CROSSCUT_OVERLAP
        assert finding.severity == R.INFO

    def test_before_advices_stacking_is_informational(self):
        (finding,) = _pair(fx.CleanAspect, fx.UnderDeclaredAspect)
        assert finding.rule == R.RULE_CROSSCUT_OVERLAP
        assert finding.severity == R.INFO
        assert "stacking" in finding.message


class TestSelfInterference:
    def test_two_around_advices_in_one_extension_warn(self):
        class DoubleWrap(fx.Aspect):
            REQUIRED_CAPABILITIES = frozenset()

            @fx.around(fx.MethodCut(type="Motor", method="drive*"))
            def outer(self, context, gateway=None):
                return context.proceed()

            @fx.around(fx.MethodCut(type="*", method="drive_forward"))
            def inner(self, context, gateway=None):
                return context.proceed()

        (finding,) = self_interference_findings(summarize_class(DoubleWrap))
        assert finding.rule == R.RULE_AROUND_CONFLICT
        assert finding.severity == R.WARNING

    def test_single_around_does_not_self_conflict(self):
        assert self_interference_findings(summarize_class(fx.OverlapAspectA)) == []


class TestInstanceSummaries:
    def test_instance_summary_sees_add_advice_registrations(self):
        aspect = fx.AddAdviceAspect()
        summary = summarize("adder", aspect)
        assert summary.extension == "adder"
        assert any(shape.advice_name == "report" for shape in summary.shapes)

    def test_instance_and_class_summaries_agree_for_decorators(self):
        by_class = summarize_class(fx.OverlapAspectA)
        by_instance = summarize("a", fx.OverlapAspectA())
        assert len(by_class.shapes) == len(by_instance.shapes)
        assert by_class.shapes[0].kind is by_instance.shapes[0].kind
