"""Deliberately defective (and deliberately clean) aspects for vet tests.

Each class seeds exactly one defect class the vetter must catch
statically; ``CleanAspect`` seeds none and must pass.  These are real
module-level classes (not exec'd) so ``inspect.getsource`` works.
"""

from __future__ import annotations

from repro.aop import (
    Aspect,
    Capability,
    ExceptionCut,
    FieldWriteCut,
    MethodCut,
    around,
    before,
)


class CleanAspect(Aspect):
    """Declares exactly what it acquires; no hazards."""

    REQUIRED_CAPABILITIES = frozenset({Capability.CLOCK})

    @before(MethodCut(type="Motor", method="drive*"))
    def stamp(self, context, gateway=None):
        clock = gateway.acquire(Capability.CLOCK)
        self.last = clock.now()


class UnderDeclaredAspect(Aspect):
    """Acquires network (via a helper) but only declares store."""

    REQUIRED_CAPABILITIES = frozenset({Capability.STORE})

    @before(MethodCut(type="Motor", method="drive*"))
    def watch(self, context, gateway=None):
        store = gateway.acquire(Capability.STORE)
        self._ship(gateway)

    def _ship(self, gateway):
        transport = gateway.acquire(Capability.NETWORK)
        transport.send(b"observed")


class OverDeclaredAspect(Aspect):
    """Declares network + clock but reachable code only uses clock."""

    REQUIRED_CAPABILITIES = frozenset({Capability.NETWORK, Capability.CLOCK})

    @before(MethodCut(type="Motor", method="*"))
    def tick(self, context, gateway=None):
        gateway.acquire(Capability.CLOCK)


class BypassAspect(Aspect):
    """Skips the gateway: imports socket and opens host files directly."""

    REQUIRED_CAPABILITIES = frozenset()

    @before(MethodCut(type="Motor", method="*"))
    def sniff(self, context, gateway=None):
        import socket

        peer = socket.socket()
        secrets = open("/etc/passwd").read()
        return peer, secrets


class InternalReachAspect(Aspect):
    """Reaches into repro.net internals instead of acquiring network."""

    REQUIRED_CAPABILITIES = frozenset()

    @before(MethodCut(type="Motor", method="*"))
    def poke(self, context, gateway=None):
        from repro.net.transport import Transport

        return Transport


class SpinAspect(Aspect):
    """`while True` with no bounded exit inside advice."""

    REQUIRED_CAPABILITIES = frozenset()

    @before(MethodCut(type="Motor", method="*"))
    def spin(self, context, gateway=None):
        while True:
            self.counter = getattr(self, "counter", 0) + 1


class RecursiveAspect(Aspect):
    """Mutual recursion reachable from advice."""

    REQUIRED_CAPABILITIES = frozenset()

    @before(MethodCut(type="Motor", method="*"))
    def enter(self, context, gateway=None):
        self._ping(0)

    def _ping(self, depth):
        self._pong(depth + 1)

    def _pong(self, depth):
        self._ping(depth + 1)


class TypoPolicyAspect(Aspect):
    """Declares a misspelled capability while actually using network."""

    REQUIRED_CAPABILITIES = frozenset({"newtork"})

    @before(MethodCut(type="Motor", method="*"))
    def send(self, context, gateway=None):
        gateway.acquire(Capability.NETWORK)


class DynamicAcquireAspect(Aspect):
    """Acquire argument is a run-time value; footprint is inexact."""

    REQUIRED_CAPABILITIES = frozenset({Capability.CLOCK})

    def __init__(self, capability=Capability.CLOCK, **kwargs):
        super().__init__(**kwargs)
        self.capability = capability

    @before(MethodCut(type="Motor", method="*"))
    def grab(self, context, gateway=None):
        gateway.acquire(self.capability)


class OverlapAspectA(Aspect):
    """Around advice on Motor.drive* — conflicts with OverlapAspectB."""

    REQUIRED_CAPABILITIES = frozenset()

    @around(MethodCut(type="Motor", method="drive*"))
    def wrap(self, context, gateway=None):
        return context.proceed()


class OverlapAspectB(Aspect):
    """Around advice that can select the same methods as OverlapAspectA."""

    REQUIRED_CAPABILITIES = frozenset()

    @around(MethodCut(type="*", method="drive_forward"))
    def wrap(self, context, gateway=None):
        return context.proceed()


class DisjointAspect(Aspect):
    """Around advice on a method family no other fixture touches."""

    REQUIRED_CAPABILITIES = frozenset()

    @around(MethodCut(type="Antenna", method="transmit*"))
    def wrap(self, context, gateway=None):
        return context.proceed()


class FieldWatcherA(Aspect):
    """Field-write advice overlapping FieldWatcherB on Motor.speed."""

    REQUIRED_CAPABILITIES = frozenset()

    @before(FieldWriteCut(type="Motor", field="speed"))
    def journal(self, context, gateway=None):
        self.seen = context.value


class FieldWatcherB(Aspect):
    """Field-write advice with wildcard field pattern on Motor."""

    REQUIRED_CAPABILITIES = frozenset()

    @before(FieldWriteCut(type="Motor", field="*"))
    def journal(self, context, gateway=None):
        self.seen = context.value


class ExceptionWatcher(Aspect):
    """Exception advice — overlaps other exception watchers only."""

    REQUIRED_CAPABILITIES = frozenset()

    @before(ExceptionCut(type="Motor", method="*", exception=ValueError))
    def caught(self, context, gateway=None):
        self.last = context.exception


class CycleA(Aspect):
    """Half of a mutual REQUIRES cycle (wired below)."""

    REQUIRED_CAPABILITIES = frozenset()

    @before(MethodCut(type="Motor", method="*"))
    def a(self, context, gateway=None):
        pass


class CycleB(Aspect):
    """Other half of the REQUIRES cycle."""

    REQUIRED_CAPABILITIES = frozenset()
    REQUIRES = (CycleA,)

    @before(MethodCut(type="Motor", method="*"))
    def b(self, context, gateway=None):
        pass


# Close the cycle after both classes exist.
CycleA.REQUIRES = (CycleB,)


class AddAdviceAspect(Aspect):
    """Registers its advice imperatively; the callback acquires network.

    Exercises both the static ``add_advice`` callback extraction and the
    instance-level entry-point discovery.
    """

    REQUIRED_CAPABILITIES = frozenset({Capability.NETWORK})

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        from repro.aop.advice import AdviceKind

        self.add_advice(
            AdviceKind.BEFORE,
            MethodCut(type="Motor", method="drive*"),
            self.report,
        )

    def report(self, context, gateway=None):
        transport = gateway.acquire(Capability.NETWORK)
        transport.send(b"drive")


class NeedsClean(Aspect):
    """Acyclic REQUIRES chain rooted at a clean dependency."""

    REQUIRED_CAPABILITIES = frozenset()
    REQUIRES = (CleanAspect,)

    @before(MethodCut(type="Motor", method="stop*"))
    def observe(self, context, gateway=None):
        pass
