"""The orchestrating Vetter: declaration diffs, strictness, dependencies."""

from __future__ import annotations

from repro.vetting import Vetter, report as R, vet_class, vet_instance
from tests.vetting import fixtures as fx


class TestDeclarationDiff:
    def test_clean_class_vets_clean(self):
        assert vet_class(fx.CleanAspect).clean

    def test_under_declared_is_an_error_naming_the_site(self):
        report = vet_class(fx.UnderDeclaredAspect)
        (finding,) = report.errors()
        assert finding.rule == R.RULE_UNDER_DECLARED
        assert "network" in finding.message
        assert "_ship" in finding.message

    def test_over_declared_is_a_warning(self):
        report = vet_class(fx.OverDeclaredAspect)
        assert report.clean
        (finding,) = report.warnings()
        assert finding.rule == R.RULE_OVER_DECLARED
        assert "network" in finding.message

    def test_inexact_footprint_suppresses_over_declared(self):
        # A dynamic acquire means unused declarations can't be proven
        # unused; no least-privilege warning may fire.
        report = vet_class(fx.DynamicAcquireAspect)
        assert not any(
            f.rule == R.RULE_OVER_DECLARED for f in report.findings
        )


class TestStrictness:
    def test_typo_is_a_warning_by_default(self):
        report = vet_class(fx.TypoPolicyAspect)
        unknown = [
            f for f in report.findings if f.rule == R.RULE_UNKNOWN_CAPABILITY
        ]
        assert [f.severity for f in unknown] == [R.WARNING]
        # The typo also makes the real acquire under-declared — an error
        # either way, so the defect cannot ship.
        assert report.has_errors

    def test_strict_mode_escalates_unknown_names_to_errors(self):
        report = Vetter(strict=True).vet_class(fx.TypoPolicyAspect)
        unknown = [
            f for f in report.findings if f.rule == R.RULE_UNKNOWN_CAPABILITY
        ]
        assert [f.severity for f in unknown] == [R.ERROR]
        assert report.strict


class TestInstanceVetting:
    def test_instance_path_sees_add_advice_callbacks(self):
        report = vet_instance(fx.AddAdviceAspect(), extension="adder")
        assert report.clean
        assert report.extension == "adder"

    def test_declared_override_models_the_envelope_capabilities(self):
        # A receiver vets against the envelope's capability set — here
        # narrower than the class declaration, so the acquire breaks.
        report = vet_instance(
            fx.CleanAspect(), extension="clean", declared=frozenset()
        )
        (finding,) = report.errors()
        assert finding.rule == R.RULE_UNDER_DECLARED
        assert "clock" in finding.message


class TestDependencyChains:
    def test_dependency_gaps_are_warnings_not_errors(self):
        class LeakyDep(fx.Aspect):
            REQUIRED_CAPABILITIES = frozenset()

            @fx.before(fx.MethodCut(type="Motor", method="halt*"))
            def note(self, context, gateway=None):
                gateway.acquire(fx.Capability.CLOCK)

        class Root(fx.Aspect):
            REQUIRED_CAPABILITIES = frozenset()
            REQUIRES = (LeakyDep,)

            @fx.before(fx.MethodCut(type="Motor", method="start*"))
            def go(self, context, gateway=None):
                pass

        report = vet_class(Root)
        # Local classes may lack retrievable source; when analysis ran,
        # the dependency's gap must be a warning (deps get the node
        # policy, not the envelope's restriction).
        assert not report.has_errors

    def test_cycle_stops_dependency_analysis(self):
        report = vet_class(fx.CycleA)
        rules = [f.rule for f in report.findings]
        assert rules.count(R.RULE_REQUIRES_CYCLE) == 1
