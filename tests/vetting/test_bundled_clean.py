"""Regression gate: every bundled extension must vet clean, strictly.

If a future change to a bundled extension introduces an undeclared
acquire, a gateway bypass, or a conflicting crosscut, this is the test
that goes red — the same check CI runs via ``python -m repro vet``.
"""

from __future__ import annotations

import importlib
import pkgutil

import pytest

import repro.extensions
from repro.aop.aspect import Aspect
from repro.vetting import Vetter, summarize_class


def _bundled_classes() -> list[type]:
    classes: list[type] = []
    for module_info in pkgutil.iter_modules(repro.extensions.__path__):
        module = importlib.import_module(
            f"repro.extensions.{module_info.name}"
        )
        for value in vars(module).values():
            if (
                isinstance(value, type)
                and issubclass(value, Aspect)
                and value is not Aspect
                and value.__module__ == module.__name__
            ):
                classes.append(value)
    return classes


BUNDLED = _bundled_classes()


def test_the_bundle_is_not_empty():
    assert len(BUNDLED) >= 10


@pytest.mark.parametrize("cls", BUNDLED, ids=lambda cls: cls.__name__)
def test_bundled_extension_vets_clean_in_strict_mode(cls):
    vetter = Vetter(strict=True)
    against = [
        summarize_class(other) for other in BUNDLED if other is not cls
    ]
    report = vetter.vet_class(cls, against=against)
    assert report.clean, report.render()


def test_bundled_set_has_no_warnings_either(capsys):
    vetter = Vetter(strict=True)
    summaries = {cls: summarize_class(cls) for cls in BUNDLED}
    total_warnings = 0
    for cls in BUNDLED:
        against = [s for other, s in summaries.items() if other is not cls]
        report = vetter.vet_class(cls, against=against)
        total_warnings += len(report.warnings())
        if report.warnings():
            print(report.render())
    assert total_warnings == 0
