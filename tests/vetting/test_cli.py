"""The ``python -m repro vet`` command-line interface."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

from repro.vetting.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).resolve().parent / "fixtures.py"


class TestInProcess:
    def test_clean_module_exits_zero(self, capsys):
        status = main(["repro.extensions.session"])
        out = capsys.readouterr().out
        assert status == 0
        assert "SessionManagement" in out
        assert "clean" in out

    def test_fixture_file_exits_one_on_errors(self, capsys):
        status = main([str(FIXTURES)])
        out = capsys.readouterr().out
        assert status == 1
        assert "capability.under-declared" in out
        assert "sandbox.gateway-bypass" in out
        assert "budget.unbounded-loop" in out
        assert "requires.cycle" in out
        assert "crosscut.around-conflict" in out

    def test_json_output_is_parseable(self, capsys):
        status = main(["--json", str(FIXTURES)])
        out = capsys.readouterr().out
        assert status == 1
        reports = json.loads(out)
        by_name = {report["extension"]: report for report in reports}
        assert "CleanAspect" in by_name
        assert by_name["CleanAspect"]["findings"] == [] or not any(
            f["severity"] == "error"
            for f in by_name["CleanAspect"]["findings"]
        )
        rules = {
            f["rule"]
            for report in reports
            for f in report["findings"]
        }
        assert "capability.under-declared" in rules

    def test_strict_escalates_hygiene_findings(self, capsys):
        relaxed = main(["repro.extensions.session"])
        assert relaxed == 0
        strict = main(["--strict", "repro.extensions.session"])
        assert strict == 0  # bundled extensions stay clean even strictly

    def test_directory_target_walks_recursively(self, capsys):
        status = main([str(REPO_ROOT / "src" / "repro" / "extensions")])
        out = capsys.readouterr().out
        assert status == 0
        assert "HwMonitoring" in out

    def test_unknown_target_exits_two(self, capsys):
        status = main(["no.such.module.anywhere"])
        assert status == 2

    def test_module_without_aspects_exits_two(self, capsys):
        status = main(["repro.errors"])
        assert status == 2


class TestAsSubprocess:
    def test_python_dash_m_repro_vet(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "vet", "repro.extensions.session"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 0, result.stderr
        assert "SessionManagement" in result.stdout
