"""Vetting wired into the MIDAS pipeline: publish gate, install gate."""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import DependencyError, VerificationError, VettingError
from repro.midas.envelope import ExtensionEnvelope
from repro.vetting import report as R
from repro.vetting import requires_cycle
from tests.vetting import fixtures as fx


def _events(registry, name):
    return [event for event in registry.events if event.name == name]


class TestPublishGate:
    def test_clean_extension_publishes_and_stores_report(self, world, registry):
        report = world.catalog.publish("clean", fx.CleanAspect)
        assert report.clean
        assert world.catalog.vet_report_of("clean") is report
        assert "clean" in world.catalog

    def test_under_declared_capability_blocks_publish(self, world, registry):
        with pytest.raises(VettingError) as excinfo:
            world.catalog.publish("grabby", fx.UnderDeclaredAspect)
        assert "network" in str(excinfo.value)
        rules = {f.rule for f in excinfo.value.report.errors()}
        assert R.RULE_UNDER_DECLARED in rules
        assert "grabby" not in world.catalog
        (event,) = _events(registry, "midas.vet_rejected")
        assert event.fields["stage"] == "publish"
        assert R.RULE_UNDER_DECLARED in event.fields["rules"]
        assert registry.counter_total("midas.vet_rejections") == 1

    def test_gateway_bypass_blocks_publish(self, world, registry):
        with pytest.raises(VettingError) as excinfo:
            world.catalog.publish("sniffer", fx.BypassAspect)
        rules = {f.rule for f in excinfo.value.report.errors()}
        assert R.RULE_GATEWAY_BYPASS in rules

    def test_crosscut_overlap_against_cataloged_set_blocks_publish(
        self, world, registry
    ):
        world.catalog.publish("wrap-a", fx.OverlapAspectA)
        with pytest.raises(VettingError) as excinfo:
            world.catalog.publish("wrap-b", fx.OverlapAspectB)
        rules = {f.rule for f in excinfo.value.report.errors()}
        assert R.RULE_AROUND_CONFLICT in rules

    def test_allowlisted_overlap_publishes(self, world, registry):
        world.catalog.publish("wrap-a", fx.OverlapAspectA)
        report = world.catalog.publish(
            "wrap-b",
            fx.OverlapAspectB,
            allowlist=[frozenset({"wrap-a", "wrap-b"})],
        )
        assert report.clean

    def test_disjoint_extensions_coexist(self, world, registry):
        world.catalog.publish("wrap-a", fx.OverlapAspectA)
        assert world.catalog.publish("disjoint", fx.DisjointAspect).clean

    def test_republish_does_not_interfere_with_itself(self, world, registry):
        world.catalog.publish("wrap-a", fx.OverlapAspectA)
        report = world.catalog.publish("wrap-a", fx.OverlapAspectA)
        assert report.clean
        assert world.catalog.version_of("wrap-a") == 2

    def test_legacy_add_stays_unvetted(self, world, registry):
        world.catalog.add("grabby", fx.UnderDeclaredAspect)
        assert world.catalog.vet_report_of("grabby") is None


class TestEnvelopeTransport:
    def test_sealed_envelope_carries_signed_report(self, world, registry):
        world.catalog.publish("clean", fx.CleanAspect)
        envelope = world.catalog.seal("clean")
        assert envelope.vet_report is not None
        assert envelope.vet_signature is not None
        assert envelope.verify_vet_report(world.trust)

    def test_unvetted_envelope_has_no_report(self, world, registry):
        world.catalog.add("legacy", fx.CleanAspect)
        envelope = world.catalog.seal("legacy")
        assert envelope.vet_report is None
        assert not envelope.verify_vet_report(world.trust)


class TestInstallGate:
    def test_vetted_envelope_installs_in_verify_mode(self, world, registry):
        world.catalog.publish("clean", fx.CleanAspect)
        world.receiver.install_envelope(world.catalog.seal("clean"))
        assert world.receiver.is_installed("clean")

    def test_legacy_unvetted_envelope_installs_but_is_counted(
        self, world, registry
    ):
        world.catalog.add("legacy", fx.CleanAspect)
        world.receiver.install_envelope(world.catalog.seal("legacy"))
        assert world.receiver.is_installed("legacy")
        assert registry.counter_total("midas.unvetted") == 1

    def test_tampered_report_fails_verification(self, world, registry):
        world.catalog.publish("clean", fx.CleanAspect)
        envelope = world.catalog.seal("clean")
        doctored = dict(envelope.vet_report)
        doctored["aspect_class"] = "something.else.Entirely"
        forged = dataclasses.replace(envelope, vet_report=doctored)
        with pytest.raises(VerificationError):
            world.receiver.install_envelope(forged)
        assert not world.receiver.is_installed("clean")

    def test_report_without_signature_is_refused(self, world, registry):
        world.catalog.publish("clean", fx.CleanAspect)
        envelope = world.catalog.seal("clean")
        stripped = dataclasses.replace(envelope, vet_signature=None)
        with pytest.raises(VerificationError):
            world.receiver.install_envelope(stripped)

    def test_error_report_refuses_install_with_telemetry(self, world, registry):
        # A base that signs a failing report anyway (catalog bypassed):
        # the receiver must still refuse on the verdict itself.
        from repro.vetting.vetter import Vetter

        aspect = fx.UnderDeclaredAspect()
        report = Vetter().vet_instance(aspect, extension="grabby")
        assert report.has_errors
        envelope = ExtensionEnvelope.seal(
            "grabby",
            aspect,
            world.signer,
            vet_report=report.as_dict(),
            vet_signature=world.signer.sign(report.digest()),
        )
        with pytest.raises(VettingError):
            world.receiver.install_envelope(envelope)
        (event,) = _events(registry, "midas.vet_rejected")
        assert event.fields["stage"] == "install"
        assert registry.counter_total("midas.vet_rejections") == 1

    def test_revet_mode_reanalyzes_unvetted_envelopes(self, world, registry):
        world.receiver.vetting = "revet"
        bad = ExtensionEnvelope.seal("spin", fx.SpinAspect(), world.signer)
        with pytest.raises(VettingError) as excinfo:
            world.receiver.install_envelope(bad)
        rules = {f.rule for f in excinfo.value.report.errors()}
        assert R.RULE_UNBOUNDED_LOOP in rules
        (event,) = _events(registry, "midas.vet_rejected")
        assert event.fields["stage"] == "install"

    def test_revet_mode_accepts_clean_extensions(self, world, registry):
        world.receiver.vetting = "revet"
        good = ExtensionEnvelope.seal("clean", fx.CleanAspect(), world.signer)
        world.receiver.install_envelope(good)
        assert world.receiver.is_installed("clean")

    def test_trust_mode_skips_the_gate(self, world, registry):
        world.receiver.vetting = "trust"
        world.catalog.add("legacy", fx.CleanAspect)
        world.receiver.install_envelope(world.catalog.seal("legacy"))
        assert registry.counter_total("midas.unvetted") == 0

    def test_unknown_vetting_mode_is_rejected_at_construction(self, world):
        import repro.midas.receiver as receiver_module

        with pytest.raises(ValueError, match="unknown vetting mode"):
            receiver_module.AdaptationService(
                world.vm,
                world.device_transport,
                world.sim,
                world.trust,
                vetting="paranoid",
            )


class TestRequiresCycles:
    def test_install_time_error_names_the_full_cycle(self, world, registry):
        envelope = ExtensionEnvelope.seal("cyclic", fx.CycleA(), world.signer)
        world.receiver.vetting = "trust"  # reach the dependency resolver
        with pytest.raises(
            DependencyError, match="CycleA -> CycleB -> CycleA"
        ):
            world.receiver.install_envelope(envelope)

    def test_static_vetter_reports_the_same_cycle(self):
        assert requires_cycle(fx.CycleA) == ["CycleA", "CycleB", "CycleA"]
        assert requires_cycle(fx.CleanAspect) is None

    def test_vet_report_carries_the_cycle_as_an_error(self):
        from repro.vetting import vet_class

        report = vet_class(fx.CycleA)
        (finding,) = [
            f for f in report.findings if f.rule == R.RULE_REQUIRES_CYCLE
        ]
        assert finding.severity == R.ERROR
        assert "CycleA -> CycleB -> CycleA" in finding.message

    def test_acyclic_chain_vets_dependencies_against_their_declarations(self):
        from repro.vetting import vet_class

        report = vet_class(fx.NeedsClean)
        assert report.clean


class TestReportRoundTrip:
    def test_report_survives_dict_round_trip_with_same_digest(self):
        from repro.vetting import VetReport, vet_class

        report = vet_class(fx.UnderDeclaredAspect)
        clone = VetReport.from_dict(report.as_dict())
        assert clone.digest() == report.digest()
        assert clone.has_errors
