"""SandboxPolicy capability-name validation (warn by default, strict raises)."""

from __future__ import annotations

import warnings

import pytest

from repro.aop import Capability, SandboxPolicy, UnknownCapabilityWarning


class TestConstruction:
    def test_known_names_construct_silently(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            policy = SandboxPolicy({Capability.NETWORK, Capability.CLOCK})
        assert policy.allows("network")

    def test_unknown_name_warns_by_default(self):
        with pytest.warns(UnknownCapabilityWarning, match="newtork"):
            policy = SandboxPolicy({"newtork"})
        # Warned, not rejected: custom capabilities remain legal.
        assert policy.allows("newtork")

    def test_unknown_name_raises_in_strict_mode(self):
        with pytest.raises(ValueError, match="newtork"):
            SandboxPolicy({"newtork"}, strict=True)

    def test_strict_mode_accepts_known_names(self):
        policy = SandboxPolicy({Capability.STORE}, strict=True)
        assert policy.allows("store")

    def test_permissive_and_restrictive_never_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            SandboxPolicy.permissive()
            SandboxPolicy.restrictive()

    def test_restricted_to_keeps_only_the_intersection(self):
        policy = SandboxPolicy({Capability.NETWORK, Capability.STORE})
        narrowed = policy.restricted_to({Capability.NETWORK, Capability.CLOCK})
        assert narrowed.allows("network")
        assert not narrowed.allows("store")
        assert not narrowed.allows("clock")

    def test_error_message_lists_the_known_capabilities(self):
        with pytest.raises(ValueError) as excinfo:
            SandboxPolicy({"newtork"}, strict=True)
        for name in Capability.ALL:
            assert name in str(excinfo.value)


class TestCapabilityIsKnown:
    def test_all_well_known_names(self):
        for name in Capability.ALL:
            assert Capability.is_known(name)

    def test_unknown_names(self):
        assert not Capability.is_known("newtork")
        assert not Capability.is_known("")
