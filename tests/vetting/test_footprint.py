"""Capability-footprint inference over the seeded fixture aspects."""

from __future__ import annotations

import pytest

from repro.vetting import capability_footprint, clear_caches, instance_entry_points
from repro.vetting import report as R
from tests.vetting import fixtures as fx


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


class TestAcquireDiscovery:
    def test_clean_aspect_footprint_is_exact(self):
        footprint = capability_footprint(fx.CleanAspect)
        assert footprint.capabilities == {"clock"}
        assert footprint.is_exact
        assert footprint.findings == []

    def test_helper_methods_are_followed_transitively(self):
        footprint = capability_footprint(fx.UnderDeclaredAspect)
        assert footprint.capabilities == {"store", "network"}
        # The network acquire happens in the helper, with its location.
        (site,) = footprint.acquired["network"]
        assert "_ship" in site

    def test_string_literal_and_attribute_forms_both_resolve(self):
        # CleanAspect uses Capability.CLOCK; session fixture below uses both.
        footprint = capability_footprint(fx.OverDeclaredAspect)
        assert footprint.capabilities == {"clock"}

    def test_dynamic_acquire_makes_footprint_inexact(self):
        footprint = capability_footprint(fx.DynamicAcquireAspect)
        assert not footprint.is_exact
        rules = [finding.rule for finding in footprint.findings]
        assert R.RULE_DYNAMIC_ACQUIRE in rules

    def test_add_advice_callback_is_an_entry_point_statically(self):
        footprint = capability_footprint(fx.AddAdviceAspect)
        assert "report" in footprint.entry_points
        assert footprint.capabilities == {"network"}

    def test_instance_entry_points_find_bound_callbacks(self):
        aspect = fx.AddAdviceAspect()
        assert "report" in instance_entry_points(aspect)


class TestBypassDetection:
    def test_banned_import_and_open_are_errors(self):
        footprint = capability_footprint(fx.BypassAspect)
        rules = [finding.rule for finding in footprint.findings]
        assert rules.count(R.RULE_GATEWAY_BYPASS) >= 2
        messages = " ".join(finding.message for finding in footprint.findings)
        assert "socket" in messages
        assert "open()" in messages
        assert all(
            finding.severity == R.ERROR
            for finding in footprint.findings
            if finding.rule == R.RULE_GATEWAY_BYPASS
        )

    def test_internal_reach_is_flagged(self):
        footprint = capability_footprint(fx.InternalReachAspect)
        rules = {finding.rule for finding in footprint.findings}
        assert R.RULE_INTERNAL_REACH in rules


class TestBudgetHazards:
    def test_unbounded_while_true_is_an_error(self):
        footprint = capability_footprint(fx.SpinAspect)
        (finding,) = [
            f for f in footprint.findings if f.rule == R.RULE_UNBOUNDED_LOOP
        ]
        assert finding.severity == R.ERROR
        assert "spin" in finding.location

    def test_mutual_recursion_is_a_warning_with_the_cycle(self):
        footprint = capability_footprint(fx.RecursiveAspect)
        (finding,) = [
            f for f in footprint.findings if f.rule == R.RULE_RECURSION
        ]
        assert finding.severity == R.WARNING
        assert "_ping" in finding.message and "_pong" in finding.message

    def test_bounded_while_true_is_not_flagged(self):
        class Bounded(fx.Aspect):
            REQUIRED_CAPABILITIES = frozenset()

            @fx.before(fx.MethodCut(type="Motor", method="*"))
            def poll(self, context, gateway=None):
                while True:
                    break

        footprint = capability_footprint(Bounded)
        # Local classes have no retrievable source in some interpreters;
        # either way there must be no unbounded-loop error.
        assert not any(
            f.rule == R.RULE_UNBOUNDED_LOOP for f in footprint.findings
        )


class TestDegradation:
    def test_exec_defined_class_degrades_to_no_source_warning(self):
        namespace: dict = {}
        exec(
            "from repro.aop import Aspect\n"
            "class Ghost(Aspect):\n"
            "    REQUIRED_CAPABILITIES = frozenset()\n",
            namespace,
        )
        footprint = capability_footprint(namespace["Ghost"])
        (finding,) = footprint.findings
        assert finding.rule == R.RULE_NO_SOURCE
        assert footprint.capabilities == frozenset()

    def test_results_are_cached_per_class(self):
        first = capability_footprint(fx.CleanAspect)
        second = capability_footprint(fx.CleanAspect)
        assert first is second
