"""Fixtures for vetting tests: a MIDAS world plus an installed registry."""

from __future__ import annotations

import pytest

from repro.telemetry import runtime
from repro.telemetry.registry import MetricsRegistry
from repro.vetting import clear_caches
from tests.midas.conftest import MidasWorld


@pytest.fixture(autouse=True)
def _fresh_analysis_caches():
    clear_caches()
    yield
    clear_caches()


@pytest.fixture(autouse=True)
def _clean_recorder():
    runtime.reset()
    yield
    runtime.reset()


@pytest.fixture
def registry(sim) -> MetricsRegistry:
    registry = MetricsRegistry(clock=sim.clock)
    runtime.install(registry)
    return registry


@pytest.fixture
def world(sim, network) -> MidasWorld:
    return MidasWorld(sim, network)
