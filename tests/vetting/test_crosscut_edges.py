"""Crosscut edge cases: wildcard semantics, subclass families, overlaps."""

from __future__ import annotations

import pytest

from repro.aop.crosscut import ExceptionCut, FieldWriteCut, MethodCut
from repro.aop.joinpoint import JoinPoint, JoinPointKind
from repro.util.patterns import WildcardPattern, wildcard_overlaps


class Motor:
    def drive_forward(self):
        return "fwd"

    def drive_back(self):
        return "back"

    def stop(self):
        return "stop"


class TurboMotor(Motor):
    pass


def _method_jp(cls, member):
    return JoinPoint(JoinPointKind.METHOD, cls, member)


class TestWildcardOverlaps:
    @pytest.mark.parametrize(
        ("first", "second", "expected"),
        [
            ("drive*", "drive_forward", True),
            ("drive*", "*forward", True),
            ("drive*", "stop", False),
            ("*", "anything", True),
            ("*", "*", True),
            ("a*c", "ab*", True),
            ("a*c", "b*", False),
            ("", "", True),
            ("", "*", True),
            ("", "a", False),
            ("*a", "a*", True),  # the single string "a" matches both
            ("ab", "ab", True),
            ("ab", "ac", False),
        ],
    )
    def test_pattern_pairs(self, first, second, expected):
        assert wildcard_overlaps(first, second) is expected
        # Overlap is symmetric by construction.
        assert wildcard_overlaps(second, first) is expected

    def test_wildcard_pattern_exposes_overlap_and_anchoring(self):
        assert WildcardPattern("drive*").overlaps(WildcardPattern("*forward"))
        assert not WildcardPattern("drive*").is_anchored
        assert WildcardPattern("drive_forward").is_anchored


class TestMethodCutOverlap:
    def test_wildcard_method_vs_anchored_name(self):
        wide = MethodCut(type="Motor", method="drive*")
        narrow = MethodCut(type="*", method="drive_forward")
        assert wide.overlaps(narrow)
        assert narrow.overlaps(wide)

    def test_anchored_type_names_are_treated_as_disjoint(self):
        # Documented conservative approximation: Motor vs TurboMotor are
        # different anchored names, even though MRO matching at run time
        # would let a Motor-typed cut fire on TurboMotor instances.
        first = MethodCut(type="Motor", method="*")
        second = MethodCut(type="TurboMotor", method="*")
        assert not first.overlaps(second)

    def test_anchored_methods_must_be_equal(self):
        assert not MethodCut(type="*", method="drive_forward").overlaps(
            MethodCut(type="*", method="drive_back")
        )
        assert MethodCut(type="*", method="stop").overlaps(
            MethodCut(type="*", method="stop")
        )

    def test_method_cut_never_overlaps_other_kinds(self):
        cut = MethodCut(type="*", method="*")
        assert not cut.overlaps(FieldWriteCut(type="*", field="*"))
        assert not cut.overlaps(ExceptionCut(type="*", method="*"))

    def test_wildcard_matching_still_respects_mro_at_runtime(self):
        # Sanity: the run-time semantics the approximation deviates from.
        cut = MethodCut(type="Motor", method="drive*")
        assert cut.matches(_method_jp(TurboMotor, "drive_forward"))


class TestExceptionCutSubclasses:
    def test_accepts_subclass_instances(self):
        cut = ExceptionCut(type="*", method="*", exception=ArithmeticError)
        assert cut.accepts(ZeroDivisionError())
        assert cut.accepts(ArithmeticError())
        assert not cut.accepts(ValueError())

    def test_accepts_everything_when_family_is_open(self):
        cut = ExceptionCut(type="*", method="*")
        assert cut.accepts(BaseException())

    def test_overlap_requires_related_families(self):
        base = ExceptionCut(type="*", method="*", exception=ArithmeticError)
        sub = ExceptionCut(type="*", method="*", exception=ZeroDivisionError)
        sibling = ExceptionCut(type="*", method="*", exception=KeyError)
        assert base.overlaps(sub)
        assert sub.overlaps(base)
        assert not base.overlaps(sibling)

    def test_open_family_overlaps_any(self):
        open_cut = ExceptionCut(type="*", method="*")
        narrow = ExceptionCut(type="*", method="*", exception=KeyError)
        assert open_cut.overlaps(narrow)
        assert narrow.overlaps(open_cut)

    def test_disjoint_signatures_block_overlap_despite_family(self):
        first = ExceptionCut(type="Motor", method="drive*", exception=ValueError)
        second = ExceptionCut(type="Motor", method="stop", exception=ValueError)
        assert not first.overlaps(second)


class TestFieldWriteCutCombos:
    @pytest.mark.parametrize(
        ("first", "second", "expected"),
        [
            # type wildcard x field anchored
            (dict(type="*", field="speed"), dict(type="Motor", field="speed"), True),
            # type anchored x field wildcard
            (dict(type="Motor", field="*"), dict(type="Motor", field="speed"), True),
            # both wildcards
            (dict(type="*", field="*"), dict(type="Robot", field="state"), True),
            # anchored fields differ
            (dict(type="Motor", field="speed"), dict(type="Motor", field="rpm"), False),
            # anchored types differ (conservative disjointness)
            (dict(type="Motor", field="speed"), dict(type="Robot", field="speed"), False),
            # wildcard field families that cannot meet
            (dict(type="*", field="speed_*"), dict(type="*", field="rpm_*"), False),
            # wildcard field families that can meet
            (dict(type="*", field="s*"), dict(type="*", field="*d"), True),
        ],
    )
    def test_combinations(self, first, second, expected):
        assert FieldWriteCut(**first).overlaps(FieldWriteCut(**second)) is expected

    def test_field_cut_never_overlaps_method_cut(self):
        assert not FieldWriteCut(type="*", field="*").overlaps(
            MethodCut(type="*", method="*")
        )
