"""Shared test application code.

Aspects and application classes used across the suite live here at module
level so they are picklable (extension envelopes serialize aspect
instances with :mod:`pickle`, mirroring code shipping in the original
platform).

IMPORTANT: :class:`ProseVM.load_class` rewrites classes *in place*, so
tests must not instrument these shared classes directly — use the
``fresh_*`` factories, which clone a class per test.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any

from repro.aop import Aspect, Capability, MethodCut, REST, before
from repro.aop.advice import AdviceKind
from repro.aop.crosscut import FieldWriteCut


def export_artifacts(name: str, registry: Any) -> Path | None:
    """Write a telemetry JSONL export + per-node flight dumps for triage.

    No-op unless ``REPRO_ARTIFACTS_DIR`` is set: CI sets it for the chaos
    and supervision jobs and uploads the directory when a job fails, so a
    red run ships the full causal timeline along with the assertion
    message.  Locally (unset) this costs nothing.  Returns the directory
    written, or ``None`` when disabled.
    """
    root = os.environ.get("REPRO_ARTIFACTS_DIR")
    if not root or registry is None:
        return None
    from repro.telemetry import write_jsonl

    directory = Path(root) / name
    directory.mkdir(parents=True, exist_ok=True)
    write_jsonl(registry, directory / "telemetry.jsonl")
    if getattr(registry, "flight", None) is not None:
        registry.flight.dump_all(directory)
    return directory


class Engine:
    """A toy application class with annotated methods."""

    def __init__(self, engine_id: str = "engine-0"):
        self.engine_id = engine_id
        self.rpm = 0
        self.log: list[str] = []

    def start(self) -> None:
        self.log.append("start")
        self.rpm = 800

    def throttle(self, amount: int) -> int:
        self.rpm += amount
        return self.rpm

    def send_telemetry(self, data: bytes, priority: int = 0) -> bytes:
        self.log.append("telemetry")
        return data

    def receive_command(self, data: bytes) -> bytes:
        self.log.append("command")
        return data

    def fail(self) -> None:
        raise RuntimeError("engine failure")

    def get_id(self) -> str:
        return self.engine_id


class Turbine(Engine):
    """A subclass, for MRO-based type-pattern tests."""

    def spool(self, rate: float) -> float:
        self.rpm += int(rate * 100)
        return rate


def fresh_class(base: type = Engine) -> type:
    """A per-test clone of an application class (safe to instrument).

    The clone carries copies of the base's own methods in its own class
    dict, so instrumenting it never touches the shared original.

    Limitation: methods using zero-argument ``super()`` keep their
    compiled ``__class__`` cell pointing at the *original* class and will
    break on clone instances.  For such classes, instrument the real
    class in a VM fixture that unloads at teardown instead.
    """
    namespace = {
        key: value
        for key, value in vars(base).items()
        if key not in ("__dict__", "__weakref__")
    }
    return type(base.__name__, base.__bases__, namespace)


class TraceAspect(Aspect):
    """Records every interception into ``self.trace`` (picklable)."""

    def __init__(self, type_pattern: str = "*", method_pattern: str = "*"):
        super().__init__()
        self.trace: list[tuple[str, tuple]] = []
        self.add_advice(
            kind=AdviceKind.BEFORE,
            crosscut=MethodCut(type=type_pattern, method=method_pattern, params=(REST,)),
            callback=self.record,
        )

    def record(self, ctx) -> None:
        self.trace.append((ctx.method_name, ctx.args))


class FieldTraceAspect(Aspect):
    """Records field writes into ``self.writes``."""

    def __init__(self, type_pattern: str = "*", field_pattern: str = "*"):
        super().__init__()
        self.writes: list[tuple[str, Any, Any]] = []
        self.add_advice(
            kind=AdviceKind.AFTER,
            crosscut=FieldWriteCut(type=type_pattern, field=field_pattern),
            callback=self.record,
        )

    def record(self, ctx) -> None:
        self.writes.append((ctx.field, ctx.old_value, ctx.new_value))


class CleanShutdownAspect(TraceAspect):
    """Records its lifecycle order (shutdown before withdrawal)."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.events: list[str] = []

    def shutdown(self) -> None:
        self.events.append("shutdown")

    def on_withdraw(self, vm) -> None:
        self.events.append("withdraw")


class QualityControl(Aspect):
    """Fig. 2's quality-assurance extension: propagates state changes
    (field writes) of the adapted service to the base station."""

    REQUIRED_CAPABILITIES = frozenset({Capability.NETWORK})

    def __init__(self, owner, type_pattern: str = "*", field_pattern: str = "*"):
        super().__init__()
        self.owner = owner
        self.propagated = 0
        self.add_advice(
            kind=AdviceKind.AFTER,
            crosscut=FieldWriteCut(type=type_pattern, field=field_pattern),
            callback=self.propagate,
        )

    def propagate(self, ctx) -> None:
        caller = self.gateway.acquire(Capability.NETWORK)
        caller.post(self.owner, {"field": ctx.field, "value": ctx.new_value})
        self.propagated += 1


class NetworkUsingAspect(Aspect):
    """An aspect whose advice needs the network capability (sandbox tests)."""

    REQUIRED_CAPABILITIES = frozenset({Capability.NETWORK})

    def __init__(self):
        super().__init__()
        self.posts = 0

    @before(MethodCut(type="*", method="start"))
    def touch_network(self, ctx) -> None:
        self.gateway.acquire(Capability.NETWORK)
        self.posts += 1


# -- supervision / transactional-install support ------------------------------

#: Module-level fault switch for the REQUIRES-chain classes below: set to
#: a class name ("ChainLeaf" / "ChainMid" / "ChainTop") to make that link's
#: ``on_insert`` raise, simulating a failure at a chosen point of a deep
#: implicit-dependency install.  Reset to None after each test.
CHAIN_FAIL_AT: dict[str, Any] = {"target": None}


class _ChainLink(Aspect):
    """Base for the 3-deep REQUIRES chain used by rollback tests."""

    def __init__(self):
        super().__init__()
        self.seen = 0
        self.add_advice(
            kind=AdviceKind.BEFORE,
            crosscut=MethodCut(type="*", method="throttle", params=(REST,)),
            callback=self.observe,
        )

    def observe(self, ctx) -> None:
        self.seen += 1

    def on_insert(self, vm) -> None:
        if CHAIN_FAIL_AT["target"] == type(self).__name__:
            raise RuntimeError(f"injected on_insert failure in {type(self).__name__}")


class ChainLeaf(_ChainLink):
    """Deepest implicit dependency (no REQUIRES of its own)."""


class ChainMid(_ChainLink):
    """Middle link: requires the leaf."""

    REQUIRES = (ChainLeaf,)


class ChainTop(_ChainLink):
    """The explicitly offered extension: requires mid (hence leaf)."""

    REQUIRES = (ChainMid,)


class ChainSibling(_ChainLink):
    """Another explicit extension sharing the leaf dependency."""

    REQUIRES = (ChainLeaf,)


class CyclicA(Aspect):
    """REQUIRES cycle (with CyclicB) — a packaging error."""


class CyclicB(Aspect):
    """REQUIRES cycle (with CyclicA) — a packaging error."""


CyclicA.REQUIRES = (CyclicB,)
CyclicB.REQUIRES = (CyclicA,)


class BrokenShutdownAspect(TraceAspect):
    """Shutdown hook that always raises (withdrawal-robustness tests)."""

    def shutdown(self) -> None:
        raise RuntimeError("broken shutdown hook")


class FlakySessionAspect(Aspect):
    """An implicit dependency whose advice always raises."""

    @before(MethodCut(type="*", method="throttle"))
    def explode(self, ctx) -> None:
        raise RuntimeError("flaky session")


class NeedsFlakySession(TraceAspect):
    """An explicit extension dragging in the flaky implicit dependency."""

    REQUIRES = (FlakySessionAspect,)
