"""Device model tests."""

import pytest

from repro.errors import HardwareError
from repro.robot.hardware import (
    LightSensor,
    Motor,
    RotationSensor,
    TouchSensor,
)


class TestMotor:
    def test_identity(self):
        assert Motor("m1").get_id() == "m1"

    def test_power_limits(self):
        motor = Motor("m")
        motor.set_power(7)
        assert motor.power == 7
        with pytest.raises(HardwareError):
            motor.set_power(8)
        with pytest.raises(HardwareError):
            motor.set_power(-1)

    def test_forward_backward_stop(self):
        motor = Motor("m")
        motor.forward(3)
        assert motor.running and motor.direction == 1 and motor.power == 3
        motor.backward()
        assert motor.direction == -1
        motor.stop()
        assert not motor.running

    def test_rotate_accumulates_angle(self):
        motor = Motor("m")
        assert motor.rotate(90.0) == 90.0
        assert motor.rotate(-30.0) == 60.0
        assert motor.angle == 60.0

    def test_rotation_observer(self):
        events = []
        motor = Motor("m", on_rotate=lambda m, deg: events.append((m.get_id(), deg)))
        motor.rotate(45.0)
        assert events == [("m", 45.0)]

    def test_observe_replaces_observer(self):
        motor = Motor("m")
        events = []
        motor.observe(lambda m, deg: events.append(deg))
        motor.rotate(10.0)
        assert events == [10.0]


class TestSensors:
    def test_touch_sensor(self):
        sensor = TouchSensor("bumper")
        assert sensor.read() is False
        sensor.press()
        assert sensor.read() is True
        sensor.release()
        assert sensor.read() is False

    def test_light_sensor(self):
        sensor = LightSensor("eye", level=30)
        assert sensor.read() == 30
        sensor.set_level(80)
        assert sensor.read() == 80

    def test_light_sensor_range(self):
        sensor = LightSensor("eye")
        with pytest.raises(HardwareError):
            sensor.set_level(101)
        with pytest.raises(HardwareError):
            sensor.set_level(-1)

    def test_rotation_sensor_tracks_motor(self):
        motor = Motor("m")
        sensor = RotationSensor("rot", motor)
        motor.rotate(120.0)
        assert sensor.read() == 120.0
