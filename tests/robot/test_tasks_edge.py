"""Task-layer edge cases."""

import pytest

from repro.errors import TaskError
from repro.robot.hardware import Motor, TouchSensor
from repro.robot.rcx import HardwareMacro, RCXBrick
from repro.robot.tasks import (
    EventDecision,
    RobotApplication,
    SequenceTask,
    Task,
)


@pytest.fixture
def rig(sim):
    rcx = RCXBrick("rcx")
    rcx.attach_motor("A", Motor("m-a"))
    rcx.attach_sensor("1", TouchSensor("bumper"))
    return rcx, RobotApplication(sim, rcx)


def macros(n, duration=1.0):
    return [HardwareMacro("A", "rotate", (10.0,), duration) for _ in range(n)]


class TestEdgeCases:
    def test_empty_task_finishes_immediately(self, sim, rig):
        _, app = rig
        run = app.run_task(SequenceTask("empty", []))
        sim.run_for(1.0)
        assert run.finished and not run.aborted
        assert run.macros_run == 0

    def test_resume_finished_task_raises(self, sim, rig):
        _, app = rig
        run = app.run_task(SequenceTask("t", macros(1)))
        sim.run_for(10.0)
        with pytest.raises(TaskError):
            run.resume()

    def test_resume_unsuspended_is_noop(self, sim, rig):
        _, app = rig
        run = app.run_task(SequenceTask("t", macros(3)))
        run.resume()  # not suspended: nothing happens
        sim.run_for(10.0)
        assert run.finished

    def test_abort_twice_is_idempotent(self, sim, rig):
        _, app = rig
        run = app.run_task(SequenceTask("t", macros(5)))
        sim.run_for(1.5)
        run.abort()
        run.abort()
        assert run.aborted

    def test_suspend_finished_task_harmless(self, sim, rig):
        _, app = rig
        run = app.run_task(SequenceTask("t", macros(1)))
        sim.run_for(10.0)
        run.suspend()  # harmless after completion
        assert run.finished

    def test_continue_reissues_interrupted_macro(self, sim, rig):
        """On CONTINUE the interrupted command is re-executed, so the
        final rotation total includes the retried macro."""
        rcx, app = rig
        run = app.run_task(
            SequenceTask("t", macros(3), event_decision=EventDecision.CONTINUE)
        )
        sim.run_for(0.5)  # first macro executed at t=0
        rcx.raise_event("1", "blip")  # interrupts between macros
        sim.run_for(30.0)
        assert run.finished
        # At least the 3 scheduled rotations happened (a re-issue may add one).
        assert rcx.motor("A").angle >= 30.0

    def test_base_task_defaults(self):
        task = Task("bare")
        with pytest.raises(NotImplementedError):
            next(iter(task.macros()))
        from repro.robot.rcx import SensorEvent

        assert task.on_event(SensorEvent("1", "s", True)) is EventDecision.ABORT

    def test_override_of_override_unwinds_in_order(self, sim, rig):
        rcx, app = rig
        base = app.run_task(SequenceTask("base", macros(2, duration=2.0)))
        sim.run_for(0.5)
        mid = app.override(SequenceTask("mid", macros(1, duration=2.0)))
        sim.run_for(0.5)
        top = app.override(SequenceTask("top", macros(1, duration=0.5)))
        sim.run_for(60.0)
        assert top.finished and mid.finished and base.finished
        assert app.current_run is None
