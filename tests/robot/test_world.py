"""Canvas tests."""

import pytest

from repro.robot.world import Canvas


class TestPenProtocol:
    def test_blank_canvas(self):
        canvas = Canvas()
        assert canvas.stroke_count() == 0
        assert canvas.total_ink() == 0.0
        assert canvas.bounding_box() is None

    def test_single_stroke(self):
        canvas = Canvas()
        canvas.pen_down((0, 0))
        canvas.pen_move((3, 4))
        canvas.pen_up()
        assert canvas.stroke_count() == 1
        assert canvas.total_ink() == 5.0

    def test_pen_up_movement_leaves_no_ink(self):
        canvas = Canvas()
        canvas.pen_move((10, 10))
        assert canvas.total_ink() == 0.0

    def test_multiple_strokes(self):
        canvas = Canvas()
        for start in (0, 10):
            canvas.pen_down((start, 0))
            canvas.pen_move((start + 5, 0))
            canvas.pen_up()
        assert canvas.stroke_count() == 2
        assert canvas.total_ink() == 10.0

    def test_pen_down_idempotent(self):
        canvas = Canvas()
        canvas.pen_down((0, 0))
        canvas.pen_down((5, 5))  # ignored: already down
        canvas.pen_move((1, 0))
        canvas.pen_up()
        assert canvas.stroke_count() == 1

    def test_duplicate_points_collapsed(self):
        canvas = Canvas()
        canvas.pen_down((0, 0))
        canvas.pen_move((0, 0))
        canvas.pen_move((1, 0))
        canvas.pen_up()
        assert canvas.strokes[0] == [(0, 0), (1, 0)]

    def test_bounding_box(self):
        canvas = Canvas()
        canvas.pen_down((1, 2))
        canvas.pen_move((5, -3))
        canvas.pen_up()
        assert canvas.bounding_box() == (1, -3, 5, 2)

    def test_clear(self):
        canvas = Canvas()
        canvas.pen_down((0, 0))
        canvas.pen_move((1, 1))
        canvas.clear()
        assert canvas.stroke_count() == 0
        assert not canvas.drawing


class TestComparisons:
    def make_l_shape(self, scale=1.0):
        canvas = Canvas()
        canvas.pen_down((0, 0))
        canvas.pen_move((10 * scale, 0))
        canvas.pen_move((10 * scale, 10 * scale))
        canvas.pen_up()
        return canvas

    def test_matches_identical(self):
        assert self.make_l_shape().matches(self.make_l_shape())

    def test_matches_rejects_different_geometry(self):
        assert not self.make_l_shape().matches(self.make_l_shape(scale=2.0))

    def test_scaled(self):
        big = self.make_l_shape().scaled(2.0)
        assert big.matches(self.make_l_shape(scale=2.0))
        assert big.total_ink() == pytest.approx(40.0)

    def test_matches_with_tolerance(self):
        slightly_off = Canvas()
        slightly_off.pen_down((0, 0.0001))
        slightly_off.pen_move((10, 0))
        slightly_off.pen_move((10, 10))
        slightly_off.pen_up()
        assert self.make_l_shape().matches(slightly_off, tolerance=0.01)

    def test_points_in_order(self):
        canvas = self.make_l_shape()
        assert list(canvas.points()) == [(0, 0), (10, 0), (10, 10)]


class TestRender:
    def test_blank_canvas_renders_empty(self):
        assert Canvas().render() == ""

    def test_dimensions(self):
        canvas = Canvas()
        canvas.pen_down((0, 0))
        canvas.pen_move((10, 10))
        canvas.pen_up()
        rendered = canvas.render(width=20, height=10)
        lines = rendered.split("\n")
        assert len(lines) == 10
        assert all(len(line) == 20 for line in lines)

    def test_horizontal_line_fills_bottom_row(self):
        canvas = Canvas()
        canvas.pen_down((0, 0))
        canvas.pen_move((10, 0))
        canvas.pen_up()
        lines = canvas.render(width=10, height=3).split("\n")
        assert lines[-1].count("#") == 10

    def test_diagonal_has_ink_in_both_corners(self):
        canvas = Canvas()
        canvas.pen_down((0, 0))
        canvas.pen_move((10, 10))
        canvas.pen_up()
        lines = canvas.render(width=10, height=10).split("\n")
        assert lines[-1][0] == "#"  # bottom-left (origin)
        assert lines[0][-1] == "#"  # top-right

    def test_single_dot(self):
        canvas = Canvas()
        canvas.pen_down((5, 5))
        canvas.pen_up()
        assert "#" in canvas.render(width=5, height=5)

    def test_custom_ink_character(self):
        canvas = Canvas()
        canvas.pen_down((0, 0))
        canvas.pen_move((1, 0))
        canvas.pen_up()
        assert "*" in canvas.render(ink="*")
