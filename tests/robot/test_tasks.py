"""Task layer tests: tasks, events, direct mode, overriding."""

import pytest

from repro.robot.hardware import Motor, TouchSensor
from repro.robot.rcx import HardwareMacro, RCXBrick
from repro.robot.tasks import (
    EventDecision,
    RobotApplication,
    SequenceTask,
    Task,
)


@pytest.fixture
def rig(sim):
    rcx = RCXBrick("rcx")
    rcx.attach_motor("A", Motor("m-a"))
    rcx.attach_sensor("1", TouchSensor("bumper"))
    app = RobotApplication(sim, rcx)
    return rcx, app


def macros(count, degrees=10.0, duration=1.0):
    return [HardwareMacro("A", "rotate", (degrees,), duration) for _ in range(count)]


class TestTaskExecution:
    def test_task_runs_all_macros(self, sim, rig):
        rcx, app = rig
        run = app.run_task(SequenceTask("draw", macros(3)))
        sim.run_for(10.0)
        assert run.finished and not run.aborted
        assert run.macros_run == 3
        assert rcx.motor("A").angle == 30.0

    def test_macros_take_time(self, sim, rig):
        rcx, app = rig
        app.run_task(SequenceTask("draw", macros(3, duration=2.0)))
        sim.run_for(3.0)  # first macro at t=0, second at t=2: two executed
        assert rcx.motor("A").angle == 20.0

    def test_on_done_signal(self, sim, rig):
        _, app = rig
        done = []
        run = app.run_task(SequenceTask("t", macros(2)))
        run.on_done.connect(lambda r: done.append(r.finished))
        sim.run_for(10.0)
        assert done == [True]

    def test_abort_discards_remaining(self, sim, rig):
        rcx, app = rig
        run = app.run_task(SequenceTask("t", macros(10)))
        sim.run_for(2.5)
        run.abort()
        sim.run_for(60.0)
        assert run.aborted
        assert rcx.motor("A").angle < 100.0

    def test_new_task_aborts_current(self, sim, rig):
        _, app = rig
        first = app.run_task(SequenceTask("first", macros(10)))
        sim.run_for(2.0)
        app.run_task(SequenceTask("second", macros(1)))
        sim.run_for(10.0)
        assert first.aborted
        assert app.current_run is None

    def test_custom_task_generator(self, sim, rig):
        rcx, app = rig

        class Zigzag(Task):
            def macros(self):
                yield HardwareMacro("A", "rotate", (10.0,), 0.5)
                yield HardwareMacro("A", "rotate", (-10.0,), 0.5)

        app.run_task(Zigzag("zigzag"))
        sim.run_for(5.0)
        assert rcx.motor("A").angle == 0.0

    def test_failing_macro_aborts_task(self, sim, rig):
        _, app = rig
        run = app.run_task(
            SequenceTask("bad", [HardwareMacro("A", "explode", ())])
        )
        sim.run_for(5.0)
        assert run.aborted


class TestEventHandling:
    def test_abort_decision_ends_task(self, sim, rig):
        rcx, app = rig
        run = app.run_task(
            SequenceTask("t", macros(10), event_decision=EventDecision.ABORT)
        )
        sim.run_for(2.5)
        rcx.sensor("1").press()
        rcx.raise_event("1", "obstacle")
        sim.run_for(60.0)
        assert run.aborted
        assert not rcx.frozen  # resumed so direct mode still works

    def test_continue_decision_resumes(self, sim, rig):
        rcx, app = rig
        run = app.run_task(
            SequenceTask("t", macros(5), event_decision=EventDecision.CONTINUE)
        )
        sim.run_for(1.5)
        rcx.raise_event("1", "blip")
        sim.run_for(60.0)
        assert run.finished and not run.aborted
        assert rcx.motor("A").angle >= 50.0  # all rotations happened

    def test_event_without_task_just_resumes(self, sim, rig):
        rcx, app = rig
        rcx.raise_event("1")
        assert not rcx.frozen


class TestDirectMode:
    def test_direct_command_executes_immediately(self, rig):
        rcx, app = rig
        app.direct_mode.issue(HardwareMacro("A", "rotate", (42.0,)))
        assert rcx.motor("A").angle == 42.0
        assert app.direct_mode.commands_issued == 1

    def test_direct_mode_respects_freeze(self, rig):
        from repro.errors import HardwareFrozenError

        rcx, app = rig
        rcx.frozen = True
        with pytest.raises(HardwareFrozenError):
            app.direct_mode.issue(HardwareMacro("A", "rotate", (1.0,)))


class TestOverriding:
    def test_override_suspends_and_resumes(self, sim, rig):
        rcx, app = rig
        original = app.run_task(SequenceTask("long", macros(4, duration=1.0)))
        sim.run_for(1.5)  # two macros done (t=0, t=1)
        override = app.override(SequenceTask("urgent", macros(2, degrees=100.0)))
        sim.run_for(60.0)
        assert override.finished
        assert original.finished and not original.aborted
        # 4 * 10 + 2 * 100
        assert rcx.motor("A").angle == 240.0

    def test_nested_overrides(self, sim, rig):
        rcx, app = rig
        app.run_task(SequenceTask("base", macros(3, duration=2.0)))
        sim.run_for(0.5)
        app.override(SequenceTask("mid", macros(2, degrees=5.0, duration=2.0)))
        sim.run_for(0.5)
        inner = app.override(SequenceTask("top", macros(1, degrees=1.0)))
        sim.run_for(60.0)
        assert inner.finished
        assert rcx.motor("A").angle == 41.0  # 30 + 10 + 1

    def test_override_with_no_current_task(self, sim, rig):
        rcx, app = rig
        run = app.override(SequenceTask("solo", macros(1)))
        sim.run_for(10.0)
        assert run.finished
