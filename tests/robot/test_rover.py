"""Rover (driving robot) and obstacle world tests."""

import math

import pytest

from repro.net.geometry import Position, Region
from repro.net.node import NetworkNode
from repro.robot.rover import ObstacleWorld, Rover
from repro.robot.tasks import EventDecision, RobotApplication, SequenceTask


@pytest.fixture
def rover():
    return Rover("rover-1")


class TestDriving:
    def test_forward_moves_along_heading(self, rover):
        for macro in rover.forward_macros(1.0):
            rover.rcx.execute(macro)
        assert rover.position.x == pytest.approx(1.0)
        assert rover.position.y == pytest.approx(0.0, abs=1e-9)

    def test_turn_changes_heading_not_position(self, rover):
        for macro in rover.turn_macros(90.0):
            rover.rcx.execute(macro)
        assert rover.heading == pytest.approx(90.0)
        assert rover.position == Position(0.0, 0.0)

    def test_drive_then_turn_then_drive(self, rover):
        for macro in rover.forward_macros(1.0) + rover.turn_macros(90.0) + rover.forward_macros(0.5):
            rover.rcx.execute(macro)
        assert rover.position.x == pytest.approx(1.0)
        assert rover.position.y == pytest.approx(0.5)

    def test_heading_wraps(self, rover):
        for macro in rover.turn_macros(270.0) + rover.turn_macros(180.0):
            rover.rcx.execute(macro)
        assert rover.heading == pytest.approx(90.0)

    def test_negative_turn_clockwise(self, rover):
        for macro in rover.turn_macros(-90.0):
            rover.rcx.execute(macro)
        assert rover.heading == pytest.approx(270.0)

    def test_node_follows_chassis(self, network, rover):
        node = network.attach(NetworkNode("rover-1-radio"))
        rover.attach_node(node)
        for macro in rover.forward_macros(2.0):
            rover.rcx.execute(macro)
        assert node.position.x == pytest.approx(2.0)


class TestObstacles:
    @pytest.fixture
    def walled(self):
        world = ObstacleWorld([Region(1.0, -1.0, 2.0, 1.0, name="wall")])
        return Rover("rover-1", world=world)

    def test_bump_freezes_hardware(self, walled):
        macros = walled.forward_macros(2.0)
        from repro.errors import HardwareFrozenError

        with pytest.raises(HardwareFrozenError):
            for macro in macros:
                walled.rcx.execute(macro)
        assert walled.bumps >= 1
        assert walled.position.x < 1.0 + 1e-9

    def test_event_carries_obstacle_name(self, walled):
        events = []
        walled.rcx.on_event.connect(events.append)
        try:
            for macro in walled.forward_macros(2.0):
                walled.rcx.execute(macro)
        except Exception:
            pass
        assert events and "wall" in events[0].description

    def test_task_layer_aborts_on_bump(self, sim, walled):
        app = RobotApplication(sim, walled.rcx)
        task = SequenceTask(
            "cross-the-room",
            walled.forward_macros(2.0),
            event_decision=EventDecision.ABORT,
        )
        run = app.run_task(task)
        sim.run_for(60.0)
        assert run.aborted
        assert not walled.rcx.frozen
        assert walled.position.x < 1.0 + 1e-9

    def test_task_can_route_around(self, sim, walled):
        """Abort on bump, then drive around the wall under a new task."""
        app = RobotApplication(sim, walled.rcx)
        run = app.run_task(
            SequenceTask("ahead", walled.forward_macros(2.0))
        )
        sim.run_for(60.0)
        assert run.aborted

        detour = (
            walled.turn_macros(90.0)
            + walled.forward_macros(1.5)
            + walled.turn_macros(-90.0)
            + walled.forward_macros(1.5)
        )
        second = app.run_task(SequenceTask("detour", detour))
        sim.run_for(120.0)
        assert second.finished and not second.aborted
        assert walled.position.y == pytest.approx(1.5)
        assert walled.world.blocked(walled.position) is None


class TestWorld:
    def test_blocked_lookup(self):
        world = ObstacleWorld()
        world.add(Region(0, 0, 1, 1, name="crate"))
        assert world.blocked(Position(0.5, 0.5)).name == "crate"
        assert world.blocked(Position(5, 5)) is None

    def test_ambient_light_everywhere(self):
        world = ObstacleWorld()
        assert world.light_at(Position(0, 0)) == 50

    def test_light_zones(self):
        world = ObstacleWorld(ambient_light=40)
        world.add_light_zone(Region(0, 0, 2, 2), 90)
        world.add_light_zone(Region(0.5, 0.5, 1, 1), 10)  # inner shadow
        assert world.light_at(Position(5, 5)) == 40
        assert world.light_at(Position(1.5, 1.5)) == 90
        assert world.light_at(Position(0.7, 0.7)) == 10  # innermost wins

    def test_invalid_light_level_rejected(self):
        world = ObstacleWorld()
        with pytest.raises(ValueError):
            world.add_light_zone(Region(0, 0, 1, 1), 101)


class TestLightSensing:
    def test_eye_reads_world_light_at_position(self):
        world = ObstacleWorld(ambient_light=30)
        world.add_light_zone(Region(0.9, -0.5, 2.0, 0.5), 95)
        rover = Rover("rover-1", world=world)
        assert rover.eye.read() == 30
        for macro in rover.forward_macros(1.0):
            rover.rcx.execute(macro)
        assert rover.eye.read() == 95

    def test_eye_readable_through_rcx_macro(self):
        from repro.robot.rcx import HardwareMacro

        rover = Rover("rover-1")
        assert rover.rcx.execute(HardwareMacro("2", "read")) == 50
