"""RCX brick tests."""

import pytest

from repro.errors import HardwareError, HardwareFrozenError
from repro.robot.hardware import Motor, TouchSensor
from repro.robot.rcx import HardwareMacro, RCXBrick


@pytest.fixture
def brick():
    rcx = RCXBrick("rcx-1")
    rcx.attach_motor("A", Motor("m-a"))
    rcx.attach_sensor("1", TouchSensor("bumper"))
    return rcx


class TestWiring:
    def test_motor_and_sensor_lookup(self, brick):
        assert brick.motor("A").get_id() == "m-a"
        assert brick.sensor("1").get_id() == "bumper"

    def test_invalid_ports_rejected(self, brick):
        with pytest.raises(HardwareError):
            brick.attach_motor("D", Motor("x"))
        with pytest.raises(HardwareError):
            brick.attach_sensor("4", TouchSensor("x"))
        with pytest.raises(HardwareError):
            brick.attach_motor("1", Motor("x"))  # sensor port

    def test_missing_device_lookup(self, brick):
        with pytest.raises(HardwareError):
            brick.motor("B")
        with pytest.raises(HardwareError):
            brick.sensor("2")

    def test_devices_listing(self, brick):
        assert len(brick.devices()) == 2


class TestMacroExecution:
    def test_execute_dispatches_to_device(self, brick):
        brick.execute(HardwareMacro("A", "rotate", (90.0,)))
        assert brick.motor("A").angle == 90.0
        assert brick.macros_executed == 1

    def test_execute_returns_value(self, brick):
        result = brick.execute(HardwareMacro("A", "rotate", (45.0,)))
        assert result == 45.0

    def test_sensor_macros_work(self, brick):
        assert brick.execute(HardwareMacro("1", "read")) is False

    def test_unknown_command_rejected(self, brick):
        with pytest.raises(HardwareError):
            brick.execute(HardwareMacro("A", "explode"))


class TestFreezing:
    def test_event_freezes_hardware(self, brick):
        brick.sensor("1").press()
        event = brick.raise_event("1", "obstacle")
        assert brick.frozen
        assert event.value is True
        assert event.sensor_id == "bumper"

    def test_event_stops_motors(self, brick):
        brick.motor("A").forward(5)
        brick.raise_event("1")
        assert not brick.motor("A").running

    def test_frozen_brick_refuses_macros(self, brick):
        brick.raise_event("1")
        with pytest.raises(HardwareFrozenError):
            brick.execute(HardwareMacro("A", "rotate", (10.0,)))

    def test_resume_thaws(self, brick):
        brick.raise_event("1")
        brick.resume()
        brick.execute(HardwareMacro("A", "rotate", (10.0,)))
        assert brick.motor("A").angle == 10.0

    def test_event_signal_fires(self, brick):
        events = []
        brick.on_event.connect(events.append)
        brick.raise_event("1", "test")
        assert len(events) == 1
        assert events[0].description == "test"
