"""Plotter prototype tests."""

import pytest

from repro.discovery.client import DiscoveryClient
from repro.discovery.registrar import LookupService
from repro.discovery.service import ServiceTemplate
from repro.net.geometry import Position
from repro.net.node import NetworkNode
from repro.net.transport import Transport
from repro.robot.plotter import DRAWING_INTERFACE, DrawingService, build_plotter


@pytest.fixture
def plotter():
    return build_plotter("robot:1:1")


class TestPlotterGeometry:
    def test_starts_at_origin_pen_up(self, plotter):
        assert plotter.position == (0.0, 0.0)
        assert not plotter.pen_is_down

    def test_move_to_updates_position(self, plotter):
        plotter.move_to(10.0, 5.0)
        assert plotter.position == (10.0, 5.0)

    def test_movement_goes_through_motors(self, plotter):
        plotter.move_to(10.0, 5.0)
        # 0.5 mm per degree
        assert plotter.rcx.motor("A").angle == pytest.approx(20.0)
        assert plotter.rcx.motor("B").angle == pytest.approx(10.0)

    def test_pen_down_via_pen_motor(self, plotter):
        plotter.pen_down()
        assert plotter.pen_is_down
        assert plotter.rcx.motor("C").angle == 90.0
        plotter.pen_up()
        assert not plotter.pen_is_down
        assert plotter.rcx.motor("C").angle == 0.0

    def test_pen_operations_idempotent(self, plotter):
        plotter.pen_down()
        plotter.pen_down()
        assert plotter.rcx.motor("C").angle == 90.0

    def test_ink_only_when_pen_down(self, plotter):
        plotter.move_to(10, 0)  # travel
        plotter.pen_down()
        plotter.move_to(20, 0)  # draw
        plotter.pen_up()
        plotter.move_to(30, 0)  # travel
        assert plotter.canvas.total_ink() == pytest.approx(10.0)

    def test_draw_polyline(self, plotter):
        plotter.draw_polyline([(0, 0), (10, 0), (10, 10)])
        assert plotter.canvas.stroke_count() == 1
        assert plotter.canvas.total_ink() == pytest.approx(20.0)
        assert not plotter.pen_is_down

    def test_empty_polyline_noop(self, plotter):
        plotter.draw_polyline([])
        assert plotter.canvas.stroke_count() == 0

    def test_two_polylines_two_strokes(self, plotter):
        plotter.draw_polyline([(0, 0), (5, 0)])
        plotter.draw_polyline([(10, 10), (15, 10)])
        assert plotter.canvas.stroke_count() == 2

    def test_build_plotter_motor_ids(self, plotter):
        assert plotter.rcx.motor("A").get_id() == "robot:1:1.motor.x"
        assert plotter.rcx.motor("C").get_id() == "robot:1:1.motor.pen"


class TestDrawingService:
    @pytest.fixture
    def rig(self, sim, network, plotter):
        robot_node = network.attach(NetworkNode("robot", Position(0, 0)))
        client_node = network.attach(NetworkNode("client", Position(5, 0)))
        service = DrawingService(plotter, Transport(robot_node, sim))
        client = Transport(client_node, sim)
        return service, client

    def test_remote_move(self, sim, plotter, rig):
        _, client = rig
        client.request("robot", "draw.move_to", {"x": 7.0, "y": 3.0})
        sim.run_for(1.0)
        assert plotter.position == (7.0, 3.0)

    def test_remote_pen_and_polyline(self, sim, plotter, rig):
        _, client = rig
        client.request("robot", "draw.pen", {"down": True})
        sim.run_for(1.0)
        assert plotter.pen_is_down
        client.request("robot", "draw.polyline", {"points": [(0, 0), (4, 3)]})
        sim.run_for(1.0)
        # Axis-sequential gantry: a diagonal inks |dx| + |dy|.
        assert plotter.canvas.total_ink() == pytest.approx(7.0)

    def test_remote_position_query(self, sim, plotter, rig):
        _, client = rig
        plotter.move_to(1.0, 2.0)
        replies = []
        client.request("robot", "draw.position", on_reply=replies.append)
        sim.run_for(1.0)
        assert replies[0]["position"] == (1.0, 2.0)

    def test_advertises_via_discovery(self, sim, network, plotter, rig):
        service, client_transport = rig
        base_node = network.attach(NetworkNode("base", Position(0, 5)))
        lookup = LookupService(Transport(base_node, sim), sim).start()
        robot_transport = service.transport
        discovery = DiscoveryClient(robot_transport, sim).start()
        sim.run_for(1.0)
        service.advertise(discovery)
        sim.run_for(1.0)
        items = lookup.items(ServiceTemplate(interface=DRAWING_INTERFACE))
        assert len(items) == 1
        assert items[0].attributes["robot"] == "robot:1:1"
