"""InvariantMonitor: unit checks + the planted-dual-home mutation test.

The mutation test is the monitor's own proof of life: surgically create
the dual-home state a lost ROAMED announcement would leave behind
(reconciliation off, announcements severed) and assert the monitor
reports *exactly* that violation, with a causal flight-recorder trace
that shows the silent migration.
"""

from __future__ import annotations

from repro.net.geometry import ORIGIN
from repro.net.network import Network
from repro.net.node import NetworkNode
from repro.net.transport import Transport
from repro.scenarios import (
    InvariantMonitor,
    StormSpec,
    StormWorld,
    plant_dual_home,
    report_from,
)
from repro.scenarios.nodes import HeldLease, StormNode
from repro.sim.kernel import Simulator
from repro.telemetry import MetricsRegistry
from repro.util.signal import Signal

MUTATION_SPEC = StormSpec(
    name="mutation",
    nodes=30,
    duration=20.0,
    settle=25.0,
    # No storm of its own, and no self-healing: announcements are
    # fire-and-forget and reconciliation is off, so the planted silent
    # migration has nothing to save it.
    migrate_fraction=0.0,
    announce_attempts=0,
    roam_sync_interval=None,
)


class FakeBase:
    """The slice of ExtensionBase the monitor reads."""

    def __init__(self, node_id: str):
        self.node_id = node_id
        self._adapted: dict[tuple[str, str], object] = {}
        self.on_quarantined = Signal(f"{node_id}.on_quarantined")
        self.catalog = None


def make_node(node_id: str = "unit-node") -> tuple[Simulator, StormNode]:
    sim = Simulator()
    network = Network(sim, seed=1)
    node = StormNode(
        0,
        Transport(network.attach(NetworkNode(node_id, ORIGIN)), sim),
        sim,
        "class-a",
        30.0,
    )
    return sim, node


def make_monitor(sim, bases, nodes, grace: float = 5.0) -> InvariantMonitor:
    registry = MetricsRegistry(clock=sim.clock)
    return InvariantMonitor(sim, bases, nodes, registry, interval=1.0, grace=grace)


# -- unit checks -------------------------------------------------------------------


def test_transient_dual_home_within_grace_is_tolerated():
    sim, node = make_node()
    a, b = FakeBase("base-a"), FakeBase("base-b")
    a._adapted[(node.node_id, "ext")] = object()
    b._adapted[(node.node_id, "ext")] = object()
    node.held[("base-a", "ext")] = HeldLease("l1", "ext", "base-a", 1, 8.0, 100.0)
    node.held[("base-b", "ext")] = HeldLease("l2", "ext", "base-b", 1, 8.0, 100.0)
    monitor = make_monitor(sim, {"base-a": a, "base-b": b}, {node.node_id: node})
    monitor.tick()
    assert monitor.violations == []
    assert monitor.last_dual_at == 0.0
    # The bases converge before grace: the watch entry is pruned.
    del b._adapted[(node.node_id, "ext")]
    del node.held[("base-b", "ext")]
    sim.run_for(2.0)
    monitor.tick()
    assert monitor.violations == []
    assert node.node_id not in monitor._dual_since


def test_persistent_dual_home_violates_after_grace():
    sim, node = make_node()
    a, b = FakeBase("base-a"), FakeBase("base-b")
    a._adapted[(node.node_id, "ext")] = object()
    b._adapted[(node.node_id, "ext")] = object()
    node.held[("base-a", "ext")] = HeldLease("l1", "ext", "base-a", 1, 8.0, 1e9)
    node.held[("base-b", "ext")] = HeldLease("l2", "ext", "base-b", 1, 8.0, 1e9)
    monitor = make_monitor(sim, {"base-a": a, "base-b": b}, {node.node_id: node})
    fired = []
    monitor.on_violation.connect(fired.append)
    monitor.tick()
    sim.run_for(6.0)
    monitor.tick()
    monitor.tick()  # a second tick must not double-report
    assert [v.invariant for v in monitor.violations] == ["single-home"]
    assert monitor.violations[0].subject == node.node_id
    assert len(fired) == 1


def test_base_side_phantom_lease_violates_after_grace():
    sim, node = make_node()
    a = FakeBase("base-a")
    a._adapted[(node.node_id, "ext")] = object()  # the node holds nothing
    monitor = make_monitor(sim, {"base-a": a}, {node.node_id: node})
    monitor.tick()
    sim.run_for(6.0)
    monitor.tick()
    assert [v.invariant for v in monitor.violations] == ["lease-soundness"]


def test_node_side_expired_lease_violates():
    sim, node = make_node()
    node.held[("base-a", "ext")] = HeldLease("l1", "ext", "base-a", 1, 8.0, 0.0)
    monitor = make_monitor(sim, {}, {node.node_id: node})
    sim.run_for(10.0)  # far past expiry + sweeper slack
    monitor.tick()
    assert [v.invariant for v in monitor.violations] == ["lease-soundness"]


def test_revocation_zombies_violate_after_deadline():
    sim, node = make_node()
    a = FakeBase("base-a")
    a._adapted[(node.node_id, "bad-ext")] = object()
    node.held[("base-a", "bad-ext")] = HeldLease("l1", "bad-ext", "base-a", 1, 8.0, 1e9)
    monitor = make_monitor(sim, {"base-a": a}, {node.node_id: node})
    monitor.expect_revocation("bad-ext", deadline=5.0)
    monitor.tick()
    assert monitor.violations == []  # before the deadline: still converging
    sim.run_for(6.0)
    monitor.tick()
    assert [v.invariant for v in monitor.violations] == ["revocation-completeness"]
    assert "bad-ext" in monitor.violations[0].subject


# -- the mutation test -------------------------------------------------------------


def test_planted_dual_home_is_caught_with_causal_trace():
    world = StormWorld(MUTATION_SPEC)
    try:
        plant_dual_home(world, "storm-0000", at=12.0)
        world.run_for(MUTATION_SPEC.total_time)
        world.monitor.tick()
        report = report_from(world)
    finally:
        world.close()
    assert [(v.invariant, v.subject) for v in report.violations] == [
        ("single-home", "storm-0000")
    ], "the monitor must report exactly the planted violation"
    violation = report.violations[0]
    assert "storm-base-" in violation.detail
    # The causal trace shows the silent migration that planted the bug.
    assert "storm.migrate" in violation.trace
    assert "storm-0000" in violation.trace


def test_unmutated_control_run_is_clean():
    world = StormWorld(MUTATION_SPEC)
    try:
        world.run_for(MUTATION_SPEC.total_time)
        world.monitor.tick()
        report = report_from(world)
    finally:
        world.close()
    assert report.clean, report.violations
