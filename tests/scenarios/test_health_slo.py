"""Acceptance: a seeded storm that drops 40% of ROAMED announcements
must deterministically burn the roaming SLOs — page alert, cause chain
naming a node, flight-ring dump on disk — while the same seed with the
drops turned off stays green end to end."""

from __future__ import annotations

import pytest

from repro.scenarios.harness import run_storm
from repro.telemetry.health.tower import ops_storm_spec

#: Small enough for the suite (~0.5s a run), large enough that the
#: faulted seed has been verified to fire both roaming SLOs.
NODES = 40


def _spec(drop_roamed: float):
    return ops_storm_spec(seed=7, drop_roamed=drop_roamed, nodes=NODES, bases=3)


@pytest.fixture(scope="module")
def faulted_report(tmp_path_factory):
    dump_dir = tmp_path_factory.mktemp("flight-dumps")
    report = run_storm(_spec(drop_roamed=0.4), dump_dir=str(dump_dir))
    return report, dump_dir


class TestFaultedStormBurns:
    def test_convergence_slo_fires_a_page(self, faulted_report):
        report, _ = faulted_report
        firing = [
            a for a in report.health["alerts"] if a["status"] == "firing"
        ]
        fired = {(a["slo"], a["severity"]) for a in firing}
        assert ("roam-convergence", "page") in fired
        assert ("roam-delivery", "page") in fired
        # The slow (ticket) pairs corroborate: sustained, not a blip.
        assert {"ticket"} <= {a["severity"] for a in firing}

    def test_peak_report_carries_cause_chain(self, faulted_report):
        report, _ = faulted_report
        peak = report.health["peak"]
        assert peak["overall"] == "critical"
        assert peak["subsystems"]["roaming"] == "critical"
        burns = [
            c
            for c in peak["conditions"]
            if c.get("cause", {}).get("kind") == "slo.burn"
        ]
        assert burns, "peak incident must explain itself with slo.burn causes"
        # At least one chain bottoms out in a blamed sample.
        samples = [
            sub
            for c in burns
            for sub in c["cause"].get("causes", ())
            if sub["kind"] == "sample"
        ]
        assert samples and any(
            sub["subject"].startswith("storm-") for sub in samples
        )

    def test_burn_alert_dumped_a_flight_ring(self, faulted_report):
        from repro.telemetry.recorder import read_flight_jsonl

        _, dump_dir = faulted_report
        dumps = sorted(dump_dir.glob("flight-*.jsonl"))
        assert dumps, "slo.burn must auto-dump the blamed node's ring"
        kinds = {
            event.kind for path in dumps for event in read_flight_jsonl(path)
        }
        assert "slo.burn" in kinds

    def test_faulted_run_is_deterministic(self, faulted_report):
        report, _ = faulted_report
        twin = run_storm(_spec(drop_roamed=0.4))
        assert twin.fingerprint == report.fingerprint
        edges = lambda r: [
            (a["slo"], a["pair"], a["status"], round(a["time"], 6))
            for a in r.health["alerts"]
        ]
        assert edges(twin) == edges(report)


class TestCleanTwinStaysGreen:
    @pytest.fixture(scope="class")
    def clean_report(self):
        return run_storm(_spec(drop_roamed=0.0))

    def test_no_alert_ever_fires(self, clean_report):
        assert clean_report.clean
        assert clean_report.health["alerts"] == []
        assert "peak" not in clean_report.health

    def test_overall_healthy(self, clean_report):
        assert clean_report.health["overall"] == "healthy"
        assert clean_report.health["subsystems"]["roaming"] == "healthy"

    def test_slos_still_measured(self, clean_report):
        slos = {s["name"]: s for s in clean_report.health["slos"]}
        assert set(slos) == {"roam-convergence", "roam-delivery"}
        # Green means "observed and passing", not "never sampled".
        assert slos["roam-delivery"]["good_total"] > 0
        assert slos["roam-convergence"]["good_total"] > 0
