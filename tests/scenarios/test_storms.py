"""Storm scenarios: determinism across seeds + invariants under chaos.

The contract under test (ISSUE 8 acceptance):

- storms are deterministic: the same spec produces byte-identical
  fingerprints on every run, for each of three fixed seeds;
- the federated invariants hold under drop + partition chaos once the
  hardened roaming (retried announcements + epochs + anti-entropy) is
  on — the invariant monitor finishes every storm clean;
- the flight-recorder timeline explains the runs causally: a base only
  drops a roamer after the node's migration event.
"""

from __future__ import annotations

import logging
from pathlib import Path

import pytest

from repro.scenarios import (
    StormReport,
    StormSpec,
    StormWorld,
    partition_storm,
    report_from,
    revocation_storm,
    run_storm,
    soak,
)
from tests.support import export_artifacts

#: The acceptance seeds: each must replay identically.
SEEDS = (7, 21, 99)

_cache: dict[str, StormReport] = {}


def run_cached(spec: StormSpec) -> StormReport:
    """Run ``spec`` once per session; on violations, ship the black box.

    When ``REPRO_ARTIFACTS_DIR`` is set (the CI scenarios job), a dirty
    run exports its telemetry + flight rings + the spec JSON so the
    failure can be replayed locally from the artifact.
    """
    key = spec.to_json()
    if key not in _cache:
        world = StormWorld(spec)
        try:
            world.run_for(spec.total_time)
            world.monitor.tick()
            report = report_from(world)
            if not report.clean:
                directory = export_artifacts(f"storms-{spec.name}", world.registry)
                if directory is not None:
                    Path(directory, "spec.json").write_text(
                        spec.to_json() + "\n", encoding="utf-8"
                    )
            _cache[key] = report
        finally:
            world.close()
    return _cache[key]

CHAOS = StormSpec(
    name="chaos",
    bases=3,
    nodes=40,
    duration=20.0,
    settle=25.0,
    drop_roamed=0.4,
)


@pytest.fixture(autouse=True)
def _quiet_announce_warnings():
    """Dropped announcements are the point here; keep logs readable."""
    logging.disable(logging.WARNING)
    yield
    logging.disable(logging.NOTSET)


@pytest.mark.parametrize("seed", SEEDS)
def test_storms_replay_identically(seed):
    spec = CHAOS.with_overrides(seed=seed)
    first = run_cached(spec)
    second = run_storm(spec)  # a genuinely fresh, uncached run
    assert first.fingerprint == second.fingerprint
    assert first.counters == second.counters
    assert first.homes == second.homes


@pytest.mark.parametrize("seed", SEEDS)
def test_invariants_hold_under_drop_chaos(seed):
    report = run_cached(CHAOS.with_overrides(seed=seed))
    assert report.clean, report.violations
    assert report.dual_homed == []
    # The chaos was real: announcements were dropped and healed.
    assert report.network["dropped"] > 0
    assert (
        report.counters["midas.roam.reconciled"]
        + report.counters["midas.roam.stale_ignored"]
        > 0
    )
    # And every node that stayed ends single-homed where it holds leases.
    for node, tracked in report.homes.items():
        assert len(tracked) == 1, (node, tracked)


def test_timeline_orders_migration_before_drop():
    report = run_storm(CHAOS.with_overrides(seed=7, drop_roamed=0.0))
    migrated_at: dict[str, float] = {}
    drops: list[tuple[str, float]] = []
    for (node, kind, time, roamed, _peer) in report.roam_events:
        if kind == "storm.migrate" and node not in migrated_at:
            migrated_at[node] = time
        elif kind == "midas.roam.dropped":
            drops.append((roamed, time))
    assert drops, "a lossless storm must produce roam drops at old homes"
    for roamed, time in drops:
        assert roamed in migrated_at
        assert migrated_at[roamed] <= time, (
            f"{roamed} dropped at {time} before its first migration "
            f"at {migrated_at[roamed]}"
        )


def test_revocation_storm_leaves_no_zombies():
    report = run_cached(revocation_storm(nodes=50))
    assert report.clean, report.violations
    assert report.revocation_cleared_at is not None
    name = report.spec.revoke_extension
    for node, leases in report.held.items():
        assert not any(lease.endswith(f":{name}") for lease in leases), (node, leases)


def test_partition_storm_reconverges():
    report = run_cached(partition_storm(nodes=40))
    assert report.clean, report.violations
    assert report.dual_homed == []
    # Partitions really happened (the world logs them on the timeline).
    kinds = {kind for (_n, kind, _t, _r, _p) in report.roam_events}
    assert "storm.partition" in kinds and "storm.heal" in kinds


def test_soak_mixes_everything_and_stays_clean():
    report = run_cached(soak(nodes=50))
    assert report.clean, report.violations
    assert report.stats["churns_planned"] > 0
    assert report.stats["migrations"] > 0
    assert report.revocation_cleared_at is not None


def test_fire_and_forget_baseline_is_actually_broken():
    """The hardening is load-bearing: turn it off and the storm bites.

    Classic fire-and-forget announcements with no reconciliation, 100%
    announcement loss: migrated nodes stay dual-homed until the
    registrar backstop, which the monitor's grace deliberately beats.
    """
    spec = CHAOS.with_overrides(
        seed=7,
        drop_roamed=1.0,
        announce_attempts=0,
        roam_sync_interval=None,
    )
    report = run_storm(spec)
    assert not report.clean
    assert {v.invariant for v in report.violations} == {"single-home"}
