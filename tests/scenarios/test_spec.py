"""StormSpec: validation, serialization, presets."""

from __future__ import annotations

import pytest

from repro.scenarios import PRESETS, StormSpec


def test_round_trips_through_json():
    spec = StormSpec(name="x", seed=42, nodes=500, drop_roamed=0.3, revoke_at=20.0)
    assert StormSpec.from_json(spec.to_json()) == spec


def test_from_dict_ignores_unknown_keys():
    spec = StormSpec.from_dict({"seed": 9, "nodes": 10, "future_knob": True})
    assert spec.seed == 9 and spec.nodes == 10


def test_with_overrides_copies_frozen_spec():
    spec = StormSpec()
    other = spec.with_overrides(seed=99, bases=4)
    assert (other.seed, other.bases) == (99, 4)
    assert (spec.seed, spec.bases) == (7, 2)  # the original is untouched


def test_total_time_sums_the_phases():
    spec = StormSpec(storm_start=10.0, duration=40.0, settle=30.0)
    assert spec.total_time == 80.0


@pytest.mark.parametrize(
    "overrides",
    [
        {"bases": 1},
        {"bases": 9},
        {"nodes": 0},
        {"migrate_fraction": 1.5},
        {"grace": 0.5, "monitor_interval": 1.0},
        {"revoke_at": 1.0},  # outside the storm window
        {"quarantine_at": 999.0},
    ],
)
def test_validate_rejects_bad_specs(overrides):
    with pytest.raises(ValueError):
        StormSpec(**overrides).validate()


def test_presets_validate_and_accept_overrides():
    for name, factory in PRESETS.items():
        spec = factory(nodes=50, seed=3)
        spec.validate()
        assert spec.nodes == 50 and spec.seed == 3
        assert spec.name  # presets are self-describing
    assert PRESETS["partition"]().partition_cycles > 0
    assert PRESETS["revocation"]().revoke_at is not None
    assert PRESETS["soak"]().churn_fraction > 0
