"""Storm scenario tests."""
