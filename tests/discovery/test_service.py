"""Service item / template tests."""

from repro.discovery.service import ServiceItem, ServiceTemplate


def item(**kwargs):
    defaults = dict(interface="midas.AdaptationService", provider="robot:1:1",
                    attributes={"midas": "receiver", "hall": "A"})
    defaults.update(kwargs)
    return ServiceItem(**defaults)


class TestServiceItem:
    def test_unique_service_ids(self):
        assert item().service_id != item().service_id

    def test_describe_mentions_interface_and_provider(self):
        text = item().describe()
        assert "midas.AdaptationService" in text
        assert "robot:1:1" in text


class TestServiceTemplate:
    def test_exact_interface_match(self):
        assert ServiceTemplate(interface="midas.AdaptationService").matches(item())

    def test_wildcard_interface(self):
        assert ServiceTemplate(interface="midas.*").matches(item())
        assert not ServiceTemplate(interface="robot.*").matches(item())

    def test_default_template_matches_all(self):
        assert ServiceTemplate().matches(item())

    def test_attribute_subset_matching(self):
        assert ServiceTemplate(attributes={"midas": "receiver"}).matches(item())
        assert ServiceTemplate(attributes={"midas": "receiver", "hall": "A"}).matches(item())

    def test_attribute_value_must_equal(self):
        assert not ServiceTemplate(attributes={"hall": "B"}).matches(item())

    def test_missing_attribute_fails(self):
        assert not ServiceTemplate(attributes={"zone": "north"}).matches(item())

    def test_provider_pinning(self):
        assert ServiceTemplate(provider="robot:1:1").matches(item())
        assert not ServiceTemplate(provider="robot:2:2").matches(item())
