"""Discovery client (join protocol) tests."""

import pytest

from repro.discovery.client import DiscoveryClient
from repro.discovery.registrar import LookupService
from repro.discovery.service import ServiceItem, ServiceTemplate
from repro.net.geometry import Position
from repro.net.mobility import WaypointMobility
from repro.net.node import NetworkNode
from repro.net.transport import Transport


@pytest.fixture
def world(sim, network):
    base = network.attach(NetworkNode("base", Position(0, 0), radio_range=60))
    device = network.attach(NetworkNode("device", Position(5, 0), radio_range=60))
    lookup = LookupService(Transport(base, sim), sim).start()
    client = DiscoveryClient(Transport(device, sim), sim).start()
    return lookup, client, device


class TestDiscovery:
    def test_finds_registrar_via_probe(self, sim, world):
        lookup, client, _ = world
        sim.run_for(0.5)
        assert client.registrars == ["base"]

    def test_on_registrar_found_fires_once(self, sim, world):
        lookup, client, _ = world
        found = []
        client.on_registrar_found.connect(found.append)
        sim.run_for(20.0)  # many announces arrive
        assert found == [] or found == ["base"]  # connected after first announce
        # the registrar set stays a single entry
        assert client.registrars == ["base"]

    def test_registrar_lost_after_silence(self, sim, world):
        lookup, client, _ = world
        sim.run_for(1.0)
        lost = []
        client.on_registrar_lost.connect(lost.append)
        lookup.stop()
        sim.run_for(60.0)
        assert lost == ["base"]
        assert client.registrars == []

    def test_rediscovery_after_loss(self, sim, world):
        lookup, client, _ = world
        sim.run_for(1.0)
        lookup.stop()
        sim.run_for(60.0)
        lookup.start()
        sim.run_for(10.0)
        assert client.registrars == ["base"]


class TestRegistrationManagement:
    def test_register_reaches_known_registrar(self, sim, world):
        lookup, client, _ = world
        sim.run_for(1.0)
        registration = client.register(ServiceItem("svc.X", "device"))
        sim.run_for(1.0)
        assert lookup.registration_count() == 1
        assert registration.registered_at() == ["base"]

    def test_register_before_discovery_joins_later(self, sim, world):
        lookup, client, _ = world
        registration = client.register(ServiceItem("svc.X", "device"))
        sim.run_for(10.0)
        assert registration.registered_at() == ["base"]

    def test_auto_renewal_keeps_registration_alive(self, sim, world):
        lookup, client, _ = world
        sim.run_for(1.0)
        client.register(ServiceItem("svc.X", "device"), duration=5.0)
        sim.run_for(60.0)
        assert lookup.registration_count() == 1

    def test_cancel_removes_everywhere(self, sim, world):
        lookup, client, _ = world
        sim.run_for(1.0)
        registration = client.register(ServiceItem("svc.X", "device"))
        sim.run_for(1.0)
        client.cancel(registration)
        sim.run_for(1.0)
        assert lookup.registration_count() == 0
        sim.run_for(60.0)  # and it stays gone (no zombie renewals)
        assert lookup.registration_count() == 0

    def test_lookup_query(self, sim, world):
        lookup, client, _ = world
        sim.run_for(1.0)
        client.register(ServiceItem("svc.X", "device"))
        sim.run_for(1.0)
        results = []
        client.lookup(ServiceTemplate(interface="svc.*"), results.append)
        sim.run_for(1.0)
        assert len(results[0]) == 1

    def test_lookup_without_registrar_returns_empty(self, sim, network):
        lonely = network.attach(NetworkNode("lonely", Position(500, 500)))
        client = DiscoveryClient(Transport(lonely, sim), sim).start()
        results = []
        client.lookup(ServiceTemplate(), results.append)
        assert results == [[]]


class TestMobilityIntegration:
    def test_walkaway_expires_registration_and_loses_registrar(self, sim, world):
        lookup, client, device = world
        sim.run_for(1.0)
        client.register(ServiceItem("svc.X", "device"), duration=5.0)
        sim.run_for(2.0)
        mobility = WaypointMobility(sim, device, speed=50.0)
        mobility.go_to(Position(1000, 0))
        sim.run_for(120.0)
        assert lookup.registration_count() == 0
        assert client.registrars == []

    def test_walkback_reregisters(self, sim, world):
        lookup, client, device = world
        sim.run_for(1.0)
        client.register(ServiceItem("svc.X", "device"), duration=5.0)
        mobility = WaypointMobility(sim, device, speed=50.0)
        mobility.go_to(Position(1000, 0))
        sim.run_for(120.0)
        mobility.go_to(Position(5, 0))
        sim.run_for(120.0)
        assert lookup.registration_count() == 1
