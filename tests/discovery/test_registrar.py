"""Lookup service (registrar) tests."""

import pytest

from repro.discovery.events import EventKind
from repro.discovery.registrar import (
    CANCEL,
    LISTEN,
    QUERY,
    REGISTER,
    RENEW,
    RENEW_BATCH,
    LookupService,
)
from repro.discovery.service import ServiceItem, ServiceTemplate
from repro.net.geometry import Position
from repro.net.node import NetworkNode
from repro.net.transport import Transport


@pytest.fixture
def world(sim, network):
    base = network.attach(NetworkNode("base", Position(0, 0)))
    client = network.attach(NetworkNode("client", Position(5, 0)))
    base_transport = Transport(base, sim)
    client_transport = Transport(client, sim)
    lookup = LookupService(base_transport, sim)
    return lookup, client_transport


def register(sim, client, item, duration=10.0):
    replies = []
    client.request("base", REGISTER, {"item": item, "duration": duration},
                   on_reply=replies.append)
    sim.run_for(1.0)
    return replies[0]


class TestRegistration:
    def test_register_grants_lease(self, sim, world):
        lookup, client = world
        item = ServiceItem("svc.A", "client")
        reply = register(sim, client, item)
        assert "lease_id" in reply
        assert lookup.registration_count() == 1

    def test_lease_duration_clamped(self, sim, world):
        lookup, client = world
        reply = register(sim, client, ServiceItem("svc.A", "client"), duration=9999.0)
        assert reply["duration"] <= 30.0

    def test_registration_expires_without_renewal(self, sim, world):
        lookup, client = world
        register(sim, client, ServiceItem("svc.A", "client"), duration=5.0)
        sim.run_for(10.0)
        assert lookup.registration_count() == 0

    def test_renew_keeps_registration(self, sim, world):
        lookup, client = world
        reply = register(sim, client, ServiceItem("svc.A", "client"), duration=5.0)
        for _ in range(4):
            sim.run_for(3.0)
            client.request("base", RENEW, {"lease_id": reply["lease_id"]})
        sim.run_for(1.0)
        assert lookup.registration_count() == 1

    def test_cancel_removes_registration(self, sim, world):
        lookup, client = world
        reply = register(sim, client, ServiceItem("svc.A", "client"))
        client.request("base", CANCEL, {"lease_id": reply["lease_id"]})
        sim.run_for(1.0)
        assert lookup.registration_count() == 0

    def test_reregistration_replaces_same_service_id(self, sim, world):
        lookup, client = world
        item = ServiceItem("svc.A", "client")
        register(sim, client, item)
        register(sim, client, item)
        assert lookup.registration_count() == 1

    def test_on_registered_signal(self, sim, world):
        lookup, client = world
        seen = []
        lookup.on_registered.connect(seen.append)
        register(sim, client, ServiceItem("svc.A", "client"))
        assert len(seen) == 1
        assert seen[0].interface == "svc.A"


class TestQuery:
    def test_query_by_template(self, sim, world):
        lookup, client = world
        register(sim, client, ServiceItem("svc.A", "client"))
        register(sim, client, ServiceItem("svc.B", "client"))
        results = []
        client.request("base", QUERY, {"template": ServiceTemplate(interface="svc.A")},
                       on_reply=lambda body: results.append(body["items"]))
        sim.run_for(1.0)
        assert [i.interface for i in results[0]] == ["svc.A"]

    def test_local_items_helper(self, sim, world):
        lookup, client = world
        register(sim, client, ServiceItem("svc.A", "client"))
        assert len(lookup.items()) == 1
        assert lookup.items(ServiceTemplate(interface="nothing")) == []


class TestRemoteEvents:
    def test_listener_notified_on_register_and_expiry(self, sim, world):
        lookup, client = world
        events = []
        client.register("my.events", lambda sender, body: events.append(body))
        client.request(
            "base",
            LISTEN,
            {"template": ServiceTemplate(interface="svc.*"),
             "operation": "my.events", "duration": 30.0},
        )
        sim.run_for(1.0)
        register(sim, client, ServiceItem("svc.A", "client"), duration=3.0)
        sim.run_for(10.0)  # let it expire
        kinds = [e.kind for e in events]
        assert kinds == [EventKind.REGISTERED, EventKind.EXPIRED]
        assert events[0].sequence < events[1].sequence

    def test_listener_not_notified_for_non_matching(self, sim, world):
        lookup, client = world
        events = []
        client.register("my.events", lambda sender, body: events.append(body))
        client.request(
            "base",
            LISTEN,
            {"template": ServiceTemplate(interface="robot.*"),
             "operation": "my.events"},
        )
        sim.run_for(1.0)
        register(sim, client, ServiceItem("svc.A", "client"))
        sim.run_for(1.0)
        assert events == []

    def test_listener_lease_renewable(self, sim, world):
        lookup, client = world
        replies = []
        client.request(
            "base",
            LISTEN,
            {"template": ServiceTemplate(), "operation": "my.events", "duration": 5.0},
            on_reply=replies.append,
        )
        sim.run_for(1.0)
        renewed = []
        client.request("base", RENEW, {"lease_id": replies[0]["lease_id"]},
                       on_reply=renewed.append)
        sim.run_for(1.0)
        assert renewed


class TestAnnouncements:
    def test_start_broadcasts_announce(self, sim, network, world):
        lookup, client = world
        heard = []
        client.register("lookup.announce", lambda sender, body: heard.append(body))
        lookup.start()
        sim.run_for(0.5)
        assert heard and heard[0]["registrar"] == "base"

    def test_periodic_announcements(self, sim, world):
        lookup, client = world
        heard = []
        client.register("lookup.announce", lambda sender, body: heard.append(sim.now))
        lookup.start()
        sim.run_for(16.0)
        assert len(heard) >= 3

    def test_stop_halts_announcements(self, sim, world):
        lookup, client = world
        heard = []
        client.register("lookup.announce", lambda sender, body: heard.append(sim.now))
        lookup.start()
        sim.run_for(1.0)
        lookup.stop()
        count = len(heard)
        sim.run_for(20.0)
        assert len(heard) == count

    def test_probe_answered_with_unicast_announce(self, sim, world):
        lookup, client = world
        heard = []
        client.register("lookup.announce", lambda sender, body: heard.append(body))
        client.broadcast("lookup.probe", {})
        sim.run_for(1.0)
        assert heard and heard[0]["registrar"] == "base"


class TestRenewBatch:
    """One round trip renews many leases; losers are reported, not fatal."""

    def test_batch_renews_every_listed_lease(self, sim, world):
        lookup, client = world
        ids = [
            register(sim, client, ServiceItem(f"svc.{i}", "client"), duration=10.0)[
                "lease_id"
            ]
            for i in range(5)
        ]  # registration i lands at t≈i; all expire by t≈15
        sim.run_for(3.0)
        replies = []
        client.request(
            "base", RENEW_BATCH, {"lease_ids": ids}, on_reply=replies.append
        )
        sim.run_for(1.0)
        assert set(replies[0]["renewed"]) == set(ids)
        assert replies[0]["unknown"] == []
        sim.run_for(8.0)  # past every original expiry, within renewed terms
        assert lookup.registration_count() == 5

    def test_batch_reports_unknown_ids(self, sim, world):
        lookup, client = world
        good = register(sim, client, ServiceItem("svc.A", "client"), duration=5.0)[
            "lease_id"
        ]
        replies = []
        client.request(
            "base",
            RENEW_BATCH,
            {"lease_ids": [good, "lease-bogus"]},
            on_reply=replies.append,
        )
        sim.run_for(1.0)
        assert list(replies[0]["renewed"]) == [good]
        assert replies[0]["unknown"] == ["lease-bogus"]

    def test_batch_against_sweeping_table(self, sim, network):
        base = network.attach(NetworkNode("base", Position(0, 0)))
        client_node = network.attach(NetworkNode("client", Position(5, 0)))
        lookup = LookupService(
            Transport(base, sim), sim, sweep_interval=1.0
        )
        client = Transport(client_node, sim)
        ids = [
            register(sim, client, ServiceItem(f"svc.{i}", "client"), duration=4.0)[
                "lease_id"
            ]
            for i in range(3)
        ]
        for _ in range(4):
            client.request("base", RENEW_BATCH, {"lease_ids": ids})
            sim.run_for(3.0)
        assert lookup.registration_count() == 3
        sim.run_for(10.0)  # renewals stop: the sweep lapses all three
        assert lookup.registration_count() == 0
