"""Discovery client edges: stop, explicit-registrar lookup, advertising."""

import pytest

from repro.discovery.client import DiscoveryClient
from repro.discovery.registrar import LookupService
from repro.discovery.service import ServiceItem, ServiceTemplate
from repro.net.geometry import Position
from repro.net.node import NetworkNode
from repro.net.transport import Transport


@pytest.fixture
def world(sim, network):
    base = network.attach(NetworkNode("base", Position(0, 0), 60))
    second = network.attach(NetworkNode("base2", Position(0, 10), 60))
    device = network.attach(NetworkNode("device", Position(5, 0), 60))
    lookup_one = LookupService(Transport(base, sim), sim).start()
    lookup_two = LookupService(Transport(second, sim), sim).start()
    client = DiscoveryClient(Transport(device, sim), sim).start()
    sim.run_for(1.0)
    return lookup_one, lookup_two, client


class TestClientEdges:
    def test_registers_with_all_registrars(self, sim, world):
        lookup_one, lookup_two, client = world
        client.register(ServiceItem("svc.X", "device"))
        sim.run_for(1.0)
        assert lookup_one.registration_count() == 1
        assert lookup_two.registration_count() == 1

    def test_lookup_with_explicit_registrar(self, sim, world):
        lookup_one, lookup_two, client = world
        client.register(ServiceItem("svc.X", "device"))
        sim.run_for(1.0)
        lookup_one._registrations.cancel(
            lookup_one._registrations.active()[0].lease_id
        )
        results = []
        client.lookup(
            ServiceTemplate(interface="svc.*"), results.append, registrar="base2"
        )
        sim.run_for(1.0)
        assert len(results[0]) == 1

    def test_stop_halts_renewals(self, sim, world):
        lookup_one, _, client = world
        client.register(ServiceItem("svc.X", "device"), duration=5.0)
        sim.run_for(1.0)
        client.stop()
        sim.run_for(30.0)
        # Without renewals, the remote registration lapses.
        assert lookup_one.registration_count() == 0

    def test_store_service_advertises(self, sim, network, world):
        from repro.store.database import MovementStore
        from repro.store.service import STORE_INTERFACE, StoreService

        lookup_one, _, client = world
        StoreService(MovementStore(), client.transport).advertise(client)
        sim.run_for(1.0)
        items = lookup_one.items(ServiceTemplate(interface=STORE_INTERFACE))
        assert len(items) == 1

    def test_tuplespace_service_advertises(self, sim, network, world):
        from repro.tuplespace.service import SPACE_INTERFACE, TupleSpaceService
        from repro.tuplespace.space import TupleSpace

        lookup_one, _, client = world
        TupleSpaceService(TupleSpace(sim), client.transport, sim).advertise(client)
        sim.run_for(1.0)
        items = lookup_one.items(ServiceTemplate(interface=SPACE_INTERFACE))
        assert len(items) == 1
