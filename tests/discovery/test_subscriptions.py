"""DiscoveryClient remote-event subscription tests."""

import pytest

from repro.discovery.client import DiscoveryClient
from repro.discovery.events import EventKind
from repro.discovery.registrar import LookupService
from repro.discovery.service import ServiceItem, ServiceTemplate
from repro.net.geometry import Position
from repro.net.node import NetworkNode
from repro.net.transport import Transport


@pytest.fixture
def world(sim, network):
    infra = network.attach(NetworkNode("infra", Position(0, 0), 60))
    lookup = LookupService(Transport(infra, sim), sim).start()
    watcher_node = network.attach(NetworkNode("watcher", Position(5, 0), 60))
    watcher = DiscoveryClient(Transport(watcher_node, sim), sim).start()
    provider_node = network.attach(NetworkNode("provider", Position(0, 5), 60))
    provider = DiscoveryClient(Transport(provider_node, sim), sim).start()
    sim.run_for(1.0)  # everyone discovered the registrar
    return lookup, watcher, provider


class TestSubscriptions:
    def test_events_for_future_registrations(self, sim, world):
        lookup, watcher, provider = world
        events = []
        watcher.listen(ServiceTemplate(interface="svc.*"), events.append)
        sim.run_for(1.0)
        provider.register(ServiceItem("svc.A", "provider"))
        sim.run_for(1.0)
        assert [e.kind for e in events] == [EventKind.REGISTERED]
        assert events[0].item.interface == "svc.A"

    def test_expiry_event_on_provider_silence(self, sim, network, world):
        lookup, watcher, provider = world
        events = []
        watcher.listen(ServiceTemplate(interface="svc.*"), events.append)
        sim.run_for(1.0)
        provider.register(ServiceItem("svc.A", "provider"))
        sim.run_for(1.0)
        network.partition("infra", "provider")
        sim.run_for(60.0)
        kinds = [e.kind for e in events]
        assert EventKind.EXPIRED in kinds

    def test_cancel_subscription(self, sim, world):
        lookup, watcher, provider = world
        events = []
        subscription = watcher.listen(ServiceTemplate(interface="svc.*"), events.append)
        sim.run_for(1.0)
        watcher.cancel_subscription(subscription)
        sim.run_for(1.0)
        provider.register(ServiceItem("svc.A", "provider"))
        sim.run_for(1.0)
        assert events == []

    def test_subscription_survives_many_listener_lease_terms(self, sim, world):
        lookup, watcher, provider = world
        events = []
        watcher.listen(
            ServiceTemplate(interface="svc.*"), events.append, duration=3.0
        )
        sim.run_for(30.0)  # many listener-lease terms: renewals keep it alive
        provider.register(ServiceItem("svc.A", "provider"))
        sim.run_for(1.0)
        assert len(events) == 1

    def test_subscription_taken_with_late_registrar(self, sim, network, world):
        lookup, watcher, provider = world
        events = []
        watcher.listen(ServiceTemplate(interface="svc.*"), events.append)
        # A second registrar appears later, in range of everyone.
        late_node = network.attach(NetworkNode("late-infra", Position(5, 5), 60))
        late_lookup = LookupService(Transport(late_node, sim), sim).start()
        sim.run_for(10.0)
        provider.register(ServiceItem("svc.A", "provider"))
        sim.run_for(2.0)
        # One event per registrar that saw the registration (consumers
        # must be idempotent, as documented).
        assert 1 <= len(events) <= 2
        registered = {e.registrar for e in events}
        assert registered <= {"infra", "late-infra"}
