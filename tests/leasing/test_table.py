"""Lease table (expiry tracking) tests."""

import pytest

from repro.errors import LeaseDeniedError, LeaseExpiredError
from repro.leasing.lease import LeaseState
from repro.leasing.table import LeaseTable


@pytest.fixture
def table(sim):
    return LeaseTable(sim, name="test")


class TestGrant:
    def test_grant_returns_active_lease(self, sim, table):
        lease = table.grant("node-a", "ext", duration=5.0)
        assert lease.active
        assert lease in table.active()

    def test_non_positive_duration_rejected(self, table):
        with pytest.raises(LeaseDeniedError):
            table.grant("a", "x", duration=0.0)

    def test_max_duration_clamps(self, sim):
        table = LeaseTable(sim, max_duration=5.0)
        lease = table.grant("a", "x", duration=100.0)
        assert lease.duration == 5.0

    def test_held_by(self, table):
        table.grant("a", "x", 5.0)
        table.grant("a", "y", 5.0)
        table.grant("b", "z", 5.0)
        assert len(list(table.held_by("a"))) == 2


class TestExpiry:
    def test_expires_exactly_at_term(self, sim, table):
        expired = []
        table.on_expired.connect(lambda lease: expired.append(sim.now))
        table.grant("a", "x", duration=5.0)
        sim.run(until=10.0)
        assert expired == [5.0]

    def test_expired_lease_removed(self, sim, table):
        lease = table.grant("a", "x", duration=5.0)
        sim.run(until=10.0)
        assert lease.state is LeaseState.EXPIRED
        assert len(table) == 0
        with pytest.raises(LeaseExpiredError):
            table.get(lease.lease_id)

    def test_renewal_postpones_expiry(self, sim, table):
        expired = []
        table.on_expired.connect(lambda lease: expired.append(sim.now))
        lease = table.grant("a", "x", duration=5.0)
        sim.run(until=3.0)
        table.renew(lease.lease_id)
        sim.run(until=7.9)
        assert expired == []
        sim.run(until=8.1)
        assert expired == [8.0]

    def test_many_renewals_keep_alive_indefinitely(self, sim, table):
        lease = table.grant("a", "x", duration=2.0)
        for round_end in range(1, 20):
            sim.run(until=float(round_end))
            table.renew(lease.lease_id)
        assert lease.active
        assert lease.renewals == 19

    def test_renew_with_shorter_duration(self, sim, table):
        lease = table.grant("a", "x", duration=10.0)
        table.renew(lease.lease_id, duration=1.0)
        sim.run(until=1.5)
        assert not lease.active

    def test_renew_unknown_lease_raises(self, table):
        with pytest.raises(LeaseExpiredError):
            table.renew("nothing")

    def test_renew_after_expiry_raises(self, sim, table):
        lease = table.grant("a", "x", duration=1.0)
        sim.run(until=2.0)
        with pytest.raises(LeaseExpiredError):
            table.renew(lease.lease_id)


class TestCancel:
    def test_cancel_fires_signal_not_expired(self, sim, table):
        cancelled, expired = [], []
        table.on_cancelled.connect(cancelled.append)
        table.on_expired.connect(expired.append)
        lease = table.grant("a", "x", duration=5.0)
        table.cancel(lease.lease_id)
        sim.run(until=10.0)
        assert len(cancelled) == 1
        assert expired == []
        assert lease.state is LeaseState.CANCELLED

    def test_cancelled_lease_removed(self, sim, table):
        lease = table.grant("a", "x", 5.0)
        table.cancel(lease.lease_id)
        assert len(table) == 0

    def test_cancel_unknown_raises(self, table):
        with pytest.raises(LeaseExpiredError):
            table.cancel("nothing")


class TestIndependence:
    def test_leases_expire_independently(self, sim, table):
        expired = []
        table.on_expired.connect(lambda lease: expired.append(lease.resource))
        table.grant("a", "short", duration=1.0)
        table.grant("a", "long", duration=10.0)
        sim.run(until=5.0)
        assert expired == ["short"]
        assert len(table) == 1

    def test_contains(self, table):
        lease = table.grant("a", "x", 5.0)
        assert lease.lease_id in table
        assert "other" not in table
