"""Batched lease machinery: table sweeps and agent batch renewal.

These are the fleet-scale modes — one kernel event per table/agent per
interval instead of one per lease — with semantics identical to the
exact per-lease modes at sweep-tick resolution.
"""

import pytest

from repro.errors import LeaseExpiredError
from repro.leasing.renewer import RenewalAgent
from repro.leasing.table import LeaseTable
from repro.resilience.policy import RetryPolicy


class FakeRemote:
    def __init__(self):
        self.renew_calls = 0
        self.fail = False

    def renew_function(self, tracked, on_success, on_failure):
        self.renew_calls += 1
        if self.fail:
            on_failure(TimeoutError("unreachable"))
        else:
            on_success()


class TestSweepTable:
    def test_expiry_fires_on_first_sweep_after_lapse(self, sim):
        table = LeaseTable(sim, name="swept", sweep_interval=1.0)
        expired = []
        table.on_expired.connect(expired.append)
        lease = table.grant("holder", "res", duration=2.5)
        sim.run(until=2.4)
        assert not expired  # not lapsed yet
        sim.run(until=3.0)  # sweep at t=3 sees expires_at=2.5
        assert [e.lease_id for e in expired] == [lease.lease_id]

    def test_renewal_defers_expiry_without_new_events(self, sim):
        table = LeaseTable(sim, name="swept", sweep_interval=1.0)
        expired = []
        table.on_expired.connect(expired.append)
        lease = table.grant("holder", "res", duration=2.0)
        sim.run(until=1.0)
        table.renew(lease.lease_id)
        # Renewal in sweep mode schedules nothing: only the sweep timer
        # itself lives in the kernel.
        assert sim.pending == 1
        sim.run(until=2.9)
        assert not expired
        sim.run(until=4.0)
        assert len(expired) == 1

    def test_one_timer_for_many_leases(self, sim):
        table = LeaseTable(sim, name="swept", sweep_interval=1.0)
        for i in range(500):
            table.grant(f"holder-{i}", i, duration=2.0)
        assert sim.pending == 1
        steps = sim.run(until=10.0)
        # ~10 sweep ticks processed 500 expiries; per-lease mode would
        # have burned one kernel event per lease.
        assert steps <= 12
        assert len(table) == 0
        assert table.sweeps >= 2

    def test_sweep_disarms_when_empty_and_rearms_on_grant(self, sim):
        table = LeaseTable(sim, name="swept", sweep_interval=1.0)
        table.grant("h", "r", duration=0.5)
        sim.run(until=5.0)
        assert sim.pending == 0  # table empty, sweep gone
        table.grant("h", "r2", duration=0.5)
        assert sim.pending == 1

    def test_cancel_and_crash_work_in_sweep_mode(self, sim):
        table = LeaseTable(sim, name="swept", sweep_interval=1.0)
        lease = table.grant("h", "r", duration=5.0)
        table.cancel(lease.lease_id)
        with pytest.raises(LeaseExpiredError):
            table.get(lease.lease_id)
        table.grant("h", "r2", duration=5.0)
        table.reset_volatile()
        assert len(table) == 0
        sim.run()
        assert sim.pending == 0


class TestBatchedRenewalAgent:
    def test_batch_mode_renews_on_cadence(self, sim):
        remote = FakeRemote()
        agent = RenewalAgent(
            sim, remote.renew_function, interval=1.0, batch_interval=0.25
        )
        agent.track("l1", "peer", duration=2.0)
        agent.track("l2", "peer", duration=2.0)
        sim.run(until=3.1)
        # Three rounds due by t=3.1 (first at ~1.0), two leases each.
        assert remote.renew_calls == 6

    def test_single_kernel_timer_for_many_leases(self, sim):
        remote = FakeRemote()
        agent = RenewalAgent(
            sim, remote.renew_function, interval=5.0, batch_interval=1.0
        )
        for i in range(1000):
            agent.track(f"l{i}", "peer", duration=10.0)
        assert sim.pending == 1
        sim.run(until=20.0)
        assert remote.renew_calls == 1000 * 4  # rounds at 5,10,15,20
        assert agent.batch_ticks == 20

    def test_batch_failure_counting_and_abandon(self, sim):
        remote = FakeRemote()
        remote.fail = True
        agent = RenewalAgent(
            sim,
            remote.renew_function,
            interval=1.0,
            max_failures=3,
            batch_interval=0.5,
        )
        abandoned = []
        agent.on_abandoned.connect(abandoned.append)
        agent.track("l1", "peer", duration=2.0)
        sim.run(until=10.0)
        assert [t.lease_id for t in abandoned] == ["l1"]
        assert not agent.tracking("l1")

    def test_batch_backoff_retries_at_tick_resolution(self, sim):
        remote = FakeRemote()
        remote.fail = True
        agent = RenewalAgent(
            sim,
            remote.renew_function,
            interval=2.0,
            max_failures=4,
            batch_interval=0.25,
            backoff=RetryPolicy(initial_backoff=0.3, multiplier=2.0, jitter=0.0),
        )
        agent.track("l1", "peer", duration=4.0)
        sim.run(until=4.0)
        # Backoff retries (2.0, 2.5, 3.25) land denser than the 2 s
        # period alone (2.0, 4.0) would allow.
        assert remote.renew_calls >= 3

    def test_stop_cancels_the_batch_timer(self, sim):
        remote = FakeRemote()
        agent = RenewalAgent(
            sim, remote.renew_function, interval=1.0, batch_interval=0.5
        )
        agent.track("l1", "peer", duration=2.0)
        agent.stop()
        sim.run(until=5.0)
        assert remote.renew_calls == 0
        # Re-tracking re-arms the sweep.
        agent.track("l2", "peer", duration=2.0)
        sim.run(until=10.0)
        assert remote.renew_calls > 0
