"""RenewalAgent coalescing, backoff retries, and fast abandonment."""

import pytest

from repro.leasing.renewer import RenewalAgent
from repro.resilience import RetryPolicy


class SlowPeer:
    """A renew function whose outcome arrives only when the test says so."""

    def __init__(self):
        self.calls = []
        self.pending = []

    def __call__(self, tracked, on_success, on_failure):
        self.calls.append(tracked.lease_id)
        self.pending.append((on_success, on_failure))

    def answer_all(self, ok=True):
        pending, self.pending = self.pending, []
        for on_success, on_failure in pending:
            if ok:
                on_success()
            else:
                on_failure(RuntimeError("renewal failed"))


class TestCoalescing:
    def test_rounds_during_in_flight_renewal_are_coalesced(self, sim):
        peer = SlowPeer()
        agent = RenewalAgent(sim, peer, interval=1.0)
        agent.track("lease-1", "peer", duration=10.0)
        # The first round (t=1) goes out and never completes; later rounds
        # must not stack a second request for the same lease.
        sim.run_for(4.5)
        assert peer.calls == ["lease-1"]
        assert agent.coalesced == 3  # t = 2, 3, 4

    def test_cadence_resumes_after_late_outcome(self, sim):
        peer = SlowPeer()
        agent = RenewalAgent(sim, peer, interval=1.0)
        agent.track("lease-1", "peer", duration=10.0)
        sim.run_for(2.5)  # one call in flight, one coalesced
        peer.answer_all(ok=True)
        sim.run_for(2.0)  # the round at t=3 goes out again
        assert len(peer.calls) == 2
        assert agent.coalesced == 2  # t = 2 and t = 4

    def test_independent_leases_not_coalesced_together(self, sim):
        peer = SlowPeer()
        agent = RenewalAgent(sim, peer, interval=1.0)
        agent.track("lease-1", "peer", duration=10.0)
        agent.track("lease-2", "peer", duration=10.0)
        sim.run_for(1.5)
        assert sorted(peer.calls) == ["lease-1", "lease-2"]

    def test_late_success_of_forgotten_lease_is_ignored(self, sim):
        peer = SlowPeer()
        agent = RenewalAgent(sim, peer, interval=1.0)
        agent.track("lease-1", "peer", duration=10.0)
        sim.run_for(1.5)
        agent.forget("lease-1")
        peer.answer_all(ok=True)  # must not resurrect tracking
        assert not agent.tracking("lease-1")
        sim.run_for(3.0)
        assert peer.calls == ["lease-1"]


class TestBackoff:
    def test_failures_retry_sooner_than_the_period(self, sim):
        calls = []

        def failing(tracked, on_success, on_failure):
            calls.append(sim.now)
            on_failure(RuntimeError("nope"))

        agent = RenewalAgent(
            sim,
            failing,
            interval=2.0,
            backoff=RetryPolicy(initial_backoff=0.25, jitter=0.0),
        )
        agent.track("lease-1", "peer", duration=10.0)
        sim.run_for(4.0)
        legacy_calls = len([t for t in calls])  # with backoff
        # Legacy cadence would have produced 2 calls by t=4; backoff
        # retries (0.25, 0.5, 1.0, capped at 2.0) produce strictly more.
        assert legacy_calls > 2

    def test_abandons_only_after_silence_budget(self, sim):
        abandoned = []

        def failing(tracked, on_success, on_failure):
            on_failure(RuntimeError("nope"))

        agent = RenewalAgent(
            sim,
            failing,
            interval=1.0,
            max_failures=6,
            backoff=RetryPolicy(initial_backoff=0.25, jitter=0.0),
        )
        agent.on_abandoned.connect(abandoned.append)
        agent.track("lease-1", "peer", duration=10.0)
        sim.run_for(5.9)  # silence budget = 6 × 1.0 s
        assert abandoned == []
        sim.run_for(2.0)
        assert [t.lease_id for t in abandoned] == ["lease-1"]

    def test_success_resets_the_silence_clock(self, sim):
        outcomes = iter([False] * 4 + [True] + [False] * 100)
        abandoned = []

        def sometimes(tracked, on_success, on_failure):
            if next(outcomes):
                on_success()
            else:
                on_failure(RuntimeError("nope"))

        agent = RenewalAgent(
            sim,
            sometimes,
            interval=1.0,
            max_failures=6,
            backoff=RetryPolicy(initial_backoff=0.25, jitter=0.0),
        )
        agent.on_abandoned.connect(abandoned.append)
        agent.track("lease-1", "peer", duration=10.0)
        sim.run_for(6.5)
        # A success landed within the first budget; the lease survives
        # past the naive 6-second deadline because silence is measured
        # from the last success, not from tracking start.
        assert abandoned == []
        assert agent.tracking("lease-1")


class TestAbandon:
    def test_abandon_fires_signal_and_stops_renewing(self, sim):
        peer = SlowPeer()
        agent = RenewalAgent(sim, peer, interval=1.0)
        abandoned = []
        agent.on_abandoned.connect(abandoned.append)
        agent.track("lease-1", "peer", duration=10.0)
        sim.run_for(1.5)
        result = agent.abandon("lease-1")
        assert result is not None
        assert [t.lease_id for t in abandoned] == ["lease-1"]
        assert not agent.tracking("lease-1")
        sim.run_for(5.0)
        assert peer.calls == ["lease-1"]

    def test_abandon_unknown_lease_is_a_noop(self, sim):
        agent = RenewalAgent(sim, lambda *a: None, interval=1.0)
        abandoned = []
        agent.on_abandoned.connect(abandoned.append)
        assert agent.abandon("nothing") is None
        assert abandoned == []

    def test_legacy_counting_unchanged_without_backoff(self, sim):
        failures = []

        def failing(tracked, on_success, on_failure):
            failures.append(sim.now)
            on_failure(RuntimeError("nope"))

        agent = RenewalAgent(sim, failing, interval=1.0, max_failures=3)
        abandoned = []
        agent.on_abandoned.connect(abandoned.append)
        agent.track("lease-1", "peer", duration=10.0)
        sim.run_for(10.0)
        assert len(failures) == 3  # one per period, then abandoned
        assert len(abandoned) == 1
