"""Renewal agent tests."""

import pytest

from repro.leasing.renewer import RenewalAgent


class FakeRemote:
    """A scriptable renewal endpoint."""

    def __init__(self):
        self.renew_calls = 0
        self.fail = False

    def renew_function(self, tracked, on_success, on_failure):
        self.renew_calls += 1
        if self.fail:
            on_failure(TimeoutError("unreachable"))
        else:
            on_success()


@pytest.fixture
def remote():
    return FakeRemote()


@pytest.fixture
def agent(sim, remote):
    return RenewalAgent(sim, remote.renew_function, interval=1.0, name="t")


class TestTracking:
    def test_no_renewals_before_tracking(self, sim, remote, agent):
        sim.run(until=5.0)
        assert remote.renew_calls == 0

    def test_periodic_renewals_while_tracked(self, sim, remote, agent):
        agent.track("lease-1", "node-b", duration=2.0)
        sim.run(until=3.5)
        assert remote.renew_calls == 3

    def test_forget_stops_renewals(self, sim, remote, agent):
        agent.track("lease-1", "node-b", duration=2.0)
        sim.run(until=2.5)
        agent.forget("lease-1")
        calls = remote.renew_calls
        sim.run(until=10.0)
        assert remote.renew_calls == calls

    def test_multiple_leases_renewed_each_round(self, sim, remote, agent):
        agent.track("l1", "b", 2.0)
        agent.track("l2", "c", 2.0)
        sim.run(until=1.5)
        assert remote.renew_calls == 2

    def test_tracked_listing(self, agent):
        agent.track("l1", "b", 2.0, resource="ext-a", context={"k": 1})
        tracked = agent.tracked()
        assert len(tracked) == 1
        assert tracked[0].resource == "ext-a"
        assert agent.tracking("l1")
        assert not agent.tracking("l2")


class TestFailureHandling:
    def test_success_resets_failure_count(self, sim, remote, agent):
        tracked = agent.track("l1", "b", 2.0)
        remote.fail = True
        sim.run(until=2.5)  # two failed rounds
        assert tracked.failures == 2
        remote.fail = False
        sim.run(until=3.5)
        assert tracked.failures == 0

    def test_abandoned_after_max_failures(self, sim, remote, agent):
        abandoned = []
        agent.on_abandoned.connect(abandoned.append)
        agent.track("l1", "b", 2.0)
        remote.fail = True
        sim.run(until=10.0)
        assert len(abandoned) == 1
        assert abandoned[0].lease_id == "l1"
        assert not agent.tracking("l1")

    def test_renewals_stop_after_abandonment(self, sim, remote, agent):
        agent.track("l1", "b", 2.0)
        remote.fail = True
        sim.run(until=10.0)
        calls = remote.renew_calls
        sim.run(until=20.0)
        assert remote.renew_calls == calls

    def test_on_renewed_fires(self, sim, remote, agent):
        renewed = []
        agent.on_renewed.connect(renewed.append)
        agent.track("l1", "b", 2.0)
        sim.run(until=1.5)
        assert len(renewed) == 1

    def test_other_leases_survive_one_abandonment(self, sim, agent):
        outcomes = {"good": 0}

        def selective(tracked, on_success, on_failure):
            if tracked.lease_id == "bad":
                on_failure(TimeoutError())
            else:
                outcomes["good"] += 1
                on_success()

        agent.renew_function = selective
        agent.track("bad", "b", 2.0)
        agent.track("good", "c", 2.0)
        sim.run(until=10.0)
        assert not agent.tracking("bad")
        assert agent.tracking("good")
        assert outcomes["good"] >= 5
