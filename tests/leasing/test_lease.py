"""Lease record tests."""

import pytest

from repro.errors import LeaseExpiredError
from repro.leasing.lease import Lease, LeaseState


def make_lease(duration=10.0, granted_at=0.0):
    return Lease("lease-1", "node-a", "ext-x", duration, granted_at)


class TestLease:
    def test_initially_active(self):
        lease = make_lease()
        assert lease.active
        assert lease.state is LeaseState.ACTIVE

    def test_expiry_time(self):
        lease = make_lease(duration=7.0, granted_at=3.0)
        assert lease.expires_at == 10.0

    def test_remaining(self):
        lease = make_lease(duration=10.0)
        assert lease.remaining(now=4.0) == 6.0

    def test_remaining_clamps_at_zero(self):
        lease = make_lease(duration=10.0)
        assert lease.remaining(now=50.0) == 0.0

    def test_remaining_zero_when_inactive(self):
        lease = make_lease()
        lease.state = LeaseState.CANCELLED
        assert lease.remaining(now=0.0) == 0.0

    def test_renew_extends_from_now(self):
        lease = make_lease(duration=10.0)
        lease._renew(now=8.0)
        assert lease.expires_at == 18.0
        assert lease.renewals == 1

    def test_renew_with_new_duration(self):
        lease = make_lease(duration=10.0)
        lease._renew(now=5.0, duration=2.0)
        assert lease.expires_at == 7.0
        assert lease.duration == 2.0

    def test_renew_inactive_raises(self):
        lease = make_lease()
        lease.state = LeaseState.EXPIRED
        with pytest.raises(LeaseExpiredError):
            lease._renew(now=1.0)
