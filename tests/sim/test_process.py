"""Generator-process tests."""

import pytest

from repro.errors import ProcessError
from repro.sim.process import Process, sleep


class TestProcess:
    def test_runs_to_completion(self, sim):
        log = []

        def worker():
            log.append(("start", sim.now))
            yield sleep(5.0)
            log.append(("middle", sim.now))
            yield sleep(2.5)
            log.append(("end", sim.now))

        process = Process(sim, worker())
        sim.run()
        assert log == [("start", 0.0), ("middle", 5.0), ("end", 7.5)]
        assert not process.alive

    def test_zero_sleep_yields_control(self, sim):
        log = []

        def worker():
            log.append("a")
            yield sleep(0.0)
            log.append("b")

        Process(sim, worker())
        sim.run()
        assert log == ["a", "b"]

    def test_on_exit_fires(self, sim):
        exits = []

        def worker():
            yield sleep(1.0)

        process = Process(sim, worker())
        process.on_exit.connect(exits.append)
        sim.run()
        assert exits == [process]

    def test_stop_terminates_early(self, sim):
        log = []

        def worker():
            log.append("start")
            yield sleep(10.0)
            log.append("never")

        process = Process(sim, worker())
        sim.run(until=5.0)
        process.stop()
        sim.run()
        assert log == ["start"]
        assert not process.alive

    def test_stop_is_idempotent(self, sim):
        def worker():
            yield sleep(1.0)

        process = Process(sim, worker())
        process.stop()
        process.stop()

    def test_failure_captured_not_raised(self, sim):
        def worker():
            yield sleep(1.0)
            raise RuntimeError("broken robot")

        process = Process(sim, worker())
        sim.run()
        assert isinstance(process.failure, RuntimeError)
        assert not process.alive

    def test_yielding_wrong_type_kills_process(self, sim):
        def worker():
            yield 42

        process = Process(sim, worker())
        sim.run()
        assert isinstance(process.failure, ProcessError)

    def test_negative_sleep_rejected(self):
        with pytest.raises(ProcessError):
            sleep(-1.0)

    def test_two_processes_interleave(self, sim):
        log = []

        def maker(name, period):
            def worker():
                for _ in range(3):
                    log.append((name, sim.now))
                    yield sleep(period)
            return worker

        Process(sim, maker("fast", 1.0)())
        Process(sim, maker("slow", 2.0)())
        sim.run()
        assert ("fast", 2.0) in log
        assert ("slow", 4.0) in log
