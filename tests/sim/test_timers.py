"""Periodic timer tests."""

import pytest

from repro.errors import SimulationError
from repro.sim.timers import PeriodicTimer


class TestPeriodicTimer:
    def test_first_tick_after_one_interval(self, sim):
        ticks = []
        PeriodicTimer(sim, 2.0, lambda: ticks.append(sim.now)).start()
        sim.run(until=2.0)
        assert ticks == [2.0]

    def test_ticks_repeat(self, sim):
        ticks = []
        PeriodicTimer(sim, 1.0, lambda: ticks.append(sim.now)).start()
        sim.run(until=3.5)
        assert ticks == [1.0, 2.0, 3.0]

    def test_stop_halts_ticking(self, sim):
        timer = PeriodicTimer(sim, 1.0, lambda: None).start()
        sim.run(until=2.5)
        timer.stop()
        before = timer.ticks
        sim.run(until=10.0)
        assert timer.ticks == before

    def test_stop_from_inside_callback(self, sim):
        timer = PeriodicTimer(sim, 1.0, lambda: timer.stop())
        timer.start()
        sim.run(until=10.0)
        assert timer.ticks == 1
        assert not timer.running

    def test_restart_after_stop(self, sim):
        timer = PeriodicTimer(sim, 1.0, lambda: None).start()
        sim.run(until=1.5)
        timer.stop()
        timer.start()
        sim.run(until=3.0)
        assert timer.ticks == 2  # t=1.0 and t=2.5

    def test_start_is_idempotent(self, sim):
        timer = PeriodicTimer(sim, 1.0, lambda: None)
        timer.start()
        timer.start()
        sim.run(until=1.0)
        assert timer.ticks == 1

    def test_callback_error_does_not_kill_timer(self, sim):
        calls = []

        def flaky():
            calls.append(sim.now)
            if len(calls) == 1:
                raise ValueError("transient")

        PeriodicTimer(sim, 1.0, flaky).start()
        sim.run(until=3.0)
        assert len(calls) == 3

    def test_non_positive_interval_rejected(self, sim):
        with pytest.raises(SimulationError):
            PeriodicTimer(sim, 0.0, lambda: None)
        with pytest.raises(SimulationError):
            PeriodicTimer(sim, -1.0, lambda: None)

    def test_running_property(self, sim):
        timer = PeriodicTimer(sim, 1.0, lambda: None)
        assert not timer.running
        timer.start()
        assert timer.running
        timer.stop()
        assert not timer.running

    def test_stop_at_fire_instant_cancels_the_tick(self, sim):
        # An event at the exact fire time, scheduled *before* the timer
        # was armed, runs first (FIFO) — its stop() must win.
        timer = PeriodicTimer(sim, 1.0, lambda: None)
        sim.schedule(1.0, timer.stop)
        timer.start()
        sim.run(until=5.0)
        assert timer.ticks == 0
        assert not timer.running

    def test_restart_resets_the_phase(self, sim):
        ticks = []
        timer = PeriodicTimer(sim, 1.0, lambda: ticks.append(sim.now)).start()
        sim.run(until=0.5)
        timer.stop()
        timer.start()  # re-armed mid-interval: a full interval from *now*
        sim.run(until=2.9)
        assert ticks == [1.5, 2.5]

    def test_rearm_from_inside_callback_keeps_ticking(self, sim):
        ticks = []

        def bounce():
            ticks.append(sim.now)
            timer.stop()
            timer.start()  # stop+start inside the fire: cadence unbroken

        timer = PeriodicTimer(sim, 1.0, bounce).start()
        sim.run(until=3.0)
        assert ticks == [1.0, 2.0, 3.0]
        assert timer.running

    def test_restart_long_after_stop(self, sim):
        ticks = []
        timer = PeriodicTimer(sim, 1.0, lambda: ticks.append(sim.now))
        timer.start()
        sim.run(until=1.0)
        timer.stop()
        sim.run(until=5.0)
        timer.start()
        sim.run(until=6.5)
        assert ticks == [1.0, 6.0]

    def test_stop_before_start_is_harmless(self, sim):
        timer = PeriodicTimer(sim, 1.0, lambda: None)
        timer.stop()
        timer.start()
        sim.run(until=1.0)
        assert timer.ticks == 1
