"""Periodic timer tests."""

import pytest

from repro.errors import SimulationError
from repro.sim.timers import PeriodicTimer


class TestPeriodicTimer:
    def test_first_tick_after_one_interval(self, sim):
        ticks = []
        PeriodicTimer(sim, 2.0, lambda: ticks.append(sim.now)).start()
        sim.run(until=2.0)
        assert ticks == [2.0]

    def test_ticks_repeat(self, sim):
        ticks = []
        PeriodicTimer(sim, 1.0, lambda: ticks.append(sim.now)).start()
        sim.run(until=3.5)
        assert ticks == [1.0, 2.0, 3.0]

    def test_stop_halts_ticking(self, sim):
        timer = PeriodicTimer(sim, 1.0, lambda: None).start()
        sim.run(until=2.5)
        timer.stop()
        before = timer.ticks
        sim.run(until=10.0)
        assert timer.ticks == before

    def test_stop_from_inside_callback(self, sim):
        timer = PeriodicTimer(sim, 1.0, lambda: timer.stop())
        timer.start()
        sim.run(until=10.0)
        assert timer.ticks == 1
        assert not timer.running

    def test_restart_after_stop(self, sim):
        timer = PeriodicTimer(sim, 1.0, lambda: None).start()
        sim.run(until=1.5)
        timer.stop()
        timer.start()
        sim.run(until=3.0)
        assert timer.ticks == 2  # t=1.0 and t=2.5

    def test_start_is_idempotent(self, sim):
        timer = PeriodicTimer(sim, 1.0, lambda: None)
        timer.start()
        timer.start()
        sim.run(until=1.0)
        assert timer.ticks == 1

    def test_callback_error_does_not_kill_timer(self, sim):
        calls = []

        def flaky():
            calls.append(sim.now)
            if len(calls) == 1:
                raise ValueError("transient")

        PeriodicTimer(sim, 1.0, flaky).start()
        sim.run(until=3.0)
        assert len(calls) == 3

    def test_non_positive_interval_rejected(self, sim):
        with pytest.raises(SimulationError):
            PeriodicTimer(sim, 0.0, lambda: None)
        with pytest.raises(SimulationError):
            PeriodicTimer(sim, -1.0, lambda: None)

    def test_running_property(self, sim):
        timer = PeriodicTimer(sim, 1.0, lambda: None)
        assert not timer.running
        timer.start()
        assert timer.running
        timer.stop()
        assert not timer.running
