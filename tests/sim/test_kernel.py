"""Simulation kernel tests."""

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import SimClock, Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self, sim):
        fired = []
        sim.schedule(2.0, fired.append, "late")
        sim.schedule(1.0, fired.append, "early")
        sim.run()
        assert fired == ["early", "late"]

    def test_same_time_fires_in_fifo_order(self, sim):
        fired = []
        for index in range(5):
            sim.schedule(1.0, fired.append, index)
        sim.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_time_advances_to_event_time(self, sim):
        times = []
        sim.schedule(3.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [3.5]

    def test_schedule_at_absolute_time(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        event_times = []
        sim.schedule_at(4.0, lambda: event_times.append(sim.now))
        sim.run()
        assert event_times == [4.0]

    def test_kwargs_passed_through(self, sim):
        got = {}
        sim.schedule(0.0, lambda **kw: got.update(kw), key="value")
        sim.run()
        assert got == {"key": "value"}

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_in_past_rejected(self, sim):
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(4.0, lambda: None)

    def test_callback_can_schedule_more_events(self, sim):
        fired = []

        def first():
            fired.append("first")
            sim.schedule(1.0, lambda: fired.append("second"))

        sim.schedule(1.0, first)
        sim.run()
        assert fired == ["first", "second"]

    def test_callback_can_schedule_at_current_time(self, sim):
        fired = []
        sim.schedule(1.0, lambda: sim.schedule(0.0, fired.append, "now"))
        sim.run()
        assert fired == ["now"]
        assert sim.now == 1.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        event = sim.schedule(1.0, fired.append, "x")
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self, sim):
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        sim.run()

    def test_pending_excludes_cancelled(self, sim):
        keep = sim.schedule(1.0, lambda: None)
        drop = sim.schedule(1.0, lambda: None)
        drop.cancel()
        assert sim.pending == 1
        assert keep is not None


class TestLazyDeletion:
    """Cancel marks the heap entry; removal happens at pop time."""

    def test_cancelled_entries_stay_queued_until_popped(self, sim):
        events = [sim.schedule(float(i + 1), lambda: None) for i in range(5)]
        for event in events[:4]:
            event.cancel()
        # Accounting views disagree by design: the heap still holds all
        # five entries, but only one of them is pending work.
        assert len(sim._queue) == 5
        assert sim.pending == 1
        sim.run()
        assert len(sim._queue) == 0
        assert sim.pending == 0

    def test_run_step_count_excludes_cancelled(self, sim):
        live = [sim.schedule(1.0, lambda: None) for _ in range(3)]
        sim.schedule(0.5, lambda: None).cancel()
        sim.schedule(2.0, lambda: None).cancel()
        assert live and sim.run() == 3

    def test_step_skips_cancelled_head_and_fires_next(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "dead").cancel()
        sim.schedule(2.0, fired.append, "live")
        assert sim.step() is True
        assert fired == ["live"]
        assert sim.now == 2.0

    def test_cancelled_head_does_not_consume_max_steps(self, sim):
        fired = []
        sim.schedule(0.5, fired.append, "dead").cancel()
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, fired.append, "b")
        assert sim.run(max_steps=2) == 2
        assert fired == ["a", "b"]

    def test_cancel_after_fire_is_harmless(self, sim):
        fired = []
        event = sim.schedule(1.0, fired.append, "x")
        sim.run()
        event.cancel()  # too late, but must not corrupt accounting
        assert fired == ["x"]
        assert sim.pending == 0

    def test_time_does_not_advance_to_cancelled_events(self, sim):
        sim.schedule(1.0, lambda: None)
        late = sim.schedule(9.0, lambda: None)
        late.cancel()
        sim.run()
        assert sim.now == 1.0


class TestPendingCounterAndCompaction:
    """pending is an O(1) live counter; mass-cancel compacts the heap."""

    def test_pending_counter_tracks_schedule_cancel_fire(self, sim):
        events = [sim.schedule(float(i + 1), lambda: None) for i in range(10)]
        assert sim.pending == 10
        events[0].cancel()
        events[0].cancel()  # idempotent: no double decrement
        assert sim.pending == 9
        sim.run(until=5.0)
        assert sim.pending == 5

    def test_mass_cancel_compacts_the_heap(self, sim):
        events = [sim.schedule(float(i + 1), lambda: None) for i in range(200)]
        for event in events[:150]:
            event.cancel()
        # More than half the queue was tombstones: the heap was rebuilt
        # (at the trigger point; later cancels may tombstone again).
        assert sim.compactions >= 1
        assert len(sim._queue) <= 100
        assert sim.pending == 50
        assert sim.run() == 50

    def test_small_queues_are_never_compacted(self, sim):
        events = [sim.schedule(float(i + 1), lambda: None) for i in range(10)]
        for event in events:
            event.cancel()
        assert sim.compactions == 0
        assert sim.pending == 0

    def test_cancel_after_compaction_is_harmless(self, sim):
        events = [sim.schedule(float(i + 1), lambda: None) for i in range(200)]
        for event in events[:150]:
            event.cancel()
        assert sim.compactions >= 1
        events[0].cancel()  # evicted by compaction; must not corrupt counts
        assert sim.pending == 50
        assert sim.run() == 50

    def test_repeated_reschedule_stays_bounded(self, sim):
        # The fleet pattern: park a timer, cancel + re-arm it many times.
        event = sim.schedule(1000.0, lambda: None)
        for _ in range(10_000):
            event.cancel()
            event = sim.schedule(1000.0, lambda: None)
        assert sim.pending == 1
        assert len(sim._queue) < Simulator.COMPACT_MIN


class TestRun:
    def test_run_returns_step_count(self, sim):
        for _ in range(3):
            sim.schedule(1.0, lambda: None)
        assert sim.run() == 3

    def test_run_until_leaves_later_events(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "in")
        sim.schedule(3.0, fired.append, "out")
        sim.run(until=2.0)
        assert fired == ["in"]
        assert sim.pending == 1

    def test_run_until_includes_boundary_events(self, sim):
        fired = []
        sim.schedule(2.0, fired.append, "edge")
        sim.run(until=2.0)
        assert fired == ["edge"]

    def test_run_until_advances_time_even_with_empty_queue(self, sim):
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_run_for_is_relative(self, sim):
        sim.run(until=5.0)
        fired = []
        sim.schedule(2.0, fired.append, "x")
        sim.run_for(2.0)
        assert fired == ["x"]
        assert sim.now == 7.0

    def test_run_for_negative_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.run_for(-1.0)

    def test_max_steps_bounds_execution(self, sim):
        def reschedule():
            sim.schedule(1.0, reschedule)

        sim.schedule(1.0, reschedule)
        steps = sim.run(max_steps=10)
        assert steps == 10

    def test_not_reentrant(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(0.0, sim.run)
            sim.run()

    def test_step_returns_false_on_empty_queue(self, sim):
        assert sim.step() is False


class TestSimClock:
    def test_tracks_simulator_time(self, sim):
        clock = SimClock(sim)
        assert clock.now() == 0.0
        sim.schedule(4.0, lambda: None)
        sim.run()
        assert clock.now() == 4.0

    def test_simulator_exposes_clock(self, sim):
        assert sim.clock.now() == sim.now


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def run_once() -> list:
            simulator = Simulator()
            trace = []
            for index in range(20):
                simulator.schedule((index * 7) % 5 + 0.1, trace.append, index)
            simulator.run()
            return trace

        assert run_once() == run_once()
