"""Streaming rollups: pattern routing, the three kinds, and the
cardinality-cap interaction (capped label values must aggregate into the
single ``~other`` series, never fork one series per capped value)."""

from __future__ import annotations

import pytest

from repro.telemetry import MetricsRegistry, runtime
from repro.telemetry.health import HealthPlane, RollupRule
from repro.telemetry.health.rollups import RollupBook, series_label
from repro.telemetry.metrics import label_key
from repro.telemetry.registry import OVERFLOW_LABEL


class TestRollupRule:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            RollupRule("r", "midas.*", "histogram", window=10.0)

    def test_ratio_requires_bad_when(self):
        with pytest.raises(ValueError):
            RollupRule("r", "midas.*", "ratio", window=10.0)

    def test_ratio_projects_family_onto_group_by(self):
        rule = RollupRule(
            "shed",
            "pipeline.*",
            "ratio",
            window=10.0,
            bad_when=lambda metric, labels: metric.endswith(".shed"),
            group_by=("base",),
        )
        metric, kept = rule.project(
            "pipeline.shed", label_key({"base": "b1", "node": "n9"})
        )
        # Good and bad members of the family meet in ONE series: the
        # metric name folds into the pattern and only group_by survives.
        assert metric == "pipeline.*"
        assert kept == (("base", "b1"),)


class TestRollupBook:
    def test_rate_is_events_per_second(self):
        book = RollupBook([RollupRule("rate", "midas.*", "rate", window=10.0)])
        for t in range(5):
            book.on_count(float(t), "midas.renewals", (), 2.0)
        assert book.value("rate", "midas.renewals", 4.0) == pytest.approx(1.0)

    def test_ratio_folds_good_and_bad_together(self):
        rule = RollupRule(
            "shed-ratio",
            "pipeline.*",
            "ratio",
            window=10.0,
            bad_when=lambda metric, labels: metric.endswith(".shed"),
        )
        book = RollupBook([rule])
        book.on_count(1.0, "pipeline.completed", (), 9.0)
        book.on_count(1.0, "pipeline.shed", (), 1.0)
        series = book.series("shed-ratio")
        assert len(series) == 1
        assert series[0].value(1.0) == pytest.approx(0.1)

    def test_quantile_over_histogram_stream(self):
        book = RollupBook(
            [RollupRule("p99", "rpc.latency", "quantile", window=10.0, q=0.99)]
        )
        bounds = (0.01, 0.1, 1.0)
        for _ in range(90):
            book.on_observe(1.0, "rpc.latency", (), 0.005, bounds)
        for _ in range(10):
            book.on_observe(1.0, "rpc.latency", (), 0.5, bounds)
        assert book.value("p99", "rpc.latency", 1.0) == 1.0

    def test_counts_ignore_quantile_rules_and_vice_versa(self):
        book = RollupBook(
            [
                RollupRule("rate", "m", "rate", window=10.0),
                RollupRule("q", "m", "quantile", window=10.0),
            ]
        )
        book.on_count(1.0, "m", (), 1.0)
        book.on_observe(1.0, "m", (), 0.5, (0.1, 1.0))
        assert len(book.series("rate")) == 1
        assert len(book.series("q")) == 1

    def test_unmatched_metric_creates_nothing(self):
        book = RollupBook([RollupRule("rate", "midas.*", "rate", window=10.0)])
        book.on_count(1.0, "fleet.sweep", (), 1.0)
        assert book.series() == []
        assert book.value("rate", "fleet.sweep", 1.0) is None

    def test_add_rule_reroutes_memoized_metrics(self):
        book = RollupBook()
        book.on_count(1.0, "midas.renewals", (), 1.0)  # memoizes "no rules"
        book.add_rule(RollupRule("rate", "midas.*", "rate", window=10.0))
        book.on_count(2.0, "midas.renewals", (), 1.0)
        assert len(book.series("rate")) == 1

    def test_to_records_are_json_shaped(self):
        book = RollupBook([RollupRule("rate", "m", "rate", window=10.0)])
        book.on_count(1.0, "m", label_key({"node": "n1"}), 3.0)
        (record,) = book.to_records(1.0)
        assert record["type"] == "rollup"
        assert record["kind"] == "rate"
        assert record["labels"] == {"node": "n1"}
        assert record["value"] == pytest.approx(0.3)

    def test_series_label_is_human_form(self):
        book = RollupBook([RollupRule("rate", "m", "rate", window=10.0)])
        book.on_count(1.0, "m", label_key({"node": "n1"}), 1.0)
        (series,) = book.series()
        assert series_label(series) == "m{node=n1}"


class TestCardinalityCapInteraction:
    """Satellite: a label-capped registry must not fork rollup series.

    The registry caps/interns label keys *before* forwarding to the
    plane, so every sample past the cap lands on the one ``~other``
    series — the rollup stays bounded however many distinct values the
    fleet produces.
    """

    def test_overflow_values_share_one_series(self, sim):
        registry = MetricsRegistry(clock=sim.clock, label_limits={"node": 3})
        runtime.install(registry)
        plane = HealthPlane(
            rules=[RollupRule("renew-rate", "fleet.*", "rate", window=100.0)]
        ).attach(registry)

        for i in range(50):
            registry.count("fleet.renewed", node=f"n{i}")

        series = plane.book.series("renew-rate")
        # 3 distinct per-node series plus exactly one ~other aggregate.
        assert len(series) == 4
        by_labels = {dict(s.labels).get("node"): s for s in series}
        assert OVERFLOW_LABEL in by_labels
        overflow = by_labels[OVERFLOW_LABEL]
        # 47 capped samples all folded into the aggregate window.
        assert overflow.window.samples(sim.clock.now()) == pytest.approx(47.0)
        assert plane.book.value(
            "renew-rate", "fleet.renewed", sim.clock.now(), node=OVERFLOW_LABEL
        ) == pytest.approx(0.47)

    def test_capped_stream_matches_registry_totals(self, sim):
        registry = MetricsRegistry(clock=sim.clock, label_limits={"node": 2})
        runtime.install(registry)
        plane = HealthPlane(
            rules=[RollupRule("rate", "fleet.renewed", "rate", window=100.0)]
        ).attach(registry)
        for i in range(20):
            registry.count("fleet.renewed", node=f"n{i % 5}")
        windowed = sum(
            s.window.samples(sim.clock.now()) for s in plane.book.series("rate")
        )
        assert windowed == registry.counter_total("fleet.renewed") == 20.0
