"""Prometheus text exposition and the dropped-record surfacing in
summaries: the export side of the health-plane PR."""

from __future__ import annotations

from repro.telemetry import MetricsRegistry
from repro.telemetry.export import json_summary, prom_text, text_summary
from repro.telemetry.registry import OVERFLOW_LABEL


class TestPromText:
    def test_counter_family(self):
        registry = MetricsRegistry()
        registry.count("midas.renewals", node="n1")
        registry.count("midas.renewals", 2.0, node="n2")
        text = prom_text(registry.to_records())
        assert "# TYPE midas_renewals_total counter" in text
        assert 'midas_renewals_total{node="n1"} 1.0' in text
        assert 'midas_renewals_total{node="n2"} 2.0' in text

    def test_gauge(self):
        registry = MetricsRegistry()
        registry.gauge("queue.depth", 7.0, station="b1")
        text = prom_text(registry.to_records())
        assert "# TYPE queue_depth gauge" in text
        assert 'queue_depth{station="b1"} 7.0' in text

    def test_histogram_emits_cumulative_buckets(self):
        registry = MetricsRegistry(default_buckets=(0.1, 1.0))
        for value in (0.05, 0.05, 0.5, 5.0):
            registry.observe("rpc.latency", value)
        lines = prom_text(registry.to_records()).splitlines()
        assert "# TYPE rpc_latency histogram" in lines
        assert 'rpc_latency_bucket{le="0.1"} 2' in lines
        assert 'rpc_latency_bucket{le="1.0"} 3' in lines
        assert 'rpc_latency_bucket{le="+Inf"} 4' in lines
        assert any(line.startswith("rpc_latency_sum ") for line in lines)
        assert "rpc_latency_count 4" in lines

    def test_capped_labels_stay_bounded_under_other(self):
        registry = MetricsRegistry(label_limits={"node": 2})
        for i in range(10):
            registry.count("fleet.renewed", node=f"n{i}")
        text = prom_text(registry.to_records())
        # 2 per-node series plus exactly ONE aggregate — the exposition
        # cannot balloon however many label values the fleet mints.
        series = [
            line
            for line in text.splitlines()
            if line.startswith("fleet_renewed_total{")
        ]
        assert len(series) == 3
        assert f'fleet_renewed_total{{node="{OVERFLOW_LABEL}"}} 8.0' in text

    def test_events_and_spans_are_skipped(self):
        registry = MetricsRegistry()
        registry.event("midas.installed", node="n1")
        assert prom_text(registry.to_records()) == ""

    def test_escaping(self):
        registry = MetricsRegistry()
        registry.count("odd.name-x", label='va"lue')
        text = prom_text(registry.to_records())
        assert 'odd_name_x_total{label="va\\"lue"} 1.0' in text


class TestDroppedCountsSurface:
    def _capped_registry(self) -> MetricsRegistry:
        registry = MetricsRegistry(max_events=2)
        for i in range(5):
            registry.event("midas.renewed", node=f"n{i}")
        assert registry.dropped_events == 3
        return registry

    def test_text_summary_warns(self):
        text = text_summary(self._capped_registry().to_records())
        assert "warning: retention cap dropped 3 event(s)" in text

    def test_json_summary_reports_counts(self):
        summary = json_summary(self._capped_registry().to_records())
        assert summary["dropped"] == {"events": 3, "spans": 0}

    def test_quiet_when_nothing_dropped(self):
        registry = MetricsRegistry()
        registry.event("midas.renewed", node="n1")
        assert "warning" not in text_summary(registry.to_records())


class TestCliPromFormat:
    def test_summary_format_prom(self, tmp_path, capsys):
        from repro.telemetry.cli import main
        from repro.telemetry.export import write_jsonl

        registry = MetricsRegistry()
        registry.count("midas.renewals", node="n1")
        path = tmp_path / "export.jsonl"
        write_jsonl(registry, path)
        assert main(["summary", str(path), "--format", "prom"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE midas_renewals_total counter" in out
