"""The flight recorder: rings, node derivation, dumps, auto-dumps."""

import io
import json

import pytest

from repro.telemetry import MetricsRegistry, runtime
from repro.telemetry.recorder import (
    DEFAULT_CAPACITY,
    WORLD,
    FlightEvent,
    FlightRecorder,
    FlightRecorderHub,
    _derive_node,
    merge_records,
    read_flight_jsonl,
)
from repro.util.clock import Clock


class FrozenClock(Clock):
    def __init__(self, time: float = 0.0):
        self.time = time

    def now(self) -> float:
        return self.time


class TestFlightRecorder:
    def test_sequence_is_monotonic_per_node(self):
        recorder = FlightRecorder("n1")
        events = [recorder.record("k", time=float(i), fields={}) for i in range(5)]
        assert [event.seq for event in events] == [0, 1, 2, 3, 4]
        assert all(event.node == "n1" for event in events)

    def test_ring_evicts_oldest_but_sequence_keeps_counting(self):
        recorder = FlightRecorder("n1", capacity=3)
        for i in range(5):
            recorder.record("k", time=float(i), fields={"i": i})
        assert len(recorder) == 3
        assert [event.get("i") for event in recorder.events()] == [2, 3, 4]
        assert [event.seq for event in recorder.events()] == [2, 3, 4]
        assert recorder.recorded == 5
        assert recorder.evicted == 2

    def test_tail_returns_newest_oldest_first(self):
        recorder = FlightRecorder("n1")
        for i in range(6):
            recorder.record("k", time=float(i), fields={"i": i})
        assert [event.get("i") for event in recorder.tail(2)] == [4, 5]
        assert recorder.tail(0) == []

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder("n1", capacity=0)

    def test_event_record_round_trip(self):
        recorder = FlightRecorder("n1")
        event = recorder.record(
            "lease.granted", time=2.5, fields={"holder": "hall"}, trace_id="trace:9"
        )
        record = event.to_record()
        assert record["type"] == "flight"
        assert FlightEvent.from_record(record) == event


class TestNodeDerivation:
    def test_explicit_node_wins(self):
        assert _derive_node({"node": "robot", "owner": "hall.base"}) == "robot"

    def test_instance_names_strip_their_suffix(self):
        assert _derive_node({"owner": "hall.base"}) == "hall"
        assert _derive_node({"table": "robot.extensions"}) == "robot"
        assert _derive_node({"agent": "pda-1.renewal"}) == "pda-1"
        assert _derive_node({"client": "hall.midas"}) == "hall"

    def test_fault_source_and_world_fallback(self):
        assert _derive_node({"source": "robot"}) == "robot"
        assert _derive_node({"probability": 0.2}) == WORLD


class TestFlightRecorderHub:
    def test_routes_events_to_derived_rings(self):
        hub = FlightRecorderHub(clock=FrozenClock(1.0))
        hub.record("midas.installed", {"node": "robot", "extension": "x"})
        hub.record("lease.granted", {"table": "hall.registrations"})
        assert hub.nodes() == ["hall", "robot"]
        assert hub.recorder("robot").events()[0].kind == "midas.installed"

    def test_trace_stamp_prefers_fields_over_ambient(self):
        hub = FlightRecorderHub(clock=FrozenClock())
        event = hub.record("fault.injected", {"node": "n", "trace_id": "trace:7"})
        assert event.trace_id == "trace:7"

    def test_trace_stamp_falls_back_to_ambient_context(self, sim):
        registry = MetricsRegistry(clock=sim.clock)
        runtime.install(registry)
        hub = FlightRecorderHub(clock=sim.clock)
        with registry.span("op") as span:
            event = hub.record("prose.weave", {"node": "n"})
        assert event.trace_id == span.trace_id
        assert event.span_id == span.span_id

    def test_default_capacity_applies_to_new_rings(self):
        hub = FlightRecorderHub(clock=FrozenClock(), capacity=7)
        assert hub.recorder("n").capacity == 7
        assert FlightRecorder("m").capacity == DEFAULT_CAPACITY

    def test_events_merged_across_rings(self):
        hub = FlightRecorderHub(clock=FrozenClock())
        hub.record("a", {"node": "n2"}, time=1.0)
        hub.record("b", {"node": "n1"}, time=2.0)
        assert [(e.node, e.kind) for e in hub.events()] == [("n1", "b"), ("n2", "a")]
        assert [e.kind for e in hub.events(node="n1")] == ["b"]


class TestDumps:
    def make_hub(self) -> FlightRecorderHub:
        hub = FlightRecorderHub(clock=FrozenClock())
        hub.record("midas.installed", {"node": "robot"}, time=1.0)
        hub.record("lease.granted", {"node": "hall"}, time=2.0)
        return hub

    def test_dump_to_path_round_trips(self, tmp_path):
        hub = self.make_hub()
        path = tmp_path / "all.jsonl"
        count = hub.dump(path)
        assert count == 2
        assert read_flight_jsonl(path) == hub.events()

    def test_dump_one_node_to_handle(self):
        hub = self.make_hub()
        buffer = io.StringIO()
        hub.dump(buffer, node="robot")
        buffer.seek(0)
        events = read_flight_jsonl(buffer)
        assert [event.node for event in events] == ["robot"]

    def test_dump_all_writes_one_file_per_node(self, tmp_path):
        paths = self.make_hub().dump_all(tmp_path)
        assert sorted(path.name for path in paths) == [
            "flight-hall.jsonl",
            "flight-robot.jsonl",
        ]

    def test_black_box_event_auto_dumps_affected_ring(self, tmp_path):
        hub = FlightRecorderHub(clock=FrozenClock(), dump_dir=tmp_path)
        hub.record("midas.installed", {"node": "robot"}, time=1.0)
        hub.record("supervision.quarantined", {"node": "robot"}, time=2.0)
        assert hub.auto_dumps == 1
        events = read_flight_jsonl(tmp_path / "flight-robot.jsonl")
        assert [event.kind for event in events] == [
            "midas.installed",
            "supervision.quarantined",
        ]

    def test_no_dump_dir_means_no_auto_dump(self):
        hub = FlightRecorderHub(clock=FrozenClock())
        hub.record("fault.crash", {"node": "hall"})
        assert hub.auto_dumps == 0

    def test_read_skips_malformed_and_foreign_lines(self, tmp_path):
        hub = self.make_hub()
        path = tmp_path / "dump.jsonl"
        hub.dump(path, node="robot")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("{truncated\n")
            handle.write(json.dumps({"type": "counter", "name": "x"}) + "\n")
        events = read_flight_jsonl(path)
        assert [event.node for event in events] == ["robot"]

    def test_merge_records_keeps_only_flight_records(self):
        hub = self.make_hub()
        records = hub.to_records() + [{"type": "meta", "name": "x"}]
        assert merge_records([records]) == hub.events()
