"""The ``python -m repro telemetry`` subcommand."""

import json

from repro.__main__ import main as repro_main
from repro.telemetry import runtime
from repro.telemetry.cli import main, run_demo, run_profile


class TestDemo:
    def test_demo_produces_single_trace_and_restores_recorder(self):
        lines: list[str] = []
        registry = run_demo(out=lines.append)
        midas = [s for s in registry.spans if s.name.startswith("midas.")]
        assert len({s.trace_id for s in midas}) == 1
        assert not runtime.enabled()  # recorder restored on exit
        assert any("traces: 1" in line for line in lines)

    def test_demo_export_round_trips_through_summary(self, tmp_path, capsys):
        path = tmp_path / "demo.jsonl"
        assert main(["demo", "--quiet", "--export", str(path)]) == 0
        assert path.exists()
        assert main(["summary", str(path)]) == 0
        out = capsys.readouterr().out
        assert "midas.offer" in out
        assert "traces: 1" in out

    def test_bare_invocation_defaults_to_demo(self, capsys):
        assert main([]) == 0
        assert "midas spans" in capsys.readouterr().out


class TestJsonSummary:
    def test_summary_format_json_is_machine_readable(self, tmp_path, capsys):
        path = tmp_path / "demo.jsonl"
        assert main(["demo", "--quiet", "--export", str(path)]) == 0
        capsys.readouterr()
        assert main(["summary", str(path), "--format", "json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["spans"]["traces"] == 1
        assert summary["events"]["total"] > 0
        assert summary["flight"]["total"] > 0
        assert set(summary["flight"]["by_node"]) == {"hall-A", "pda-1"}
        assert summary["malformed_lines"] == 0

    def test_malformed_lines_surface_in_json_summary(self, tmp_path, capsys):
        path = tmp_path / "demo.jsonl"
        assert main(["demo", "--quiet", "--export", str(path)]) == 0
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("{broken\n")
        capsys.readouterr()
        assert main(["summary", str(path), "--format", "json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["malformed_lines"] == 1


class TestProfile:
    def test_run_profile_reports_demo_joinpoints(self):
        lines: list[str] = []
        profiler = run_profile(out=lines.append)
        assert profiler.entry("Thermostat.set_target", "CallLogging") is not None
        report = "\n".join(lines)
        assert "Thermostat.set_target" in report
        assert "weave cost" in report
        assert not runtime.enabled()

    def test_profile_subcommand(self, capsys):
        assert main(["profile"]) == 0
        assert "join-point profile" in capsys.readouterr().out


class TestMainDelegation:
    def test_repro_main_routes_telemetry(self, capsys):
        assert repro_main(["telemetry", "demo", "--quiet"]) == 0

    def test_repro_main_routes_inspect(self, capsys):
        assert repro_main(["inspect", "pda-1"]) == 0
        assert "pda-1 (mobile)" in capsys.readouterr().out
