"""The ``python -m repro telemetry`` subcommand."""

from repro.__main__ import main as repro_main
from repro.telemetry import runtime
from repro.telemetry.cli import main, run_demo


class TestDemo:
    def test_demo_produces_single_trace_and_restores_recorder(self):
        lines: list[str] = []
        registry = run_demo(out=lines.append)
        midas = [s for s in registry.spans if s.name.startswith("midas.")]
        assert len({s.trace_id for s in midas}) == 1
        assert not runtime.enabled()  # recorder restored on exit
        assert any("traces: 1" in line for line in lines)

    def test_demo_export_round_trips_through_summary(self, tmp_path, capsys):
        path = tmp_path / "demo.jsonl"
        assert main(["demo", "--quiet", "--export", str(path)]) == 0
        assert path.exists()
        assert main(["summary", str(path)]) == 0
        out = capsys.readouterr().out
        assert "midas.offer" in out
        assert "traces: 1" in out

    def test_bare_invocation_defaults_to_demo(self, capsys):
        assert main([]) == 0
        assert "midas spans" in capsys.readouterr().out


class TestMainDelegation:
    def test_repro_main_routes_telemetry(self, capsys):
        assert repro_main(["telemetry", "demo", "--quiet"]) == 0
