"""Live node inspection: structured reports and their text rendering."""

import json

import pytest

from repro.telemetry.cli import build_demo_world
from repro.telemetry.inspect import (
    main as inspect_main,
    node_report,
    platform_report,
    render_report,
)


@pytest.fixture(scope="module")
def world():
    """One demo world run far enough to have installs, leases, a tail."""
    world = build_demo_world(telemetry=True, supervised=True)
    try:
        world.platform.run_for(6.0)
        thermostat = world.thermostat_cls()
        thermostat.set_target(20.0)
        world.platform.run_for(5.0)
        yield world
    finally:
        world.platform.disable_telemetry()


class TestNodeReport:
    def test_mobile_report_shape(self, world):
        report = node_report(world.platform, "pda-1")
        assert report["role"] == "mobile"
        assert [ext["name"] for ext in report["extensions"]] == ["call-log"]
        assert report["extensions"][0]["base"] == "hall-A"
        assert report["quarantined"] == []
        assert report["recorder_tail"]

    def test_lease_ttls_are_live(self, world):
        report = node_report(world.platform, "pda-1")
        assert report["leases"]
        for lease in report["leases"]:
            assert lease["remaining"] > 0
            assert lease["holder"] == "hall-A"

    def test_base_report_shape(self, world):
        report = node_report(world.platform, "hall-A")
        assert report["role"] == "base"
        assert report["catalog"] == ["call-log"]
        assert report["adapted_nodes"] == ["pda-1"]
        assert report["registrations"] >= 1

    def test_unknown_node_raises(self, world):
        with pytest.raises(KeyError):
            node_report(world.platform, "nope")

    def test_report_is_json_safe(self, world):
        for report in platform_report(world.platform):
            json.dumps(report)

    def test_platform_report_lists_bases_first(self, world):
        nodes = [report["node"] for report in platform_report(world.platform)]
        assert nodes == ["hall-A", "pda-1"]

    def test_tail_is_bounded(self, world):
        report = node_report(world.platform, "pda-1", tail=2)
        assert len(report["recorder_tail"]) == 2


class TestRendering:
    def test_mobile_rendering_mentions_all_sections(self, world):
        text = render_report(node_report(world.platform, "pda-1"))
        assert "pda-1 (mobile)" in text
        assert "call-log v1 from hall-A" in text
        assert "leases:" in text
        assert "quarantined: (none)" in text
        assert "recorder tail" in text

    def test_base_rendering(self, world):
        text = render_report(node_report(world.platform, "hall-A"))
        assert "hall-A (base)" in text
        assert "catalog: call-log" in text
        assert "adapted nodes: pda-1" in text


class TestCli:
    def test_json_output_parses(self):
        lines = []
        assert inspect_main(["--json", "pda-1"], out=lines.append) == 0
        reports = json.loads("\n".join(lines))
        assert len(reports) == 1
        assert reports[0]["node"] == "pda-1"

    def test_text_output_covers_all_nodes(self):
        lines = []
        assert inspect_main([], out=lines.append) == 0
        text = "\n".join(lines)
        assert "hall-A (base)" in text
        assert "pda-1 (mobile)" in text

    def test_unknown_node_errors(self):
        with pytest.raises(SystemExit):
            inspect_main(["no-such-node"], out=lambda _: None)


class TestPipelineInReport:
    def test_base_report_includes_pipeline_stats_or_none(self, world):
        report = node_report(world.platform, "hall-A")
        assert "pipeline" in report
        pipeline = report["pipeline"]
        if pipeline is not None:
            assert {"depth", "shed", "completed"} <= set(pipeline)

    def test_rendering_shows_dispatch_mode(self, world):
        text = render_report(node_report(world.platform, "hall-A"))
        assert "pipeline" in text  # stats line or the direct-dispatch note


class TestFleetReport:
    @pytest.fixture(scope="class")
    def fleet(self):
        from repro.fleet import FleetBuilder

        fleet = FleetBuilder(leaves=512, seed=7).build()
        fleet.distribute("fleet-policy")
        fleet.run_epochs(15)
        return fleet

    def test_fleet_report_shape(self, fleet):
        from repro.telemetry.inspect import fleet_report

        report = fleet_report(fleet)
        assert report["role"] == "fleet"
        assert report["leaves"] == 512
        assert report["regions"] and report["tree"]
        assert all(row["sweeps"] > 0 for row in report["regions"])
        assert sum(row["installs"] for row in report["tree"]) > 0
        json.dumps(report)

    def test_fleet_rendering(self, fleet):
        from repro.telemetry.inspect import fleet_report, render_fleet_report

        text = render_fleet_report(fleet_report(fleet))
        assert "registrar tree:" in text
        assert "regions:" in text
        assert "handoffs delivered:" in text

    def test_cli_fleet_flag(self):
        lines = []
        assert inspect_main(["--fleet", "--json"], out=lines.append) == 0
        report = json.loads("\n".join(lines))
        assert report["role"] == "fleet"
        assert report["leaves"] == 2048
