"""Instrument containers and the registry's recorder surface."""

import pytest

from repro.sim.kernel import Simulator
from repro.telemetry import MetricsRegistry
from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    format_labels,
    label_key,
)


class TestLabelKey:
    def test_order_independent(self):
        assert label_key({"a": 1, "b": 2}) == label_key({"b": 2, "a": 1})

    def test_values_stringified(self):
        assert label_key({"n": 3}) == (("n", "3"),)

    def test_empty(self):
        assert label_key({}) == ()
        assert format_labels(()) == ""

    def test_format(self):
        assert format_labels((("a", "1"), ("b", "x"))) == "{a=1, b=x}"


class TestCounter:
    def test_incr(self):
        counter = Counter("hits")
        counter.incr()
        counter.incr(2.5)
        assert counter.value == 3.5

    def test_cannot_decrease(self):
        with pytest.raises(ValueError):
            Counter("hits").incr(-1)

    def test_record(self):
        counter = Counter("hits", label_key({"node": "a"}))
        counter.incr()
        assert counter.to_record() == {
            "type": "counter",
            "name": "hits",
            "labels": {"node": "a"},
            "value": 1.0,
        }


class TestGauge:
    def test_set_goes_both_ways(self):
        gauge = Gauge("depth")
        gauge.set(5, now=1.0)
        gauge.set(2, now=2.0)
        assert gauge.value == 2.0
        assert gauge.updated_at == 2.0


class TestHistogram:
    def test_counts_land_in_buckets(self):
        histogram = Histogram("latency", buckets=(0.001, 0.01, 0.1))
        for value in (0.0005, 0.005, 0.005, 0.05, 5.0):
            histogram.observe(value)
        assert histogram.counts == [1, 2, 1, 1]  # last slot = overflow
        assert histogram.count == 5
        assert histogram.min == 0.0005
        assert histogram.max == 5.0

    def test_mean_is_exact(self):
        histogram = Histogram("latency", buckets=(1.0,))
        histogram.observe(0.25)
        histogram.observe(0.75)
        assert histogram.mean() == 0.5

    def test_quantile_bucket_resolution(self):
        histogram = Histogram("latency", buckets=(0.001, 0.01, 0.1))
        for _ in range(90):
            histogram.observe(0.005)
        for _ in range(10):
            histogram.observe(0.05)
        assert histogram.quantile(0.5) == 0.01
        assert histogram.quantile(0.95) == 0.1

    def test_quantile_overflow_uses_max(self):
        histogram = Histogram("latency", buckets=(0.001,))
        histogram.observe(7.0)
        assert histogram.quantile(0.99) == 7.0

    def test_empty(self):
        histogram = Histogram("latency")
        assert histogram.mean() == 0.0
        assert histogram.quantile(0.5) == 0.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            Histogram("empty", buckets=())
        with pytest.raises(ValueError):
            Histogram("latency").quantile(1.5)


class TestRegistry:
    def test_count_accumulates_per_label_set(self):
        registry = MetricsRegistry()
        registry.count("hits", node="a")
        registry.count("hits", 2, node="a")
        registry.count("hits", node="b")
        assert registry.counter_value("hits", node="a") == 3
        assert registry.counter_value("hits", node="b") == 1
        assert registry.counter_total("hits") == 4
        assert registry.counter_value("hits", node="zz") == 0.0

    def test_gauge_value(self):
        registry = MetricsRegistry()
        registry.gauge("depth", 4, queue="q")
        assert registry.gauge_value("depth", queue="q") == 4
        assert registry.gauge_value("depth", queue="other") is None

    def test_observe_creates_histogram_with_default_buckets(self):
        registry = MetricsRegistry()
        registry.observe("latency", 0.5)
        histogram = registry.histogram("latency")
        assert histogram is not None
        assert histogram.buckets == DEFAULT_BUCKETS
        assert histogram.count == 1

    def test_declared_buckets_apply_to_new_histograms(self):
        registry = MetricsRegistry()
        registry.declare_buckets("latency", (1.0, 2.0))
        registry.observe("latency", 1.5, op="x")
        assert registry.histogram("latency", op="x").buckets == (1.0, 2.0)

    def test_sim_clock_timestamps(self):
        sim = Simulator()
        registry = MetricsRegistry(clock=sim.clock)
        sim.schedule(5.0, lambda: registry.event("tick"))
        sim.run()
        assert registry.events[0].time == 5.0

    def test_event_retention_bounded(self):
        registry = MetricsRegistry(max_events=3)
        for index in range(5):
            registry.event("e", n=index)
        assert len(registry.events) == 3
        assert registry.events[0].fields["n"] == 2
