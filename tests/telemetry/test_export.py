"""JSONL round-trip, the shared text summary, and the JSON summary."""

import io
import json

from repro.telemetry import MetricsRegistry, runtime
from repro.telemetry.export import (
    _label_suffix,
    json_summary,
    read_jsonl,
    text_summary,
    write_jsonl,
)
from repro.util.clock import Clock


class FrozenClock(Clock):
    """Repeated ``to_records()`` calls must stamp identical metadata."""

    def now(self) -> float:
        return 42.0


def populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry(name="unit", clock=FrozenClock())
    runtime.install(registry)
    registry.count("hits", 3, node="a")
    registry.gauge("depth", 2, queue="q")
    registry.observe("latency", 0.002, op="x")
    registry.event("thing.happened", node="a")
    with registry.span("outer", node="a"):
        with registry.span("inner", node="b"):
            pass
    runtime.reset()
    return registry


class TestJsonlRoundTrip:
    def test_write_read_identity(self, tmp_path):
        registry = populated_registry()
        path = tmp_path / "dump.jsonl"
        count = write_jsonl(registry, path)
        records = read_jsonl(path)
        assert len(records) == count
        assert records == registry.to_records()

    def test_file_object_round_trip(self):
        registry = populated_registry()
        buffer = io.StringIO()
        write_jsonl(registry, buffer)
        buffer.seek(0)
        assert read_jsonl(buffer) == registry.to_records()

    def test_meta_record_first(self):
        records = populated_registry().to_records()
        assert records[0]["type"] == "meta"
        assert records[0]["name"] == "unit"


class TestTextSummary:
    def test_live_and_loaded_render_identically(self, tmp_path):
        registry = populated_registry()
        path = tmp_path / "dump.jsonl"
        write_jsonl(registry, path)
        live = text_summary(registry, title="t")
        loaded = text_summary(read_jsonl(path), title="t")
        assert live == loaded

    def test_sections_present(self):
        summary = text_summary(populated_registry())
        assert "counters:" in summary
        assert "hits{node=a} = 3" in summary
        assert "gauges:" in summary
        assert "histograms:" in summary
        assert "latency{op=x}" in summary
        assert "thing.happened x1" in summary
        assert "traces: 1 (2 spans)" in summary

    def test_span_tree_indented_under_parent(self):
        summary = text_summary(populated_registry())
        lines = summary.splitlines()
        outer = next(line for line in lines if "outer" in line)
        inner = next(line for line in lines if "inner" in line)
        assert len(inner) - len(inner.lstrip()) > len(outer) - len(outer.lstrip())

    def test_empty_registry(self):
        assert "(empty)" in text_summary(MetricsRegistry())

    def test_many_traces_elided(self):
        registry = MetricsRegistry()
        for _ in range(8):
            with registry.span("op", parent=None):
                pass
        assert "more traces" in text_summary(registry)


class TestSummaryEdgeCases:
    def empty_histogram_record(self) -> dict:
        from repro.telemetry.metrics import DEFAULT_BUCKETS, Histogram, label_key

        return Histogram("empty", label_key({}), DEFAULT_BUCKETS).to_record()

    def test_empty_histogram_renders_n_zero(self):
        records = [{"type": "meta", "name": "u", "exported_at": 0.0}]
        records.append(self.empty_histogram_record())
        assert "empty  n=0" in text_summary(records, title="t")

    def test_empty_histogram_json_quantiles_are_null(self):
        records = [self.empty_histogram_record()]
        histogram = json_summary(records)["histograms"][0]
        assert histogram["count"] == 0
        assert histogram["mean"] is None
        assert histogram["p50"] is None
        assert histogram["p95"] is None

    def test_single_bucket_histogram_quantiles(self):
        from repro.telemetry.metrics import Histogram, label_key

        histogram = Histogram("one", label_key({}), buckets=(1.0,))
        for value in (0.2, 0.4, 0.6):
            histogram.observe(value)
        summary = json_summary([histogram.to_record()])["histograms"][0]
        # Every observation landed in the only bucket, so both quantiles
        # resolve to its upper bound.
        assert summary["p50"] == 1.0
        assert summary["p95"] == 1.0
        assert summary["mean"] == (0.2 + 0.4 + 0.6) / 3

    def test_label_suffix_sorts_unordered_labels(self):
        record = {"labels": {"zeta": "1", "alpha": "2"}}
        assert _label_suffix(record) == "{alpha=2, zeta=1}"

    def test_label_suffix_empty_labels(self):
        assert _label_suffix({"labels": {}}) == ""
        assert _label_suffix({}) == ""


class TestMalformedLines:
    def test_read_jsonl_skips_and_counts(self, tmp_path):
        registry = populated_registry()
        path = tmp_path / "dump.jsonl"
        write_jsonl(registry, path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("{not json\n")
            handle.write("\n")  # blank lines are not damage
            handle.write("[1, 2\n")
        records = read_jsonl(path)
        assert records[-1] == {"type": "read_errors", "malformed_lines": 2}
        # The intact records still loaded.
        assert records[:-1] == registry.to_records()

    def test_text_summary_warns_about_malformed(self, tmp_path):
        path = tmp_path / "dump.jsonl"
        write_jsonl(populated_registry(), path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("oops\n")
        assert "1 malformed line(s)" in text_summary(read_jsonl(path), title="t")


class TestJsonSummary:
    def test_live_and_loaded_summaries_equal(self, tmp_path):
        registry = populated_registry()
        path = tmp_path / "dump.jsonl"
        write_jsonl(registry, path)
        live = json_summary(registry)
        loaded = json_summary(read_jsonl(path))
        assert live == loaded
        # The structure is JSON-clean (no sets, no objects).
        assert json.loads(json.dumps(live)) == live

    def test_sections(self):
        summary = json_summary(populated_registry())
        assert summary["meta"]["name"] == "unit"
        assert summary["counters"][0] == {
            "name": "hits",
            "labels": {"node": "a"},
            "value": 3.0,
        }
        assert summary["events"] == {"total": 1, "by_name": {"thing.happened": 1}}
        assert summary["spans"] == {"total": 2, "traces": 1}
        assert summary["flight"] == {"total": 0, "by_node": {}}
        assert summary["malformed_lines"] == 0


class TestQuantileOptions:
    def many_valued_histogram(self):
        from repro.telemetry.metrics import DEFAULT_BUCKETS, Histogram, label_key

        histogram = Histogram("lat", label_key({}), DEFAULT_BUCKETS)
        for i in range(1, 101):
            histogram.observe(i / 1000.0)  # 1ms .. 100ms
        return histogram

    def test_default_quantiles_include_p99(self):
        from repro.telemetry.export import DEFAULT_QUANTILES

        assert DEFAULT_QUANTILES == (0.5, 0.95, 0.99)
        summary = json_summary([self.many_valued_histogram().to_record()])
        histogram = summary["histograms"][0]
        assert set(histogram) >= {"p50", "p95", "p99"}
        assert histogram["p50"] <= histogram["p95"] <= histogram["p99"]

    def test_p99_appears_in_text_summary(self):
        records = [
            {"type": "meta", "name": "u", "exported_at": 0.0},
            self.many_valued_histogram().to_record(),
        ]
        assert "p99=" in text_summary(records, title="t")

    def test_custom_quantiles_change_the_keys(self):
        record = self.many_valued_histogram().to_record()
        summary = json_summary([record], quantiles=(0.25, 0.999))
        histogram = summary["histograms"][0]
        assert "p25" in histogram
        assert "p99.9" in histogram
        assert "p50" not in histogram
        text = text_summary(
            [{"type": "meta", "name": "u", "exported_at": 0.0}, record],
            title="t",
            quantiles=(0.25, 0.999),
        )
        assert "p25=" in text and "p99.9=" in text

    def test_quantile_label_formatting(self):
        from repro.telemetry.export import quantile_label

        assert quantile_label(0.5) == "p50"
        assert quantile_label(0.95) == "p95"
        assert quantile_label(0.999) == "p99.9"
        assert quantile_label(0.25) == "p25"

    def test_out_of_range_quantiles_rejected(self):
        import pytest

        record = self.many_valued_histogram().to_record()
        for bad in ((0.0,), (1.0,), (0.5, 1.5), (-0.1,), ()):
            with pytest.raises(ValueError):
                json_summary([record], quantiles=bad)
            with pytest.raises(ValueError):
                text_summary([record], title="t", quantiles=bad)
