"""JSONL round-trip and the shared text summary."""

import io

from repro.telemetry import MetricsRegistry, runtime
from repro.telemetry.export import read_jsonl, text_summary, write_jsonl
from repro.util.clock import Clock


class FrozenClock(Clock):
    """Repeated ``to_records()`` calls must stamp identical metadata."""

    def now(self) -> float:
        return 42.0


def populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry(name="unit", clock=FrozenClock())
    runtime.install(registry)
    registry.count("hits", 3, node="a")
    registry.gauge("depth", 2, queue="q")
    registry.observe("latency", 0.002, op="x")
    registry.event("thing.happened", node="a")
    with registry.span("outer", node="a"):
        with registry.span("inner", node="b"):
            pass
    runtime.reset()
    return registry


class TestJsonlRoundTrip:
    def test_write_read_identity(self, tmp_path):
        registry = populated_registry()
        path = tmp_path / "dump.jsonl"
        count = write_jsonl(registry, path)
        records = read_jsonl(path)
        assert len(records) == count
        assert records == registry.to_records()

    def test_file_object_round_trip(self):
        registry = populated_registry()
        buffer = io.StringIO()
        write_jsonl(registry, buffer)
        buffer.seek(0)
        assert read_jsonl(buffer) == registry.to_records()

    def test_meta_record_first(self):
        records = populated_registry().to_records()
        assert records[0]["type"] == "meta"
        assert records[0]["name"] == "unit"


class TestTextSummary:
    def test_live_and_loaded_render_identically(self, tmp_path):
        registry = populated_registry()
        path = tmp_path / "dump.jsonl"
        write_jsonl(registry, path)
        live = text_summary(registry, title="t")
        loaded = text_summary(read_jsonl(path), title="t")
        assert live == loaded

    def test_sections_present(self):
        summary = text_summary(populated_registry())
        assert "counters:" in summary
        assert "hits{node=a} = 3" in summary
        assert "gauges:" in summary
        assert "histograms:" in summary
        assert "latency{op=x}" in summary
        assert "thing.happened x1" in summary
        assert "traces: 1 (2 spans)" in summary

    def test_span_tree_indented_under_parent(self):
        summary = text_summary(populated_registry())
        lines = summary.splitlines()
        outer = next(line for line in lines if "outer" in line)
        inner = next(line for line in lines if "inner" in line)
        assert len(inner) - len(inner.lstrip()) > len(outer) - len(outer.lstrip())

    def test_empty_registry(self):
        assert "(empty)" in text_summary(MetricsRegistry())

    def test_many_traces_elided(self):
        registry = MetricsRegistry()
        for _ in range(8):
            with registry.span("op", parent=None):
                pass
        assert "more traces" in text_summary(registry)
