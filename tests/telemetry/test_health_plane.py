"""The HealthPlane: attach/detach wiring, the quiet-set fast path, burn
events reaching the flight recorder, peak-incident capture, and the
model's status reduction."""

from __future__ import annotations

import pytest

from repro.telemetry import MetricsRegistry, runtime
from repro.telemetry.health import (
    BurnPair,
    Cause,
    Condition,
    CounterRatioSLI,
    HealthPlane,
    RollupRule,
    SLO,
)
from repro.telemetry.health.model import HealthModel, worst_status
from repro.telemetry.recorder import DUMP_KINDS, FlightRecorderHub, read_flight_jsonl

ONE_PAIR = (BurnPair("only", long_window=10.0, short_window=10.0, threshold=2.0),)


def _plane() -> HealthPlane:
    return HealthPlane(
        slos=[
            SLO(
                "renewals",
                "midas",
                target=0.9,
                sli=CounterRatioSLI(
                    good=("midas.renewals",), bad=("midas.failures",)
                ),
                pairs=ONE_PAIR,
                min_samples=1,
            )
        ],
        rules=[RollupRule("rate", "midas.*", "rate", window=10.0)],
    )


class TestWiring:
    def test_attach_detach(self, registry):
        plane = _plane().attach(registry)
        assert registry.health is plane
        registry.count("midas.renewals")
        assert plane.engine.slos[0].good_total == 1.0
        plane.detach()
        assert registry.health is None
        registry.count("midas.renewals")
        assert plane.engine.slos[0].good_total == 1.0

    def test_detached_ingest_uses_explicit_timestamps(self):
        plane = _plane()
        plane.ingest_count(5.0, "midas.failures", 3.0, node="n1")
        slo = plane.engine.slos[0]
        assert slo.bad_total == 3.0
        assert slo.last_bad == {"node": "n1"}
        # _now falls back to the freshest window cursor in detached mode.
        assert plane._now() > 0.0

    def test_timer_ticks_on_the_simulator(self, sim, registry):
        plane = _plane().attach(registry).start(sim, interval=1.0)
        sim.run_for(5.0)
        assert plane.ticks >= 4
        plane.stop()


class TestQuietFastPath:
    def test_unrouted_metric_goes_quiet(self, registry):
        plane = _plane().attach(registry)
        registry.count("unrelated.metric")
        assert "unrelated.metric" in plane._quiet["counter"]
        # Routed metrics never enter the quiet set.
        registry.count("midas.renewals")
        assert "midas.renewals" not in plane._quiet["counter"]

    def test_add_rule_invalidates_quiet_set(self, registry):
        plane = _plane().attach(registry)
        registry.count("fleet.sweep")  # goes quiet under current rules
        plane.add_rule(RollupRule("sweeps", "fleet.*", "rate", window=10.0))
        assert plane._quiet["counter"] == set()
        registry.count("fleet.sweep")
        assert len(plane.book.series("sweeps")) == 1

    def test_add_slo_invalidates_quiet_set(self, registry):
        plane = _plane().attach(registry)
        registry.count("fleet.expired")
        plane.add_slo(
            SLO(
                "leases",
                "fleet",
                target=0.9,
                sli=CounterRatioSLI(good=("fleet.renewed",), bad=("fleet.expired",)),
                pairs=ONE_PAIR,
                min_samples=1,
            )
        )
        registry.count("fleet.expired")
        assert plane.engine.slos[-1].bad_total == 1.0


class TestBurnEvents:
    def test_slo_burn_is_a_black_box_kind(self):
        assert "slo.burn" in DUMP_KINDS

    def test_fire_emits_event_and_dumps_blamed_ring(self, sim, tmp_path):
        hub = FlightRecorderHub(clock=sim.clock, dump_dir=tmp_path)
        registry = MetricsRegistry(clock=sim.clock, flight=hub)
        runtime.install(registry)
        plane = _plane().attach(registry)
        registry.event("midas.installed", node="pda-1")  # ring context
        for _ in range(4):
            registry.count("midas.failures", node="pda-1")
        fired = plane.tick()
        assert [alert.slo for alert in fired] == ["renewals"]
        burn_events = [e for e in registry.events if e.name == "slo.burn"]
        assert len(burn_events) == 1
        assert burn_events[0].fields["node"] == "pda-1"
        # The blamed node's ring hit disk the moment the alert fired.
        dumped = read_flight_jsonl(tmp_path / "flight-pda-1.jsonl")
        assert [event.kind for event in dumped] == ["midas.installed", "slo.burn"]

    def test_emitting_guard_keeps_own_counters_out(self, registry):
        plane = HealthPlane(
            slos=[
                SLO(
                    "meta",
                    "health",
                    target=0.5,
                    # An SLO that would match the plane's own alert counter.
                    sli=CounterRatioSLI(good=("noop",), bad=("slo.burns",)),
                    pairs=ONE_PAIR,
                    min_samples=1,
                ),
                _plane().engine.slos[0],
            ]
        ).attach(registry)
        for _ in range(4):
            registry.count("midas.failures", node="n1")
        plane.tick()
        # The renewals alert emitted slo.burns; the meta SLO saw nothing.
        meta = next(s for s in plane.engine.slos if s.name == "meta")
        assert meta.bad_total == 0.0

    def test_peak_survives_recovery(self, registry, sim):
        plane = _plane().attach(registry)
        for _ in range(4):
            registry.count("midas.failures", node="n1")
        plane.tick()
        assert plane.peak is not None and plane.peak.overall == "critical"
        sim.run_for(60.0)  # windows roll clean
        plane.tick()
        assert plane.report().overall == "healthy"
        # The incident snapshot is still there for the post-mortem.
        assert plane.peak.overall == "critical"
        assert plane.peak.conditions


class TestModel:
    def test_worst_status_ordering(self):
        assert worst_status([]) == "healthy"
        assert worst_status(["healthy", "degraded"]) == "degraded"
        assert worst_status(["degraded", "critical", "healthy"]) == "critical"

    def test_probe_conditions_reduce_to_statuses(self):
        model = HealthModel()
        model.declare_subsystem("resilience", "pipeline")
        model.add_probe(
            "breakers",
            lambda: [
                Condition(
                    subsystem="resilience",
                    status="degraded",
                    summary="breaker open",
                    cause=Cause("breaker.open", "n1->base"),
                )
            ],
        )
        report = model.evaluate(1.0)
        assert report.overall == "degraded"
        assert report.subsystems == {"resilience": "degraded", "pipeline": "healthy"}
        assert not report.healthy

    def test_burn_condition_carries_cause_chain(self, registry):
        plane = _plane().attach(registry)
        for _ in range(4):
            registry.count("midas.failures", node="n3")
        plane.tick()
        report = plane.report()
        burn = next(c for c in report.conditions if c.cause.kind == "slo.burn")
        assert burn.subsystem == "midas"
        assert burn.status == "critical"  # page severity
        (sample,) = burn.cause.causes
        assert sample.kind == "sample" and sample.subject == "n3"

    def test_report_render_mentions_the_problem(self, registry):
        plane = _plane().attach(registry)
        for _ in range(4):
            registry.count("midas.failures", node="n3")
        plane.tick()
        text = plane.report().render()
        assert "CRITICAL" in text
        assert "slo.burn[renewals]" in text

    def test_to_records_merges_rollups_and_slos(self, registry):
        plane = _plane().attach(registry)
        registry.count("midas.renewals", node="n1")
        records = plane.to_records()
        kinds = {record["type"] for record in records}
        assert kinds == {"rollup", "slo"}
