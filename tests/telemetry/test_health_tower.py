"""The control tower: snapshot shape, rendering, and the CLI gate."""

from __future__ import annotations

import json

import pytest

from repro.telemetry.health import (
    BurnPair,
    CounterRatioSLI,
    HealthPlane,
    RollupRule,
    SLO,
)
from repro.telemetry.health.tower import (
    main,
    ops_storm_spec,
    render_tower,
    sparkline,
    tower_snapshot,
)

ONE_PAIR = (BurnPair("only", long_window=10.0, short_window=10.0, threshold=2.0),)


def _plane(burning: bool) -> HealthPlane:
    plane = HealthPlane(
        slos=[
            SLO(
                "renewals",
                "midas",
                target=0.9,
                sli=CounterRatioSLI(
                    good=("midas.renewals",), bad=("midas.failures",)
                ),
                pairs=ONE_PAIR,
                min_samples=1,
            )
        ],
        rules=[RollupRule("rate", "midas.*", "rate", window=10.0)],
    )
    metric = "midas.failures" if burning else "midas.renewals"
    for t in range(4):
        plane.ingest_count(float(t), metric, 1.0, node="n1")
    plane.tick()
    return plane


class TestSparkline:
    def test_scales_to_the_block_ramp(self):
        line = sparkline([0.0, 1.0, 2.0, 3.0])
        assert len(line) == 4
        assert line[0] == "▁" and line[-1] == "█"

    def test_flat_and_empty_series(self):
        assert sparkline([]) == ""
        flat = sparkline([5.0, 5.0, 5.0])
        assert len(set(flat)) == 1


class TestTowerSnapshot:
    def test_healthy_snapshot_shape(self):
        snapshot = tower_snapshot("unit", _plane(burning=False))
        assert snapshot["scenario"] == "unit"
        assert snapshot["overall"] == "healthy"
        assert snapshot["verdict"] == "healthy"
        assert snapshot["burning"] == []
        assert any(r["type"] == "rollup" for r in snapshot["rollups"])

    def test_burning_verdict_is_cumulative(self, sim, registry):
        plane = _plane(burning=True)
        assert tower_snapshot("unit", plane)["verdict"] == "burning"
        # Even after recovery the *run* verdict stays burning — the
        # tower judges the run, not the final instant.
        plane.ingest_count(100.0, "midas.renewals", 50.0)
        plane.tick()
        snapshot = tower_snapshot("unit", plane)
        assert snapshot["report"]["overall"] == "healthy"
        assert snapshot["verdict"] == "burning"
        assert snapshot["peak"]["overall"] == "critical"

    def test_render_mentions_the_burn(self):
        text = render_tower(tower_snapshot("unit", _plane(burning=True)))
        assert "BURNING" in text
        assert "renewals" in text

    def test_render_healthy(self):
        text = render_tower(tower_snapshot("unit", _plane(burning=False)))
        assert "HEALTHY" in text


class TestOpsCli:
    def test_fleet_json_healthy(self, capsys):
        lines: list[str] = []
        code = main(
            [
                "fleet",
                "--leaves",
                "512",
                "--epochs",
                "10",
                "--json",
                "--expect",
                "healthy",
            ],
            out=lines.append,
        )
        assert code == 0
        snapshot = json.loads("\n".join(lines))
        assert snapshot["verdict"] == "healthy"
        assert snapshot["fleet"]["regions"]

    def test_expect_mismatch_exits_2(self):
        lines: list[str] = []
        code = main(
            ["fleet", "--leaves", "512", "--epochs", "10", "--expect", "burning"],
            out=lines.append,
        )
        assert code == 2
        assert any("EXPECTATION FAILED" in line for line in lines)


class TestOpsStormSpec:
    def test_faulted_and_clean_share_everything_but_drops(self):
        faulted = ops_storm_spec(seed=7)
        clean = ops_storm_spec(seed=7, drop_roamed=0.0)
        assert faulted.drop_roamed == pytest.approx(0.4)
        assert clean.drop_roamed == 0.0
        assert faulted.seed == clean.seed
        assert faulted.announce_attempts == clean.announce_attempts == 1
