"""Merged causal timelines and the composable trace-query engine."""

import pytest

from repro.telemetry import Timeline
from repro.telemetry.recorder import FlightRecorderHub
from repro.util.clock import Clock


class FrozenClock(Clock):
    def now(self) -> float:
        return 0.0


def make_hub() -> FlightRecorderHub:
    """A tiny two-node history: offer → install → strikes → quarantine."""
    hub = FlightRecorderHub(clock=FrozenClock())
    hub.record(
        "midas.offered", {"node": "hall", "extension": "x", "trace_id": "t1"}, time=1.0
    )
    hub.record(
        "midas.installed", {"node": "robot", "extension": "x", "trace_id": "t1"}, time=2.0
    )
    hub.record("supervision.contained", {"node": "robot", "kind": "error"}, time=3.0)
    hub.record("supervision.contained", {"node": "robot", "kind": "error"}, time=3.0)
    hub.record(
        "supervision.quarantined", {"node": "robot", "extension": "x"}, time=4.0
    )
    hub.record(
        "midas.quarantine_reported", {"node": "hall", "trace_id": "t1"}, time=5.0
    )
    return hub


class TestTimelineMerge:
    def test_merged_order_is_time_node_seq(self):
        timeline = Timeline.from_hub(make_hub())
        assert [event.kind for event in timeline] == [
            "midas.offered",
            "midas.installed",
            "supervision.contained",
            "supervision.contained",
            "supervision.quarantined",
            "midas.quarantine_reported",
        ]

    def test_same_instant_ties_break_by_node_then_seq(self):
        hub = FlightRecorderHub(clock=FrozenClock())
        hub.record("b", {"node": "zeta"}, time=1.0)
        hub.record("a", {"node": "alpha"}, time=1.0)
        hub.record("c", {"node": "alpha"}, time=1.0)
        timeline = Timeline(hub.events())
        assert [(e.node, e.seq) for e in timeline] == [
            ("alpha", 0),
            ("alpha", 1),
            ("zeta", 0),
        ]

    def test_from_records_skips_non_flight(self):
        hub = make_hub()
        records = [{"type": "meta", "name": "x"}] + hub.to_records()
        assert len(Timeline.from_records(records)) == len(hub.events())

    def test_from_dumps_merges_per_node_files(self, tmp_path):
        hub = make_hub()
        paths = hub.dump_all(tmp_path)
        timeline = Timeline.from_dumps(paths)
        assert [e.kind for e in timeline] == [
            e.kind for e in Timeline.from_hub(hub)
        ]

    def test_nodes_kinds_traces(self):
        timeline = Timeline.from_hub(make_hub())
        assert timeline.nodes() == ["hall", "robot"]
        assert "supervision.quarantined" in timeline.kinds()
        assert set(timeline.traces()) == {"t1"}
        assert timeline.trace("t1").count() == 3
        assert timeline.trace("missing").count() == 0

    def test_position_rejects_foreign_events(self):
        timeline = Timeline.from_hub(make_hub())
        other = Timeline.from_hub(make_hub())
        with pytest.raises(ValueError):
            timeline.position(next(iter(other)))

    def test_render_shows_merged_order(self):
        timeline = Timeline.from_hub(make_hub())
        rendered = timeline.render()
        assert rendered.index("midas.offered") < rendered.index("quarantine_reported")
        assert "[t1]" in rendered
        assert len(timeline.render(limit=2).splitlines()) == 2


class TestQueryFilters:
    def timeline(self) -> Timeline:
        return Timeline.from_hub(make_hub())

    def test_kind_on_where(self):
        timeline = self.timeline()
        strikes = timeline.events("supervision.contained").on("robot")
        assert strikes.count() == 2
        assert timeline.events().where(extension="x").count() == 3
        assert timeline.events().on("hall").nodes() == {"hall"}

    def test_within_and_traced(self):
        timeline = self.timeline()
        assert timeline.events().within("t1").count() == 3
        assert timeline.events().traced().trace_ids() == {"t1"}

    def test_matching_and_between(self):
        timeline = self.timeline()
        assert timeline.events().matching(lambda e: e.time > 4.0).count() == 1
        assert timeline.events().between(2.0, 3.0).count() == 3

    def test_accessors(self):
        timeline = self.timeline()
        quarantine = timeline.events("supervision.quarantined")
        assert quarantine.exists
        assert quarantine.one().node == "robot"
        assert timeline.events().first().kind == "midas.offered"
        assert timeline.events().last().kind == "midas.quarantine_reported"
        with pytest.raises(ValueError):
            timeline.events("missing.kind").first()
        with pytest.raises(ValueError):
            timeline.events("supervision.contained").one()


class TestQueryOrdering:
    def timeline(self) -> Timeline:
        return Timeline.from_hub(make_hub())

    def test_before_and_after(self):
        timeline = self.timeline()
        quarantine = timeline.events("supervision.quarantined")
        assert [e.kind for e in timeline.events().before(quarantine)] == [
            "midas.offered",
            "midas.installed",
            "supervision.contained",
            "supervision.contained",
        ]
        assert [e.kind for e in timeline.events().after(quarantine)] == [
            "midas.quarantine_reported"
        ]

    def test_before_empty_anchor_selects_nothing(self):
        timeline = self.timeline()
        assert not timeline.events().before(timeline.events("missing.kind")).exists
        assert not timeline.events().after(timeline.events("missing.kind")).exists

    def test_precedes_and_follows(self):
        timeline = self.timeline()
        strikes = timeline.events("supervision.contained")
        quarantine = timeline.events("supervision.quarantined")
        assert strikes.precedes(quarantine)
        assert quarantine.follows(strikes)
        assert not quarantine.precedes(strikes)

    def test_precedes_rejects_vacuous_truth(self):
        timeline = self.timeline()
        empty = timeline.events("missing.kind")
        with pytest.raises(ValueError):
            empty.precedes(timeline.events())
        with pytest.raises(ValueError):
            timeline.events().follows(empty)

    def test_anchor_accepts_single_event(self):
        timeline = self.timeline()
        install = timeline.events("midas.installed").one()
        assert timeline.events("midas.offered").precedes(install)

    def test_cross_timeline_comparison_rejected(self):
        first, second = self.timeline(), self.timeline()
        with pytest.raises(ValueError):
            first.events().precedes(second.events())
