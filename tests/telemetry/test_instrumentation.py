"""The instrumented choke points, unit by unit, then end to end."""

import pytest

from repro.aop import Aspect, FieldWriteCut, MethodCut, ProseVM, before
from repro.leasing.table import LeaseTable
from repro.tuplespace.space import Tuple, TupleSpace, TupleTemplate


class Device:
    def __init__(self):
        self.level = 0

    def ping(self):
        return "pong"


class Watcher(Aspect):
    @before(MethodCut(type="Device", method="ping"))
    def on_ping(self, ctx):
        pass

    @before(FieldWriteCut(type="Device", field="level"))
    def on_level(self, ctx):
        pass


@pytest.fixture
def vm():
    machine = ProseVM(name="test-vm")
    yield machine
    for cls in list(machine.loaded_classes):
        machine.unload_class(cls)


class TestProseInstrumentation:
    def test_dispatch_counts_and_latency(self, registry, vm):
        vm.load_class(Device)
        vm.insert(Watcher())
        device = Device()
        for _ in range(3):
            device.ping()
        assert registry.counter_value(
            "prose.interceptions", joinpoint="Device.ping"
        ) == pytest.approx(3)
        # __init__ triggered the field-write hook for ``level`` as well.
        assert registry.counter_total("prose.field_interceptions") >= 1
        histogram = registry.histogram("prose.dispatch", joinpoint="Device.ping")
        assert histogram is not None and histogram.count == 3
        assert histogram.max < 1.0  # wall-clock advice latency, sane bound

    def test_vm_stats_feed_registry_and_stay_readable(self, registry, vm):
        vm.load_class(Device)
        watcher = Watcher()
        vm.insert(watcher)
        vm.withdraw(watcher)
        # Backward-compatible attribute view...
        assert vm.stats.classes_loaded == 1
        assert vm.stats.inserts == 1
        assert vm.stats.withdrawals == 1
        assert vm.stats.methods_stubbed >= 1
        # ... and the registry mirror, labelled by VM name.
        assert registry.counter_value(
            "prose.vm.classes_loaded", vm="test-vm"
        ) == 1
        assert registry.counter_value("prose.vm.inserts", vm="test-vm") == 1
        assert registry.counter_value("prose.vm.withdrawals", vm="test-vm") == 1

    def test_vm_stats_work_without_recorder(self, vm):
        vm.load_class(Device)
        assert vm.stats.classes_loaded == 1

    def test_as_dict_matches_attributes(self, vm):
        vm.load_class(Device)
        stats = vm.stats.as_dict()
        assert stats["classes_loaded"] == 1
        assert set(stats) == set(vm.stats.FIELDS) | {"weave_seconds"}


class TestLeaseInstrumentation:
    def test_lifecycle_counters(self, sim, registry):
        table = LeaseTable(sim, name="t")
        lease = table.grant("holder", "res", duration=5.0)
        table.renew(lease.lease_id, 5.0)
        table.cancel(lease.lease_id)
        other = table.grant("holder", "res2", duration=1.0)
        sim.run_for(2.0)
        assert registry.counter_value("lease.granted", table="t") == 2
        assert registry.counter_value("lease.renewed", table="t") == 1
        assert registry.counter_value("lease.cancelled", table="t") == 1
        assert registry.counter_value("lease.expired", table="t") == 1
        (event,) = [e for e in registry.events if e.name == "lease.expired"]
        assert event.fields["resource"] == "res2"
        assert event.time == pytest.approx(other.expires_at)


class TestTupleSpaceInstrumentation:
    def test_operation_counters_and_size_gauge(self, sim, registry):
        space = TupleSpace(sim, name="s")
        space.out(Tuple("policy", {"hall": "A"}))
        space.out(Tuple("policy", {"hall": "B"}))
        space.rd(TupleTemplate("policy"))
        space.take(TupleTemplate("policy", {"hall": "A"}))
        assert registry.counter_value("tuplespace.out", space="s", kind="policy") == 2
        # take() reads first, so rd is counted twice.
        assert registry.counter_value("tuplespace.rd", space="s", kind="policy") == 2
        assert registry.counter_value("tuplespace.take", space="s", kind="policy") == 1
        assert registry.gauge_value("tuplespace.size", space="s") == 1

    def test_size_gauge_tracks_expiry(self, sim, registry):
        space = TupleSpace(sim, name="s")
        space.out(Tuple("policy"), lease_duration=1.0)
        assert registry.gauge_value("tuplespace.size", space="s") == 1
        sim.run_for(2.0)
        assert registry.gauge_value("tuplespace.size", space="s") == 0


class TestMidasLifecycleTrace:
    """The acceptance criterion: offer→install→renew→revoke is ONE trace."""

    @pytest.fixture
    def world(self):
        from repro import Position as Pos, ProactivePlatform
        from repro.extensions import CallLogging

        platform = ProactivePlatform()
        registry = platform.enable_telemetry()
        hall = platform.create_base_station("hall", Pos(0, 0))
        hall.add_extension("call-log", lambda: CallLogging(type_pattern="Nothing"))
        device = platform.create_mobile_node("node", Pos(10, 0))
        yield platform, hall, device, registry
        platform.disable_telemetry()

    def test_single_connected_trace(self, world):
        platform, hall, device, registry = world
        platform.run_for(6.0)  # discovery + offer + install
        assert device.extensions() == ["call-log"]
        platform.run_for(7.0)  # at least one keepalive/renew round
        hall.extension_base.revoke(device.node_id, "call-log")
        platform.run_for(2.0)
        assert device.extensions() == []

        midas = [s for s in registry.spans if s.name.startswith("midas.")]
        names = {s.name for s in midas}
        assert {
            "midas.offer", "midas.install", "midas.keepalive",
            "midas.renew", "midas.revoke", "midas.withdraw",
        } <= names
        assert len({s.trace_id for s in midas}) == 1

        offer = next(s for s in midas if s.name == "midas.offer")
        install = next(s for s in midas if s.name == "midas.install")
        assert offer.parent_id is None
        assert offer.node == "hall"
        assert install.node == "node"
        assert install.parent_id == offer.span_id
        assert "lease_id" in offer.attrs  # merged in by the reply callback

    def test_lifecycle_counters(self, world):
        platform, hall, device, registry = world
        platform.run_for(6.0)
        hall.extension_base.revoke(device.node_id, "call-log")
        platform.run_for(2.0)
        assert registry.counter_total("midas.offers") >= 1
        assert registry.counter_total("midas.installs") == 1
        assert registry.counter_total("midas.withdrawals") == 1
        installed = [e for e in registry.events if e.name == "midas.installed"]
        withdrawn = [e for e in registry.events if e.name == "midas.withdrawn"]
        assert len(installed) == 1 and len(withdrawn) == 1
        assert withdrawn[0].fields["reason"] == "revoked"

    def test_rejection_counted(self, world):
        from repro import Position as Pos
        from repro.aop.sandbox import SandboxPolicy
        from tests.support import NetworkUsingAspect

        platform, hall, _, registry = world
        hall.add_extension("needs-net", NetworkUsingAspect)
        strict = platform.create_mobile_node(
            "strict", Pos(12, 0), policy=SandboxPolicy.restrictive()
        )
        platform.run_for(6.0)
        assert "needs-net" not in strict.extensions()
        assert registry.counter_value(
            "midas.rejections", node="strict", extension="needs-net"
        ) >= 1
