"""Label cardinality caps and interning (the 100k-node regression).

Per-node metric labels must not mint one instrument per node: with
``label_limits`` the first N distinct values keep their own series and
the long tail aggregates under ``~other``, so the registry stays
O(limit) however many nodes report.
"""

from repro.telemetry.registry import OVERFLOW_LABEL, MetricsRegistry


class TestLabelCardinalityCap:
    def test_overflow_values_collapse_to_one_series(self):
        registry = MetricsRegistry(label_limits={"node": 10})
        for i in range(1000):
            registry.count("fleet.renewed", node=f"leaf-{i:05d}")
        # 10 dedicated series + 1 aggregate, not 1000.
        assert len(registry._counters) == 11
        assert registry.counter_value("fleet.renewed", node=OVERFLOW_LABEL) == 990
        assert registry.counter_total("fleet.renewed") == 1000

    def test_first_values_keep_their_own_series(self):
        registry = MetricsRegistry(label_limits={"node": 2})
        registry.count("m", node="a")
        registry.count("m", node="b")
        registry.count("m", node="c")
        registry.count("m", node="a")
        assert registry.counter_value("m", node="a") == 2
        assert registry.counter_value("m", node="b") == 1
        # "c" arrived past the cap: it reads through to the aggregate.
        assert registry.counter_value("m", node="c") == 1
        assert registry.counter_value("m", node=OVERFLOW_LABEL) == 1

    def test_cap_applies_across_metric_names(self):
        # The cap is per label name, not per (metric, label): one fleet
        # of nodes overflowing installs must not re-mint series under
        # renewals.
        registry = MetricsRegistry(label_limits={"node": 5})
        for i in range(50):
            registry.count("m.install", node=f"n{i}")
            registry.count("m.renew", node=f"n{i}")
        assert len(registry._counters) == 12  # (5 + ~other) × 2 names
        assert registry.counter_total("m.renew") == 50

    def test_uncapped_labels_unaffected(self):
        registry = MetricsRegistry(label_limits={"node": 3})
        for i in range(20):
            registry.count("m", table=f"t{i}")
        assert len(registry._counters) == 20

    def test_no_limits_is_byte_identical_behavior(self):
        registry = MetricsRegistry()
        for i in range(100):
            registry.count("m", node=f"n{i}")
        assert len(registry._counters) == 100
        assert registry.counter_value("m", node="n42") == 1

    def test_reads_do_not_consume_cap_slots(self):
        registry = MetricsRegistry(label_limits={"node": 2})
        assert registry.counter_value("m", node="probe-a") == 0.0
        assert registry.counter_value("m", node="probe-b") == 0.0
        registry.count("m", node="real-1")
        registry.count("m", node="real-2")
        # Both real nodes got dedicated series despite the earlier probes.
        assert registry.counter_value("m", node="real-1") == 1
        assert registry.counter_value("m", node="real-2") == 1
        assert registry.counter_value("m", node=OVERFLOW_LABEL) == 0.0

    def test_gauges_and_histograms_capped_too(self):
        registry = MetricsRegistry(label_limits={"node": 2})
        for i in range(10):
            registry.gauge("depth", float(i), node=f"n{i}")
            registry.observe("latency", 0.01, node=f"n{i}")
        assert len(registry._gauges) == 3
        assert len(registry._histograms) == 3
        assert registry.gauge_value("depth", node=OVERFLOW_LABEL) == 9.0
        overflow = registry.histogram("latency", node=OVERFLOW_LABEL)
        assert overflow is not None and overflow.count == 8


class TestLabelInterning:
    def test_label_keys_are_shared_across_metric_names(self):
        registry = MetricsRegistry()
        a = registry.counter("m.one", node="x", table="t")
        b = registry.counter("m.two", node="x", table="t")
        assert a.labels is b.labels
