"""SLO burn math, window pairs, and the engine's rising-edge alerts."""

from __future__ import annotations

import pytest

from repro.telemetry.health.slo import (
    DEFAULT_PAIRS,
    BurnPair,
    CounterRatioSLI,
    GaugeThresholdSLI,
    LatencySLI,
    SLO,
    SloEngine,
    scaled_pairs,
)

#: One pair with equal windows keeps the arithmetic transparent.
ONE_PAIR = (BurnPair("only", long_window=10.0, short_window=10.0, threshold=2.0),)


def _availability_slo(target: float = 0.9, **kwargs) -> SLO:
    return SLO(
        "renewals",
        "midas",
        target=target,
        sli=CounterRatioSLI(good=("midas.renewals",), bad=("midas.failures",)),
        pairs=kwargs.pop("pairs", ONE_PAIR),
        **kwargs,
    )


class TestBurnPair:
    def test_short_window_cannot_exceed_long(self):
        with pytest.raises(ValueError):
            BurnPair("bad", long_window=10.0, short_window=20.0, threshold=1.0)

    def test_severity_is_checked(self):
        with pytest.raises(ValueError):
            BurnPair("bad", 10.0, 5.0, 1.0, severity="sms")


class TestScaledPairs:
    def test_scales_proportionally_to_horizon(self):
        pairs = scaled_pairs(600.0)
        by_name = {p.name: p for p in pairs}
        # 3d → 600s compresses everything by 432×; ratios survive.
        assert by_name["slow"].long_window == pytest.approx(600.0)
        assert by_name["fast"].long_window == pytest.approx(
            600.0 * 3600.0 / 259200.0
        )
        # Thresholds and severities pass through untouched.
        assert by_name["fast"].threshold == 14.4
        assert by_name["fast"].severity == "page"
        assert by_name["slow"].severity == "ticket"

    def test_floor_keeps_windows_sampleable(self):
        pairs = scaled_pairs(60.0, floor=5.0)
        assert all(p.short_window >= 5.0 for p in pairs)
        assert all(p.long_window >= p.short_window for p in pairs)


class TestSloBurnMath:
    def test_burn_is_bad_fraction_over_budget(self):
        slo = _availability_slo(target=0.9)  # budget = 0.1
        for t in range(5):
            slo.ingest(float(t), good=4.0, bad=1.0, labels=())
        # bad fraction 0.2 against a 0.1 budget: burning 2× budget.
        assert slo.burn_rate(10.0, 4.0) == pytest.approx(2.0)

    def test_pair_fires_only_when_both_windows_burn(self):
        pair = BurnPair("p", long_window=10.0, short_window=2.0, threshold=2.0)
        slo = _availability_slo(target=0.9, pairs=(pair,), min_samples=1)
        # Sustained badness early, then a clean short window: the long
        # window still burns but the short one proves recovery.
        for t in range(8):
            slo.ingest(float(t), good=0.0, bad=1.0, labels=())
        for t in (8.0, 9.0):
            slo.ingest(t, good=1.0, bad=0.0, labels=())
        assert slo.burn_rate(10.0, 9.0) >= 2.0
        assert slo.burning(9.0) == []
        # Whereas while the badness is live, both windows agree.
        slo2 = _availability_slo(target=0.9, pairs=(pair,), min_samples=1)
        for t in range(10):
            slo2.ingest(float(t), good=0.0, bad=1.0, labels=())
        burning = slo2.burning(9.0)
        assert [pair.name for pair, _, _ in burning] == ["p"]

    def test_min_samples_gates_thin_windows(self):
        slo = _availability_slo(target=0.9, min_samples=4)
        slo.ingest(1.0, good=0.0, bad=1.0, labels=())
        assert slo.burning(1.0) == []  # 1 sample, all bad — but too thin
        for t in (2.0, 3.0, 4.0):
            slo.ingest(t, good=0.0, bad=1.0, labels=())
        assert slo.burning(4.0)

    def test_last_bad_remembers_blame_labels(self):
        slo = _availability_slo(min_samples=1)
        slo.ingest(1.0, good=1.0, bad=0.0, labels=(("node", "n1"),))
        assert slo.last_bad == {}
        slo.ingest(2.0, good=0.0, bad=1.0, labels=(("node", "n7"),))
        assert slo.last_bad == {"node": "n7"}
        assert slo.last_bad_at == 2.0

    def test_target_must_be_a_fraction(self):
        with pytest.raises(ValueError):
            _availability_slo(target=1.0)

    def test_snapshot_shape(self):
        slo = _availability_slo(min_samples=1)
        slo.ingest(1.0, good=3.0, bad=1.0, labels=())
        snap = slo.snapshot(1.0)
        assert snap["kind"] == "availability"
        assert snap["good_total"] == 3.0 and snap["bad_total"] == 1.0
        (pair,) = snap["pairs"]
        assert pair["burn_long"] == pytest.approx(2.5)
        assert pair["burning"] is True


class TestIndicators:
    def test_counter_ratio_classifies_by_pattern(self):
        sli = CounterRatioSLI(good=("midas.renewals",), bad=("midas.fail*",))
        assert sli.on_count("midas.renewals", (), 3.0) == (3.0, 0.0)
        assert sli.on_count("midas.failures", (), 2.0) == (0.0, 2.0)

    def test_latency_threshold(self):
        sli = LatencySLI("rpc.latency", threshold=0.25)
        assert sli.on_observe("rpc.latency", (), 0.1) == (1.0, 0.0)
        assert sli.on_observe("rpc.latency", (), 0.5) == (0.0, 1.0)

    def test_gauge_threshold(self):
        sli = GaugeThresholdSLI("roam.lag", threshold=2.0)
        assert sli.on_gauge("roam.lag", (), 0.5) == (1.0, 0.0)
        assert sli.on_gauge("roam.lag", (), 3.0) == (0.0, 1.0)


class TestSloEngine:
    def _engine(self) -> SloEngine:
        return SloEngine([_availability_slo(min_samples=1)])

    def test_routes_counters_by_pattern(self):
        engine = self._engine()
        engine.on_count(1.0, "midas.renewals", (), 5.0)
        engine.on_count(1.0, "unrelated.metric", (), 5.0)
        slo = engine.slos[0]
        assert slo.good_total == 5.0 and slo.bad_total == 0.0

    def test_rising_edge_fires_once_then_recovers(self):
        engine = self._engine()
        for t in range(4):
            engine.on_count(float(t), "midas.failures", (), 1.0)
        fired = engine.evaluate(3.0)
        assert [a.slo for a in fired] == ["renewals"]
        assert fired[0].status == "firing"
        assert engine.active() == [("renewals", "only")]
        # Still burning: no duplicate alert on the next tick.
        assert engine.evaluate(3.5) == []
        # Window rolls clean: a recovery edge lands in the log.
        assert engine.evaluate(50.0) == []
        assert engine.active() == []
        assert [a.status for a in engine.alerts] == ["firing", "recovered"]

    def test_duplicate_slo_names_rejected(self):
        engine = self._engine()
        with pytest.raises(ValueError):
            engine.add(_availability_slo())

    def test_default_pairs_are_the_sre_classics(self):
        fast, slow = DEFAULT_PAIRS
        assert (fast.long_window, fast.short_window) == (3600.0, 300.0)
        assert (slow.long_window, slow.short_window) == (259200.0, 21600.0)
        assert fast.threshold == 14.4 and slow.threshold == 1.0
