"""Sliding-window accumulators: the O(slices) base of the health plane."""

from __future__ import annotations

import pytest

from repro.telemetry.health.windows import WindowedBuckets, WindowedCounts


class TestWindowedCounts:
    def test_counts_inside_window(self):
        window = WindowedCounts(duration=12.0, slices=12)
        window.add(0.0, good=3.0)
        window.add(5.0, good=2.0, bad=1.0)
        assert window.totals(5.0) == (5.0, 1.0)
        assert window.samples(5.0) == 6.0
        assert window.bad_fraction(5.0) == pytest.approx(1.0 / 6.0)

    def test_old_slices_expire(self):
        window = WindowedCounts(duration=10.0, slices=10)
        window.add(0.5, bad=4.0)
        window.add(5.0, good=1.0)
        # At t=25 every slice from the first two adds has rolled off.
        assert window.totals(25.0) == (0.0, 0.0)
        assert window.bad_fraction(25.0) == 0.0

    def test_partial_expiry_slides(self):
        window = WindowedCounts(duration=10.0, slices=10)
        window.add(0.5, bad=1.0)
        window.add(9.5, good=1.0)
        # t=10.5: the slot holding t=0.5 expired, the t=9.5 one survives.
        assert window.totals(10.5) == (1.0, 0.0)

    def test_long_gap_clears_everything_in_one_pass(self):
        window = WindowedCounts(duration=10.0, slices=10)
        window.add(0.0, good=5.0, bad=5.0)
        window.add(1e6, good=1.0)
        assert window.totals(1e6) == (1.0, 0.0)

    def test_backwards_time_folds_into_newest_slot(self):
        window = WindowedCounts(duration=10.0, slices=10)
        window.add(8.0, good=1.0)
        window.add(2.0, bad=1.0)  # a replayed sample, not a corruption
        assert window.totals(8.0) == (1.0, 1.0)

    def test_empty_window_is_zero_fraction(self):
        window = WindowedCounts(duration=5.0)
        assert window.bad_fraction(99.0) == 0.0
        assert window.samples(99.0) == 0.0

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            WindowedCounts(duration=0.0)
        with pytest.raises(ValueError):
            WindowedCounts(duration=1.0, slices=0)


class TestWindowedBuckets:
    BOUNDS = (0.01, 0.1, 1.0)

    def test_quantile_matches_bucket_resolution(self):
        window = WindowedBuckets(self.BOUNDS, duration=10.0)
        for _ in range(90):
            window.observe(1.0, 0.005)  # lands in the 0.01 bucket
        for _ in range(10):
            window.observe(1.0, 0.5)  # lands in the 1.0 bucket
        assert window.count(1.0) == 100
        assert window.quantile(1.0, 0.5) == 0.01
        assert window.quantile(1.0, 0.95) == 1.0

    def test_observations_expire_with_their_slice(self):
        window = WindowedBuckets(self.BOUNDS, duration=10.0, slices=10)
        window.observe(0.5, 5.0)
        assert window.count(5.0) == 1
        assert window.count(50.0) == 0
        assert window.quantile(50.0, 0.99) == 0.0

    def test_over_threshold_fraction(self):
        window = WindowedBuckets(self.BOUNDS, duration=10.0)
        for _ in range(8):
            window.observe(1.0, 0.05)  # <= 0.1: fast
        for _ in range(2):
            window.observe(1.0, 0.7)  # > 0.1: slow
        assert window.over_threshold_fraction(1.0, 0.1) == pytest.approx(0.2)
        assert window.over_threshold_fraction(1.0, 10.0) == 0.0

    def test_quantile_validates_q(self):
        window = WindowedBuckets(self.BOUNDS, duration=10.0)
        with pytest.raises(ValueError):
            window.quantile(0.0, 1.5)

    def test_needs_bounds(self):
        with pytest.raises(ValueError):
            WindowedBuckets((), duration=10.0)
