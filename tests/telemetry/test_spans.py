"""Span lifecycle, ambient context, and cross-node propagation."""

import pytest

from repro.net.geometry import Position
from repro.net.node import NetworkNode
from repro.telemetry import MetricsRegistry, NULL_SPAN, runtime
from repro.telemetry.spans import SpanContext


@pytest.fixture
def registry(sim):
    registry = MetricsRegistry(clock=sim.clock)
    runtime.install(registry)
    return registry


class TestSpanBasics:
    def test_context_manager_records_ok(self, sim, registry):
        with registry.span("work", node="a", detail=1):
            pass
        (span,) = registry.finished_spans("work")
        assert span.status == "ok"
        assert span.node == "a"
        assert span.attrs == {"detail": 1}

    def test_exception_marks_error(self, registry):
        with pytest.raises(RuntimeError):
            with registry.span("work"):
                raise RuntimeError("boom")
        (span,) = registry.finished_spans("work")
        assert span.status == "error"
        assert "boom" in span.attrs["error"]

    def test_end_is_idempotent(self, registry):
        span = registry.start_span("work")
        span.end(extra=1)
        span.end(status="error")
        (finished,) = registry.finished_spans("work")
        assert finished.status == "ok"
        assert finished.attrs == {"extra": 1}
        assert len(registry.spans) == 1

    def test_times_come_from_registry_clock(self, sim, registry):
        span = registry.start_span("work")
        sim.schedule(2.0, span.end)
        sim.run()
        assert span.start == 0.0
        assert span.end_time == 2.0

    def test_open_spans_appear_in_records(self, registry):
        registry.start_span("open.work")
        records = [r for r in registry.to_records() if r["type"] == "span"]
        assert records[0]["name"] == "open.work"
        assert records[0]["end"] is None


class TestParenting:
    def test_nested_spans_share_trace(self, registry):
        with registry.span("outer") as outer:
            with registry.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id

    def test_parent_none_forces_new_root(self, registry):
        with registry.span("outer") as outer:
            root = registry.start_span("root", parent=None)
            assert root.trace_id != outer.trace_id
            assert root.parent_id is None
            root.end()

    def test_explicit_parent_context_joins_trace(self, registry):
        first = registry.start_span("first")
        first.end()
        later = registry.start_span("later", parent=first.context)
        assert later.trace_id == first.trace_id
        assert later.parent_id == first.span_id

    def test_activate_scopes_ambient_context(self, registry):
        span = registry.start_span("op")
        assert runtime.current_context() is None
        with span.activate():
            assert runtime.current_context() == span.context
        assert runtime.current_context() is None
        span.end()


class TestNullSpan:
    def test_full_surface_is_noop(self):
        assert runtime.get_recorder().start_span("x") is NULL_SPAN
        with NULL_SPAN as span:
            with span.activate():
                assert runtime.current_context() is None
        span.end(status="error")
        span.attrs["junk"] = 1
        assert NULL_SPAN.attrs == {}  # writes vanish


class TestWirePropagation:
    def test_context_round_trips_wire_form(self):
        context = SpanContext("trace:1", "span:2")
        assert SpanContext.from_wire(context.to_wire()) == context

    def test_message_carries_trace_across_nodes(self, sim, network, registry):
        a = network.attach(NetworkNode("a", Position(0, 0)))
        b = network.attach(NetworkNode("b", Position(5, 0)))
        seen: list[SpanContext | None] = []
        b.set_handler("ping", lambda message: seen.append(runtime.current_context()))

        span = registry.start_span("op")
        with span.activate():
            a.send("b", "ping")
        span.end()
        sim.run()
        assert seen == [span.context]
        # ... and the ambient context is restored after delivery.
        assert runtime.current_context() is None

    def test_untraced_message_has_no_context(self, sim, network, registry):
        a = network.attach(NetworkNode("a", Position(0, 0)))
        b = network.attach(NetworkNode("b", Position(5, 0)))
        message = a.send("b", "ping")
        assert message.trace is None

    def test_no_recorder_no_wire_overhead(self, sim, network):
        a = network.attach(NetworkNode("a", Position(0, 0)))
        network.attach(NetworkNode("b", Position(5, 0)))
        assert a.send("b", "ping").trace is None
