"""Telemetry fixtures: every test starts and ends with no recorder."""

from __future__ import annotations

import pytest

from repro.telemetry import MetricsRegistry, runtime


@pytest.fixture(autouse=True)
def clean_recorder():
    runtime.reset()
    yield
    runtime.reset()


@pytest.fixture
def registry(sim) -> MetricsRegistry:
    """A registry on the simulator clock, installed globally for the test."""
    registry = MetricsRegistry(clock=sim.clock)
    runtime.install(registry)
    return registry
