"""The join-point profiler: per-(joinpoint, extension) latency + weave cost."""

import pytest

from repro.aop import ProseVM
from repro.telemetry import JoinPointProfiler, MetricsRegistry, runtime
from repro.telemetry.profiler import ProfileEntry

from tests.support import Engine, TraceAspect, fresh_class
from repro.faults import FaultyExtension


@pytest.fixture
def profiled_vm():
    vm = ProseVM(name="robot")
    vm.profiler = JoinPointProfiler()
    return vm


def run_workload(vm, aspect, calls: int = 5):
    cls = fresh_class(Engine)
    vm.load_class(cls)
    vm.insert(aspect)
    engine = cls()
    for _ in range(calls):
        engine.throttle(1)
    return engine


class TestEntries:
    def test_counts_per_joinpoint_and_extension(self, profiled_vm):
        run_workload(profiled_vm, TraceAspect(method_pattern="throttle"), calls=5)
        entry = profiled_vm.profiler.entry("Engine.throttle", "TraceAspect")
        assert entry is not None
        assert entry.count == 5
        assert entry.errors == 0
        assert entry.total > 0
        assert entry.minimum <= entry.mean <= entry.maximum

    def test_entries_sorted_hottest_first(self, profiled_vm):
        run_workload(profiled_vm, TraceAspect(), calls=10)
        entries = profiled_vm.profiler.entries()
        totals = [entry.total for entry in entries]
        assert totals == sorted(totals, reverse=True)

    def test_unknown_entry_is_none(self, profiled_vm):
        assert profiled_vm.profiler.entry("Engine.throttle", "Nope") is None

    def test_contained_failures_count_as_errors(self, profiled_vm):
        # Containment wraps *outside* the profiler, so the profiler still
        # times the advice that raised while the app never sees it.
        from repro.aop.hooks import AdviceContainment

        class Suppressing(AdviceContainment):
            def wrap(self, advice, callback):
                def guarded(ctx):
                    try:
                        return callback(ctx)
                    except RuntimeError:
                        return None

                return guarded

        saboteur = FaultyExtension(every=1, method_pattern="throttle")
        cls = fresh_class(Engine)
        profiled_vm.load_class(cls)
        profiled_vm.insert(saboteur, containment=Suppressing())
        engine = cls()
        engine.throttle(1)  # contained, must not raise
        entry = profiled_vm.profiler.entry("Engine.throttle", "FaultyExtension")
        assert entry is not None
        assert entry.errors == 1

    def test_exemplar_trace_captured_under_ambient_context(self, sim):
        vm = ProseVM(name="robot")
        vm.profiler = JoinPointProfiler()
        registry = MetricsRegistry(clock=sim.clock)
        runtime.install(registry)
        cls = fresh_class(Engine)
        vm.load_class(cls)
        vm.insert(TraceAspect(method_pattern="throttle"))
        engine = cls()
        with registry.span("workload") as span:
            engine.throttle(1)
        entry = vm.profiler.entry("Engine.throttle", "TraceAspect")
        assert entry.exemplar_trace == span.trace_id
        assert entry.exemplar_span == span.span_id

    def test_record_has_quantiles_and_exemplar(self):
        entry = ProfileEntry("Engine.throttle", "TraceAspect")
        entry.observe(0.002, failed=False)
        record = entry.to_record()
        assert record["type"] == "profile"
        assert record["count"] == 1
        assert record["p50_seconds"] is not None
        assert record["max_seconds"] == 0.002


class TestWeaveCost:
    def test_vm_reports_insert_and_withdraw(self, profiled_vm):
        aspect = TraceAspect()
        run_workload(profiled_vm, aspect, calls=1)
        profiled_vm.withdraw(aspect)
        costs = {
            (cost.vm, cost.operation): cost
            for cost in profiled_vm.profiler.weave_costs()
        }
        assert costs[("robot", "insert")].count == 1
        assert costs[("robot", "withdraw")].count == 1
        assert costs[("robot", "insert")].total > 0

    def test_vm_stats_accumulate_weave_seconds(self, profiled_vm):
        run_workload(profiled_vm, TraceAspect(), calls=1)
        assert profiled_vm.stats.weave_seconds > 0
        assert profiled_vm.stats.as_dict()["weave_seconds"] > 0


class TestReport:
    def test_report_lists_entries_and_costs(self, profiled_vm):
        run_workload(profiled_vm, TraceAspect(method_pattern="throttle"), calls=3)
        report = profiled_vm.profiler.report()
        assert "Engine.throttle" in report
        assert "TraceAspect" in report
        assert "weave cost" in report

    def test_empty_report(self):
        assert "no advice dispatches" in JoinPointProfiler().report()

    def test_to_records_round_trip_shape(self, profiled_vm):
        run_workload(profiled_vm, TraceAspect(), calls=2)
        records = profiled_vm.profiler.to_records()
        assert {record["type"] for record in records} == {"profile", "weave_cost"}
