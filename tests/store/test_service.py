"""Store network service tests."""

import pytest

from repro.net.geometry import Position
from repro.net.node import NetworkNode
from repro.net.transport import RemoteError, Transport
from repro.store.database import MovementRecord, MovementStore
from repro.store.service import APPEND, QUERY, ROBOTS, StoreService


@pytest.fixture
def rig(sim, network):
    base = network.attach(NetworkNode("base", Position(0, 0)))
    robot = network.attach(NetworkNode("robot", Position(5, 0)))
    store = MovementStore()
    service = StoreService(store, Transport(base, sim))
    client = Transport(robot, sim)
    return store, service, client


def sample_records(n=3):
    return [
        MovementRecord("robot", "m.x", "rotate", (10.0,), float(t)) for t in range(n)
    ]


class TestStoreService:
    def test_remote_append(self, sim, rig):
        store, _, client = rig
        replies = []
        client.request("base", APPEND, {"records": sample_records()},
                       on_reply=replies.append)
        sim.run_for(1.0)
        assert replies == [{"stored": 3}]
        assert store.count("robot") == 3

    def test_append_rejects_non_records(self, sim, rig):
        _, _, client = rig
        errors = []
        client.request("base", APPEND, {"records": [{"fake": 1}]},
                       on_error=errors.append)
        sim.run_for(1.0)
        assert isinstance(errors[0], RemoteError)

    def test_remote_query(self, sim, rig):
        store, _, client = rig
        store.append_many(sample_records(5))
        results = []
        client.request("base", QUERY, {"robot_id": "robot", "since": 1.0, "until": 3.0},
                       on_reply=lambda body: results.append(body["records"]))
        sim.run_for(1.0)
        assert [r.time for r in results[0]] == [1.0, 2.0, 3.0]

    def test_remote_robots_listing(self, sim, rig):
        store, _, client = rig
        store.append_many(sample_records(1))
        results = []
        client.request("base", ROBOTS, on_reply=lambda body: results.append(body["robots"]))
        sim.run_for(1.0)
        assert results == [["robot"]]

    def test_records_survive_network_copy(self, sim, rig):
        """Records round-trip through the deep-copying radio unchanged."""
        store, _, client = rig
        original = sample_records(1)[0]
        client.request("base", APPEND, {"records": [original]})
        sim.run_for(1.0)
        stored = store.actions_of("robot")[0]
        assert stored == original
