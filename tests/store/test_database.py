"""Movement store tests."""

import pytest

from repro.errors import QueryError
from repro.store.database import MovementRecord, MovementStore


def record(robot="robot:1:1", device="m.x", command="rotate", args=(10.0,), time=0.0):
    return MovementRecord(robot, device, command, args, time)


@pytest.fixture
def store():
    db = MovementStore()
    for t in range(5):
        db.append(record(time=float(t)))
    db.append(record(robot="robot:2:2", device="m.y", command="stop", args=(), time=2.0))
    return db


class TestAppend:
    def test_append_and_count(self, store):
        assert store.count() == 6
        assert store.count("robot:1:1") == 5
        assert store.count("robot:2:2") == 1
        assert store.count("ghost") == 0

    def test_append_many(self):
        db = MovementStore()
        stored = db.append_many([record(time=1.0), record(time=2.0)])
        assert stored == 2
        assert len(db) == 2

    def test_robots_listing(self, store):
        assert store.robots() == ["robot:1:1", "robot:2:2"]

    def test_unique_record_ids(self):
        assert record().record_id != record().record_id


class TestQueries:
    def test_actions_of_in_time_order(self, store):
        actions = store.actions_of("robot:1:1")
        assert [r.time for r in actions] == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_time_window(self, store):
        actions = store.actions_of("robot:1:1", since=1.0, until=3.0)
        assert [r.time for r in actions] == [1.0, 2.0, 3.0]

    def test_device_filter(self, store):
        store.append(record(device="m.pen", time=9.0))
        actions = store.actions_of("robot:1:1", device_id="m.pen")
        assert len(actions) == 1

    def test_command_filter(self, store):
        assert store.actions_of("robot:2:2", command="stop")
        assert store.actions_of("robot:2:2", command="rotate") == []

    def test_empty_window_rejected(self, store):
        with pytest.raises(QueryError):
            store.actions_of("robot:1:1", since=5.0, until=1.0)

    def test_time_span(self, store):
        assert store.time_span("robot:1:1") == (0.0, 4.0)
        assert store.time_span("ghost") is None

    def test_describe_row(self):
        row = record().describe()
        assert "robot:1:1" in row
        assert "rotate" in row

    def test_clear(self, store):
        store.clear()
        assert len(store) == 0
        assert store.robots() == []
