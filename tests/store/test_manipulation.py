"""Movement sequence manipulation and replay tests."""

import pytest

from repro.errors import QueryError
from repro.robot.hardware import Motor
from repro.robot.rcx import RCXBrick
from repro.store.database import MovementRecord, MovementStore
from repro.store.manipulation import (
    MovementSequence,
    ReplaySession,
    plotter_port_map,
)


def plotter_records(robot="robot:1:1", t0=0.0):
    """Records of drawing a 10x10 L: x+20deg, y+20deg (0.5mm/deg)."""
    return [
        MovementRecord(robot, f"{robot}.motor.pen", "rotate", (90.0,), t0 + 0.0),
        MovementRecord(robot, f"{robot}.motor.x", "rotate", (20.0,), t0 + 1.0),
        MovementRecord(robot, f"{robot}.motor.y", "rotate", (20.0,), t0 + 2.0),
        MovementRecord(robot, f"{robot}.motor.pen", "rotate", (-90.0,), t0 + 3.0),
    ]


def fresh_brick():
    rcx = RCXBrick("replica")
    rcx.attach_motor("A", Motor("rep.x"))
    rcx.attach_motor("B", Motor("rep.y"))
    rcx.attach_motor("C", Motor("rep.pen"))
    return rcx


class TestMovementSequence:
    def test_from_store_sorted_by_time(self):
        store = MovementStore()
        for rec in reversed(plotter_records()):
            store.append(rec)
        seq = MovementSequence.from_store(store, "robot:1:1")
        assert [r.time for r in seq.records] == [0.0, 1.0, 2.0, 3.0]

    def test_duration(self):
        seq = MovementSequence(plotter_records())
        assert seq.duration() == 3.0
        assert MovementSequence([]).duration() == 0.0

    def test_scaled_scales_rotations_only(self):
        seq = MovementSequence(plotter_records()).scaled(2.0)
        x_rotation = [r for r in seq.records if r.device_id.endswith("motor.x")][0]
        assert x_rotation.args == (40.0,)

    def test_scaled_preserves_times(self):
        seq = MovementSequence(plotter_records()).scaled(3.0)
        assert [r.time for r in seq.records] == [0.0, 1.0, 2.0, 3.0]

    def test_invalid_scale_rejected(self):
        with pytest.raises(QueryError):
            MovementSequence(plotter_records()).scaled(0.0)

    def test_slice(self):
        seq = MovementSequence(plotter_records()).slice(1.0, 2.0)
        assert len(seq) == 2

    def test_rotation_span(self):
        seq = MovementSequence(plotter_records())
        assert seq.rotation_span("robot:1:1.motor.pen") == 0.0  # +90 - 90
        assert seq.rotation_span("robot:1:1.motor.x") == 20.0

    def test_port_map_derivation(self):
        mapping = plotter_port_map(plotter_records())
        assert mapping["robot:1:1.motor.x"] == "A"
        assert mapping["robot:1:1.motor.pen"] == "C"

    def test_to_macros_relative_times(self):
        seq = MovementSequence(plotter_records(t0=100.0))
        macros = seq.to_macros(plotter_port_map(seq.records))
        assert [offset for offset, _ in macros] == [0.0, 1.0, 2.0, 3.0]

    def test_to_macros_skips_unmapped_devices(self):
        records = plotter_records()
        records.append(MovementRecord("robot:1:1", "sensor.1", "read", (), 4.0))
        macros = MovementSequence(records).to_macros(plotter_port_map(records))
        assert len(macros) == 4


class TestReplaySession:
    def test_replays_all_macros_onto_hardware(self, sim):
        brick = fresh_brick()
        session = ReplaySession(sim)
        session.add(MovementSequence(plotter_records()), brick)
        scheduled = session.start()
        sim.run_for(10.0)
        assert scheduled == 4
        assert session.macros_replayed == 4
        assert brick.motor("A").angle == 20.0
        assert brick.motor("C").angle == 0.0

    def test_replay_preserves_relative_timing(self, sim):
        brick = fresh_brick()
        session = ReplaySession(sim)
        session.add(MovementSequence(plotter_records(t0=50.0)), brick)
        session.start()
        sim.run_for(1.5)  # offsets 0.0 and 1.0 have fired
        assert brick.motor("A").angle == 20.0
        assert brick.motor("B").angle == 0.0

    def test_time_scale_stretches_replay(self, sim):
        brick = fresh_brick()
        session = ReplaySession(sim, time_scale=2.0)
        session.add(MovementSequence(plotter_records()), brick)
        session.start()
        sim.run_for(3.0)  # original offset 2.0 now at 4.0: y not yet
        assert brick.motor("B").angle == 0.0
        sim.run_for(10.0)
        assert brick.motor("B").angle == 20.0

    def test_multi_robot_alignment(self, sim):
        """Two robots recorded at different absolute times replay with the
        right relative offsets (the paper's failure-reproduction case)."""
        brick_one, brick_two = fresh_brick(), fresh_brick()
        session = ReplaySession(sim)
        session.add(MovementSequence(plotter_records(t0=100.0)), brick_one)
        session.add(MovementSequence(plotter_records(robot="r2", t0=101.5)), brick_two)
        session.start()
        sim.run_for(1.6)  # t=1.5 relative: robot 2's pen-down fires
        assert brick_one.motor("A").angle == 20.0  # its offset-1.0 fired
        assert brick_two.motor("C").angle == 90.0
        assert brick_two.motor("A").angle == 0.0  # its offset-1.0 is at 2.5

    def test_on_done_fires(self, sim):
        brick = fresh_brick()
        session = ReplaySession(sim)
        session.add(MovementSequence(plotter_records()), brick)
        done = []
        session.on_done.connect(lambda s: done.append(s.macros_replayed))
        session.start()
        sim.run_for(10.0)
        assert done == [4]

    def test_empty_session_done_immediately(self, sim):
        session = ReplaySession(sim)
        done = []
        session.on_done.connect(lambda s: done.append(True))
        assert session.start() == 0
        assert done == [True]

    def test_invalid_time_scale_rejected(self, sim):
        with pytest.raises(QueryError):
            ReplaySession(sim, time_scale=0.0)

    def test_scaled_replay_draws_scaled_rotations(self, sim):
        brick = fresh_brick()
        session = ReplaySession(sim)
        session.add(MovementSequence(plotter_records()).scaled(2.5), brick)
        session.start()
        sim.run_for(10.0)
        assert brick.motor("A").angle == 50.0
