"""HallClient (the Fig. 6 tool) tests."""

import pytest

from repro.core.platform import ProactivePlatform
from repro.extensions.monitoring import HwMonitoring
from repro.net.geometry import Position
from repro.robot.hardware import Device, Motor
from repro.robot.plotter import Plotter, build_plotter
from repro.store.client import HallClient


@pytest.fixture
def scenario():
    platform = ProactivePlatform(seed=131)
    hall = platform.create_base_station("hall", Position(0, 0))
    hall.add_extension(
        "hw-monitoring",
        lambda: HwMonitoring("robot:1:1", hall.store_ref, flush_interval=0.2),
    )
    robot = platform.create_mobile_node("robot:1:1", Position(5, 0))
    for cls in (Device, Motor, Plotter):
        robot.load_class(cls)
    plotter = build_plotter("robot:1:1")

    operator = platform.create_mobile_node("operator", Position(0, 5))
    client = HallClient(
        operator.transport, platform.simulator, discovery=operator.discovery
    )
    platform.run_for(5.0)
    plotter.draw_polyline([(0, 0), (10, 0), (10, 10)])
    platform.run_for(2.0)
    yield platform, hall, plotter, client
    for cls in (Device, Motor, Plotter):
        robot.vm.unload_class(cls)


class TestHallClient:
    def test_finds_store_through_discovery(self, scenario):
        platform, hall, plotter, client = scenario
        stores = []
        client.find_stores(stores.append)
        platform.run_for(1.0)
        assert stores == [["hall"]]

    def test_lists_robots_and_actions(self, scenario):
        platform, hall, plotter, client = scenario
        robots = []
        client.list_robots("hall", robots.append)
        platform.run_for(1.0)
        assert robots == [["robot:1:1"]]

        actions = []
        client.action_list("hall", "robot:1:1", actions.append)
        platform.run_for(1.0)
        assert actions and len(actions[0]) > 0
        assert all(record.robot_id == "robot:1:1" for record in actions[0])

    def test_replicate_selection_at_scale(self, scenario):
        platform, hall, plotter, client = scenario
        actions = []
        client.action_list("hall", "robot:1:1", actions.append)
        platform.run_for(1.0)

        selection = client.select(actions[0])
        replica = build_plotter("replica")
        session = client.replicate(selection, replica.rcx, scale=2.0)
        platform.run_for(10.0)
        assert session.macros_replayed == len(selection)
        assert replica.canvas.matches(plotter.canvas.scaled(2.0))

    def test_replay_interaction_between_robots(self, scenario):
        platform, hall, plotter, client = scenario
        actions = []
        client.action_list("hall", "robot:1:1", actions.append)
        platform.run_for(1.0)
        selection = client.select(actions[0])

        one, two = build_plotter("replay-1"), build_plotter("replay-2")
        session = client.replay_interaction(
            [(selection, one.rcx), (selection, two.rcx)]
        )
        platform.run_for(10.0)
        assert one.canvas.matches(plotter.canvas)
        assert two.canvas.matches(plotter.canvas)

    def test_find_stores_without_discovery(self, scenario):
        platform, hall, plotter, client = scenario
        bare = HallClient(client.transport, platform.simulator)
        results = []
        bare.find_stores(results.append)
        assert results == [[]]
