"""Movement store snapshot/load tests."""

import pytest

from repro.errors import StoreError
from repro.store.database import MovementRecord, MovementStore


def build_store(records=5):
    store = MovementStore(name="hall-A")
    for index in range(records):
        store.append(
            MovementRecord(
                "robot:1:1", "m.x", "rotate", (float(index),), float(index)
            )
        )
    return store


class TestSnapshotLoad:
    def test_round_trip(self, tmp_path):
        store = build_store()
        path = tmp_path / "db.jsonl"
        assert store.snapshot(path) == 5

        restored = MovementStore.load(path, name="hall-A")
        assert restored.count() == 5
        assert [r.args for r in restored.actions_of("robot:1:1")] == [
            (0.0,), (1.0,), (2.0,), (3.0,), (4.0,)
        ]

    def test_record_ids_preserved(self, tmp_path):
        store = build_store(2)
        path = tmp_path / "db.jsonl"
        store.snapshot(path)
        restored = MovementStore.load(path)
        original_ids = [r.record_id for r in store.all_records()]
        restored_ids = [r.record_id for r in restored.all_records()]
        assert restored_ids == original_ids

    def test_empty_store_round_trip(self, tmp_path):
        path = tmp_path / "db.jsonl"
        MovementStore().snapshot(path)
        assert MovementStore.load(path).count() == 0

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(StoreError):
            MovementStore.load(tmp_path / "nothing.jsonl")

    def test_corrupt_line_raises_with_location(self, tmp_path):
        path = tmp_path / "db.jsonl"
        build_store(1).snapshot(path)
        path.write_text(path.read_text() + '{"robot_id": "x"}\n')
        with pytest.raises(StoreError) as info:
            MovementStore.load(path)
        assert "line 2" in str(info.value)

    def test_queries_survive_reload(self, tmp_path):
        store = build_store()
        path = tmp_path / "db.jsonl"
        store.snapshot(path)
        restored = MovementStore.load(path)
        windowed = restored.actions_of("robot:1:1", since=1.0, until=3.0)
        assert len(windowed) == 3
        assert restored.time_span("robot:1:1") == (0.0, 4.0)
