"""M5 — tuple-space primitive costs (supporting M4).

Micro-costs of the space the distribution model is built on: ``out``,
``rd`` and ``take`` against spaces of different sizes.  Shape: ``out`` is
O(listeners); ``rd``/``take`` scan matching candidates (linear in space
size for non-selective templates, early-exit for selective ones).
"""

import pytest

from repro.sim.kernel import Simulator
from repro.tuplespace.space import Tuple, TupleSpace, TupleTemplate


def populated(size: int) -> TupleSpace:
    space = TupleSpace(Simulator())
    for index in range(size):
        space.out(
            Tuple("midas.extension", {"name": f"ext-{index}", "hall": index % 4}),
            lease_duration=1e9,
        )
    return space


@pytest.mark.benchmark(group="m5-out")
@pytest.mark.parametrize("listeners", [0, 10, 100])
def test_m5_out_vs_listener_count(benchmark, listeners):
    space = TupleSpace(Simulator())
    for index in range(listeners):
        space.notify(TupleTemplate("midas.extension", {"hall": index % 4}), lambda t: None)

    def publish():
        space.out(Tuple("midas.extension", {"hall": 1}), lease_duration=1e9)

    benchmark(publish)


@pytest.mark.benchmark(group="m5-rd")
@pytest.mark.parametrize("size", [10, 100, 1000])
def test_m5_rd_selective(benchmark, size):
    """Selective template: early exit on the first match."""
    space = populated(size)
    template = TupleTemplate("midas.extension", {"name": "ext-0"})
    result = benchmark(space.rd, template)
    assert result is not None


@pytest.mark.benchmark(group="m5-rd")
@pytest.mark.parametrize("size", [10, 100, 1000])
def test_m5_rd_all_scan(benchmark, size):
    """Unselective template: full scan, linear in space size."""
    space = populated(size)
    template = TupleTemplate("midas.extension", {"hall": 1})
    result = benchmark(space.rd_all, template)
    assert len(result) == sum(1 for index in range(size) if index % 4 == 1)


@pytest.mark.benchmark(group="m5-take")
def test_m5_take_put_cycle(benchmark):
    """A worker-queue style take+out cycle on a busy space."""
    space = populated(200)
    template = TupleTemplate("midas.extension")

    def cycle():
        record = space.take(template)
        space.out(record, lease_duration=1e9)

    benchmark(cycle)
