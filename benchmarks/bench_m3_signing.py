"""M3 — the security layer's costs: sealing and verifying extensions.

Every distributed extension instance is serialized and signed at the base
and verified at the receiver *before* deserialization (§3.2).  The
benchmark measures seal (pickle + MAC) and open (verify + unpickle)
across payload sizes, and the rejection fast-path for untrusted senders.

Shape: both scale linearly with payload size; rejecting an untrusted
signer is near-constant (no deserialization is ever attempted).
"""

import pytest

from repro.midas.envelope import ExtensionEnvelope
from repro.midas.trust import Signer, TrustStore

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from tests.support import TraceAspect  # noqa: E402


class PaddedAspect(TraceAspect):
    """A trace aspect carrying configuration ballast of a chosen size."""

    def __init__(self, ballast: int):
        super().__init__()
        self.ballast = b"x" * ballast


@pytest.fixture(scope="module")
def signer():
    return Signer.generate("hall")


@pytest.fixture(scope="module")
def trust(signer):
    store = TrustStore()
    store.trust_signer(signer)
    return store


@pytest.mark.benchmark(group="m3-seal")
@pytest.mark.parametrize("ballast", [0, 4096, 65536])
def test_m3_seal(benchmark, signer, ballast):
    """Instantiate + serialize + sign one extension."""
    envelope = benchmark(
        lambda: ExtensionEnvelope.seal("ext", PaddedAspect(ballast), signer)
    )
    benchmark.extra_info["payload_bytes"] = envelope.size


@pytest.mark.benchmark(group="m3-open")
@pytest.mark.parametrize("ballast", [0, 4096, 65536])
def test_m3_verify_and_open(benchmark, signer, trust, ballast):
    """Verify + deserialize one received extension."""
    envelope = ExtensionEnvelope.seal("ext", PaddedAspect(ballast), signer)
    benchmark(envelope.open, trust)
    benchmark.extra_info["payload_bytes"] = envelope.size


@pytest.mark.benchmark(group="m3-reject")
def test_m3_reject_untrusted(benchmark, signer):
    """Rejection path: untrusted signer, payload never deserialized."""
    from repro.errors import UntrustedSignerError

    envelope = ExtensionEnvelope.seal("ext", PaddedAspect(65536), signer)
    empty_store = TrustStore()

    def attempt():
        try:
            envelope.open(empty_store)
        except UntrustedSignerError:
            return True
        raise AssertionError("untrusted envelope accepted")

    assert benchmark(attempt)


@pytest.mark.benchmark(group="m3-reject")
def test_m3_reject_tampered(benchmark, signer, trust):
    """Rejection path: valid signer, corrupted payload."""
    from repro.errors import VerificationError

    sealed = ExtensionEnvelope.seal("ext", PaddedAspect(65536), signer)
    tampered = ExtensionEnvelope(
        name=sealed.name,
        payload=sealed.payload[:-1] + b"!",
        signer=sealed.signer,
        signature=sealed.signature,
    )

    def attempt():
        try:
            tampered.open(trust)
        except VerificationError:
            return True
        raise AssertionError("tampered envelope accepted")

    assert benchmark(attempt)
