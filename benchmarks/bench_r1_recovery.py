"""R1 — recovery: time-to-converge under loss, with and without retries.

The resilience layer's pitch is that retrying with backoff converges
faster than waiting for the next reconciliation pass, without flooding
the radio.  The benchmark measures the simulated time from cold start to
a fully adapted node at increasing loss rates, for the classic
reconcile-only platform and for one with a retry policy, and the time to
re-converge after a base-station crash wipes its volatile state.

Shape: at 0% loss the two configurations tie (the retry path is
dormant); as loss grows, the retrying platform's convergence time grows
far more slowly, at the cost of a modest number of extra requests
(visible as ``retries`` in extra_info).
"""

import sys
from pathlib import Path

import pytest

from repro.core.platform import ProactivePlatform
from repro.faults import FaultPlan
from repro.net.geometry import Position
from repro.net.network import NetworkConfig
from repro.resilience import RetryPolicy

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from tests.support import TraceAspect  # noqa: E402

RETRY = RetryPolicy(max_attempts=4, initial_backoff=0.25)


def build(loss: float, policy: RetryPolicy | None, seed: int = 3):
    platform = ProactivePlatform(
        seed=seed,
        network_config=NetworkConfig(loss_probability=loss),
        retry_policy=policy,
    )
    registry = platform.enable_telemetry()
    hall = platform.create_base_station("hall", Position(0, 0))
    hall.add_extension("trace", TraceAspect)
    robot = platform.create_mobile_node("robot", Position(5, 0))
    return platform, registry, hall, robot


def run_until(platform, predicate, limit: float = 600.0) -> float:
    """Step until ``predicate`` holds; returns the simulated instant."""
    start = platform.now
    while not predicate():
        assert platform.now - start < limit, "never converged"
        if not platform.simulator.step():
            break
    assert predicate(), "never converged"
    return platform.now


def time_to_adapt(loss: float, policy: RetryPolicy | None) -> dict:
    """Simulated seconds from cold start to the extension installed."""
    platform, registry, hall, robot = build(loss, policy)
    try:
        converged = run_until(platform, lambda: robot.extensions() == ["trace"])
        return {
            "simulated_seconds": converged,
            "messages": platform.network.messages_transmitted,
            "retries": registry.counter_total("resilience.retries"),
        }
    finally:
        platform.disable_telemetry()


def time_to_recover(policy: RetryPolicy | None) -> dict:
    """Simulated seconds from a base crash back to full adaptation."""
    platform, registry, hall, robot = build(0.1, policy)
    try:
        run_until(platform, lambda: robot.extensions() == ["trace"])
        platform.install_faults(FaultPlan().crash("hall", at=platform.now + 1.0, down_for=4.0))
        platform.run_for(5.0)  # crash happens; hall comes back
        restarted = platform.now
        converged = run_until(
            platform,
            lambda: robot.extensions() == ["trace"]
            and hall.extension_base.adapted_nodes() == ["robot"],
        )
        return {
            "simulated_seconds": converged - restarted,
            "retries": registry.counter_total("resilience.retries"),
        }
    finally:
        platform.disable_telemetry()


@pytest.mark.benchmark(group="r1-convergence-vs-loss")
@pytest.mark.parametrize("loss", [0.0, 0.1, 0.3])
@pytest.mark.parametrize("mode", ["classic", "retry"])
def test_r1_time_to_adapt_under_loss(benchmark, loss, mode):
    policy = RETRY if mode == "retry" else None
    result = benchmark.pedantic(
        time_to_adapt, args=(loss, policy), rounds=3, iterations=1
    )
    benchmark.extra_info["loss"] = loss
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["simulated_seconds_to_adapted"] = round(
        result["simulated_seconds"], 3
    )
    benchmark.extra_info["messages_transmitted"] = result["messages"]
    benchmark.extra_info["retries"] = result["retries"]


@pytest.mark.benchmark(group="r1-crash-recovery")
@pytest.mark.parametrize("mode", ["classic", "retry"])
def test_r1_time_to_recover_after_crash(benchmark, mode):
    policy = RETRY if mode == "retry" else None
    result = benchmark.pedantic(time_to_recover, args=(policy,), rounds=3, iterations=1)
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["simulated_seconds_to_recovered"] = round(
        result["simulated_seconds"], 3
    )
    benchmark.extra_info["retries"] = result["retries"]
