"""X3 — storm scenarios at fleet scale: convergence under chaos.

PR 8's scenario subsystem promises that federated roaming *converges*
under storms, not just that small tests pass.  X3 measures that promise
at 1000 nodes:

- **roam-storm convergence** — a flash-crowd roaming storm across three
  linked bases with 40% of ROAMED announcements eaten: how long after
  the storm window does the last dual-home disappear?  (The monitor's
  ``last_dual_at`` is exactly that instant; clean means every migrator
  ended single-homed well inside the settle window.)
- **revocation completion** — a mass revocation mid-storm: how long
  until no copy of the revoked extension survives on any base's books
  or any attached node?

Both runs must finish with zero invariant violations — the benchmark
doubles as the scenario acceptance gate at 5-10x test scale.  One
trajectory row per full run lands in ``BENCH_storms.json``; all numbers
are virtual-time / counter metrics, deterministic for the fixed seed.
"""

from __future__ import annotations

import logging

import pytest

from conftest import append_bench_row
from repro.scenarios import StormReport, revocation_storm, roaming_storm, run_storm

SEED = 7
NODES = 1000

_cache: dict[str, StormReport] = {}


@pytest.fixture(autouse=True)
def _quiet_announce_warnings():
    logging.disable(logging.WARNING)
    yield
    logging.disable(logging.NOTSET)


def roam_report() -> StormReport:
    if "roam" not in _cache:
        _cache["roam"] = run_storm(roaming_storm(nodes=NODES, bases=3, seed=SEED))
    return _cache["roam"]


def revocation_report() -> StormReport:
    if "revocation" not in _cache:
        _cache["revocation"] = run_storm(
            revocation_storm(nodes=NODES, bases=2, seed=SEED)
        )
    return _cache["revocation"]


def test_x3_roam_storm_converges_clean():
    report = roam_report()
    assert report.clean, report.violations
    assert report.dual_homed == []
    # Chaos was real and was healed by the hardening, not by luck.
    assert report.counters["midas.roam.announce_failed"] > 0
    assert report.counters["midas.roam.reconciled"] > 0
    # Convergence: the last dual-home sighting falls inside the settle
    # window (storm ends at storm_start + duration).
    spec = report.spec
    assert report.last_dual_at is not None
    assert report.last_dual_at < spec.total_time - spec.grace


def test_x3_revocation_completes():
    report = revocation_report()
    assert report.clean, report.violations
    assert report.revocation_cleared_at is not None
    spec = report.spec
    # Completion latency: bounded by one lease term + the monitor grace
    # (the revocation-completeness deadline the monitor enforced).
    latency = report.revocation_cleared_at - spec.revoke_at
    assert 0.0 <= latency <= spec.lease_duration + spec.grace
    name = spec.revoke_extension
    assert not any(
        lease.endswith(f":{name}")
        for leases in report.held.values()
        for lease in leases
    )


def test_x3_record_trajectory_row(record_property):
    roam = roam_report()
    revocation = revocation_report()
    row = {
        "bench": "x3_storms",
        "seed": SEED,
        "nodes": NODES,
        "roam_storm": {
            "bases": roam.spec.bases,
            "drop_roamed": roam.spec.drop_roamed,
            "migrations": roam.stats["migrations"],
            "announced": roam.counters["midas.roam.announced"],
            "announce_failed": roam.counters["midas.roam.announce_failed"],
            "reconciled": roam.counters["midas.roam.reconciled"],
            "last_dual_at": roam.last_dual_at,
            "storm_ends_at": roam.spec.storm_start + roam.spec.duration,
            "violations": len(roam.violations),
            "messages_delivered": roam.network["delivered"],
            "fingerprint": roam.fingerprint,
        },
        "revocation_storm": {
            "bases": revocation.spec.bases,
            "revoke_at": revocation.spec.revoke_at,
            "cleared_at": revocation.revocation_cleared_at,
            "completion_latency": round(
                revocation.revocation_cleared_at - revocation.spec.revoke_at, 3
            ),
            "violations": len(revocation.violations),
            "fingerprint": revocation.fingerprint,
        },
    }
    path = append_bench_row("storms", row)
    record_property("bench_rows_path", str(path))
