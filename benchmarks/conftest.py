"""Shared benchmark helpers.

Benchmarks measure two different things and label them clearly:

- *wall time* (what pytest-benchmark reports) — the real cost of running
  the scenario on this machine;
- *simulated time / derived metrics* — protocol latencies inside the
  discrete-event world and paper-comparison ratios, attached to each
  benchmark via ``benchmark.extra_info`` and summarized in
  EXPERIMENTS.md.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Make the test-suite support module importable from benchmarks too.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro.aop.vm import ProseVM  # noqa: E402


@pytest.fixture
def vm():
    """A VM that restores every class it instrumented at teardown."""
    machine = ProseVM()
    yield machine
    for cls in list(machine.loaded_classes):
        machine.unload_class(cls)
