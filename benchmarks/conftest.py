"""Shared benchmark helpers.

Benchmarks measure two different things and label them clearly:

- *wall time* (what pytest-benchmark reports) — the real cost of running
  the scenario on this machine;
- *simulated time / derived metrics* — protocol latencies inside the
  discrete-event world and paper-comparison ratios, attached to each
  benchmark via ``benchmark.extra_info`` and summarized in
  EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

# Make the test-suite support module importable from benchmarks too.
REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT))

from repro.aop.vm import ProseVM  # noqa: E402


def append_bench_row(name: str, row: dict) -> Path:
    """Append one machine-readable trajectory row to ``BENCH_<name>.json``.

    The file at the repo root holds a JSON list of rows, one per recorded
    run, so derived metrics can be tracked across commits without
    scraping pytest-benchmark output.  Rows should contain only
    deterministic, simulation-derived numbers (plus explicit context like
    a git revision if the caller wants it) — not wall-clock noise.
    """
    path = REPO_ROOT / f"BENCH_{name}.json"
    rows = json.loads(path.read_text(encoding="utf-8")) if path.exists() else []
    rows.append(row)
    path.write_text(
        json.dumps(rows, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


@pytest.fixture
def bench_trajectory():
    """Fixture handle on :func:`append_bench_row` for benchmark modules."""
    return append_bench_row


@pytest.fixture
def vm():
    """A VM that restores every class it instrumented at teardown."""
    machine = ProseVM()
    yield machine
    for cls in list(machine.loaded_classes):
        machine.unload_class(cls)
