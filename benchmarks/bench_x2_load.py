"""X2 — closed-loop load against the pipelined extension base.

The paper evaluates adaptation one node at a time; X2 asks what a whole
hall of nodes does to a base station.  A closed population of N protocol
stubs (think time Z = 0.2 s) drives install/renew/revoke mixes through
the base's accept-queue → worker-pool pipeline (service demand
S = 0.04 s per job), and the measured stable-window throughput and
response time are compared against the exact closed-M/M/n model.

Two sweeps, two knees:

- **offered load** (clients at 2 workers): throughput grows ~linearly
  with N until the asymptotic knee ``N* = (Z + S) * n / S = 12``, then
  flattens at the service ceiling ``n / S = 50 op/s`` while response
  time grows linearly with N (every extra client just queues);
- **workers** (1/2/4 at N = 32): a saturated single worker caps at
  ``1 / S = 25 op/s``; adding workers raises the ceiling almost
  linearly until the population can no longer keep them busy.

Below saturation (utilization < 0.8) the measured mean response time
must match the closed-M/M/n prediction within ±25% — the same assertion
CI runs in ``tests/loadgen/test_mmn_validation.py``.  Derived metrics
land in ``extra_info`` and one summary row per full run is appended to
``BENCH_load.json`` (see ``conftest.append_bench_row``).
"""

from __future__ import annotations

import pytest

from conftest import append_bench_row
from repro.loadgen import Scenario, closed_mmn, run_scenario
from repro.loadgen.analysis import saturation_point
from repro.loadgen.harness import LoadReport

THINK = 0.2
SERVICE = 0.04
SEED = 7

CLIENT_SWEEP = [4, 8, 16, 24, 32]
WORKER_SWEEP = [1, 2, 4]

_cache: dict[tuple[int, int], LoadReport] = {}


def run_point(workers: int, clients: int) -> LoadReport:
    """One sweep point (memoized — several tests share the grid)."""
    key = (workers, clients)
    if key not in _cache:
        _cache[key] = run_scenario(
            Scenario(
                name=f"x2-w{workers}-n{clients}",
                clients=clients,
                think_time=THINK,
                service_time=SERVICE,
                workers=workers,
                duration=30.0,
                warmup=6.0,
                window=2.0,
                seed=SEED,
            )
        )
    return _cache[key]


def _annotate(benchmark, report: LoadReport) -> None:
    predicted = report.predicted
    benchmark.extra_info.update(
        measured_throughput=report.stable["throughput"],
        measured_response=report.stable["latency"]["mean"],
        predicted_throughput=predicted["throughput"],
        predicted_response=predicted["response_time"],
        utilization=report.station["utilization"],
        model_gap=report.model_gap,
        stable_windows=report.stable["windows"],
    )


@pytest.mark.benchmark(group="x2-load-clients")
@pytest.mark.parametrize("clients", CLIENT_SWEEP)
def test_x2_offered_load_sweep(benchmark, clients):
    """Throughput/latency curve over population size at 2 workers."""
    report = benchmark.pedantic(run_point, args=(2, clients), rounds=1, iterations=1)
    _annotate(benchmark, report)
    predicted = report.predicted
    assert report.stable["windows"] >= 4, "run never stabilized"
    if predicted["utilization"] < 0.8:
        assert report.model_gap is not None and report.model_gap <= 0.25, (
            f"N={clients}: measured R {report.stable['latency']['mean']:.4f}s "
            f"vs closed-M/M/2 {predicted['response_time']:.4f}s "
            f"(gap {report.model_gap:.1%})"
        )


@pytest.mark.benchmark(group="x2-load-workers")
@pytest.mark.parametrize("workers", WORKER_SWEEP)
def test_x2_worker_sweep(benchmark, workers):
    """Saturation throughput over worker count at N=32."""
    report = benchmark.pedantic(run_point, args=(workers, 32), rounds=1, iterations=1)
    _annotate(benchmark, report)
    assert report.stable["windows"] >= 4, "run never stabilized"


def test_x2_saturation_knee():
    """Past the knee the station, not the population, sets throughput."""
    knee = saturation_point(THINK, SERVICE, servers=2)
    assert knee == pytest.approx(12.0)
    ceiling = 2 / SERVICE  # 50 op/s
    below = run_point(2, 4).stable["throughput"]
    above = [run_point(2, n).stable["throughput"] for n in (16, 24, 32)]
    # Below the knee: throughput tracks N / (Z + S), far from the ceiling.
    assert below == pytest.approx(4 / (THINK + SERVICE), rel=0.15)
    # Above it: pinned to the service ceiling, growing by < 10% per step.
    for measured in above:
        assert measured == pytest.approx(ceiling, rel=0.15)
    assert above[-1] <= above[0] * 1.10 + 1e-9


def test_x2_multiworker_beats_single_worker():
    """More workers must raise the saturated ceiling (the tentpole claim)."""
    single = run_point(1, 32).stable["throughput"]
    quad = run_point(4, 32).stable["throughput"]
    assert single == pytest.approx(1 / SERVICE, rel=0.15)  # ~25 op/s
    assert quad > 2.5 * single


def test_x2_record_trajectory_row(record_property):
    """Summarize the grid into one BENCH_load.json trajectory row."""
    row = {
        "bench": "x2_load",
        "think_time": THINK,
        "service_time": SERVICE,
        "seed": SEED,
        "clients_sweep": {
            str(n): {
                "throughput": round(run_point(2, n).stable["throughput"], 3),
                "response_mean": round(
                    run_point(2, n).stable["latency"]["mean"], 5
                ),
                "predicted_response": round(
                    closed_mmn(n, THINK, SERVICE, 2)["response_time"], 5
                ),
                "model_gap": round(run_point(2, n).model_gap or 0.0, 4),
            }
            for n in CLIENT_SWEEP
        },
        "workers_sweep": {
            str(w): {
                "throughput": round(run_point(w, 32).stable["throughput"], 3),
                "utilization": round(run_point(w, 32).station["utilization"], 3),
            }
            for w in WORKER_SWEEP
        },
    }
    path = append_bench_row("load", row)
    record_property("bench_rows_path", str(path))
