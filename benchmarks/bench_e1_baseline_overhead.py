"""E1 — whole-application overhead of an activated (stub-only) PROSE VM.

Paper (§4.6): "When no extensions are added, an overhead of about 7%
(measured using a SPECjvm benchmark) could be observed."

We run the SPECjvm-like workload suite twice: with its classes pristine,
and with them loaded into a ProseVM (every method stubbed, ``__setattr__``
hooked, *no* advice anywhere).  The expected shape: a small constant
multiplicative overhead — single digits to low tens of percent — because
only the hook's fast path is added to every call.

Compare the two benchmark groups, or see ``overhead_percent`` in the
instrumented benchmark's extra_info.
"""

import time

import pytest

from repro.aop.vm import ProseVM
from repro.workloads.kernels import workload_classes
from repro.workloads.suite import WorkloadSuite

SUITE_ARGS = dict(compress_size=256, db_rows=100, rays=25)


def make_suite() -> WorkloadSuite:
    return WorkloadSuite(**SUITE_ARGS)


def _measure(iterations: int = 20) -> float:
    suite = make_suite()
    suite.run(3)  # warm up
    best = float("inf")
    for _ in range(3):  # best-of-3 against scheduling noise
        start = time.perf_counter()
        suite.run(iterations)
        best = min(best, (time.perf_counter() - start) / iterations)
    return best


@pytest.mark.benchmark(group="e1-baseline-overhead")
def test_e1_plain_vm(benchmark):
    """Suite iteration on the pristine classes."""
    suite = make_suite()
    benchmark(suite.run_once)


@pytest.mark.benchmark(group="e1-baseline-overhead")
def test_e1_prose_activated_no_extensions(benchmark, vm):
    """Suite iteration with every class stubbed but no advice active."""
    plain_seconds = _measure()
    for cls in workload_classes():
        vm.load_class(cls)
    suite = make_suite()
    benchmark(suite.run_once)
    stubbed_seconds = _measure()
    overhead = (stubbed_seconds / plain_seconds - 1.0) * 100.0
    benchmark.extra_info["plain_seconds_per_iter"] = plain_seconds
    benchmark.extra_info["stubbed_seconds_per_iter"] = stubbed_seconds
    benchmark.extra_info["overhead_percent"] = round(overhead, 1)
    benchmark.extra_info["paper_overhead_percent"] = 7.0


@pytest.mark.benchmark(group="e1-baseline-overhead")
def test_e1_swap_mode_no_extensions(benchmark):
    """Ablation (DESIGN §6): swap-mode weaving plants no resident hooks,
    so an activated-but-unadvised VM costs nothing at run time — the
    price moves to weave latency (see F1)."""
    from repro.aop.vm import SWAP

    vm = ProseVM(mode=SWAP)
    for cls in workload_classes():
        vm.load_class(cls)
    try:
        suite = make_suite()
        benchmark(suite.run_once)
    finally:
        for cls in workload_classes():
            vm.unload_class(cls)


@pytest.mark.benchmark(group="e1-per-kernel")
@pytest.mark.parametrize("kernel", ["compress", "db", "ray"])
def test_e1_per_kernel_overhead(benchmark, vm, kernel):
    """Per-kernel view: which workload shapes suffer most from hooks."""
    for cls in workload_classes():
        vm.load_class(cls)
    suite = make_suite()
    target = {"compress": suite.compress, "db": suite.db, "ray": suite.ray}[kernel]
    benchmark(target.run_once)
