"""F3 — the Fig. 3b monitoring pipeline: intercept → buffer → ship → store.

Measures the full data path of the hardware monitoring extension: motor
commands intercepted on the robot, buffered locally, shipped in batches
over the radio, appended to the hall database.

Shape: per-command cost is dominated by record construction and batching,
not by the radio (batches amortize it); throughput scales with batch
(flush) interval.
"""

import pytest

from repro.core.platform import ProactivePlatform
from repro.extensions.monitoring import HwMonitoring
from repro.net.geometry import Position
from repro.robot.hardware import Device, Motor
from repro.robot.plotter import Plotter, build_plotter

COMMANDS = 200


def pipeline_run(flush_interval: float) -> tuple[float, int]:
    """Drive COMMANDS motor actions through the full pipeline.

    Returns (simulated seconds until all records landed, records stored).
    """
    platform = ProactivePlatform(seed=9)
    hall = platform.create_base_station("hall", Position(0, 0))
    hall.add_extension(
        "hw-monitoring",
        lambda: HwMonitoring(
            "robot", hall.store_ref, flush_interval=flush_interval
        ),
    )
    robot = platform.create_mobile_node("robot", Position(5, 0))
    for cls in (Device, Motor, Plotter):
        robot.load_class(cls)
    try:
        plotter = build_plotter("robot")
        platform.run_for(5.0)
        assert robot.extensions() == ["hw-monitoring"]

        start = platform.now
        for index in range(COMMANDS):
            plotter.move_to(float(index % 20), 0.0)
        platform.run_for(flush_interval * 4 + 2.0)
        stored = hall.db.count("robot")
        assert stored >= COMMANDS // 2
        return platform.now - start, stored
    finally:
        for cls in (Device, Motor, Plotter):
            robot.vm.unload_class(cls)


@pytest.mark.benchmark(group="f3-monitoring-pipeline")
@pytest.mark.parametrize("flush_interval", [0.1, 0.5, 2.0])
def test_f3_pipeline_throughput(benchmark, flush_interval):
    """End-to-end pipeline run; extra_info reports records stored."""
    simulated, stored = benchmark.pedantic(
        pipeline_run, args=(flush_interval,), rounds=3, iterations=1
    )
    benchmark.extra_info["flush_interval_s"] = flush_interval
    benchmark.extra_info["records_stored"] = stored
    benchmark.extra_info["simulated_seconds"] = round(simulated, 3)


@pytest.mark.benchmark(group="f3-capture-only")
def test_f3_capture_cost_per_command(benchmark, vm):
    """Robot-side cost alone: intercept one motor command into the buffer."""
    from repro.aop.sandbox import AspectSandbox, Capability, SandboxPolicy, SystemGateway
    from repro.midas.remote import ServiceRef
    from repro.midas.scheduler import SchedulerService
    from repro.sim.kernel import Simulator
    from repro.util.clock import ManualClock

    class Sink:
        def post(self, ref, body):
            pass

    vm.load_class(Motor)
    aspect = HwMonitoring("robot", ServiceRef("hall", "store.append"))
    sandbox = AspectSandbox(SandboxPolicy.permissive(), aspect.name)
    aspect.bind(
        SystemGateway(
            {
                Capability.NETWORK: Sink(),
                Capability.CLOCK: ManualClock(),
                Capability.SCHEDULER: SchedulerService(Simulator()),
            },
            sandbox,
        )
    )
    vm.insert(aspect, sandbox=sandbox)
    motor = Motor("m.x")

    def command():
        motor.rotate(1.0)
        if aspect.pending > 10_000:
            aspect._buffer.clear()  # keep memory flat during the benchmark

    benchmark(command)
