"""F1 — the run-time adaptation machinery of Fig. 1.

Measures the costs the weaver pays at each stage, versus the number of
potential join points:

- ``load_class`` — planting minimal hooks at every join point (the
  paper's JIT-time stub insertion);
- ``insert`` / ``withdraw`` — activating/deactivating an aspect, i.e.
  matching its crosscut against all join points and recompiling dispatch
  chains.

Shape: all three scale roughly linearly with the join-point count, and
none of them is paid per call afterwards (see E1/E2).

This doubles as the DESIGN §6 ablation of stub-everywhere (pay at load)
vs weave-on-demand (pay at insert): the two costs are reported separately
so their trade-off is visible.
"""

import pytest

from repro.aop import Aspect, MethodCut, ProseVM
from repro.aop.advice import AdviceKind


def make_class(method_count: int) -> type:
    """A fresh class with ``method_count`` distinct methods."""
    namespace = {}
    for index in range(method_count):
        exec(  # noqa: S102 - benchmark scaffolding
            f"def method_{index}(self):\n    return {index}", namespace
        )
    return type(f"Wide{method_count}", (), namespace)


def make_aspect() -> Aspect:
    aspect = Aspect()
    aspect.add_advice(
        AdviceKind.BEFORE, MethodCut(type="Wide*", method="*"), lambda ctx: None
    )
    return aspect


@pytest.mark.benchmark(group="f1-load-class")
@pytest.mark.parametrize("methods", [10, 100, 1000])
def test_f1_load_class(benchmark, methods):
    """Hook-planting cost vs. join-point count."""

    def plant():
        vm = ProseVM()
        cls = make_class(methods)
        vm.load_class(cls)
        return vm

    benchmark(plant)


@pytest.mark.benchmark(group="f1-insert")
@pytest.mark.parametrize("methods", [10, 100, 1000])
def test_f1_insert_aspect(benchmark, methods):
    """Weaving cost: matching one aspect against all join points."""
    vm = ProseVM()
    cls = make_class(methods)
    vm.load_class(cls)

    def round_trip():
        aspect = make_aspect()
        vm.insert(aspect)
        vm.withdraw(aspect)

    benchmark(round_trip)


@pytest.mark.benchmark(group="f1-insert-many")
@pytest.mark.parametrize("aspects", [1, 8, 32])
def test_f1_insert_scaling_with_resident_aspects(benchmark, aspects):
    """Insertion cost with other aspects already woven (chain rebuild)."""
    vm = ProseVM()
    cls = make_class(50)
    vm.load_class(cls)
    for _ in range(aspects):
        vm.insert(make_aspect())

    def round_trip():
        aspect = make_aspect()
        vm.insert(aspect)
        vm.withdraw(aspect)

    benchmark(round_trip)


@pytest.mark.benchmark(group="f1-insert-mode-ablation")
@pytest.mark.parametrize("mode", ["resident", "swap"])
def test_f1_insert_cost_by_mode(benchmark, mode):
    """The stub-everywhere vs weave-on-demand trade-off at insert time:
    swap mode pays setattr + stub construction per activation."""
    vm = ProseVM(mode=mode)
    cls = make_class(100)
    vm.load_class(cls)

    def round_trip():
        aspect = make_aspect()
        vm.insert(aspect)
        vm.withdraw(aspect)

    benchmark(round_trip)


@pytest.mark.benchmark(group="f1-unload")
def test_f1_unload_class(benchmark):
    """Restoring a class to its pristine definition."""

    def cycle():
        vm = ProseVM()
        cls = make_class(100)
        vm.load_class(cls)
        vm.unload_class(cls)

    benchmark(cycle)
