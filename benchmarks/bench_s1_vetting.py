"""S1 — publish-time vetting cost on the catalog publish pipeline.

The issue's gate: publish-time vet cost stays at or under **15%** of
catalog publish latency.  "Publish latency" is the full pipeline a base
station runs to get one extension from its factory into a node's VM —
``catalog.publish`` (vet + register), ``catalog.seal`` (instantiate,
pickle, sign), and the node's install (verify signatures, deserialize,
sandbox, weave).  The node is the repo's standard robot model (the F4
plotter stack: Device, Motor, Plotter, RCXBrick loaded in the VM), so
the weaving denominator reflects a real class set rather than an empty
machine.

Vet cost is the measured difference between the vetted path and the
legacy unvetted one, on the *same* world to cancel environment drift:

- **baseline**: ``catalog.add`` + seal + install with the receiver in
  ``"trust"`` mode (no vetting anywhere);
- **vetted**: ``catalog.publish`` + seal + install in ``"verify"`` mode
  (static analysis + report signing at publish, report authentication
  at install).

Steady state is re-publication: per-class AST analysis, advice shapes,
and the full vet verdict are memoized, which is the catalog's operating
regime when a hall re-publishes its policy.  The cold first publish
(parse + analyze every class once) is reported via ``extra_info``, not
gated.  Min-of-trials with interleaved baseline/vetted trials; a small
absolute epsilon absorbs scheduler jitter without masking a real
regression (the pre-optimization vet cost was ~3x over budget).  Run
standalone::

    PYTHONPATH=src python -m pytest benchmarks/bench_s1_vetting.py
"""

import time

import pytest

from repro.aop.sandbox import Capability, SandboxPolicy
from repro.aop.vm import ProseVM
from repro.extensions.monitoring import HwMonitoring
from repro.extensions.session import SessionManagement
from repro.midas.catalog import ExtensionCatalog
from repro.midas.receiver import AdaptationService
from repro.midas.remote import RemoteCaller
from repro.midas.scheduler import SchedulerService
from repro.midas.trust import Signer, TrustStore
from repro.net.geometry import Position
from repro.net.network import Network
from repro.net.node import NetworkNode
from repro.net.transport import Transport
from repro.robot.hardware import Device, Motor
from repro.robot.plotter import Plotter
from repro.robot.rcx import RCXBrick
from repro.sim.kernel import Simulator
from repro.vetting import clear_caches

#: The issue's budget: vetting may cost at most 15% of publish latency.
VET_BUDGET_FRACTION = 0.15
#: Timer-noise allowance on a ~300us pipeline (3 percentage points).
EPSILON_SECONDS = 10e-6

TRIALS = 9
ROUNDS = 30

#: The F4 robot stack — the repo's standard "realistic node" class set.
NODE_CLASSES = (Device, Motor, Plotter, RCXBrick)


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


def _monitoring_factory():
    return HwMonitoring(robot_id="bench-robot", owner="bench-base")


class _World:
    """One base catalog plus one robot node, wired without radio."""

    def __init__(self):
        sim = Simulator()
        network = Network(sim, seed=1234)
        node = network.attach(NetworkNode("device", Position(5, 0), 60))
        transport = Transport(node, sim)
        signer = Signer.generate("hall-A")
        trust = TrustStore()
        trust.trust_signer(signer)
        self.vm = ProseVM()
        for cls in NODE_CLASSES:
            self.vm.load_class(cls)
        self.receiver = AdaptationService(
            self.vm,
            transport,
            sim,
            trust,
            policy=SandboxPolicy.permissive(),
            services={
                Capability.NETWORK: RemoteCaller(transport),
                Capability.CLOCK: sim.clock,
                Capability.SCHEDULER: SchedulerService(sim),
            },
        )
        self.catalog = ExtensionCatalog(signer)

    def teardown(self):
        for cls in list(self.vm.loaded_classes):
            self.vm.unload_class(cls)


@pytest.fixture
def world():
    w = _World()
    yield w
    w.teardown()


def _pipeline_seconds(world, catalog_step, vetting_mode, rounds=ROUNDS):
    """Mean publish->seal->install latency; withdraw stays untimed."""
    world.receiver.vetting = vetting_mode
    total = 0.0
    for _ in range(rounds):
        start = time.perf_counter()
        catalog_step()
        envelope = world.catalog.seal("session")
        world.receiver.install_envelope(
            envelope, provider="hall-A", duration=1e6
        )
        total += time.perf_counter() - start
        assert world.receiver.withdraw("session")
    return total / rounds


@pytest.mark.benchmark(group="s1-vetting")
def test_s1_vet_cost_within_publish_budget(benchmark, world):
    """Vet cost (publish analysis + install verify) <= 15% of pipeline."""
    world.catalog.publish("monitoring", _monitoring_factory)

    def add_step():
        world.catalog.add("session", SessionManagement)

    def publish_step():
        world.catalog.publish("session", SessionManagement)

    # Cold first pass (parse + analyze each class once) — reported only.
    cold_start = time.perf_counter()
    _pipeline_seconds(world, publish_step, "verify", rounds=1)
    cold = time.perf_counter() - cold_start

    _pipeline_seconds(world, add_step, "trust", rounds=3)  # warm both paths
    _pipeline_seconds(world, publish_step, "verify", rounds=3)

    # Interleave trials so clock drift hits both paths equally.
    baseline_trials, vetted_trials = [], []
    for _ in range(TRIALS):
        baseline_trials.append(_pipeline_seconds(world, add_step, "trust"))
        vetted_trials.append(_pipeline_seconds(world, publish_step, "verify"))
    baseline = min(baseline_trials)
    vetted = min(vetted_trials)
    vet_cost = vetted - baseline

    benchmark.extra_info["unvetted_pipeline_us"] = round(baseline * 1e6, 2)
    benchmark.extra_info["vetted_pipeline_us"] = round(vetted * 1e6, 2)
    benchmark.extra_info["vet_cost_us"] = round(vet_cost * 1e6, 2)
    benchmark.extra_info["cold_first_publish_us"] = round(cold * 1e6, 2)
    fraction = vet_cost / vetted
    benchmark.extra_info["vet_fraction"] = round(fraction, 3)
    assert vet_cost <= vetted * VET_BUDGET_FRACTION + EPSILON_SECONDS, (
        f"vet cost {vet_cost * 1e6:.1f}us is {fraction:.1%} of the "
        f"{vetted * 1e6:.1f}us publish pipeline (budget "
        f"{VET_BUDGET_FRACTION:.0%})"
    )
    benchmark(lambda: _pipeline_seconds(world, publish_step, "verify", rounds=1))


@pytest.mark.benchmark(group="s1-vetting")
def test_s1_interference_scales_with_catalog_size(benchmark, world):
    """Reported: marginal cost of vetting against a populated catalog.

    Each round publishes a *fresh name* (the vet memo is keyed on the
    extension name, so this exercises the real interference comparison
    against N cached summaries) and removes it again to keep the
    against-set stable.  The 10-entry/1-entry ratio is attached for
    trend tracking, not gated (absolute costs are microseconds)."""
    signer = Signer.generate("bench-base")

    small = ExtensionCatalog(signer)
    small.publish("monitoring", _monitoring_factory)
    large = ExtensionCatalog(signer)
    large.publish("monitoring", _monitoring_factory)
    for index in range(9):
        large.publish(f"session-{index}", SessionManagement)

    def publish_fresh(catalog, index):
        name = f"candidate-{index}"
        catalog.publish(name, SessionManagement)
        catalog.remove(name)

    def per_publish(catalog, rounds=ROUNDS):
        best = None
        counter = 0
        for _ in range(TRIALS):
            start = time.perf_counter()
            for _ in range(rounds):
                publish_fresh(catalog, counter)
                counter += 1
            elapsed = (time.perf_counter() - start) / rounds
            best = elapsed if best is None else min(best, elapsed)
        return best

    per_publish(small, rounds=3)
    per_publish(large, rounds=3)
    into_small = per_publish(small)
    into_large = per_publish(large)

    benchmark.extra_info["publish_into_1_us"] = round(into_small * 1e6, 2)
    benchmark.extra_info["publish_into_10_us"] = round(into_large * 1e6, 2)
    benchmark.extra_info["scaling_ratio"] = round(into_large / into_small, 3)
    benchmark(lambda: publish_fresh(large, "bench"))
