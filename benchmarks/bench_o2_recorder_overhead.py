"""O2 — flight-recorder overhead on the interception hot path.

The flight recorder's contract (the PR-1 no-op pattern, extended): the
hub hangs off a :class:`MetricsRegistry` and only ever sees events that
already passed through an *installed* registry.  Therefore:

- **disabled** (no recorder installed — the default): constructing a
  hub must change nothing on the hot path; dispatch still pays only the
  closed-over-cell ``is None`` test.  Gate: ≤2% over the E2-style
  baseline measured in the same process.
- **enabled** (registry installed, hub attached): interception itself
  emits metrics, not lifecycle events, so attaching a hub may add at
  most the registry's own event-routing slack.  Gate: ≤10% over the
  same workload on a registry *without* a hub.

Both gates compare min-of-trials measurements taken back-to-back in one
process, plus a small absolute epsilon, so scheduler noise on a loaded
CI box does not produce false failures.  Run standalone::

    PYTHONPATH=src python -m pytest benchmarks/bench_o2_recorder_overhead.py
"""

import time

import pytest

from repro.aop import Aspect, MethodCut, ProseVM, before
from repro.telemetry import FlightRecorderHub, MetricsRegistry, runtime

#: Relative budgets from the issue, plus an absolute floor that keeps
#: sub-microsecond comparisons from flapping on timer resolution.
DISABLED_BUDGET = 1.02
ENABLED_BUDGET = 1.10
EPSILON_SECONDS = 50e-9

TRIALS = 5
CALLS = 50_000


class Target:
    def noop(self) -> None:
        pass


class DoNothing(Aspect):
    @before(MethodCut(type="Target", method="noop"))
    def advice(self, ctx):
        pass


def _per_call_seconds(fn, calls: int = CALLS) -> float:
    fn()  # warm
    start = time.perf_counter()
    for _ in range(calls):
        fn()
    return (time.perf_counter() - start) / calls


def _best_per_call(fn, trials: int = TRIALS) -> float:
    """Min over several trials — the least-noisy estimate of true cost."""
    return min(_per_call_seconds(fn) for _ in range(trials))


@pytest.fixture
def woven_target(vm):
    vm.load_class(Target)
    vm.insert(DoNothing())
    return Target()


@pytest.fixture(autouse=True)
def no_leftover_recorder():
    runtime.reset()
    yield
    runtime.reset()


@pytest.mark.benchmark(group="o2-recorder")
def test_o2_disabled_hub_is_free(benchmark, woven_target):
    """A constructed-but-unreachable hub must not tax disabled dispatch."""
    baseline = _best_per_call(woven_target.noop)
    # The hub exists and is attached to a registry, but the registry is
    # not installed — the dispatch closure still takes the no-op branch.
    registry = MetricsRegistry(flight=FlightRecorderHub())
    assert registry.flight is not None
    with_hub = _best_per_call(woven_target.noop)

    benchmark.extra_info["baseline_per_call_us"] = round(baseline * 1e6, 4)
    benchmark.extra_info["with_idle_hub_per_call_us"] = round(with_hub * 1e6, 4)
    ratio = with_hub / baseline
    benchmark.extra_info["disabled_ratio"] = round(ratio, 3)
    assert with_hub <= baseline * DISABLED_BUDGET + EPSILON_SECONDS, (
        f"disabled-path recorder overhead {ratio:.3f}x exceeds "
        f"{DISABLED_BUDGET}x budget"
    )
    benchmark(woven_target.noop)


@pytest.mark.benchmark(group="o2-recorder")
def test_o2_enabled_hub_within_budget(benchmark, woven_target):
    """Recording with a hub attached stays within 10% of recording without."""
    plain_registry = MetricsRegistry()
    with runtime.recording(plain_registry):
        without_hub = _best_per_call(woven_target.noop)

    hub_registry = MetricsRegistry(flight=FlightRecorderHub())
    with runtime.recording(hub_registry):
        with_hub = _best_per_call(woven_target.noop)
        benchmark(woven_target.noop)
    assert hub_registry.counter_total("prose.interceptions") > 0

    benchmark.extra_info["without_hub_per_call_us"] = round(without_hub * 1e6, 4)
    benchmark.extra_info["with_hub_per_call_us"] = round(with_hub * 1e6, 4)
    ratio = with_hub / without_hub
    benchmark.extra_info["enabled_ratio"] = round(ratio, 3)
    assert with_hub <= without_hub * ENABLED_BUDGET + EPSILON_SECONDS, (
        f"enabled recorder overhead {ratio:.3f}x exceeds {ENABLED_BUDGET}x budget"
    )


@pytest.mark.benchmark(group="o2-recorder")
def test_o2_event_routing_cost(benchmark):
    """The hub's true cost center: one ``registry.event()`` with routing.

    Reported (not gated): the per-event cost of the ring append on top of
    the registry's own event bookkeeping."""
    plain = MetricsRegistry()
    cost_plain = _best_per_call(lambda: plain.event("lease.renewed", node="n"))
    hub_registry = MetricsRegistry(flight=FlightRecorderHub())
    cost_hub = _best_per_call(lambda: hub_registry.event("lease.renewed", node="n"))
    benchmark.extra_info["event_plain_per_call_us"] = round(cost_plain * 1e6, 4)
    benchmark.extra_info["event_with_hub_per_call_us"] = round(cost_hub * 1e6, 4)
    benchmark.extra_info["event_routing_ratio"] = round(cost_hub / cost_plain, 3)
    benchmark(lambda: hub_registry.event("lease.renewed", node="n"))


def test_o2_disabled_hub_records_nothing(vm):
    """Behavioral half of the gate: with the registry uninstalled, no
    event reaches the hub — its rings stay empty no matter how much the
    instrumented application runs."""
    vm.load_class(Target)
    vm.insert(DoNothing())
    target = Target()
    hub = FlightRecorderHub()
    MetricsRegistry(flight=hub)  # attached, never installed
    for _ in range(100):
        target.noop()
    assert hub.nodes() == []

    # Installed, the same workload routes weave/lifecycle events only —
    # per-call interception still records nothing on the rings.
    registry = MetricsRegistry(flight=hub)
    with runtime.recording(registry):
        for _ in range(100):
            target.noop()
        registry.event("lease.granted", table="robot.extensions")
    assert hub.nodes() == ["robot"]
    assert hub.recorder("robot").recorded == 1
