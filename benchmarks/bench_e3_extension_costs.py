"""E3 — interception cost vs. extension functionality cost.

Paper (§4.6): "We measured the overhead of extensions implementing
security, transactions and orthogonal persistence.  In all cases the cost
of the interceptions was much less than the cost of executing the
additional functionality, indicating that the platform overhead is
negligible."

For each extension we benchmark the same application operation under
(a) do-nothing advice at exactly the join points that extension uses (the
pure interception cost) and (b) the real extension.  ``extra_info``
records ``functionality_over_interception`` = (b-a)/(a-plain).

Two regimes are reported deliberately:

- extensions whose functionality is substantive — encryption of real
  payloads, monitoring that builds and buffers records — reproduce the
  paper's shape (ratio ≫ 1);
- extensions whose per-call functionality is a few Python statements
  (access-control set lookup) show ratio < 1 here, because a Python
  dispatch is relatively heavier than the paper's two native JIT
  instructions.  EXPERIMENTS.md discusses this expected deviation.
"""

import time

import pytest

from repro.aop import Aspect, MethodCut, ProseVM
from repro.aop.advice import AdviceKind
from repro.aop.crosscut import FieldWriteCut
from repro.extensions.access_control import AccessControl
from repro.extensions.encryption import EncryptionExtension
from repro.extensions.monitoring import HwMonitoring
from repro.extensions.persistence import OrthogonalPersistence
from repro.extensions.session import SessionManagement
from repro.extensions.transactions import AdHocTransactions
from repro.midas.remote import ServiceRef
from repro.util.clock import ManualClock

PAYLOAD = bytes(range(256)) * 16  # 4 KiB


class Ledger:
    """The application under adaptation: a small stateful service."""

    def __init__(self):
        self.balance = 0
        self.operations = 0

    def post_entry(self, amount: int) -> int:
        self.balance += amount
        self.operations += 1
        return self.balance

    def send_report(self, data: bytes) -> bytes:
        return data


class _Noop(Aspect):
    """Do-nothing advice at a configurable set of join points."""

    def __init__(self, method_befores: int = 0, field_afters: int = 0,
                 method: str = "post_entry"):
        super().__init__()
        for _ in range(method_befores):
            self.add_advice(
                AdviceKind.BEFORE, MethodCut(type="Ledger", method=method), self.noop
            )
        for _ in range(field_afters):
            self.add_advice(
                AdviceKind.AFTER, FieldWriteCut(type="Ledger", field="*"), self.noop
            )

    def noop(self, ctx):
        pass


class _SilentCaller:
    def post(self, ref, body):
        pass


def _monitoring_aspect() -> HwMonitoring:
    from repro.aop.sandbox import AspectSandbox, Capability, SandboxPolicy, SystemGateway
    from repro.midas.scheduler import SchedulerService
    from repro.sim.kernel import Simulator

    aspect = HwMonitoring(
        "ledger", ServiceRef("base", "store.append"), type_pattern="Ledger"
    )
    sandbox = AspectSandbox(SandboxPolicy.permissive(), aspect.name)
    aspect.bind(
        SystemGateway(
            {
                Capability.NETWORK: _SilentCaller(),
                Capability.CLOCK: ManualClock(),
                Capability.SCHEDULER: SchedulerService(Simulator()),
            },
            sandbox,
        )
    )
    return aspect


# name -> (operation, real aspects factory, matched noop factory)
CASES = {
    "security": (
        "post",
        lambda: [SessionManagement(type_pattern="Ledger"),
                 AccessControl(allowed=set(), type_pattern="Ledger")],
        lambda: [_Noop(method_befores=2)],
    ),
    "transactions": (
        "post",
        lambda: [AdHocTransactions(
            method_type_pattern="Ledger",
            method_pattern="post_entry",
            state_type_pattern="Ledger",
        )],
        lambda: [_Noop(method_befores=1, field_afters=1)],
    ),
    "persistence": (
        "post",
        lambda: [OrthogonalPersistence(type_pattern="Ledger")],
        lambda: [_Noop(field_afters=1)],
    ),
    "encryption-4k": (
        "send",
        lambda: [EncryptionExtension(b"hall-key", type_pattern="Ledger",
                                     send_pattern="send*")],
        lambda: [_Noop(method_befores=1, method="send_report")],
    ),
    "monitoring": (
        "post",
        lambda: [_monitoring_aspect()],
        lambda: [_Noop(method_befores=1)],
    ),
}


def _operation(kind: str):
    ledger = Ledger()
    if kind == "send":
        return lambda: ledger.send_report(PAYLOAD)
    return lambda: ledger.post_entry(1)


def _per_call(fn, calls: int = 20_000) -> float:
    fn()
    start = time.perf_counter()
    for _ in range(calls):
        fn()
    return (time.perf_counter() - start) / calls


@pytest.mark.benchmark(group="e3-extension-costs")
@pytest.mark.parametrize("extension", list(CASES))
def test_e3_extension_cost_decomposition(benchmark, vm, extension):
    """The benchmarked operation runs under the real extension; the cost
    decomposition against plain and interception-only runs lands in
    extra_info."""
    kind, real_factory, noop_factory = CASES[extension]
    plain = _per_call(_operation(kind))

    vm.load_class(Ledger)

    noops = noop_factory()
    for aspect in noops:
        vm.insert(aspect)
    interception_only = _per_call(_operation(kind))
    for aspect in noops:
        vm.withdraw(aspect)

    for aspect in real_factory():
        vm.insert(aspect)
    benchmark(_operation(kind))
    with_functionality = _per_call(_operation(kind))

    interception_cost = max(interception_only - plain, 1e-12)
    functionality_cost = max(with_functionality - interception_only, 0.0)
    benchmark.extra_info["plain_ns"] = round(plain * 1e9)
    benchmark.extra_info["interception_cost_ns"] = round(interception_cost * 1e9)
    benchmark.extra_info["functionality_cost_ns"] = round(functionality_cost * 1e9)
    benchmark.extra_info["functionality_over_interception"] = round(
        functionality_cost / interception_cost, 2
    )
