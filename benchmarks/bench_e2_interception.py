"""E2 — per-call costs: plain call, hook fast path, full interception.

Paper (§4.6): "all methods not affected by interceptions are not slowed
down.  For those methods where interceptions are performed, an overhead
of roughly 900ns can be expected.  For comparison, a void non-intercepted
interface call costs 700ns on a Pentium 2, 500 MHz CPU."

The absolute nanoseconds are 2003-era Java; the *shape* to reproduce:

- the hook fast path adds only a small constant to an unadvised call;
- a do-nothing interception costs the same order of magnitude as the
  plain call itself (paper ratio ≈ 900ns added / 700ns base ≈ 1.3x).

``benchmark.extra_info`` on the interception benchmark records the
measured added-cost-to-base-call ratio next to the paper's.
"""

import time

import pytest

from repro.aop import Aspect, MethodCut, ProseVM, before


class Target:
    """The paper's 'void interface call': an empty method."""

    def noop(self) -> None:
        pass


class DoNothing(Aspect):
    """The paper's do-nothing extension trapping method entries."""

    @before(MethodCut(type="Target", method="noop"))
    def advice(self, ctx):
        pass


def _per_call_seconds(fn, calls: int = 200_000) -> float:
    fn()  # warm
    start = time.perf_counter()
    for _ in range(calls):
        fn()
    return (time.perf_counter() - start) / calls


@pytest.mark.benchmark(group="e2-per-call")
def test_e2_plain_call(benchmark):
    """Non-intercepted, non-instrumented method call."""
    target = Target()
    benchmark(target.noop)


@pytest.mark.benchmark(group="e2-per-call")
def test_e2_hook_fast_path(benchmark, vm):
    """Instrumented but unadvised: the minimal hook's fast path."""
    vm.load_class(Target)
    target = Target()
    benchmark(target.noop)


@pytest.mark.benchmark(group="e2-per-call")
def test_e2_do_nothing_interception(benchmark, vm):
    """A do-nothing before-advice: the full interception path."""
    plain = _per_call_seconds(Target().noop)

    vm.load_class(Target)
    vm.insert(DoNothing())
    target = Target()
    benchmark(target.noop)

    intercepted = _per_call_seconds(target.noop)
    added = intercepted - plain
    benchmark.extra_info["plain_ns"] = round(plain * 1e9, 1)
    benchmark.extra_info["intercepted_ns"] = round(intercepted * 1e9, 1)
    benchmark.extra_info["added_ns"] = round(added * 1e9, 1)
    benchmark.extra_info["added_over_base_ratio"] = round(added / plain, 2)
    benchmark.extra_info["paper_added_over_base_ratio"] = round(900 / 700, 2)


@pytest.mark.benchmark(group="e2-unaffected")
def test_e2_other_methods_not_slowed(benchmark, vm):
    """Advice on one method leaves sibling methods on the fast path."""

    class TwoMethods:
        def advised(self) -> None:
            pass

        def unadvised(self) -> None:
            pass

    class OnAdvised(Aspect):
        @before(MethodCut(type="TwoMethods", method="advised"))
        def advice(self, ctx):
            pass

    vm.load_class(TwoMethods)
    vm.insert(OnAdvised())
    target = TwoMethods()
    benchmark(target.unadvised)


@pytest.mark.benchmark(group="e2-advice-chain")
@pytest.mark.parametrize("advice_count", [1, 4, 16])
def test_e2_advice_chain_scaling(benchmark, vm, advice_count):
    """Interception cost grows linearly with the advice chain length."""
    vm.load_class(Target)
    for _ in range(advice_count):
        vm.insert(DoNothing())
    target = Target()
    benchmark(target.noop)
