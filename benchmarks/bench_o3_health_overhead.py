"""O3 — health-plane overhead on the telemetry hot path.

The health plane's contract extends the PR-1 no-op pattern one layer
up: the plane hangs off a :class:`MetricsRegistry` as a *sample-stream
subscriber*, so:

- **disabled** (no plane attached — the default): every counter
  increment pays exactly one ``self.health is not None`` check.
  Constructing a plane without attaching it must change nothing.
  Gate: ≤2% over a back-to-back baseline on the same registry.
- **enabled** (plane attached to a real harness): judged end to end —
  a full storm run with the health plane on stays within 10% of the
  same run with it off.  Per-sample cost for a *matching* metric is
  several windows of accumulator work by design (reported, not gated);
  what the gate protects is the workload, where simulation machinery
  dominates and the plane's O(windows) updates amortize out.

Both gates compare min-of-trials measurements taken back-to-back in one
process, plus a small absolute epsilon, so scheduler noise on a loaded
CI box does not produce false failures.  Run standalone::

    PYTHONPATH=src python -m pytest benchmarks/bench_o3_health_overhead.py
"""

import time

import pytest

from repro.scenarios.harness import run_storm
from repro.scenarios.spec import roaming_storm
from repro.telemetry import MetricsRegistry
from repro.telemetry.health import (
    CounterRatioSLI,
    HealthPlane,
    RollupRule,
    SLO,
    scaled_pairs,
)

#: Relative budgets from the issue, plus an absolute floor that keeps
#: sub-microsecond comparisons from flapping on timer resolution.
DISABLED_BUDGET = 1.02
ENABLED_BUDGET = 1.10
EPSILON_SECONDS = 50e-9
#: Workload comparisons are tens of milliseconds; epsilon scales up.
WORKLOAD_EPSILON_SECONDS = 20e-3

TRIALS = 5
CALLS = 50_000
STORM_TRIALS = 3


def _per_call_seconds(fn, calls: int = CALLS) -> float:
    fn()  # warm
    start = time.perf_counter()
    for _ in range(calls):
        fn()
    return (time.perf_counter() - start) / calls


def _best_per_call(fn, trials: int = TRIALS) -> float:
    """Min over several trials — the least-noisy estimate of true cost."""
    return min(_per_call_seconds(fn) for _ in range(trials))


def _matching_plane() -> HealthPlane:
    """A plane whose SLO and rollup both route the benchmarked metric."""
    return HealthPlane(
        slos=[
            SLO(
                "renewal-availability",
                "midas",
                target=0.99,
                sli=CounterRatioSLI(
                    good=("midas.renewals",), bad=("midas.failures",)
                ),
                pairs=scaled_pairs(60.0, floor=1.0),
            )
        ],
        rules=[RollupRule("renew-rate", "midas.*", "rate", window=10.0)],
    )


@pytest.mark.benchmark(group="o3-health")
def test_o3_disabled_plane_is_free(benchmark):
    """A constructed-but-unattached plane must not tax the count path."""
    registry = MetricsRegistry()

    def count() -> None:
        registry.count("midas.renewals", node="n1")

    plane = _matching_plane()  # exists, but registry.health stays None
    assert registry.health is None
    # Interleave the trials: a CPU-contended box (CI) drifts between
    # back-to-back blocks, and 2% of ~2µs is well under that drift.
    baseline_trials, with_plane_trials = [], []
    for _ in range(TRIALS):
        baseline_trials.append(_per_call_seconds(count))
        with_plane_trials.append(_per_call_seconds(count))
    baseline = min(baseline_trials)
    with_plane = min(with_plane_trials)

    benchmark.extra_info["baseline_per_call_us"] = round(baseline * 1e6, 4)
    benchmark.extra_info["with_idle_plane_per_call_us"] = round(
        with_plane * 1e6, 4
    )
    ratio = with_plane / baseline
    benchmark.extra_info["disabled_ratio"] = round(ratio, 3)
    assert with_plane <= baseline * DISABLED_BUDGET + EPSILON_SECONDS, (
        f"disabled-path health overhead {ratio:.3f}x exceeds "
        f"{DISABLED_BUDGET}x budget"
    )
    assert plane.engine.slos  # keep the plane alive through the measurement
    benchmark(count)


@pytest.mark.benchmark(group="o3-health")
def test_o3_enabled_storm_within_budget(benchmark, bench_trajectory):
    """A full storm with the plane on stays within 10% of one with it off."""
    spec = roaming_storm(nodes=20, bases=2, seed=11).with_overrides(
        drop_roamed=0.0
    )

    def run(health: bool) -> float:
        start = time.perf_counter()
        report = run_storm(spec, health=health)
        elapsed = time.perf_counter() - start
        assert report.clean
        return elapsed

    # Interleaved min-of-trials: alternating runs see the same machine
    # conditions, so drift on a loaded box cancels instead of biasing.
    without_trials, with_trials = [], []
    for _ in range(STORM_TRIALS):
        without_trials.append(run(False))
        with_trials.append(run(True))
    without_plane = min(without_trials)
    with_plane = min(with_trials)

    benchmark.extra_info["storm_without_plane_s"] = round(without_plane, 4)
    benchmark.extra_info["storm_with_plane_s"] = round(with_plane, 4)
    ratio = with_plane / without_plane
    benchmark.extra_info["enabled_ratio"] = round(ratio, 3)
    assert with_plane <= without_plane * ENABLED_BUDGET + WORKLOAD_EPSILON_SECONDS, (
        f"enabled health-plane overhead {ratio:.3f}x exceeds "
        f"{ENABLED_BUDGET}x budget"
    )
    bench_trajectory(
        "health",
        {
            "benchmark": "o3",
            "spec": spec.name,
            "seed": spec.seed,
            "enabled_ratio": round(ratio, 3),
            "disabled_budget": DISABLED_BUDGET,
            "enabled_budget": ENABLED_BUDGET,
        },
    )
    benchmark(lambda: run_storm(spec, health=True))


@pytest.mark.benchmark(group="o3-health")
def test_o3_matching_sample_cost(benchmark):
    """The plane's true cost center: one count routed into windows.

    Reported (not gated): a matching counter pays the SLO's window
    accumulators plus one rollup — O(windows), independent of history.
    """
    plain = MetricsRegistry()
    cost_plain = _best_per_call(
        lambda: plain.count("midas.renewals", node="n1")
    )
    registry = MetricsRegistry()
    _matching_plane().attach(registry)
    cost_matching = _best_per_call(
        lambda: registry.count("midas.renewals", node="n1")
    )
    benchmark.extra_info["count_plain_per_call_us"] = round(cost_plain * 1e6, 4)
    benchmark.extra_info["count_matching_per_call_us"] = round(
        cost_matching * 1e6, 4
    )
    benchmark.extra_info["matching_ratio"] = round(cost_matching / cost_plain, 3)
    benchmark(lambda: registry.count("midas.renewals", node="n1"))


def test_o3_detached_plane_receives_nothing():
    """Behavioral half of the gate: with no attach, the stream never
    reaches the plane — its windows stay empty however much traffic the
    registry carries."""
    registry = MetricsRegistry()
    plane = _matching_plane()
    for _ in range(100):
        registry.count("midas.renewals", node="n1")
    slo = plane.engine.slos[0]
    assert slo.good_total == 0.0 and slo.bad_total == 0.0
    assert plane.book.series() == []

    plane.attach(registry)
    for _ in range(100):
        registry.count("midas.renewals", node="n1")
    assert slo.good_total == 100.0
    assert len(plane.book.series()) == 1
