"""O1 — telemetry overhead on the interception hot path.

The telemetry subsystem's contract: with no recorder installed (the
default), instrumented dispatch pays only a closed-over-cell ``is None``
test per interception — the E2 numbers must not regress by more than a
few percent.  With a live :class:`MetricsRegistry`, each interception
additionally pays two ``perf_counter`` reads, a histogram observe, and a
counter increment; that cost is reported, not bounded.

``extra_info`` on the recording benchmark carries the measured
noop-vs-recording ratio; the disabled-path ratio vs a bare run is
attached to the no-op benchmark.  Run standalone::

    PYTHONPATH=src python -m pytest benchmarks/bench_o1_telemetry_overhead.py

(CI smoke mode adds ``--benchmark-disable``, which still executes every
benchmarked callable once.)
"""

import time

import pytest

from repro.aop import Aspect, MethodCut, ProseVM, before
from repro.telemetry import MetricsRegistry, runtime


class Target:
    def noop(self) -> None:
        pass


class DoNothing(Aspect):
    @before(MethodCut(type="Target", method="noop"))
    def advice(self, ctx):
        pass


def _per_call_seconds(fn, calls: int = 200_000) -> float:
    fn()  # warm
    start = time.perf_counter()
    for _ in range(calls):
        fn()
    return (time.perf_counter() - start) / calls


@pytest.fixture
def woven_target(vm):
    vm.load_class(Target)
    vm.insert(DoNothing())
    return Target()


@pytest.fixture(autouse=True)
def no_leftover_recorder():
    runtime.reset()
    yield
    runtime.reset()


@pytest.mark.benchmark(group="o1-telemetry")
def test_o1_interception_no_recorder(benchmark, woven_target):
    """Instrumented dispatch with telemetry off (the default state).

    This is the path the ≤5% budget applies to; ``extra_info`` records
    its cost relative to the same interception before the telemetry
    subsystem existed (approximated by measuring with the telemetry
    branch short-circuited — i.e. this same path — against a plain
    advised call measured inline)."""
    noop_per_call = _per_call_seconds(woven_target.noop)
    benchmark.extra_info["noop_recorder_per_call_us"] = round(
        noop_per_call * 1e6, 4
    )
    benchmark(woven_target.noop)


@pytest.mark.benchmark(group="o1-telemetry")
def test_o1_interception_recording(benchmark, woven_target):
    """Instrumented dispatch with a live registry (telemetry on)."""
    disabled = _per_call_seconds(woven_target.noop)
    registry = MetricsRegistry()
    with runtime.recording(registry):
        recording = _per_call_seconds(woven_target.noop)
        benchmark(woven_target.noop)
    assert registry.counter_total("prose.interceptions") > 0
    benchmark.extra_info["disabled_per_call_us"] = round(disabled * 1e6, 4)
    benchmark.extra_info["recording_per_call_us"] = round(recording * 1e6, 4)
    benchmark.extra_info["recording_vs_disabled_ratio"] = round(
        recording / disabled, 3
    )


def test_o1_disabled_path_records_nothing(vm):
    """Behavioral half of the budget: with no recorder installed the
    dispatch closure must take the untimed branch — zero telemetry state
    may be created.  (The timing half lives in the benchmarks above and
    in E2 staying level across releases.)"""
    vm.load_class(Target)
    vm.insert(DoNothing())
    target = Target()
    for _ in range(100):
        target.noop()
    registry = MetricsRegistry()
    with runtime.recording(registry):
        for _ in range(10):
            target.noop()
    assert registry.counter_total("prose.interceptions") == 10
    # Back to disabled: the registry stops growing.
    for _ in range(100):
        target.noop()
    assert registry.counter_total("prose.interceptions") == 10
