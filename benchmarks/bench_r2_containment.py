"""R2 — containment overhead: supervision is nearly free when nothing fails.

The extension supervisor wraps every woven advice in an error barrier.
On the no-fault fast path (no step or time budget configured) that
barrier is one closure call and a try/except — it must add less than
10% to the full interception cost measured in E2, or containment would
tax every well-behaved extension on the platform.

``extra_info`` records the supervised/unsupervised per-call ratio and
the quarantine short-circuit cost (a quarantined advice is skipped, so
it should be *cheaper* than running the advice).
"""

import time

import pytest

from repro.aop import Aspect, MethodCut, ProseVM, before
from repro.sim.kernel import Simulator
from repro.supervision import ExtensionSupervisor, SupervisionPolicy

from tests.support import fresh_class

#: The ISSUE's acceptance bar: containment adds <10% to interception.
OVERHEAD_BUDGET = 0.10


class Target:
    """Same shape as E2: an empty intercepted method."""

    def noop(self) -> None:
        pass


class DoNothing(Aspect):
    @before(MethodCut(type="Target", method="noop"))
    def advice(self, ctx):
        pass


def _per_call_seconds(fn, calls: int = 50_000) -> float:
    fn()  # warm
    start = time.perf_counter()
    for _ in range(calls):
        fn()
    return (time.perf_counter() - start) / calls


def _best_of(fn, trials: int = 5) -> float:
    """Best-of-N per-call cost: robust against scheduler noise."""
    return min(_per_call_seconds(fn) for _ in range(trials))


def _paired_overhead(base_fn, supervised_fn, rounds: int = 9) -> float:
    """Median of interleaved base/supervised ratios.

    Measuring each side in one long block is dominated by CPU frequency
    drift between the blocks; pairing temporally adjacent measurements
    and taking the median ratio isolates the wrapper's true cost.
    """
    ratios = sorted(
        _per_call_seconds(supervised_fn) / _per_call_seconds(base_fn)
        for _ in range(rounds)
    )
    return ratios[rounds // 2] - 1.0


def _woven_target(supervisor: ExtensionSupervisor | None = None):
    vm = ProseVM()
    cls = fresh_class(Target)
    vm.load_class(cls)
    aspect = DoNothing()
    containment = supervisor.guard(aspect) if supervisor is not None else None
    vm.insert(aspect, containment=containment)
    return cls(), aspect


@pytest.mark.benchmark(group="r2-containment")
def test_r2_unsupervised_interception(benchmark):
    """Baseline: the E2 interception path with no supervisor."""
    target, _ = _woven_target()
    benchmark(target.noop)


@pytest.mark.benchmark(group="r2-containment")
def test_r2_supervised_interception(benchmark):
    """The same interception inside the no-fault containment barrier."""
    supervisor = ExtensionSupervisor(Simulator(), SupervisionPolicy())
    target, _ = _woven_target(supervisor)
    benchmark(target.noop)


@pytest.mark.benchmark(group="r2-containment")
def test_r2_containment_overhead_under_budget(benchmark):
    """Hard gate: the barrier adds <10% to the interception per-call cost."""
    baseline_target, _ = _woven_target()
    supervisor = ExtensionSupervisor(Simulator(), SupervisionPolicy())
    supervised_target, aspect = _woven_target(supervisor)

    baseline = _best_of(baseline_target.noop)
    supervised = _best_of(supervised_target.noop)
    overhead = _paired_overhead(baseline_target.noop, supervised_target.noop)

    # Quarantine short-circuit: once struck out, the advice is skipped
    # entirely — the remaining cost is dispatch plus the guard's check.
    supervisor.health_of(aspect).quarantined = True
    quarantined = _best_of(supervised_target.noop)

    benchmark.extra_info["baseline_ns"] = round(baseline * 1e9, 1)
    benchmark.extra_info["supervised_ns"] = round(supervised * 1e9, 1)
    benchmark.extra_info["overhead_ratio"] = round(overhead, 4)
    benchmark.extra_info["budget_ratio"] = OVERHEAD_BUDGET
    benchmark.extra_info["quarantined_ns"] = round(quarantined * 1e9, 1)
    benchmark(supervised_target.noop)

    assert overhead < OVERHEAD_BUDGET, (
        f"no-fault containment adds {overhead:.1%} to interception "
        f"(budget {OVERHEAD_BUDGET:.0%}): "
        f"{baseline * 1e9:.0f}ns -> {supervised * 1e9:.0f}ns"
    )
