"""F4/F5 — the plotter prototype under adaptation.

Complements the behavioural tests with cost numbers for the robot stack
itself: drawing throughput on a pristine stack, on a PROSE-activated
stack (hooks, no advice), and under the full Fig. 5 monitoring
extension.  The deltas mirror E1/E2 at the application level: activation
costs a constant factor; the extension's record-building dominates.
"""

import pytest

from repro.aop.sandbox import AspectSandbox, Capability, SandboxPolicy, SystemGateway
from repro.aop.vm import ProseVM
from repro.extensions.monitoring import HwMonitoring
from repro.midas.remote import ServiceRef
from repro.midas.scheduler import SchedulerService
from repro.robot.hardware import Device, Motor
from repro.robot.plotter import Plotter, build_plotter
from repro.robot.rcx import RCXBrick
from repro.sim.kernel import Simulator
from repro.util.clock import ManualClock

SQUARE = [(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0), (0.0, 0.0)]


class _Sink:
    def post(self, ref, body):
        pass


def draw_square(plotter):
    plotter.draw_polyline(SQUARE)
    plotter.canvas.clear()


@pytest.mark.benchmark(group="f4-plotter")
def test_f4_plain_stack(benchmark):
    """Square drawing on the pristine robot stack."""
    plotter = build_plotter("plain")
    benchmark(draw_square, plotter)


@pytest.mark.benchmark(group="f4-plotter")
def test_f4_activated_stack(benchmark, vm):
    """Square drawing with Motor/Plotter/RCX hooked, no advice."""
    for cls in (Device, Motor, Plotter, RCXBrick):
        vm.load_class(cls)
    plotter = build_plotter("hooked")
    benchmark(draw_square, plotter)


@pytest.mark.benchmark(group="f4-plotter")
def test_f4_monitored_stack(benchmark, vm):
    """Square drawing under the Fig. 5 HwMonitoring extension."""
    for cls in (Device, Motor, Plotter, RCXBrick):
        vm.load_class(cls)
    aspect = HwMonitoring("robot", ServiceRef("hall", "store.append"))
    sandbox = AspectSandbox(SandboxPolicy.permissive(), aspect.name)
    aspect.bind(
        SystemGateway(
            {
                Capability.NETWORK: _Sink(),
                Capability.CLOCK: ManualClock(),
                Capability.SCHEDULER: SchedulerService(Simulator()),
            },
            sandbox,
        )
    )
    vm.insert(aspect, sandbox=sandbox)
    plotter = build_plotter("monitored")

    def draw():
        draw_square(plotter)
        if aspect.pending > 10_000:
            aspect._buffer.clear()

    benchmark(draw)
