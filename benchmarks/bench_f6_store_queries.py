"""F6 — the Fig. 6 client: querying and manipulating the hall database.

Benchmarks the operations the screenshot's tool performs: listing a
robot's action history, windowed selection, scaling a selection, and
preparing a replay.

Shape: append is O(1); per-robot listing is O(actions of that robot) and
unaffected by other robots' records; scaling is linear in the selection.
"""

import pytest

from repro.store.database import MovementRecord, MovementStore
from repro.store.manipulation import MovementSequence, plotter_port_map


def populate(robots: int, actions_per_robot: int) -> MovementStore:
    store = MovementStore()
    for robot_index in range(robots):
        robot = f"robot:{robot_index}"
        for action_index in range(actions_per_robot):
            motor = ("x", "y", "pen")[action_index % 3]
            store.append(
                MovementRecord(
                    robot,
                    f"{robot}.motor.{motor}",
                    "rotate",
                    (float(action_index % 90),),
                    float(action_index) * 0.05,
                )
            )
    return store


@pytest.mark.benchmark(group="f6-append")
def test_f6_append(benchmark):
    store = MovementStore()
    record = MovementRecord("robot:1:1", "m.x", "rotate", (10.0,), 1.0)
    benchmark(store.append, record)


@pytest.mark.benchmark(group="f6-action-list")
@pytest.mark.parametrize("actions", [100, 1000, 10_000])
def test_f6_list_robot_actions(benchmark, actions):
    """The left panel of Fig. 6: all actions of one robot."""
    store = populate(robots=4, actions_per_robot=actions)
    result = benchmark(store.actions_of, "robot:1")
    assert len(result) == actions


@pytest.mark.benchmark(group="f6-action-list")
def test_f6_listing_unaffected_by_other_robots(benchmark):
    """Per-robot indexes keep one robot's listing independent of total size."""
    store = populate(robots=50, actions_per_robot=200)
    result = benchmark(store.actions_of, "robot:0")
    assert len(result) == 200


@pytest.mark.benchmark(group="f6-window")
def test_f6_window_selection(benchmark):
    store = populate(robots=1, actions_per_robot=10_000)
    result = benchmark(store.actions_of, "robot:0", 100.0, 200.0)
    assert result


@pytest.mark.benchmark(group="f6-manipulation")
@pytest.mark.parametrize("selection", [100, 1000])
def test_f6_scale_selection(benchmark, selection):
    """The right panel: amplify a selected sequence."""
    store = populate(robots=1, actions_per_robot=selection)
    sequence = MovementSequence.from_store(store, "robot:0")
    scaled = benchmark(sequence.scaled, 2.0)
    assert len(scaled) == selection


@pytest.mark.benchmark(group="f6-manipulation")
def test_f6_prepare_replay(benchmark):
    """Turning a selection into time-offset hardware macros."""
    store = populate(robots=1, actions_per_robot=1000)
    sequence = MovementSequence.from_store(store, "robot:0")
    port_map = plotter_port_map(sequence.records)
    macros = benchmark(sequence.to_macros, port_map)
    assert len(macros) == 1000
