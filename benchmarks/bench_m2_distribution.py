"""M2 — extension distribution at community scale (§3.2).

A base station must "discover new nodes joining a local environment,
distribute extensions to them and then activate these extensions".  The
benchmark creates a community of N nodes inside one cell and measures the
simulated time until every node carries the hall's extensions, plus the
radio traffic spent.

Shape: time-to-all-adapted grows mildly with N (discovery is
announcement-driven and offers are independent), while messages grow
linearly with N × extensions — the base is the hot spot, as expected of
the centralized configuration.
"""

import pytest

from repro.core.platform import ProactivePlatform
from repro.net.geometry import Position

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from tests.support import TraceAspect  # noqa: E402


def distribute(nodes: int, extensions: int, seed: int = 0) -> tuple[float, int]:
    """Returns (simulated time to full adaptation, messages delivered)."""
    platform = ProactivePlatform(seed=seed)
    hall = platform.create_base_station("hall", Position(0, 0), radio_range=100)
    for index in range(extensions):
        hall.add_extension(f"ext-{index}", TraceAspect)
    members = [
        platform.create_mobile_node(
            f"node-{index}", Position(5.0 + index % 10, index // 10), radio_range=100
        )
        for index in range(nodes)
    ]
    start = platform.now

    def all_adapted() -> bool:
        return all(len(node.extensions()) == extensions for node in members)

    for _ in range(2_000_000):
        if all_adapted():
            break
        if not platform.simulator.step():
            break
    assert all_adapted(), "community never fully adapted"
    return platform.now - start, platform.network.messages_delivered


@pytest.mark.benchmark(group="m2-distribution")
@pytest.mark.parametrize("nodes", [1, 4, 16, 48])
def test_m2_time_to_adapt_community(benchmark, nodes):
    """Time for one hall to adapt an N-node community (2 extensions)."""
    simulated, messages = benchmark.pedantic(
        distribute, args=(nodes, 2), rounds=3, iterations=1
    )
    benchmark.extra_info["nodes"] = nodes
    benchmark.extra_info["simulated_seconds_to_all_adapted"] = round(simulated, 3)
    benchmark.extra_info["messages_delivered"] = messages


@pytest.mark.benchmark(group="m2-distribution-extensions")
@pytest.mark.parametrize("extensions", [1, 4, 8])
def test_m2_time_vs_policy_size(benchmark, extensions):
    """Time to adapt 8 nodes as the hall policy grows."""
    simulated, messages = benchmark.pedantic(
        distribute, args=(8, extensions), rounds=3, iterations=1
    )
    benchmark.extra_info["extensions"] = extensions
    benchmark.extra_info["simulated_seconds_to_all_adapted"] = round(simulated, 3)
    benchmark.extra_info["messages_delivered"] = messages


@pytest.mark.benchmark(group="m2-steady-state")
def test_m2_keepalive_traffic(benchmark):
    """Steady-state keep-alive traffic for an adapted 16-node community."""

    def steady_minute() -> float:
        platform = ProactivePlatform(seed=5)
        hall = platform.create_base_station("hall", Position(0, 0), radio_range=100)
        hall.add_extension("ext", TraceAspect)
        for index in range(16):
            platform.create_mobile_node(
                f"node-{index}", Position(5 + index, 0), radio_range=100
            )
        platform.run_for(10.0)  # settle
        before = platform.network.messages_delivered
        platform.run_for(60.0)
        return (platform.network.messages_delivered - before) / 60.0

    rate = benchmark.pedantic(steady_minute, rounds=3, iterations=1)
    benchmark.extra_info["messages_per_simulated_second"] = round(rate, 1)
