"""M4 — push vs. tuple-space distribution (the §4.6 future-work ablation).

Compares the two distribution models on the same task — get one hall's
policy (2 extensions) onto an N-node community — reporting simulated
time-to-all-adapted and radio traffic for each.

Expected shape: the space adds a pull/notify indirection (slightly more
messages per node: subscribe + deliveries + renewals against the space),
but decouples provider and receivers — the policy can be published before
any node exists, and the publisher holds no per-node state.
"""

import sys
from pathlib import Path

import pytest

from repro.aop.sandbox import Capability, SandboxPolicy
from repro.aop.vm import ProseVM
from repro.core.platform import ProactivePlatform
from repro.midas.catalog import ExtensionCatalog
from repro.midas.receiver import AdaptationService
from repro.midas.remote import RemoteCaller
from repro.midas.scheduler import SchedulerService
from repro.midas.trust import Signer, TrustStore
from repro.net.geometry import Position
from repro.net.network import Network
from repro.net.node import NetworkNode
from repro.net.transport import Transport
from repro.sim.kernel import Simulator
from repro.tuplespace.distribution import TupleSpaceAcquirer, TupleSpaceDistributor
from repro.tuplespace.service import TupleSpaceClient, TupleSpaceService
from repro.tuplespace.space import TupleSpace

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from tests.support import TraceAspect  # noqa: E402

EXTENSIONS = 2


def push_distribution(nodes: int) -> tuple[float, int]:
    platform = ProactivePlatform(seed=0)
    hall = platform.create_base_station("hall", Position(0, 0), radio_range=200)
    for index in range(EXTENSIONS):
        hall.add_extension(f"ext-{index}", TraceAspect)
    members = [
        platform.create_mobile_node(f"node-{i}", Position(5 + i, 0), radio_range=200)
        for i in range(nodes)
    ]
    start = platform.now
    for _ in range(2_000_000):
        if all(len(m.extensions()) == EXTENSIONS for m in members):
            break
        if not platform.simulator.step():
            break
    assert all(len(m.extensions()) == EXTENSIONS for m in members)
    return platform.now - start, platform.network.messages_delivered


def space_distribution(nodes: int) -> tuple[float, int]:
    sim = Simulator()
    network = Network(sim, seed=0)
    host = network.attach(NetworkNode("space-host", Position(0, 0), radio_range=200))
    space = TupleSpace(sim)
    TupleSpaceService(space, Transport(host, sim), sim)

    signer = Signer.generate("hall")
    catalog = ExtensionCatalog(signer)
    for index in range(EXTENSIONS):
        catalog.add(f"ext-{index}", TraceAspect)
    publisher = network.attach(NetworkNode("pub", Position(1, 0), radio_range=200))
    TupleSpaceDistributor(
        catalog, TupleSpaceClient(Transport(publisher, sim), "space-host"), sim
    ).publish()

    receivers = []
    for index in range(nodes):
        node = network.attach(
            NetworkNode(f"node-{index}", Position(5 + index, 0), radio_range=200)
        )
        transport = Transport(node, sim)
        trust = TrustStore()
        trust.trust_signer(signer)
        adaptation = AdaptationService(
            ProseVM(name=f"vm-{index}"),
            transport,
            sim,
            trust,
            policy=SandboxPolicy.permissive(),
            services={
                Capability.NETWORK: RemoteCaller(transport),
                Capability.CLOCK: sim.clock,
                Capability.SCHEDULER: SchedulerService(sim),
            },
        )
        TupleSpaceAcquirer(
            adaptation, TupleSpaceClient(transport, "space-host"), sim
        ).start()
        receivers.append(adaptation)

    start = sim.now
    for _ in range(2_000_000):
        if all(len(r.installed()) == EXTENSIONS for r in receivers):
            break
        if not sim.step():
            break
    assert all(len(r.installed()) == EXTENSIONS for r in receivers)
    return sim.now - start, network.messages_delivered


@pytest.mark.benchmark(group="m4-distribution-models")
@pytest.mark.parametrize("model,nodes", [
    ("push", 4), ("push", 16), ("space", 4), ("space", 16),
])
def test_m4_model_comparison(benchmark, model, nodes):
    """Time-to-all-adapted and traffic, per distribution model."""
    fn = push_distribution if model == "push" else space_distribution
    simulated, messages = benchmark.pedantic(fn, args=(nodes,), rounds=3, iterations=1)
    benchmark.extra_info["model"] = model
    benchmark.extra_info["nodes"] = nodes
    benchmark.extra_info["simulated_seconds_to_all_adapted"] = round(simulated, 3)
    benchmark.extra_info["messages_delivered"] = messages
