"""S2 — full-tree lint cost: cold parse and warm memoized-AST runs.

The issue's gate: one full ``python -m repro lint`` pass over
``src/repro`` must finish in **under 10 seconds cold** — parsing every
file, building the tree index, and running all three passes from empty
caches — or the CI lint job becomes the slowest thing in the pipeline.
The warm number pins the value of the memoized AST cache: a second run
over an unchanged tree re-parses nothing (file entries key on
``(mtime, size)``), so it should be a large multiple faster than cold.

Both numbers are wall time, reported via pytest-benchmark; the
deterministic row appended to ``BENCH_lint.json`` carries only
scan-shape facts (files scanned, findings by bucket) plus the measured
ratio, not raw seconds.  Run standalone::

    PYTHONPATH=src python -m pytest benchmarks/bench_s2_lint.py
"""

import time
from pathlib import Path

import pytest

from repro.analysis.baseline import DEFAULT_BASELINE_NAME, load_baseline
from repro.analysis.core import clear_ast_caches
from repro.analysis.runner import LintConfig, run_lint

#: The issue's ceiling for one cold full-tree lint.
COLD_BUDGET_SECONDS = 10.0

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_TREE = REPO_ROOT / "src" / "repro"


def _config() -> LintConfig:
    return LintConfig(
        root=SRC_TREE,
        targets=[SRC_TREE],
        baseline=load_baseline(SRC_TREE / DEFAULT_BASELINE_NAME),
    )


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_ast_caches()
    yield
    clear_ast_caches()


def test_cold_full_tree_lint_under_budget(benchmark, bench_trajectory):
    def cold_run():
        clear_ast_caches()
        return run_lint(_config())

    result = benchmark(cold_run)

    # The tree the gate protects must itself be clean.
    assert result.errors() == []
    assert result.warnings() == []
    assert result.files_scanned > 100

    # Gate on a directly measured run, not the benchmark statistics, so
    # a pathological first iteration cannot hide behind the median.
    clear_ast_caches()
    start = time.perf_counter()
    cold = run_lint(_config())
    cold_seconds = time.perf_counter() - start
    assert cold_seconds < COLD_BUDGET_SECONDS, (
        f"cold full-tree lint took {cold_seconds:.2f}s "
        f"(budget {COLD_BUDGET_SECONDS}s)"
    )

    # Warm runs hit the memoized AST cache: same results, no re-parse.
    start = time.perf_counter()
    warm = run_lint(_config())
    warm_seconds = time.perf_counter() - start
    assert warm.files_scanned == cold.files_scanned
    assert [f.fingerprint() for f in warm.findings] == [
        f.fingerprint() for f in cold.findings
    ]
    speedup = cold_seconds / warm_seconds if warm_seconds > 0 else float("inf")

    benchmark.extra_info["files_scanned"] = cold.files_scanned
    benchmark.extra_info["cold_seconds"] = round(cold_seconds, 4)
    benchmark.extra_info["warm_seconds"] = round(warm_seconds, 4)
    benchmark.extra_info["warm_speedup"] = round(speedup, 1)

    bench_trajectory(
        "lint",
        {
            "benchmark": "s2_lint",
            "files_scanned": cold.files_scanned,
            "errors": len(cold.errors()),
            "warnings": len(cold.warnings()),
            "waived": len(cold.waived),
            "baselined": len(cold.baselined),
        },
    )


def test_warm_lint_reuses_parsed_files(benchmark):
    run_lint(_config())  # prime the cache

    result = benchmark(lambda: run_lint(_config()))
    assert result.errors() == []
    assert result.warnings() == []
