"""F2 — the Fig. 2 adaptation lifecycle, end to end.

How long after a node enters a hall is it fully adapted?  The benchmark
builds a fresh world (base station + node in range), runs the simulation
until every extension of the hall's policy is installed, and reports:

- wall time of the whole scenario (the pytest-benchmark number), and
- the *simulated* adaptation latency in extra_info — the paper-relevant
  metric, dominated by one discovery round trip plus one offer round
  trip per extension.

Shape: simulated latency is a few radio round trips, growing mildly with
the number of extensions in the policy.
"""

import pytest

from repro.core.platform import ProactivePlatform
from repro.net.geometry import Position

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from tests.support import TraceAspect  # noqa: E402


def adaptation_latency(extension_count: int, seed: int = 0) -> float:
    """Simulated seconds from node creation to full adaptation."""
    platform = ProactivePlatform(seed=seed)
    hall = platform.create_base_station("hall", Position(0, 0))
    for index in range(extension_count):
        hall.add_extension(f"ext-{index}", TraceAspect)
    node = platform.create_mobile_node("node", Position(5, 0))
    start = platform.now
    for _ in range(10_000):
        if len(node.extensions()) == extension_count:
            break
        if not platform.simulator.step():
            break
    assert len(node.extensions()) == extension_count
    return platform.now - start


@pytest.mark.benchmark(group="f2-adaptation-lifecycle")
@pytest.mark.parametrize("extensions", [1, 2, 4, 8])
def test_f2_time_to_adapted(benchmark, extensions):
    """Full enter-hall-to-adapted scenario; simulated latency in extra_info."""
    result = benchmark.pedantic(
        adaptation_latency, args=(extensions,), rounds=3, iterations=1
    )
    benchmark.extra_info["simulated_adaptation_seconds"] = round(result, 4)
    benchmark.extra_info["extensions"] = extensions


@pytest.mark.benchmark(group="f2-adaptation-lifecycle")
def test_f2_readaptation_after_return(benchmark):
    """Leave-and-return cycle: revocation plus re-adaptation."""

    def scenario() -> float:
        platform = ProactivePlatform(seed=3)
        hall = platform.create_base_station("hall", Position(0, 0))
        hall.add_extension("ext", TraceAspect)
        node = platform.create_mobile_node("node", Position(5, 0))
        platform.run_for(5.0)
        assert node.extensions()
        node.walk_to(Position(200, 0))  # ~130s walk at 1.5 m/s
        platform.run_for(200.0)
        assert not node.extensions()
        node.walk_to(Position(5, 0))
        start = platform.now
        platform.run_for(400.0)
        assert node.extensions()
        return platform.now - start

    benchmark.pedantic(scenario, rounds=3, iterations=1)
