"""X1 — fleet-scale lifecycle: install + renew + revoke across 100k nodes.

The paper's evaluation adapts one node at a time; X1 asks what the
platform's *protocols* cost when the population is five orders of
magnitude larger than a demo hall.  A :class:`~repro.fleet.FleetBuilder`
world (sharded kernel, registrar tree, array-backed leaves) runs the
full extension lifecycle:

- distribute: one sealed envelope, verified once per registrar, fanned
  out to cluster heads as epoch handoffs;
- steady state: per-region leaf sweeps renew ~100k leases per interval
  while 15% of leaves churn out and expire; registrars keep ~200 head
  leases alive at the base with one ``renew_batch`` round trip each;
- withdraw: fleet-wide revocation back down the tree.

Scale knobs come from the environment so CI can smoke-test the same
scenario at 10k leaves (``FLEET_LEAVES``), with a throughput floor gate
(``FLEET_FLOOR_OPS``).  One summary row per full run — leaf-ops/sec,
kernel events/sec, per-epoch wall time, peak RSS, and the run's
determinism fingerprint — is appended to ``BENCH_fleet.json``.

The module also pins the headline batching claim in isolation: at 10k
leases, sweep-mode tables + batch-mode renewal consume ≥10× (in practice
~1000×) fewer kernel timer events than exact per-lease timers.
"""

from __future__ import annotations

import os
import resource
import time

import pytest

from conftest import append_bench_row
from repro.fleet import FleetBuilder
from repro.leasing.renewer import RenewalAgent
from repro.leasing.table import LeaseTable
from repro.sim.kernel import Simulator

#: Fleet size; CI sets 10_000 for the smoke lane, the default is the
#: full experiment.
LEAVES = int(os.environ.get("FLEET_LEAVES", "100000"))
#: Leaf-operations/sec floor the smoke lane gates on.  Deliberately ~50×
#: under the measured ~2.8M ops/s so only a real regression trips it.
FLOOR_OPS = float(os.environ.get("FLEET_FLOOR_OPS", "50000"))

SEED = 7
SHARDS = 4
EPOCHS_STEADY = 60
EPOCHS_DRAIN = 5

_cache: dict[str, dict] = {}


def run_fleet(leaves: int = LEAVES, shards: int = SHARDS, seed: int = SEED) -> dict:
    """Build and drive one full lifecycle; returns timing + fleet stats."""
    key = f"{leaves}:{shards}:{seed}"
    if key in _cache:
        return _cache[key]
    built_at = time.perf_counter()
    fleet = FleetBuilder(leaves=leaves, shards=shards, seed=seed).build()
    drive_at = time.perf_counter()
    fleet.distribute("fleet-policy")
    fleet.run_epochs(EPOCHS_STEADY)
    fleet.withdraw("fleet-policy")
    fleet.run_epochs(EPOCHS_DRAIN)
    done_at = time.perf_counter()
    stats = fleet.stats()
    drive_wall = done_at - drive_at
    epochs = EPOCHS_STEADY + EPOCHS_DRAIN
    result = {
        "fleet": fleet,
        "stats": stats,
        "fingerprint": fleet.fingerprint(),
        "build_wall": drive_at - built_at,
        "drive_wall": drive_wall,
        "wall_per_epoch": drive_wall / epochs,
        "leaf_ops_per_sec": stats["leaf_ops"] / drive_wall,
        "kernel_events_per_sec": stats["kernel_events"] / drive_wall,
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    }
    _cache[key] = result
    return result


@pytest.mark.benchmark(group="x1-fleet")
def test_x1_fleet_lifecycle(benchmark):
    """The headline run: full lifecycle at LEAVES nodes."""
    result = benchmark.pedantic(run_fleet, rounds=1, iterations=1)
    stats = result["stats"]
    benchmark.extra_info.update(
        leaves=stats["leaves"],
        leaf_ops=stats["leaf_ops"],
        leaf_ops_per_sec=result["leaf_ops_per_sec"],
        wall_per_epoch=result["wall_per_epoch"],
        peak_rss_kb=result["peak_rss_kb"],
        fingerprint=result["fingerprint"],
    )
    # Every leaf completed the lifecycle: installed once, then revoked or
    # churned out — nothing left mid-flight.
    population = stats["population"]
    assert population["idle"] == 0 and population["offered"] == 0
    assert population["installed"] == 0
    assert population["revoked"] + population["expired"] == stats["leaves"]
    # The base served O(registrars), not O(leaves): head leases alive,
    # one envelope verification per registrar.
    assert stats["envelopes_verified"] == stats["registrars"]
    assert stats["head_leases"] == stats["heads"]


def test_x1_throughput_floor():
    """The CI gate: a fleet run must clear FLOOR_OPS leaf-ops/sec."""
    result = run_fleet()
    assert result["leaf_ops_per_sec"] >= FLOOR_OPS, (
        f"fleet throughput regressed: {result['leaf_ops_per_sec']:,.0f} "
        f"leaf-ops/sec < floor {FLOOR_OPS:,.0f}"
    )


def test_x1_fixed_seed_is_deterministic():
    """Two fresh builds of the same seeded scenario digest identically."""
    first = run_fleet()["fingerprint"]
    # A second build from scratch (bypassing the memo) must replay it.
    fleet = FleetBuilder(leaves=LEAVES, shards=SHARDS, seed=SEED).build()
    fleet.distribute("fleet-policy")
    fleet.run_epochs(EPOCHS_STEADY)
    fleet.withdraw("fleet-policy")
    fleet.run_epochs(EPOCHS_DRAIN)
    assert fleet.fingerprint() == first


# -- the batching claim, isolated ------------------------------------------------


def lease_timer_events(batched: bool, leases: int = 10_000, horizon: float = 20.0) -> int:
    """Kernel events consumed keeping ``leases`` alive for ``horizon`` s.

    Exact mode: one expiry timer per lease (rescheduled per renewal) and
    one renewal timer per lease per period.  Batched mode: one sweep
    timer per table plus one batch timer per agent, whatever the lease
    count.
    """
    sim = Simulator()
    table = LeaseTable(
        sim, name="bench", sweep_interval=2.0 if batched else None
    )

    def renew(tracked, on_success, on_failure):
        table.renew(tracked.lease_id)
        on_success()

    agent = RenewalAgent(
        sim, renew, interval=2.0, batch_interval=2.0 if batched else None
    )
    for index in range(leases):
        lease = table.grant(f"holder-{index}", index, duration=10.0)
        agent.track(lease.lease_id, "base", duration=10.0)
    steps = sim.run(until=horizon)
    agent.stop()
    return steps


@pytest.mark.benchmark(group="x1-batching")
def test_x1_batched_sweeps_cut_timer_events_10x(benchmark):
    """ISSUE acceptance: ≥10× fewer timer events at 10k nodes."""
    batched = benchmark.pedantic(
        lease_timer_events, args=(True,), rounds=1, iterations=1
    )
    exact = lease_timer_events(False)
    ratio = exact / batched
    benchmark.extra_info.update(
        exact_events=exact, batched_events=batched, ratio=ratio
    )
    assert ratio >= 10.0, f"batched sweeps only {ratio:.1f}x fewer events"


def test_x1_record_trajectory_row(record_property):
    """Append the machine-readable row for this run to BENCH_fleet.json."""
    result = run_fleet()
    stats = result["stats"]
    exact = lease_timer_events(False)
    batched = lease_timer_events(True)
    row = {
        "bench": "x1-fleet",
        "leaves": stats["leaves"],
        "heads": stats["heads"],
        "registrars": stats["registrars"],
        "regions": stats["regions"],
        "shards": stats["shards"],
        "epochs": stats["epochs"],
        "leaf_ops": stats["leaf_ops"],
        "events_per_sec": round(result["leaf_ops_per_sec"]),
        "kernel_events_per_sec": round(result["kernel_events_per_sec"]),
        "wall_per_epoch_ms": round(result["wall_per_epoch"] * 1000.0, 3),
        "drive_wall_s": round(result["drive_wall"], 3),
        "build_wall_s": round(result["build_wall"], 3),
        "peak_rss_kb": result["peak_rss_kb"],
        "renew_batches": stats["renew_batches"],
        "envelopes_verified": stats["envelopes_verified"],
        "handoffs": stats["handoffs"],
        "timer_events_exact_10k": exact,
        "timer_events_batched_10k": batched,
        "timer_event_ratio": round(exact / batched, 1),
        "fingerprint": result["fingerprint"],
        "seed": SEED,
    }
    path = append_bench_row("fleet", row)
    record_property("bench_row", row)
    record_property("bench_file", str(path))
