"""M1 — lease-based revocation latency (§3.2).

When a node silently leaves a proactive space, how long do its extensions
survive?  The platform's answer: until the receiver-side lease lapses —
at most one lease term after the last keep-alive landed.

The benchmark severs the radio link (the instant the node "leaves") and
measures the *simulated* time until the extension is withdrawn, across
lease durations.  Shape: revocation latency ≈ lease duration (slightly
less on average, since the last renewal happened mid-term), linear in the
configured term — the paper's time/space locality knob.

An active revocation (base-initiated ``midas.revoke``) is benchmarked for
contrast: one radio round trip, independent of the lease term.
"""

import pytest

from repro.core.platform import ProactivePlatform
from repro.net.geometry import Position

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from tests.support import TraceAspect  # noqa: E402


def passive_revocation_latency(lease_duration: float) -> float:
    """Simulated seconds from link loss to extension withdrawal."""
    platform = ProactivePlatform(seed=13, lease_duration=lease_duration)
    hall = platform.create_base_station("hall", Position(0, 0))
    hall.add_extension("ext", TraceAspect)
    node = platform.create_mobile_node("node", Position(5, 0))
    platform.run_for(lease_duration)  # adapted, leases being renewed
    assert node.extensions()

    withdrawn_at = []
    node.adaptation.on_withdrawn.connect(
        lambda inst, reason: withdrawn_at.append(platform.now)
    )
    platform.network.partition("hall", "node")
    left_at = platform.now
    platform.run_for(lease_duration * 4 + 10.0)
    assert withdrawn_at, "extension never withdrawn"
    return withdrawn_at[0] - left_at


def active_revocation_latency() -> float:
    """Simulated seconds for a base-initiated revoke to take effect."""
    platform = ProactivePlatform(seed=13, lease_duration=30.0)
    hall = platform.create_base_station("hall", Position(0, 0))
    hall.add_extension("ext", TraceAspect)
    node = platform.create_mobile_node("node", Position(5, 0))
    platform.run_for(5.0)
    withdrawn_at = []
    node.adaptation.on_withdrawn.connect(
        lambda inst, reason: withdrawn_at.append(platform.now)
    )
    start = platform.now
    hall.extension_base.revoke("node", "ext")
    platform.run_for(5.0)
    assert withdrawn_at
    return withdrawn_at[0] - start


@pytest.mark.benchmark(group="m1-revocation")
@pytest.mark.parametrize("lease_duration", [2.0, 5.0, 10.0, 20.0])
def test_m1_passive_revocation(benchmark, lease_duration):
    """Node vanishes; extension dies with its lease."""
    latency = benchmark.pedantic(
        passive_revocation_latency, args=(lease_duration,), rounds=3, iterations=1
    )
    benchmark.extra_info["lease_duration_s"] = lease_duration
    benchmark.extra_info["simulated_revocation_latency_s"] = round(latency, 3)
    benchmark.extra_info["latency_over_lease"] = round(latency / lease_duration, 2)


@pytest.mark.benchmark(group="m1-revocation")
def test_m1_active_revocation(benchmark):
    """Base-initiated revocation: one round trip, term-independent."""
    latency = benchmark.pedantic(active_revocation_latency, rounds=3, iterations=1)
    benchmark.extra_info["simulated_revocation_latency_s"] = round(latency, 4)
